"""Tests for the synthetic workload generator (§VI recipe)."""

import numpy as np
import pytest

from repro import Point, Rect, WorkloadError
from repro.data import (
    bay_area_master,
    bay_area_region,
    generate_intersections,
    sample_users,
    square_region,
    uniform_users,
    users_from_intersections,
)


class TestRegions:
    def test_bay_area_is_square(self):
        region = bay_area_region()
        assert region.width == region.height

    def test_square_region(self):
        assert square_region(100) == Rect(0, 0, 100, 100)


class TestIntersections:
    def test_count_and_clipping(self):
        region = square_region(10_000)
        pts = generate_intersections(500, region, seed=1)
        assert pts.shape == (500, 2)
        assert (pts[:, 0] >= 0).all() and (pts[:, 0] <= 10_000).all()
        assert (pts[:, 1] >= 0).all() and (pts[:, 1] <= 10_000).all()

    def test_deterministic(self):
        region = square_region(10_000)
        a = generate_intersections(300, region, seed=9)
        b = generate_intersections(300, region, seed=9)
        assert np.array_equal(a, b)

    def test_skewed_density(self):
        """The clustered process must be visibly non-uniform: the densest
        map cell should hold far more than the uniform expectation."""
        region = square_region(10_000)
        pts = generate_intersections(2_000, region, seed=2)
        hist, __, __ = np.histogram2d(
            pts[:, 0], pts[:, 1], bins=8, range=[[0, 10_000], [0, 10_000]]
        )
        assert hist.max() > 3 * (2_000 / 64)

    def test_validation(self):
        region = square_region(100)
        with pytest.raises(WorkloadError):
            generate_intersections(0, region)
        with pytest.raises(WorkloadError):
            generate_intersections(10, region, background_fraction=1.5)


class TestUsers:
    def test_users_per_intersection(self):
        region = square_region(10_000)
        pts = generate_intersections(50, region, seed=3)
        users = users_from_intersections(pts, region, users_per_intersection=10, seed=3)
        assert users.shape == (500, 2)

    def test_gaussian_spread_scale(self):
        """Users scatter around their intersection at the requested σ."""
        region = square_region(100_000)
        pts = np.full((200, 2), 50_000.0)
        users = users_from_intersections(
            pts, region, users_per_intersection=10, sigma=500.0, seed=4
        )
        offsets = users - 50_000.0
        measured = np.std(offsets)
        assert 400.0 < measured < 600.0

    def test_validation(self):
        region = square_region(100)
        with pytest.raises(WorkloadError):
            users_from_intersections(np.zeros((2, 2)), region, 0)


class TestMaster:
    def test_master_size(self):
        region, db = bay_area_master(seed=5, n_intersections=100)
        assert len(db) == 1_000
        assert all(region.contains(p) for p in db.points())

    def test_sampling(self):
        __, db = bay_area_master(seed=6, n_intersections=100)
        sample = sample_users(db, 250, seed=6)
        assert len(sample) == 250
        for uid in sample.user_ids():
            assert sample.location_of(uid) == db.location_of(uid)

    def test_sampling_too_large(self):
        __, db = bay_area_master(seed=7, n_intersections=10)
        with pytest.raises(WorkloadError):
            sample_users(db, 1_000)

    def test_uniform_users(self):
        region = square_region(100)
        db = uniform_users(64, region, seed=8)
        assert len(db) == 64
        assert all(region.contains(p) for p in db.points())
