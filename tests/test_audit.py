"""Tests for the anonymity auditor."""

import pytest

from repro import AnonymityBreachError, LocationDatabase, Rect
from repro.attacks import assert_policy_aware_k_anonymous, audit_policy
from repro.baselines import policy_unaware_binary
from repro.core.binary_dp import solve
from repro.core.policy import CloakingPolicy
from repro.trees import BinaryTree


@pytest.fixture
def breached_policy(table1_region, table1_db):
    return policy_unaware_binary(table1_region, table1_db, 2, max_depth=4)


@pytest.fixture
def safe_policy(table1_region, table1_db):
    return solve(
        BinaryTree.build(table1_region, table1_db, 2, max_depth=4), 2
    ).policy()


class TestAuditReport:
    def test_breach_fields(self, breached_policy):
        report = audit_policy(breached_policy, 2)
        assert report.policy_unaware_level == 2
        assert report.policy_aware_level == 1
        assert report.safe_policy_unaware
        assert not report.safe_policy_aware
        assert report.breached_users == ("Carol",)
        assert report.identified_users == ("Carol",)

    def test_safe_fields(self, safe_policy):
        report = audit_policy(safe_policy, 2)
        assert report.safe_policy_aware
        assert report.safe_policy_unaware
        assert report.breached_users == ()

    def test_summary_mentions_breach(self, breached_policy):
        assert "BREACH" in audit_policy(breached_policy, 2).summary()

    def test_summary_mentions_ok(self, safe_policy):
        summary = audit_policy(safe_policy, 2).summary()
        assert "BREACH" not in summary
        assert "OK" in summary

    def test_empty_policy_levels_are_zero(self):
        report = audit_policy(CloakingPolicy({}, LocationDatabase()), 2)
        assert report.policy_aware_level == 0
        assert report.policy_unaware_level == 0


class TestAssertGate:
    def test_raises_on_breach(self, breached_policy):
        with pytest.raises(AnonymityBreachError) as excinfo:
            assert_policy_aware_k_anonymous(breached_policy, 2)
        assert excinfo.value.breached_users == ("Carol",)

    def test_passes_on_safe(self, safe_policy):
        report = assert_policy_aware_k_anonymous(safe_policy, 2)
        assert report.safe_policy_aware
