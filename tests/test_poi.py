"""Tests for the POI store — grid queries cross-checked by brute force."""

import numpy as np
import pytest

from repro import Point, Rect, ReproError, WorkloadError
from repro.lbs import POI, POIDatabase, generate_pois


@pytest.fixture
def region():
    return Rect(0, 0, 1000, 1000)


@pytest.fixture
def pois(region):
    return generate_pois(region, {"rest": 120, "groc": 60}, seed=111)


def brute_nearest(pois, point, category=None):
    best, best_d = None, float("inf")
    for poi in pois:
        if category is not None and poi.category != category:
            continue
        d = point.distance_to(poi.location)
        if d < best_d:
            best, best_d = poi, d
    return best


class TestConstruction:
    def test_counts_and_categories(self, pois):
        assert len(pois) == 180
        assert pois.categories() == ["groc", "rest"]
        assert len(pois.in_category("rest")) == 120

    def test_outside_poi_rejected(self, region):
        with pytest.raises(ReproError, match="outside"):
            POIDatabase(region, [POI("x", Point(-1, 0), "rest")])

    def test_grid_cells_validated(self, region):
        with pytest.raises(ReproError):
            POIDatabase(region, [], grid_cells=0)

    def test_generate_validation(self, region):
        with pytest.raises(WorkloadError):
            generate_pois(region, {})
        with pytest.raises(WorkloadError):
            generate_pois(region, {"rest": -1})


class TestRangeQuery:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_brute_force(self, region, pois, seed):
        rng = np.random.default_rng(seed)
        x1, y1 = rng.uniform(0, 800, size=2)
        rect = Rect(x1, y1, x1 + rng.uniform(10, 200), y1 + rng.uniform(10, 200))
        got = {p.poi_id for p in pois.range_query(rect)}
        expected = {
            p.poi_id
            for cat in pois.categories()
            for p in pois.in_category(cat)
            if rect.contains(p.location)
        }
        assert got == expected

    def test_category_filter(self, region, pois):
        rect = Rect(0, 0, 1000, 1000)
        assert all(
            p.category == "groc" for p in pois.range_query(rect, "groc")
        )
        assert len(pois.range_query(rect, "groc")) == 60


class TestNearest:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force(self, pois, seed):
        rng = np.random.default_rng(100 + seed)
        point = Point(float(rng.uniform(0, 1000)), float(rng.uniform(0, 1000)))
        all_pois = [p for c in pois.categories() for p in pois.in_category(c)]
        got = pois.nearest(point)
        expected = brute_nearest(all_pois, point)
        assert point.distance_to(got.location) == pytest.approx(
            point.distance_to(expected.location)
        )

    def test_category_restricted(self, pois):
        point = Point(500, 500)
        got = pois.nearest(point, "groc")
        expected = brute_nearest(pois.in_category("groc"), point)
        assert got.category == "groc"
        assert point.distance_to(got.location) == pytest.approx(
            point.distance_to(expected.location)
        )

    def test_empty_category(self, pois):
        assert pois.nearest(Point(1, 1), "cinema") is None

    def test_empty_database(self, region):
        empty = POIDatabase(region, [])
        assert empty.nearest(Point(5, 5)) is None


class TestNNCandidates:
    @pytest.mark.parametrize("seed", range(6))
    def test_soundness(self, pois, seed):
        """The true NN of every sampled point in the cloak must be in the
        candidate set — the guarantee the client filter relies on."""
        rng = np.random.default_rng(200 + seed)
        x1, y1 = rng.uniform(0, 800, size=2)
        cloak = Rect(x1, y1, x1 + 150, y1 + 100)
        candidates = {p.poi_id for p in pois.nn_candidates(cloak, "rest")}
        rest = pois.in_category("rest")
        for q in cloak.sample_grid(5):
            assert brute_nearest(rest, q).poi_id in candidates

    def test_empty_when_no_pois(self, region):
        empty = POIDatabase(region, [])
        assert empty.nn_candidates(Rect(0, 0, 10, 10)) == []

    def test_candidates_shrink_with_cloak(self, pois):
        big = pois.nn_candidates(Rect(0, 0, 800, 800), "rest")
        small = pois.nn_candidates(Rect(400, 400, 420, 420), "rest")
        assert len(small) <= len(big)
