"""Tests for parallel anonymization and the master policy (§V, §VI-D)."""

import pytest

from repro import PolicyError, Rect, ReproError
from repro.core.binary_dp import solve
from repro.core.requests import ServiceRequest
from repro.data import uniform_users
from repro.parallel import MasterPolicy, ServerPolicy, parallel_bulk_anonymize
from repro.trees import BinaryTree


@pytest.fixture
def region():
    return Rect(0, 0, 1024, 1024)


@pytest.fixture
def db(region):
    return uniform_users(500, region, seed=101)


class TestParallelBulk:
    def test_single_server_matches_direct_solve(self, region, db):
        result = parallel_bulk_anonymize(region, db, 10, 1)
        direct = solve(BinaryTree.build(region, db, 10), 10).optimal_cost
        assert result.cost == pytest.approx(direct)

    @pytest.mark.parametrize("n_servers", [2, 4, 8])
    def test_cost_near_optimal(self, region, db, n_servers):
        """§VI-D: distributed cost stays within 1% of the optimum."""
        result = parallel_bulk_anonymize(region, db, 10, n_servers)
        direct = solve(BinaryTree.build(region, db, 10), 10).optimal_cost
        assert result.cost <= direct * 1.01 + 1e-9

    def test_cost_never_below_optimal(self, region, db):
        result = parallel_bulk_anonymize(region, db, 10, 8)
        direct = solve(BinaryTree.build(region, db, 10), 10).optimal_cost
        assert result.cost >= direct - 1e-6

    def test_anonymity_preserved(self, region, db):
        result = parallel_bulk_anonymize(region, db, 10, 8)
        assert result.master.min_group_size() >= 10

    def test_every_user_covered(self, region, db):
        result = parallel_bulk_anonymize(region, db, 10, 8)
        assert len(result.master.merged) == len(db)

    def test_timing_fields(self, region, db):
        result = parallel_bulk_anonymize(region, db, 10, 4)
        assert result.wall_clock_seconds <= result.total_cpu_seconds + 1e-9
        assert result.partition_seconds >= 0
        assert len(result.server_seconds) <= result.n_servers

    def test_unknown_mode_rejected(self, region, db):
        with pytest.raises(ReproError, match="mode"):
            parallel_bulk_anonymize(region, db, 10, 2, mode="threads")

    def test_process_mode_matches_simulated(self, region):
        small = uniform_users(120, region, seed=102)
        sim = parallel_bulk_anonymize(region, small, 8, 2, mode="simulated")
        proc = parallel_bulk_anonymize(region, small, 8, 2, mode="process")
        assert proc.cost == pytest.approx(sim.cost)
        assert proc.master.min_group_size() >= 8

    def test_partition_tree_reuse(self, region, db):
        tree = BinaryTree.build(region, db, 10)
        a = parallel_bulk_anonymize(region, db, 10, 4, partition_tree=tree)
        b = parallel_bulk_anonymize(region, db, 10, 4)
        assert a.cost == pytest.approx(b.cost)


class TestShmTransport:
    def test_shm_bit_identical_to_flat(self, region, db):
        flat = parallel_bulk_anonymize(region, db, 10, 4, transport="flat")
        shm = parallel_bulk_anonymize(region, db, 10, 4, transport="shm")
        assert shm.cost == flat.cost  # bit-identical, not approx
        assert {
            u: shm.master.cloak_for(u) for u in db.user_ids()
        } == {u: flat.master.cloak_for(u) for u in db.user_ids()}

    def test_shm_payload_is_an_order_smaller(self, region, db):
        flat = parallel_bulk_anonymize(region, db, 10, 4, transport="flat")
        shm = parallel_bulk_anonymize(region, db, 10, 4, transport="shm")
        assert shm.dispatch_payload_bytes > 0
        assert (
            flat.dispatch_payload_bytes
            >= 10 * shm.dispatch_payload_bytes
        )

    def test_shm_process_mode_matches_simulated(self, region):
        small = uniform_users(120, region, seed=102)
        sim = parallel_bulk_anonymize(
            region, small, 8, 2, mode="simulated", transport="shm"
        )
        proc = parallel_bulk_anonymize(
            region, small, 8, 2, mode="process", transport="shm"
        )
        assert proc.cost == sim.cost

    def test_unknown_transport_rejected(self, region, db):
        with pytest.raises(ReproError, match="transport"):
            parallel_bulk_anonymize(region, db, 10, 2, transport="carrier")

    def test_no_segment_leaks(self, region, db):
        import pathlib

        shm_dir = pathlib.Path("/dev/shm")
        if not shm_dir.is_dir():
            pytest.skip("no /dev/shm on this platform")
        before = {p.name for p in shm_dir.iterdir()}
        parallel_bulk_anonymize(region, db, 10, 4, transport="shm")
        after = {p.name for p in shm_dir.iterdir()}
        assert after <= before


class TestProcessPoolRebuild:
    def test_rebuild_keeps_configured_width(self):
        from repro.parallel.engine import _ProcessPool

        pool = _ProcessPool(True, max_workers=3)
        try:
            assert pool.max_workers == 3
            pool.rebuild()
            assert pool.pool is not None
            assert pool.pool._max_workers == 3
        finally:
            if pool.pool is not None:
                pool.pool.shutdown()


class TestMasterPolicy:
    def test_dispatch_and_anonymize(self, region, db):
        result = parallel_bulk_anonymize(region, db, 10, 4)
        master = result.master
        uid = db.user_ids()[7]
        server = master.server_for(uid)
        assert server.jurisdiction.rect.contains(db.location_of(uid))
        ar = master.anonymize(ServiceRequest(uid, db.location_of(uid)))
        assert ar.cloak == master.cloak_for(uid)
        assert ar.cloak.contains(db.location_of(uid))

    def test_unknown_user_rejected(self, region, db):
        master = parallel_bulk_anonymize(region, db, 10, 4).master
        with pytest.raises(PolicyError):
            master.server_for("ghost")

    def test_double_claim_rejected(self, region):
        db = uniform_users(20, region, seed=103)
        policy = solve(BinaryTree.build(region, db, 5), 5).policy()
        from repro.trees.partition import Jurisdiction

        jur = Jurisdiction(rect=region, is_semi=False, count=len(db), node_id=0)
        server = ServerPolicy(jur, policy)
        with pytest.raises(PolicyError, match="two jurisdictions"):
            MasterPolicy([server, server], db)

    def test_average_cloak_area_consistent(self, region, db):
        master = parallel_bulk_anonymize(region, db, 10, 4).master
        assert master.average_cloak_area() == pytest.approx(
            master.cost() / len(db)
        )

    def test_empty_jurisdictions_allowed(self, region):
        # Cluster everyone in one corner: most jurisdictions are empty.
        import numpy as np

        from repro import LocationDatabase

        rng = np.random.default_rng(104)
        coords = rng.uniform(0, 60, size=(80, 2))
        db = LocationDatabase.from_array(coords)
        result = parallel_bulk_anonymize(region, db, 8, 4)
        assert len(result.master.merged) == len(db)
        assert result.master.min_group_size() >= 8
