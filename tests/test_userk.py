"""Tests for the user-specified-k extension (the paper's future work),
including certification against an independent brute-force search."""

import itertools

import numpy as np
import pytest

from repro import LocationDatabase, NoFeasiblePolicyError, Rect, ReproError
from repro.core.binary_dp import solve
from repro.data import uniform_users
from repro.extensions import audit_user_k, min_k_slack, solve_user_k
from repro.trees import BinaryTree


def brute_force_user_k(tree, k_of):
    """Independent exact solver: assign each user to an ancestor node of
    her leaf, check every node's group, minimize total area.  Exponential
    — tiny instances only."""
    db = tree.db
    options = {}
    for uid, point in db.items():
        leaf = tree.leaf_for(point)
        options[uid] = [node for node in leaf.path_to_root()]
    users = list(options)
    best = float("inf")
    for combo in itertools.product(*(options[u] for u in users)):
        groups = {}
        for uid, node in zip(users, combo):
            groups.setdefault(node.node_id, []).append(uid)
        ok = True
        for node_id, members in groups.items():
            if len(members) < max(k_of[u] for u in members):
                ok = False
                break
        if ok:
            cost = sum(node.rect.area for node in combo)
            best = min(best, cost)
    return best


@pytest.fixture
def region():
    return Rect(0, 0, 32, 32)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(8))
    def test_optimal_on_tiny_instances(self, region, seed):
        rng = np.random.default_rng(400 + seed)
        n = int(rng.integers(4, 8))
        db = LocationDatabase.from_array(rng.uniform(0, 32, (n, 2)))
        users = db.user_ids()
        k_of = {u: int(rng.integers(2, 4)) for u in users}
        tree = BinaryTree.build(region, db, min(k_of.values()), max_depth=4)
        expected = brute_force_user_k(tree, k_of)
        if expected == float("inf"):
            with pytest.raises(NoFeasiblePolicyError):
                __ = solve_user_k(tree, k_of).optimal_cost
            return
        got = solve_user_k(tree, k_of, prune=False).optimal_cost
        assert got == pytest.approx(expected)
        # The Lemma-5-style cap is lossless here too.
        pruned = solve_user_k(tree, k_of, prune=True).optimal_cost
        assert pruned == pytest.approx(expected)


class TestGreedyGroup:
    """The class-substitution dominance machinery."""

    @pytest.mark.parametrize("seed", range(30))
    def test_greedy_groups_are_valid(self, seed):
        from repro.extensions.userk import _greedy_group, _group_valid

        rng = np.random.default_rng(600 + seed)
        ks = tuple(sorted(rng.choice(range(2, 9), size=3, replace=False)))
        delta = tuple(int(x) for x in rng.integers(0, 6, size=3))
        for t in range(sum(delta) + 1):
            g = _greedy_group(delta, t, ks)
            if g is None:
                # No valid group of size t may exist at all.
                continue
            assert sum(g) == t
            assert all(0 <= gj <= dj for gj, dj in zip(g, delta))
            assert _group_valid(g, ks)

    def test_greedy_prefers_strict_users(self):
        from repro.extensions.userk import _greedy_group

        # ks = (2, 5); group of 5 can include strict users: take them all.
        assert _greedy_group((4, 3), 5, (2, 5)) == (2, 3)
        # Group of 3 (< 5) cannot touch the strict class.
        assert _greedy_group((4, 3), 3, (2, 5)) == (3, 0)
        # Group of 4 needs 4 relaxed users; only 3 exist → infeasible.
        assert _greedy_group((3, 3), 4, (2, 5)) is None

    @pytest.mark.parametrize("seed", range(6))
    def test_three_class_brute_force(self, seed):
        """The dominance pruning is exact with three privacy classes."""
        rng = np.random.default_rng(630 + seed)
        n = int(rng.integers(5, 8))
        db = LocationDatabase.from_array(rng.uniform(0, 32, (n, 2)))
        k_of = {u: int(rng.choice([2, 3, 4])) for u in db.user_ids()}
        region = Rect(0, 0, 32, 32)
        tree = BinaryTree.build(region, db, min(k_of.values()), max_depth=4)
        expected = brute_force_user_k(tree, k_of)
        if expected == float("inf"):
            with pytest.raises(NoFeasiblePolicyError):
                __ = solve_user_k(tree, k_of).optimal_cost
            return
        assert solve_user_k(tree, k_of).optimal_cost == pytest.approx(expected)


class TestAgainstScalarSolver:
    @pytest.mark.parametrize("seed", range(8, 16))
    def test_uniform_k_reduces_to_base_problem(self, region, seed):
        rng = np.random.default_rng(400 + seed)
        n, k = int(rng.integers(6, 24)), int(rng.integers(2, 5))
        db = LocationDatabase.from_array(rng.uniform(0, 32, (n, 2)))
        if n < k:
            return
        tree = BinaryTree.build(region, db, k, max_depth=6)
        base = solve(tree, k).optimal_cost
        userk = solve_user_k(tree, {u: k for u in db.user_ids()}).optimal_cost
        assert userk == pytest.approx(base)

    @pytest.mark.parametrize("seed", range(16, 22))
    def test_mixed_k_bracketed_by_uniform_extremes(self, region, seed):
        rng = np.random.default_rng(400 + seed)
        n = int(rng.integers(10, 22))
        db = LocationDatabase.from_array(rng.uniform(0, 32, (n, 2)))
        users = db.user_ids()
        k_of = {u: (2 if i % 2 else 4) for i, u in enumerate(users)}
        tree = BinaryTree.build(region, db, 2, max_depth=6)
        mixed = solve_user_k(tree, k_of).optimal_cost
        lo = solve(BinaryTree.build(region, db, 2, max_depth=6), 2).optimal_cost
        hi = solve(BinaryTree.build(region, db, 4, max_depth=6), 4).optimal_cost
        assert lo - 1e-6 <= mixed <= hi + 1e-6


class TestExtraction:
    @pytest.mark.parametrize("seed", range(22, 28))
    def test_policy_satisfies_every_user(self, region, seed):
        rng = np.random.default_rng(400 + seed)
        n = int(rng.integers(12, 30))
        db = LocationDatabase.from_array(rng.uniform(0, 32, (n, 2)))
        k_of = {
            u: int(rng.choice([2, 3, 5])) for u in db.user_ids()
        }
        tree = BinaryTree.build(region, db, min(k_of.values()), max_depth=6)
        solution = solve_user_k(tree, k_of)
        policy = solution.policy()
        assert audit_user_k(policy, k_of)
        assert min_k_slack(policy, k_of) >= 0
        assert policy.cost() == pytest.approx(solution.optimal_cost)

    def test_monotone_in_single_user_k(self, region):
        """Raising one user's requirement never lowers the optimum."""
        db = uniform_users(15, region, seed=431)
        users = db.user_ids()
        base_k = {u: 2 for u in users}
        tree = BinaryTree.build(region, db, 2, max_depth=6)
        costs = []
        for k_first in (2, 4, 6):
            k_of = dict(base_k)
            k_of[users[0]] = k_first
            costs.append(solve_user_k(tree, k_of).optimal_cost)
        assert costs == sorted(costs)


class TestValidation:
    def test_missing_users_rejected(self, region):
        db = uniform_users(5, region, seed=440)
        tree = BinaryTree.build(region, db, 2, max_depth=4)
        with pytest.raises(ReproError, match="lacks entries"):
            solve_user_k(tree, {db.user_ids()[0]: 2})

    def test_nonpositive_k_rejected(self, region):
        db = uniform_users(5, region, seed=441)
        tree = BinaryTree.build(region, db, 2, max_depth=4)
        with pytest.raises(ReproError, match="≥ 1"):
            solve_user_k(tree, {u: 0 for u in db.user_ids()})

    def test_infeasible_when_any_k_exceeds_population(self, region):
        db = uniform_users(4, region, seed=442)
        k_of = {u: 2 for u in db.user_ids()}
        k_of[db.user_ids()[0]] = 10
        tree = BinaryTree.build(region, db, 2, max_depth=4)
        with pytest.raises(NoFeasiblePolicyError):
            __ = solve_user_k(tree, k_of).optimal_cost

    def test_state_guard(self, region):
        db = uniform_users(200, region, seed=443)
        k_of = {u: (2 + (i % 5)) for i, u in enumerate(db.user_ids())}
        tree = BinaryTree.build(region, db, 2, max_depth=10)
        with pytest.raises(ReproError, match="state space"):
            solve_user_k(tree, k_of, max_states=100)

    def test_audit_detects_violation(self, region):
        """A policy that is fine for k=2 users fails a k=5 user."""
        from repro.core.policy import CloakingPolicy

        db = LocationDatabase([("a", 1, 1), ("b", 2, 2)])
        shared = Rect(0, 0, 4, 4)
        policy = CloakingPolicy({"a": shared, "b": shared}, db)
        assert audit_user_k(policy, {"a": 2, "b": 2})
        assert not audit_user_k(policy, {"a": 5, "b": 2})
        assert min_k_slack(policy, {"a": 5, "b": 2}) == -3
