"""Smoke tests for the experiment runners and the harness."""

import pytest

from repro.experiments import (
    ScaleProfile,
    Table,
    current_scale,
    run_ablation_dp,
    run_fig3,
    run_fig4a,
    run_fig4b,
    run_fig5a,
    run_fig5b,
    run_fig6,
    run_sec6d,
    run_sec7_cache,
    run_table1,
    run_thm1,
    timed,
)

#: A miniature profile so every runner finishes in seconds.
TINY = ScaleProfile(
    name="tiny",
    master_intersections=300,
    db_sweep=(1_000, 2_000),
    k_sweep=(5, 10),
    db_fixed=1_500,
    k=10,
    server_sweep=(1, 2),
    move_percentages=(1.0, 5.0),
    jurisdiction_sweep=(1, 4),
)


class TestHarness:
    def test_table_rendering(self):
        table = Table("demo", ["a", "b"])
        table.add(a=1, b=2.5)
        table.add(a="x")
        out = table.render()
        assert "demo" in out and "2.5" in out and "x" in out

    def test_table_rejects_unknown_columns(self):
        table = Table("demo", ["a"])
        with pytest.raises(KeyError):
            table.add(zzz=1)

    def test_table_column(self):
        table = Table("demo", ["a"])
        table.add(a=1)
        table.add(a=2)
        assert table.column("a") == [1, 2]

    def test_timed(self):
        with timed() as t:
            sum(range(1000))
        assert t[0] >= 0

    def test_current_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        assert current_scale().name == "quick"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError):
            current_scale()


class TestRunners:
    def test_table1(self):
        table = run_table1()
        rows = {
            (r["policy"], r["user"]): r["aware_candidates"] for r in table.rows
        }
        # The paper's breach: Carol identified under the 2-inside policy.
        assert rows[("PUB", "Carol")] == 1
        # The optimal policy protects everyone.
        assert all(
            v >= 2 for (p, __), v in rows.items() if p != "PUB"
        )

    def test_fig3(self):
        table = run_fig3(TINY)
        assert len(table.rows) == len(TINY.db_sweep)
        assert all(r["max_leaf_count"] < TINY.k for r in table.rows)

    def test_fig4a(self):
        table = run_fig4a(TINY)
        assert len(table.rows) == len(TINY.db_sweep) * len(TINY.server_sweep)
        # Cost is a property of the partition, not of timing.
        assert all(r["cost"] > 0 for r in table.rows)

    def test_fig4b(self):
        table = run_fig4b(TINY)
        assert [r["k"] for r in table.rows] == list(TINY.k_sweep)

    def test_fig5a_orderings(self):
        table = run_fig5a(TINY)
        for row in table.rows:
            assert row["casper"] <= row["puq"] + 1e-6
            assert row["pub"] <= row["policy_aware"] + 1e-6
            assert row["pa_over_casper"] < 2.5

    def test_fig5b_costs_always_equal(self):
        table = run_fig5b(TINY)
        assert all(row["costs_equal"] for row in table.rows)

    def test_sec6d_overhead_small(self):
        table = run_sec6d(TINY)
        assert all(row["overhead_percent"] <= 1.0 for row in table.rows)
        assert all(row["overhead_percent"] >= -1e-9 for row in table.rows)

    def test_fig6_breaches_present(self):
        table = run_fig6(n_random_trials=3)
        by_scenario = {(r["scenario"], r["scheme"]): r for r in table.rows}
        assert by_scenario[("paper 6(a)", "k-sharing")]["breach"]
        assert by_scenario[("paper 6(b)", "k-reciprocity")]["breach"]

    def test_thm1_exact_grows(self):
        table = run_thm1(max_users=9, k=3)
        assert all(row["cost_ratio"] >= 1.0 - 1e-9 for row in table.rows)

    def test_ablation_costs_consistent(self):
        table = run_ablation_dp(n_users=60, k=4)
        costs = {r["variant"]: r["cost"] for r in table.rows}
        assert costs["Algorithm 1 (naive)"] == pytest.approx(
            costs["staged min-plus"]
        )
        assert costs["staged, no Lemma 5"] == pytest.approx(
            costs["staged + Lemma 5"]
        )
        # Binary optimum never exceeds the quad optimum.
        assert costs["staged + Lemma 5"] <= costs["Algorithm 1 (naive)"] + 1e-6

    def test_sec7_cache(self):
        table = run_sec7_cache(n_users=400, n_requests=100, k=10)
        row = table.rows[0]
        assert row["cache_hit_rate"] > 0
        assert row["lbs_served"] < 100
