"""Deterministic fault-injection framework (repro.robustness.faults)."""

import pytest

from repro.core.errors import ReproError
from repro.robustness import (
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectedCrash,
    InjectedError,
    InjectedTimeout,
)


def plan_of(*rules, seed=0, name="test-plan"):
    return FaultPlan(rules=tuple(rules), seed=seed, name=name)


class TestFaultRule:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError, match="unknown fault kind"):
            FaultRule("solve", "meltdown")

    def test_probability_bounds(self):
        with pytest.raises(ReproError, match="probability"):
            FaultRule("solve", "crash", probability=1.5)
        with pytest.raises(ReproError, match="probability"):
            FaultRule("solve", "crash", probability=-0.1)

    def test_negative_delay_rejected(self):
        with pytest.raises(ReproError, match="delay"):
            FaultRule("solve", "straggle", delay=-1.0)


class TestDeterminism:
    def test_same_seed_same_outcomes(self):
        plan = plan_of(FaultRule("solve", "crash", probability=0.5))

        def outcomes():
            injector = FaultInjector(plan)
            hits = []
            for key in range(200):
                try:
                    injector.fire("solve", key)
                    hits.append(False)
                except InjectedCrash:
                    hits.append(True)
            return hits

        first, second = outcomes(), outcomes()
        assert first == second
        assert any(first) and not all(first)  # p=0.5 strikes sometimes

    def test_different_seeds_differ(self):
        rule = FaultRule("solve", "crash", probability=0.5)

        def fired_keys(seed):
            injector = FaultInjector(plan_of(rule, seed=seed))
            struck = set()
            for key in range(200):
                try:
                    injector.fire("solve", key)
                except InjectedCrash:
                    struck.add(key)
            return struck

        assert fired_keys(0) != fired_keys(1)

    def test_retry_gets_fresh_draw(self):
        # p=0.5: across attempts 0..9 of one key, both outcomes occur.
        plan = plan_of(FaultRule("provider", "error", probability=0.5))
        injector = FaultInjector(plan)
        results = []
        for attempt in range(10):
            try:
                injector.fire("provider", "req-1", attempt)
                results.append("ok")
            except InjectedError:
                results.append("err")
        assert "ok" in results and "err" in results


class TestFiring:
    def test_kinds_raise_their_exception(self):
        for kind, exc_type in (
            ("crash", InjectedCrash),
            ("error", InjectedError),
            ("timeout", InjectedTimeout),
        ):
            injector = FaultInjector(plan_of(FaultRule("solve", kind)))
            with pytest.raises(exc_type) as excinfo:
                injector.fire("solve", 7)
            assert excinfo.value.site == "solve"
            assert excinfo.value.key == 7

    def test_straggle_returns_delay(self):
        injector = FaultInjector(
            plan_of(FaultRule("solve", "straggle", delay=1.25))
        )
        assert injector.fire("solve", 3) == pytest.approx(1.25)

    def test_other_sites_untouched(self):
        injector = FaultInjector(plan_of(FaultRule("solve", "crash")))
        assert injector.fire("provider", 3) == 0.0

    def test_match_restricts_to_one_key(self):
        injector = FaultInjector(
            plan_of(FaultRule("solve", "crash", match="5"))
        )
        injector.fire("solve", 4)  # no raise
        with pytest.raises(InjectedCrash):
            injector.fire("solve", 5)

    def test_max_attempt_guarantees_recovery(self):
        injector = FaultInjector(
            plan_of(FaultRule("provider", "timeout", max_attempt=2))
        )
        for attempt in range(2):
            with pytest.raises(InjectedTimeout):
                injector.fire("provider", "r", attempt)
        assert injector.fire("provider", "r", 2) == 0.0

    def test_stale_is_query_only(self):
        injector = FaultInjector(plan_of(FaultRule("mpc", "stale")))
        # fire() ignores stale rules; should() reports them.
        assert injector.fire("mpc", "alice") == 0.0
        assert injector.should("mpc", "stale", "alice")
        assert not injector.should("mpc", "crash", "alice")

    def test_fired_counters(self):
        injector = FaultInjector(
            plan_of(
                FaultRule("solve", "crash"),
                FaultRule("mpc", "stale"),
            )
        )
        for key in range(3):
            with pytest.raises(InjectedCrash):
                injector.fire("solve", key)
        injector.should("mpc", "stale", "u1")
        assert injector.fired[("solve", "crash")] == 3
        assert injector.fired[("mpc", "stale")] == 1
        assert injector.total_fired == 4
