"""Tests for the self-rebalancing server pool (§V future work)."""

import numpy as np
import pytest

from repro import LocationDatabase, Point, Rect, ReproError
from repro.core.binary_dp import solve
from repro.data import uniform_users
from repro.lbs import random_moves
from repro.parallel.dynamic import RebalancingPool
from repro.trees import BinaryTree


@pytest.fixture
def region():
    return Rect(0, 0, 2048, 2048)


@pytest.fixture
def db(region):
    return uniform_users(600, region, seed=251)


class TestLifecycle:
    def test_requires_fit(self, region):
        pool = RebalancingPool(region, 10, 4)
        with pytest.raises(ReproError, match="fit"):
            pool.advance({})

    def test_parameters_validated(self, region):
        with pytest.raises(ReproError):
            RebalancingPool(region, 10, 0)
        with pytest.raises(ReproError):
            RebalancingPool(region, 10, 4, imbalance_threshold=0.5)

    def test_fit_partitions_and_solves(self, region, db):
        pool = RebalancingPool(region, 10, 4).fit(db)
        assert pool.n_jurisdictions == 4
        assert pool.repartition_count == 1
        master = pool.master_policy()
        assert len(master.merged) == len(db)
        assert master.min_group_size() >= 10

    def test_initial_cost_near_optimal(self, region, db):
        pool = RebalancingPool(region, 10, 4).fit(db)
        optimum = solve(BinaryTree.build(region, db, 10), 10).optimal_cost
        assert pool.master_policy().cost() <= optimum * 1.01


class TestAdvance:
    def test_local_moves_resolve_few_jurisdictions(self, region, db):
        pool = RebalancingPool(region, 10, 8).fit(db)
        # Move a handful of users a few meters: at most their own
        # jurisdictions re-solve; no repartition.
        moves = random_moves(db, 0.02, region, max_distance=5.0, seed=1)
        report = pool.advance(moves)
        assert not report.repartitioned
        assert report.resolved_jurisdictions <= pool.n_jurisdictions
        assert pool.master_policy().min_group_size() >= 10

    def test_cross_border_moves_tracked(self, region, db):
        pool = RebalancingPool(region, 10, 4).fit(db)
        # Teleport users to the opposite corner: they must cross.
        movers = db.user_ids()[:30]
        moves = {
            uid: Point(2000.0 + i * 0.1, 2000.0 + i * 0.1)
            for i, uid in enumerate(movers)
        }
        report = pool.advance(moves)
        assert report.crossed_jurisdictions > 0
        master = pool.master_policy()
        assert len(master.merged) == len(db)
        assert master.min_group_size() >= 10

    def test_anonymity_maintained_over_many_snapshots(self, region, db):
        pool = RebalancingPool(region, 10, 4).fit(db)
        current = db
        for step in range(5):
            moves = random_moves(current, 0.2, region, max_distance=300, seed=step)
            pool.advance(moves)
            current = current.with_moves(moves)
            master = pool.master_policy()
            assert master.min_group_size() >= 10
            assert len(master.merged) == len(current)

    def test_migration_triggers_repartition(self, region):
        """Draining one half of the map into the other forces either a
        stranded-jurisdiction or an imbalance repartition."""
        rng = np.random.default_rng(252)
        coords = rng.uniform(0, 2048, size=(400, 2))
        db = LocationDatabase.from_array(coords)
        pool = RebalancingPool(
            region, 10, 4, imbalance_threshold=1.8
        ).fit(db)
        west = [uid for uid, p in db.items() if p.x < 1024]
        moves = {
            uid: Point(float(rng.uniform(1500, 2040)), float(rng.uniform(0, 2040)))
            for uid in west
        }
        report = pool.advance(moves)
        assert report.repartitioned
        assert pool.repartition_count == 2
        assert pool.master_policy().min_group_size() >= 10
        # The threshold is a *trigger*; greedy repartitioning is
        # best-effort, so only sanity-bound the post-repartition load.
        assert report.imbalance < 4.0

    def test_stranded_small_jurisdiction_repartitions(self, region):
        """Leaving 0 < n < k users in a jurisdiction must repartition,
        not crash."""
        rng = np.random.default_rng(253)
        # Two clusters so the partition splits between them.
        coords = np.vstack(
            [rng.uniform(0, 500, (60, 2)), rng.uniform(1500, 2040, (60, 2))]
        )
        db = LocationDatabase.from_array(coords)
        pool = RebalancingPool(
            region, 10, 2, imbalance_threshold=50.0
        ).fit(db)
        # Drain the SW cluster down to 5 users.
        sw = [uid for uid, p in db.items() if p.x < 1000]
        moves = {
            uid: Point(float(rng.uniform(1500, 2040)), float(rng.uniform(1500, 2040)))
            for uid in sw[: len(sw) - 5]
        }
        report = pool.advance(moves)
        assert report.repartitioned
        assert pool.master_policy().min_group_size() >= 10


class TestReporting:
    def test_report_fields(self, region, db):
        pool = RebalancingPool(region, 10, 4).fit(db)
        moves = random_moves(db, 0.05, region, max_distance=50, seed=9)
        report = pool.advance(moves)
        assert report.moved_users == len(moves)
        assert report.imbalance >= 1.0
        assert pool.resolve_count >= pool.n_jurisdictions

    def test_imbalance_of_fresh_partition_is_reasonable(self, region, db):
        pool = RebalancingPool(region, 10, 8).fit(db)
        assert pool.current_imbalance() < 3.0
