"""Fail-closed degradation primitives (repro.robustness.degrade)."""

import pytest

from repro import PolicyAwareAnonymizer, Point, Rect
from repro.attacks.audit import audit_policy
from repro.core.errors import ServiceUnavailableError
from repro.data import uniform_users
from repro.robustness import (
    coarsen_overrides,
    coarsening_ancestor,
    fallback_jurisdiction_policy,
    policy_with_overrides,
)

K = 10


@pytest.fixture(scope="module")
def fitted():
    region = Rect(0, 0, 4096, 4096)
    db = uniform_users(400, region, seed=77)
    return PolicyAwareAnonymizer(region, K).fit(db), db


class TestCoarseningAncestor:
    def test_without_location_returns_cloak_node(self, fitted):
        anonymizer, db = fitted
        uid = db.user_ids()[0]
        node = coarsening_ancestor(anonymizer.tree, anonymizer.policy, uid)
        assert node.rect == anonymizer.policy.cloak_for(uid)

    def test_ancestor_covers_displaced_location(self, fitted):
        anonymizer, db = fitted
        uid = db.user_ids()[1]
        cloak = anonymizer.policy.cloak_for(uid)
        # A point far from the cloak but still on the map.
        far = Point(
            4095.0 if cloak.center.x < 2048 else 1.0,
            4095.0 if cloak.center.y < 2048 else 1.0,
        )
        node = coarsening_ancestor(
            anonymizer.tree, anonymizer.policy, uid, location=far
        )
        assert node.rect.contains(far)
        assert node.rect.contains_rect(cloak)

    def test_off_map_location_rejects(self, fitted):
        anonymizer, db = fitted
        uid = db.user_ids()[2]
        with pytest.raises(ServiceUnavailableError, match="fail-closed"):
            coarsening_ancestor(
                anonymizer.tree,
                anonymizer.policy,
                uid,
                location=Point(9999.0, 9999.0),
            )


class TestCoarsenOverrides:
    def test_override_keeps_policy_aware_k(self, fitted):
        anonymizer, db = fitted
        uid = db.user_ids()[3]
        cloak = anonymizer.policy.cloak_for(uid)
        node = coarsening_ancestor(anonymizer.tree, anonymizer.policy, uid)
        # Coarsen to a strict ancestor, as the serving ladder would.
        ancestor = node.parent or node
        overrides = coarsen_overrides(anonymizer.policy, ancestor.rect)
        assert overrides.get(uid) == ancestor.rect
        merged = policy_with_overrides(
            anonymizer.policy, overrides, name="coarsened"
        )
        report = audit_policy(merged, K)
        assert report.safe_policy_aware, report.summary()
        assert report.breached_users == ()
        # The merged group holds at least the requester's old group.
        assert len(merged.groups()[ancestor.rect]) >= len(
            anonymizer.policy.groups()[cloak]
        )

    def test_untouched_users_keep_their_cloaks(self, fitted):
        anonymizer, db = fitted
        uid = db.user_ids()[4]
        node = coarsening_ancestor(anonymizer.tree, anonymizer.policy, uid)
        ancestor = node.parent or node
        overrides = coarsen_overrides(anonymizer.policy, ancestor.rect)
        merged = policy_with_overrides(anonymizer.policy, overrides)
        for user, region in anonymizer.policy.items():
            if user not in overrides:
                assert merged.cloak_for(user) == region

    def test_strict_ancestor_cloaks_not_pulled_down(self, fitted):
        anonymizer, db = fitted
        uid = db.user_ids()[5]
        node = coarsening_ancestor(anonymizer.tree, anonymizer.policy, uid)
        ancestor = node.parent or node
        overrides = coarsen_overrides(anonymizer.policy, ancestor.rect)
        for user, rect in overrides.items():
            # Only cloaks *contained in* the ancestor were overridden.
            assert ancestor.rect.contains_rect(
                anonymizer.policy.cloak_for(user)
            )
            assert rect == ancestor.rect

    def test_empty_overrides_return_same_policy(self, fitted):
        anonymizer, __ = fitted
        assert (
            policy_with_overrides(anonymizer.policy, {})
            is anonymizer.policy
        )


class TestJurisdictionFallback:
    def test_single_cloak_policy_is_k_anonymous(self):
        rect = Rect(0, 0, 512, 512)
        rows = [(f"u{i}", 10.0 * i % 500, 7.0 * i % 500) for i in range(25)]
        policy = fallback_jurisdiction_policy(rect, node_id=3, rows=rows, k=K)
        assert policy.name == "degraded-3"
        assert all(region == rect for __, region in policy.items())
        report = audit_policy(policy, K)
        assert report.safe_policy_aware
        assert report.policy_aware_level == 25

    def test_below_k_jurisdiction_refused(self):
        rect = Rect(0, 0, 512, 512)
        rows = [(f"u{i}", 5.0 * i, 5.0 * i) for i in range(K - 1)]
        with pytest.raises(ServiceUnavailableError, match="refusing"):
            fallback_jurisdiction_policy(rect, node_id=3, rows=rows, k=K)
