"""Adaptive (AIMD) admission: containment invariant, controller
dynamics, and the gateway/DES integrations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Rect
from repro.core.errors import ReproError, ServiceUnavailableError
from repro.data import uniform_users
from repro.lbs.pipeline import CSP
from repro.lbs.poi import generate_pois
from repro.lbs.provider import LBSProvider
from repro.lbs.simulation import (
    GatewaySimulation,
    ServiceTimes,
    poisson_schedule,
)
from repro.robustness.retry import CircuitBreaker, ManualClock
from repro.serving.admission import AdmissionConfig, AdmissionController
from repro.serving.gateway import AsyncGateway, GatewayConfig, run_gateway

REGION = Rect(0, 0, 4096, 4096)
K = 8


def make_csp(n_users=120, seed=5, **kwargs):
    db = uniform_users(n_users, REGION, seed=seed)
    provider = LBSProvider(
        generate_pois(REGION, {"rest": 40, "groc": 30}, seed=3)
    )
    return CSP(REGION, K, db, provider, **kwargs)


# One observation of one provider round, as hypothesis generates them.
observations = st.tuples(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    st.booleans(),
    st.booleans(),
)


class TestControllerInvariant:
    @given(
        static=st.integers(min_value=1, max_value=4096),
        rounds=st.lists(observations, max_size=200),
    )
    @settings(max_examples=200, deadline=None)
    def test_adaptive_never_looser_than_static(self, static, rounds):
        """The acceptance property: after ANY sequence of RTT/failure/
        breaker observations, every request adaptive admission admits
        would also have been admitted by the static fail-closed policy
        (pending < static high-water)."""
        controller = AdmissionController(static)
        for rtt, failed, breaker_open in rounds:
            controller.observe_round(
                rtt, failed=failed, breaker_open=breaker_open
            )
            assert 1 <= controller.high_water <= static
            # Pointwise containment at every queue depth.
            for pending in (0, controller.high_water - 1,
                            controller.high_water, static, static + 1):
                if controller.admit(pending):
                    assert pending < static

    @given(rounds=st.lists(observations, min_size=1, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_limit_floor_holds(self, rounds):
        controller = AdmissionController(
            64, AdmissionConfig(min_limit=3)
        )
        for rtt, failed, breaker_open in rounds:
            controller.observe_round(
                rtt, failed=failed, breaker_open=breaker_open
            )
        assert controller.limit >= 3


class TestControllerDynamics:
    def test_decreases_on_congestion_increases_when_healthy(self):
        config = AdmissionConfig(rtt_target=0.1, ewma_alpha=1.0)
        controller = AdmissionController(100, config)
        controller.observe_round(0.5)  # over target → MD
        assert controller.limit == pytest.approx(50.0)
        assert controller.decreases == 1
        controller.observe_round(0.01)  # healthy → AI
        assert controller.limit == pytest.approx(51.0)
        assert controller.increases == 1

    def test_failed_round_is_congestion_regardless_of_rtt(self):
        controller = AdmissionController(
            100, AdmissionConfig(rtt_target=10.0)
        )
        controller.observe_round(0.001, failed=True)
        assert controller.decreases == 1

    def test_breaker_open_is_congestion(self):
        controller = AdmissionController(
            100, AdmissionConfig(rtt_target=10.0)
        )
        controller.observe_round(0.001, breaker_open=True)
        assert controller.decreases == 1

    def test_recovers_to_static_after_congestion_clears(self):
        config = AdmissionConfig(rtt_target=0.1, ewma_alpha=1.0)
        controller = AdmissionController(10, config)
        for __ in range(5):
            controller.observe_round(1.0)
        assert controller.high_water < 10
        for __ in range(20):
            controller.observe_round(0.01)
        assert controller.high_water == 10  # capped at static, not above

    def test_ewma_smooths_single_spikes(self):
        config = AdmissionConfig(rtt_target=0.2, ewma_alpha=0.1)
        controller = AdmissionController(100, config)
        for __ in range(10):
            controller.observe_round(0.05)
        # One spike against a calm EWMA is not congestion.
        controller.observe_round(1.0)
        assert controller.decreases == 0

    def test_config_validation(self):
        with pytest.raises(ReproError):
            AdmissionConfig(ewma_alpha=0.0).validate()
        with pytest.raises(ReproError):
            AdmissionConfig(multiplicative_decrease=1.0).validate()
        with pytest.raises(ReproError):
            AdmissionController(0)

    def test_snapshot_is_json_friendly(self):
        import json

        controller = AdmissionController(32)
        controller.observe_round(0.01)
        assert json.loads(json.dumps(controller.snapshot()))


class TestGatewayIntegration:
    def test_mismatched_static_high_water_rejected(self):
        csp = make_csp()
        with pytest.raises(ReproError):
            AsyncGateway(
                csp,
                GatewayConfig(queue_high_water=8),
                admission=AdmissionController(16),
            )

    def test_adaptive_shed_attributed(self):
        """Force the dynamic limit to 1: overload sheds with the
        "adaptive" cause while staying under the static mark."""
        csp = make_csp()
        config = GatewayConfig(
            queue_high_water=64, rtt=0.02, max_wait=0.001
        )
        controller = AdmissionController(
            64, AdmissionConfig(rtt_target=0.001, ewma_alpha=1.0)
        )
        controller.limit = 1.0  # as if congestion already collapsed it
        users = csp.anonymizer.current_db.user_ids()
        workload = [(u, [("poi", "rest")]) for u in users[:40]]
        results, stats = run_gateway(
            csp, workload, config, admission=controller
        )
        assert stats.shed_adaptive > 0
        assert stats.shed_high_water == 0
        assert stats.shed == stats.shed_adaptive
        assert stats.shed_by_cause["adaptive"] == stats.shed_adaptive
        # Controller observed the real rounds' RTTs.
        assert controller.rounds_observed > 0
        assert controller.rtt_ewma is not None
        assert controller.rtt_ewma >= 0.02 * 0.9

    def test_breaker_open_sheds_at_admission(self):
        clock = ManualClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=1000.0, clock=clock
        )
        breaker.record_failure()  # force open
        assert breaker.state == "open"
        csp = make_csp(circuit_breaker=breaker)
        config = GatewayConfig(queue_high_water=64)
        controller = AdmissionController(64)
        users = csp.anonymizer.current_db.user_ids()
        workload = [(u, [("poi", "rest")]) for u in users[:10]]
        results, stats = run_gateway(
            csp, workload, config, admission=controller
        )
        assert stats.served == 0
        assert stats.shed_breaker == 10
        assert all(
            isinstance(r, ServiceUnavailableError) and r.reason == "shed"
            for r in results
        )

    def test_without_controller_stats_unchanged(self):
        """Static-only gateways keep the old counters: total shed is
        all high-water, adaptive/breaker causes stay zero."""
        csp = make_csp()
        config = GatewayConfig(queue_high_water=2, rtt=0.01)
        users = csp.anonymizer.current_db.user_ids()
        workload = [(u, [("poi", "rest")]) for u in users[:30]]
        results, stats = run_gateway(csp, workload, config)
        assert stats.shed == stats.shed_high_water > 0
        assert stats.shed_adaptive == 0
        assert stats.shed_breaker == 0


class TestControllerInDES:
    def test_des_adaptive_contained_in_static(self):
        """Replay one schedule twice through the DES — static-only and
        controller-mode — and check the controller only ever refuses
        MORE: every adaptive-admitted arrival count stays within the
        static run's, and adaptive sheds are attributed."""
        csp = make_csp(n_users=200)
        users = csp.anonymizer.current_db.user_ids()
        schedule = poisson_schedule(
            users, rate_per_user=8.0, duration=1.0, seed=3
        )
        times = ServiceTimes(
            cloak_lookup=0.00005, lbs_query=0.00005, cache_lookup=0.00002
        )
        config = GatewayConfig(
            queue_high_water=8,
            max_inflight=64,
            rtt=0.05,
            max_wait=0.005,
            max_batch=8,
            pool_size=2,
        )
        static = GatewaySimulation(csp.policy, config, times=times).run(
            schedule
        )
        controller = AdmissionController(
            8, AdmissionConfig(rtt_target=0.04, ewma_alpha=0.5)
        )
        adaptive = GatewaySimulation(
            csp.policy, config, times=times, admission=controller
        ).run(schedule)
        assert adaptive.submitted == static.submitted
        assert adaptive.served <= static.served
        assert adaptive.shed + adaptive.throttled >= (
            static.shed + static.throttled
        )
        assert adaptive.shed_adaptive > 0
        assert controller.rounds_observed == adaptive.provider_rounds
        assert controller.high_water <= 8

    def test_des_breaker_sheds_with_cause(self):
        csp = make_csp(n_users=200)
        users = csp.anonymizer.current_db.user_ids()
        schedule = poisson_schedule(
            users, rate_per_user=8.0, duration=1.0, seed=4
        )
        config = GatewayConfig(
            queue_high_water=32,
            max_inflight=64,
            rtt=0.02,
            max_wait=0.005,
            max_batch=8,
            pool_size=2,
        )
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=30.0)
        controller = AdmissionController(32)
        sim = GatewaySimulation(
            csp.policy,
            config,
            admission=controller,
            breaker=breaker,
            fail_rounds=(0,),  # first round fails → breaker opens
        )
        report = sim.run(schedule)
        assert report.errors > 0  # the failed round's waiters
        assert report.shed_breaker > 0  # arrivals during the open window
        assert report.shed_by_cause["breaker"] == report.shed_breaker
        assert "breaker" in report.slo_summary()
