"""Tests for the greedy jurisdiction partitioner (§V)."""

import pytest

from repro import Rect, TreeError
from repro.data import uniform_users
from repro.trees import BinaryTree, greedy_partition, load_imbalance


@pytest.fixture
def region():
    return Rect(0, 0, 1024, 1024)


@pytest.fixture
def tree(region):
    db = uniform_users(800, region, seed=91)
    return BinaryTree.build(region, db, 10)


class TestGreedyPartition:
    def test_single_server_is_root(self, tree):
        parts = greedy_partition(tree, 1)
        assert len(parts) == 1
        assert parts[0].rect == tree.root.rect
        assert parts[0].count == tree.root.count

    def test_requested_count_reached(self, tree):
        for n in (2, 4, 8, 16):
            parts = greedy_partition(tree, n)
            assert len(parts) == n

    def test_counts_partition_population(self, tree):
        parts = greedy_partition(tree, 8)
        assert sum(p.count for p in parts) == tree.root.count

    def test_rects_tile_the_map(self, tree, region):
        parts = greedy_partition(tree, 16)
        assert sum(p.rect.area for p in parts) == pytest.approx(region.area)
        # Pairwise interiors are disjoint: overlapping area is zero.
        for i, a in enumerate(parts):
            for b in parts[i + 1 :]:
                if a.rect.intersects(b.rect):
                    overlap = a.rect.intersection(b.rect)
                    assert overlap.area == pytest.approx(0.0)

    def test_eligibility_no_stranded_small_groups(self, tree):
        """Every jurisdiction holds 0 or ≥ k users, so each server can
        anonymize its population locally."""
        for n in (4, 16, 64):
            for part in greedy_partition(tree, n, k=10):
                assert part.count == 0 or part.count >= 10

    def test_greedy_prefers_heavy_nodes(self, tree):
        parts = greedy_partition(tree, 2)
        # Splitting the root once: the two children, whatever their load.
        kids = {c.node_id for c in tree.root.children}
        assert {p.node_id for p in parts} == kids

    def test_stops_when_no_eligible_split(self, region):
        # A tiny population cannot be split into many jurisdictions.
        db = uniform_users(12, region, seed=92)
        tree = BinaryTree.build(region, db, 10)
        parts = greedy_partition(tree, 64, k=10)
        assert len(parts) < 64

    def test_n_servers_validated(self, tree):
        with pytest.raises(TreeError):
            greedy_partition(tree, 0)

    def test_deterministic(self, tree):
        a = [p.node_id for p in greedy_partition(tree, 8)]
        b = [p.node_id for p in greedy_partition(tree, 8)]
        assert a == b


class TestLoadImbalance:
    def test_perfectly_balanced(self, tree):
        assert load_imbalance(greedy_partition(tree, 1)) == 1.0

    def test_reasonable_balance_for_uniform_data(self, tree):
        parts = greedy_partition(tree, 16)
        assert load_imbalance(parts) < 3.0

    def test_empty_partitions_ignored(self):
        from repro.trees.partition import Jurisdiction

        parts = [
            Jurisdiction(rect=None, is_semi=False, count=0, node_id=0),
            Jurisdiction(rect=None, is_semi=False, count=10, node_id=1),
            Jurisdiction(rect=None, is_semi=False, count=10, node_id=2),
        ]
        assert load_imbalance(parts) == 1.0

    def test_all_empty(self):
        assert load_imbalance([]) == 1.0
