"""Tests for the §VII frequency-counting attack and its cache
counter-measure."""

import pytest

from repro import Rect
from repro.attacks import frequency_attack, max_duplicate_count
from repro.core.binary_dp import solve
from repro.core.requests import ServiceRequest
from repro.data import uniform_users
from repro.lbs import CSP, LBSProvider, generate_pois
from repro.trees import BinaryTree


@pytest.fixture
def region():
    return Rect(0, 0, 4096, 4096)


@pytest.fixture
def setup(region):
    db = uniform_users(120, region, seed=151)
    policy = solve(BinaryTree.build(region, db, 10), 10).policy()
    return db, policy


PAYLOAD = (("poi", "rest"),)


def requests_from(policy, db, users, payload=PAYLOAD):
    return [
        policy.anonymize(ServiceRequest(u, db.location_of(u), payload))
        for u in users
    ]


class TestFrequencyAttack:
    def test_saturated_group_is_exposed(self, setup):
        db, policy = setup
        # Pick one full cloak group and have *everyone* in it send the
        # same request within the snapshot.
        group = next(iter(policy.groups().values()))
        observed = requests_from(policy, db, group)
        findings = frequency_attack(observed, policy)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.saturated
        assert finding.exposed_users == tuple(sorted(group))
        assert finding.observed_count == len(group)

    def test_partial_group_is_safe(self, setup):
        db, policy = setup
        group = next(iter(policy.groups().values()))
        observed = requests_from(policy, db, group[:-1])  # one user silent
        assert frequency_attack(observed, policy) == []

    def test_different_payloads_do_not_accumulate(self, setup):
        db, policy = setup
        group = next(iter(policy.groups().values()))
        half = len(group) // 2
        observed = requests_from(policy, db, group[:half], PAYLOAD)
        observed += requests_from(
            policy, db, group[half:], (("poi", "groc"),)
        )
        assert frequency_attack(observed, policy) == []

    def test_max_duplicate_count(self, setup):
        db, policy = setup
        group = next(iter(policy.groups().values()))
        observed = requests_from(policy, db, group[:3])
        assert max_duplicate_count(observed) == 3
        assert max_duplicate_count([]) == 0


class TestCacheCounterMeasure:
    def test_cache_caps_observable_duplicates_at_one(self, region):
        """With the CSP cache, the LBS-visible log never contains
        duplicates — the attack surface of §VII's discussion vanishes."""
        db = uniform_users(200, region, seed=152)
        pois = generate_pois(region, {"rest": 50}, seed=152)

        class LoggingProvider(LBSProvider):
            def __init__(self, pois):
                super().__init__(pois)
                self.log = []

            def serve(self, request):
                self.log.append(request)
                return super().serve(request)

        provider = LoggingProvider(pois)
        csp = CSP(region, 10, db, provider)
        group = next(iter(csp.policy.groups().values()))
        for uid in group:  # the whole group asks the same thing
            csp.request(uid, PAYLOAD)
        # Without the cache this log would saturate the group...
        assert max_duplicate_count(provider.log) == 1
        # ...and indeed the attack finds nothing in what the LBS saw.
        assert frequency_attack(provider.log, csp.policy) == []

    def test_without_cache_the_attack_succeeds(self, region):
        db = uniform_users(200, region, seed=153)
        pois = generate_pois(region, {"rest": 50}, seed=153)

        class LoggingProvider(LBSProvider):
            def __init__(self, pois):
                super().__init__(pois)
                self.log = []

            def serve(self, request):
                self.log.append(request)
                return super().serve(request)

        provider = LoggingProvider(pois)
        csp = CSP(region, 10, db, provider, use_cache=False)
        group = next(iter(csp.policy.groups().values()))
        for uid in group:
            csp.request(uid, PAYLOAD)
        findings = frequency_attack(provider.log, csp.policy)
        assert findings and findings[0].saturated
