"""Unit tests for the lazy binary tree of quadrants/semi-quadrants (§V)."""

import numpy as np
import pytest

from repro import LocationDatabase, Point, Rect, TreeError
from repro.data import uniform_users
from repro.lbs import random_moves
from repro.trees import BinaryTree


@pytest.fixture
def region():
    return Rect(0, 0, 64, 64)


def dense_db(region, n=300, seed=0):
    return uniform_users(n, region, seed=seed)


class TestStructure:
    def test_root_shape_classification(self, region):
        db = LocationDatabase([("a", 1, 1)])
        assert BinaryTree(region, db, 1).root.is_semi is False
        semi = Rect(0, 0, 32, 64)
        assert BinaryTree(semi, db, 1).root.is_semi is True

    def test_bad_aspect_rejected(self):
        db = LocationDatabase([("a", 1, 1)])
        with pytest.raises(TreeError, match="semi-quadrant"):
            BinaryTree(Rect(0, 0, 10, 15), db, 1)

    def test_threshold_validated(self, region):
        with pytest.raises(TreeError):
            BinaryTree(region, LocationDatabase(), 0)

    def test_split_orientation_alternates(self, region):
        tree = BinaryTree.build(region, dense_db(region), k=10)
        for node in tree.nodes.values():
            if node.is_leaf:
                continue
            a, b = node.children
            if node.is_semi:
                # Horizontal cut: children stacked vertically.
                assert a.rect.y2 == b.rect.y1
                assert not a.is_semi and not b.is_semi
            else:
                # Vertical cut: children side by side.
                assert a.rect.x2 == b.rect.x1
                assert a.is_semi and b.is_semi

    def test_two_binary_levels_make_a_quadrant(self, region):
        tree = BinaryTree.build(region, dense_db(region), k=5)
        root = tree.root
        grandchildren = [g for c in root.children for g in c.children]
        if len(grandchildren) == 4:
            quads = set(root.rect.quadrants())
            assert {g.rect for g in grandchildren} == quads

    def test_lazy_invariant_holds_after_build(self, region):
        tree = BinaryTree.build(region, dense_db(region), k=10)
        tree.check_invariants()

    def test_leaves_below_threshold(self, region):
        tree = BinaryTree.build(region, dense_db(region), k=10, max_depth=30)
        assert all(leaf.count < 10 for leaf in tree.leaves())

    def test_max_depth_cap(self, region):
        # All users at the same spot force a chain until max_depth.
        db = LocationDatabase([(f"u{i}", 1, 1) for i in range(20)])
        tree = BinaryTree.build(region, db, k=5, max_depth=6)
        assert tree.height == 6
        tree.check_invariants()

    def test_counts_partition_points(self, region):
        db = dense_db(region)
        tree = BinaryTree.build(region, db, k=10)
        assert tree.root.count == len(db)
        assert sum(leaf.count for leaf in tree.leaves()) == len(db)


class TestQueries:
    def test_leaf_of_user(self, region):
        db = dense_db(region)
        tree = BinaryTree.build(region, db, k=10)
        for uid, point in list(db.items())[:30]:
            leaf = tree.leaf_of_user(uid)
            assert leaf.rect.contains(point)
            assert leaf is tree.leaf_for(point)

    def test_leaf_of_unknown_user(self, region):
        tree = BinaryTree.build(region, dense_db(region), k=10)
        with pytest.raises(TreeError, match="unknown"):
            tree.leaf_of_user("ghost")

    def test_users_of_subtree(self, region):
        db = dense_db(region)
        tree = BinaryTree.build(region, db, k=10)
        west = tree.root.children[0]
        users = tree.users_of(west)
        assert len(users) == west.count
        assert all(west.rect.contains(db.location_of(u)) for u in users)

    def test_smallest_node_with(self, region):
        db = dense_db(region)
        tree = BinaryTree.build(region, db, k=10)
        for uid, point in list(db.items())[:30]:
            node = tree.smallest_node_with(point, 10)
            assert node.count >= 10
            assert node.rect.contains(point)
            # No deeper node containing the point qualifies.
            if not node.is_leaf:
                deeper = node.child_for(point)
                assert deeper.count < 10

    def test_depth_histogram_counts_leaves(self, region):
        tree = BinaryTree.build(region, dense_db(region), k=10)
        hist = tree.depth_histogram()
        assert sum(hist.values()) == len(tree.leaves())


class TestMoves:
    def test_noop_moves(self, region):
        db = dense_db(region)
        tree = BinaryTree.build(region, db, k=10)
        dirty = tree.apply_moves({})
        assert dirty == set()
        tree.check_invariants()

    def test_small_move_updates_counts(self, region):
        db = dense_db(region)
        tree = BinaryTree.build(region, db, k=10)
        uid = db.user_ids()[0]
        dirty = tree.apply_moves({uid: Point(63, 63)})
        assert tree.root.node_id in dirty
        tree.check_invariants()
        assert tree.leaf_of_user(uid).rect.contains(Point(63, 63))
        assert tree.db.location_of(uid) == Point(63, 63)

    def test_mass_move_keeps_invariants(self, region):
        db = dense_db(region, n=400, seed=3)
        tree = BinaryTree.build(region, db, k=8)
        for step in range(4):
            moves = random_moves(tree.db, 0.3, region, max_distance=20, seed=step)
            tree.apply_moves(moves)
            tree.check_invariants()
        assert tree.root.count == len(db)

    def test_move_triggers_split_and_collapse(self, region):
        # Start with everyone in the west; then march them east.
        db = LocationDatabase([(f"u{i}", 1, 1 + i * 0.1) for i in range(30)])
        tree = BinaryTree.build(region, db, k=8)
        before_nodes = set(tree.nodes)
        moves = {f"u{i}": Point(60, 1 + i * 0.1) for i in range(30)}
        tree.apply_moves(moves)
        tree.check_invariants()
        # The structure changed: old dense west chain collapsed, east grew.
        assert set(tree.nodes) != before_nodes
        assert all(leaf.count < 8 for leaf in tree.leaves())

    def test_move_outside_map_rejected(self, region):
        db = dense_db(region)
        tree = BinaryTree.build(region, db, k=10)
        with pytest.raises(TreeError, match="outside"):
            tree.apply_moves({db.user_ids()[0]: Point(100, 0)})

    def test_move_unknown_user_rejected(self, region):
        tree = BinaryTree.build(region, dense_db(region), k=10)
        with pytest.raises(TreeError, match="unknown"):
            tree.apply_moves({"ghost": Point(1, 1)})

    def test_dirty_set_covers_both_paths(self, region):
        db = dense_db(region)
        tree = BinaryTree.build(region, db, k=10)
        uid = db.user_ids()[0]
        old_leaf = tree.leaf_of_user(uid)
        dirty = tree.apply_moves({uid: Point(63, 63)})
        new_leaf = tree.leaf_of_user(uid)
        for node in list(old_leaf.path_to_root()) + list(new_leaf.path_to_root()):
            if node.node_id in tree.nodes:
                assert node.node_id in dirty
