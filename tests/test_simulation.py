"""Tests for the discrete-event LBS simulation (§VII operating point)."""

import pytest

from repro import Rect, WorkloadError
from repro.data import uniform_users
from repro.lbs import LBSSimulation, ServiceTimes


@pytest.fixture
def region():
    return Rect(0, 0, 8192, 8192)


@pytest.fixture
def db(region):
    return uniform_users(400, region, seed=241)


def make_sim(region, db, **kwargs):
    defaults = dict(
        k=10,
        request_rate_per_user=0.05,
        snapshot_period=20.0,
        move_fraction=0.05,
        seed=7,
    )
    defaults.update(kwargs)
    return LBSSimulation(region, db, **defaults)


class TestValidation:
    def test_rate_validated(self, region, db):
        with pytest.raises(WorkloadError):
            make_sim(region, db, request_rate_per_user=0.0)

    def test_period_validated(self, region, db):
        with pytest.raises(WorkloadError):
            make_sim(region, db, snapshot_period=-1)

    def test_duration_validated(self, region, db):
        with pytest.raises(WorkloadError):
            make_sim(region, db).run(0)

    def test_service_times_validated(self):
        with pytest.raises(WorkloadError):
            ServiceTimes(cloak_lookup=-1).validate()


class TestRun:
    def test_request_volume_matches_poisson_rate(self, region, db):
        sim = make_sim(region, db)
        report = sim.run(60.0)
        expected = len(db) * 0.05 * 60.0  # n · λ · T
        assert 0.6 * expected < report.served < 1.4 * expected

    def test_snapshot_count(self, region, db):
        report = make_sim(region, db, snapshot_period=15.0).run(60.0)
        assert report.snapshots == 3  # ticks at 15, 30, 45

    def test_latency_fields_consistent(self, region, db):
        report = make_sim(region, db).run(30.0)
        assert len(report.latencies) == report.served
        assert report.mean_latency > 0
        assert report.latency_percentile(99) >= report.latency_percentile(50)

    def test_deterministic_given_seed(self, region, db):
        a = make_sim(region, db, seed=3).run(30.0)
        b = make_sim(region, db, seed=3).run(30.0)
        assert a.served == b.served
        assert a.latencies == b.latencies
        assert a.cache_hits == b.cache_hits

    def test_cache_reduces_lbs_load(self, region, db):
        cached = make_sim(region, db, use_cache=True).run(40.0)
        uncached = make_sim(region, db, use_cache=False).run(40.0)
        assert cached.lbs_queries < uncached.lbs_queries
        assert uncached.cache_hits == 0
        assert cached.cache_hit_rate > 0

    def test_milliseconds_per_query(self, region, db):
        """The §VII headline: requests cost milliseconds, not seconds."""
        report = make_sim(region, db, snapshot_period=1000.0).run(60.0)
        assert report.mean_latency < 0.01  # < 10 ms

    def test_requests_wait_for_reanonymization(self, region, db):
        slow = ServiceTimes(reanonymization=5.0)
        report = make_sim(
            region, db, snapshot_period=10.0, times=slow
        ).run(40.0)
        # Some requests arrive during the 5-second repair window and
        # queue behind it.
        assert max(report.queue_delays) > 0
        assert report.latency_percentile(99) > 0.01

    def test_more_servers_shrink_the_blackout(self, region, db):
        """Parallel anonymization (§V) cuts the post-snapshot serving
        blackout ~n×, so tail latency improves with the server count."""
        slow = ServiceTimes(reanonymization=4.0)
        one = make_sim(
            region, db, snapshot_period=10.0, times=slow, n_servers=1
        ).run(40.0)
        sixteen = make_sim(
            region, db, snapshot_period=10.0, times=slow, n_servers=16
        ).run(40.0)
        assert max(sixteen.queue_delays) < max(one.queue_delays)
        assert sixteen.latency_percentile(99) < one.latency_percentile(99)

    def test_server_count_validated(self, region, db):
        with pytest.raises(WorkloadError):
            make_sim(region, db, n_servers=0)

    def test_zero_repair_time_means_no_queueing(self, region, db):
        fast = ServiceTimes(reanonymization=0.0)
        report = make_sim(region, db, times=fast).run(30.0)
        assert max(report.queue_delays, default=0.0) == 0.0

    def test_summary_renders(self, region, db):
        report = make_sim(region, db).run(10.0)
        text = report.summary()
        assert "req/s" in text and "ms" in text

    def test_privacy_preserved_throughout(self, region, db):
        sim = make_sim(region, db)
        sim.run(60.0)
        # After all the snapshot churn the live policy still honours k.
        assert sim.anonymizer.policy.min_group_size() >= 10


class TestPerRungSLOs:
    def test_all_served_on_fresh_without_faults(self, region, db):
        report = make_sim(region, db).run(30.0)
        assert set(report.latencies_by_rung) == {"fresh"}
        assert report.served_by_rung["fresh"] == report.served

    def test_rungs_partition_served_requests(self, region, db):
        from repro.robustness.faults import FaultInjector, FaultPlan, FaultRule

        plan = FaultPlan(
            rules=(
                FaultRule(site="repair", kind="error", match="2"),
                FaultRule(site="coarsen", kind="error", probability=0.1),
            ),
            seed=5,
        )
        sim = make_sim(
            region, db, injector=FaultInjector(plan), max_stale_snapshots=2
        )
        report = sim.run(120.0)
        assert sum(report.served_by_rung.values()) == report.served
        assert report.served == len(report.latencies)
        assert report.served_by_rung.get("stale", 0) == report.stale_served
        # Snapshot 2's repair fails, so its window is stale and the next
        # successful repair opens a recovered window.
        assert report.served_by_rung.get("stale", 0) > 0
        assert report.served_by_rung.get("recovered", 0) > 0
        assert report.served_by_rung.get("coarsened", 0) > 0

    def test_rung_percentiles_and_summary(self, region, db):
        report = make_sim(region, db).run(30.0)
        p50 = report.rung_latency_percentile("fresh", 50)
        p99 = report.rung_latency_percentile("fresh", 99)
        assert 0.0 < p50 <= p99
        assert report.rung_mean_latency("fresh") > 0.0
        # Absent rungs report zero, not an error.
        assert report.rung_latency_percentile("stale", 99) == 0.0
        assert "fresh:" in report.slo_summary()


class TestProcessRestart:
    def test_restart_params_validated(self, region, db):
        with pytest.raises(WorkloadError):
            make_sim(region, db, restart_blackout=-1.0)
        with pytest.raises(WorkloadError):
            make_sim(region, db, restart_at=(0.0,))

    def test_restart_blacks_out_and_recovers(self, region, db):
        blackout = 0.8
        sim = make_sim(
            region, db, restart_at=(10.0,), restart_blackout=blackout
        )
        report = sim.run(20.0)
        assert report.restarts == 1
        assert report.restart_seconds == pytest.approx(blackout)
        # Arrivals inside the blackout queue for it: the worst queueing
        # delay approaches the full restore latency.
        assert max(report.queue_delays) > blackout * 0.5
        # The post-restore window serves on the recovered rung until the
        # next snapshot repair — never silently relabelled "fresh".
        assert report.served_by_rung.get("recovered", 0) > 0
        assert "restarts: 1" in report.slo_summary()

    def test_restart_is_deterministic(self, region, db):
        kwargs = dict(restart_at=(5.0, 12.0), restart_blackout=0.3, seed=3)
        a = make_sim(region, db, **kwargs).run(30.0)
        b = make_sim(region, db, **kwargs).run(30.0)
        assert a.restarts == b.restarts == 2
        assert a.latencies == b.latencies
        assert a.served_by_rung == b.served_by_rung

    def test_restart_loses_the_cache(self, region, db):
        calm = make_sim(region, db, snapshot_period=100.0).run(30.0)
        restarted = make_sim(
            region,
            db,
            snapshot_period=100.0,
            restart_at=(10.0, 20.0),
            restart_blackout=0.0,
        ).run(30.0)
        # Same workload, but the restart dropped the warm answer cache
        # twice — the provider absorbs the re-fills.
        assert restarted.lbs_queries > calm.lbs_queries

    def test_snapshot_repair_closes_recovered_window(self, region, db):
        sim = make_sim(
            region,
            db,
            snapshot_period=10.0,
            restart_at=(11.0,),
            restart_blackout=0.2,
        )
        report = sim.run(40.0)
        # Only the restart's own window (t∈[11, 20)) is recovered; the
        # repairs at 20/30 restore fresh serving.
        assert report.served_by_rung.get("recovered", 0) > 0
        assert report.served_by_rung.get("fresh", 0) > 0


class TestGatewaySimulation:
    """The virtual-time twin of the async gateway."""

    REGION = Rect(0, 0, 4096, 4096)
    K = 8

    def make(self, n_users=200, seed=5):
        from repro.lbs.pipeline import CSP
        from repro.lbs.poi import generate_pois
        from repro.lbs.provider import LBSProvider

        db = uniform_users(n_users, self.REGION, seed=seed)
        provider = LBSProvider(
            generate_pois(
                self.REGION,
                {"rest": 40, "groc": 30, "cinema": 10},
                seed=3,
            )
        )
        return CSP(self.REGION, self.K, db, provider)

    def times(self):
        return ServiceTimes(
            cloak_lookup=0.00005, lbs_query=0.00005, cache_lookup=0.00002
        )

    def test_schedule_is_deterministic(self):
        from repro.lbs import poisson_schedule

        users = ["u%d" % i for i in range(20)]
        a = poisson_schedule(users, 2.0, 5.0, seed=9)
        b = poisson_schedule(users, 2.0, 5.0, seed=9)
        assert a == b
        assert all(t < 5.0 for t, __, ___ in a)
        with pytest.raises(WorkloadError):
            poisson_schedule([], 2.0, 5.0)
        with pytest.raises(WorkloadError):
            poisson_schedule(users, 0.0, 5.0)

    def test_run_is_deterministic(self):
        from repro.lbs import GatewaySimulation, poisson_schedule
        from repro.serving.gateway import GatewayConfig

        csp = self.make()
        schedule = poisson_schedule(
            csp.anonymizer.current_db.user_ids(), 6.0, 1.0, seed=11
        )
        config = GatewayConfig(
            queue_high_water=8, rtt=0.03, max_wait=0.005,
            max_batch=8, pool_size=2,
        )
        first = GatewaySimulation(csp.policy, config, times=self.times()).run(
            schedule
        )
        second = GatewaySimulation(csp.policy, config, times=self.times()).run(
            schedule
        )
        assert first.served == second.served
        assert first.shed_by_cause == second.shed_by_cause
        assert first.latencies == second.latencies

    def test_accounting_balances(self):
        from repro.lbs import GatewaySimulation, poisson_schedule
        from repro.serving.gateway import GatewayConfig

        csp = self.make()
        schedule = poisson_schedule(
            csp.anonymizer.current_db.user_ids(), 6.0, 1.0, seed=12
        )
        config = GatewayConfig(
            queue_high_water=8, rtt=0.03, max_wait=0.005,
            max_batch=8, pool_size=2,
        )
        report = GatewaySimulation(
            csp.policy, config, times=self.times()
        ).run(schedule)
        assert report.submitted == len(schedule)
        assert (
            report.submitted
            == report.served
            + report.shed
            + report.throttled
            + report.errors
        )
        assert report.shed == (
            report.shed_high_water
            + report.shed_adaptive
            + report.shed_breaker
        )
        # Coalescing/caching amortize: fewer provider queries than serves.
        assert 0 < report.provider_queries < report.served
        assert report.provider_rounds <= report.provider_queries
        assert len(report.latencies) == report.served
        assert "shed" in report.slo_summary()
        assert report.queue_depth_high_water >= 1
        assert "queue depth high-water" in report.slo_summary()

    def test_token_bucket_throttles_chatty_user(self):
        from repro.lbs import GatewaySimulation
        from repro.serving.gateway import GatewayConfig

        csp = self.make()
        user = csp.anonymizer.current_db.user_ids()[0]
        # One user fires 40 requests in 40 ms against a 4-token bucket.
        schedule = [(0.001 * i, user, "rest") for i in range(40)]
        config = GatewayConfig(
            queue_high_water=1024,
            max_inflight=1024,
            rate_per_user=1.0,
            burst_per_user=4.0,
            rtt=0.01,
            max_wait=0.001,
        )
        report = GatewaySimulation(
            csp.policy, config, times=self.times()
        ).run(schedule)
        assert report.throttled >= 30
        assert report.shed_by_cause["throttle"] == report.throttled

    def test_des_within_15pct_of_live_gateway(self):
        """The acceptance cross-validation: replay one Poisson schedule
        through the DES and the real event-loop gateway at three
        operating points; the predicted shed rate must land within 15%
        of the measured rate on at least two of them (one point may be
        lost to wall-clock jitter on a loaded host)."""
        from repro.lbs import GatewaySimulation, poisson_schedule
        from repro.serving.gateway import (
            GatewayConfig,
            run_gateway_scheduled,
        )

        csp = self.make()
        users = csp.anonymizer.current_db.user_ids()
        schedule = poisson_schedule(users, 8.0, 2.0, seed=7)
        points = [
            GatewayConfig(
                queue_high_water=8, max_inflight=64, rtt=rtt,
                max_wait=max_wait, max_batch=8, pool_size=2,
            )
            for rtt, max_wait in ((0.03, 0.005), (0.05, 0.008), (0.06, 0.01))
        ]
        within = 0
        observed = []
        for config in points:
            predicted = GatewaySimulation(
                csp.policy, config, times=self.times()
            ).run(schedule)
            live_csp = self.make()
            live_schedule = [
                (t, user, [("poi", cat)]) for t, user, cat in schedule
            ]
            __, stats = run_gateway_scheduled(
                live_csp, live_schedule, config
            )
            measured = (stats.shed + stats.throttled) / stats.submitted
            assert measured > 0.0, "operating point must actually shed"
            error = abs(predicted.shed_rate - measured) / measured
            observed.append((config.rtt, predicted.shed_rate, measured, error))
            if error <= 0.15:
                within += 1
        assert within >= 2, f"DES disagreed with the live gateway: {observed}"
