"""Adversarial / wrong-usage tests: the library must fail loudly and
specifically when its contracts are violated, never silently corrupt a
privacy guarantee."""

import pytest

from repro import (
    ConfigurationError,
    LocationDatabase,
    Point,
    PolicyError,
    Rect,
    TreeError,
)
from repro.core.binary_dp import solve
from repro.core.configuration import (
    Configuration,
    configuration_of_policy,
    policy_from_configuration,
)
from repro.core.requests import ServiceRequest
from repro.data import uniform_users
from repro.trees import BinaryTree


@pytest.fixture
def region():
    return Rect(0, 0, 256, 256)


@pytest.fixture
def db(region):
    return uniform_users(60, region, seed=291)


class TestWrongSnapshotUsage:
    def test_policy_rejects_request_from_other_snapshot(self, region, db):
        policy = solve(BinaryTree.build(region, db, 5), 5).policy()
        uid = db.user_ids()[0]
        moved = db.with_moves({uid: Point(1.0, 1.0)})
        stale = ServiceRequest(uid, moved.location_of(uid))
        with pytest.raises(PolicyError, match="not valid"):
            policy.anonymize(stale)

    def test_policy_rejects_foreign_user(self, region, db):
        policy = solve(BinaryTree.build(region, db, 5), 5).policy()
        intruder = ServiceRequest("intruder", Point(10, 10))
        with pytest.raises(PolicyError):
            policy.anonymize(intruder)


class TestCrossTreeConfusion:
    def test_configuration_from_wrong_tree(self, region, db):
        tree_a = BinaryTree.build(region, db, 5)
        other_db = uniform_users(60, region, seed=292)
        tree_b = BinaryTree.build(region, other_db, 5)
        policy_b = solve(tree_b, 5).policy()
        # Reading policy B's cloaks against tree A must either map to
        # node rects (possible — same region grid) or fail; what it must
        # NOT do is produce a negative/invalid configuration silently.
        try:
            config = configuration_of_policy(tree_a, policy_b)
        except (ConfigurationError, PolicyError):
            return
        config.validate()

    def test_configuration_value_for_foreign_node(self, region, db):
        tree = BinaryTree.build(region, db, 5)
        config = solve(tree, 5).configuration()
        with pytest.raises(ConfigurationError, match="no value"):
            config[999_999]


class TestDegenerateGeometry:
    def test_all_users_on_one_point(self, region):
        db = LocationDatabase([(f"u{i}", 128.0, 128.0) for i in range(40)])
        tree = BinaryTree.build(region, db, 10, max_depth=12)
        policy = solve(tree, 10).policy()
        assert policy.min_group_size() >= 10
        # The shared cloak is the max-depth cell around the point.
        assert policy.cloak_for("u0").contains(Point(128, 128))

    def test_users_on_the_map_corner(self, region):
        db = LocationDatabase(
            [(f"c{i}", 0.0, 0.0) for i in range(5)]
            + [(f"f{i}", 256.0, 256.0) for i in range(5)]
        )
        tree = BinaryTree.build(region, db, 5, max_depth=10)
        policy = solve(tree, 5).policy()
        assert policy.min_group_size() >= 5

    def test_user_exactly_on_every_split_line(self, region):
        # The map center lies on split lines at every level.
        db = LocationDatabase(
            [("center", 128.0, 128.0)]
            + [(f"u{i}", float(10 + i), 10.0) for i in range(9)]
        )
        tree = BinaryTree.build(region, db, 3, max_depth=10)
        tree.check_invariants()
        policy = solve(tree, 3).policy()
        assert policy.cloak_for("center").contains(Point(128, 128))


class TestMutationAfterExtraction:
    def test_policy_survives_tree_moves(self, region, db):
        """A policy extracted for snapshot t keeps serving snapshot-t
        requests even after the tree advanced to t+1 (the CSP may pin
        the old policy while the new one is being computed)."""
        tree = BinaryTree.build(region, db, 5)
        solution = solve(tree, 5)
        policy = solution.policy()
        uid = db.user_ids()[0]
        old_location = db.location_of(uid)
        tree.apply_moves({uid: Point(255, 255)})
        # The extracted policy still validates against the *old* db.
        request = ServiceRequest(uid, old_location)
        ar = policy.anonymize(request)
        assert ar.cloak.contains(old_location)

    def test_fresh_extraction_after_moves_needs_repair(self, region, db):
        """Extracting from a stale solution after the tree moved is a
        contract violation the library must not satisfy silently."""
        from repro import ReproError
        from repro.core.binary_dp import resolve_dirty

        tree = BinaryTree.build(region, db, 5)
        solution = solve(tree, 5)
        dirty = tree.apply_moves(
            {db.user_ids()[0]: Point(255.0, 255.0)}
        )
        repaired, __ = resolve_dirty(solution, dirty)
        policy = repaired.policy()  # repaired solution is fine
        assert policy.min_group_size() >= 5
