"""Run the doctest examples embedded in module docstrings."""

import doctest

import pytest

import repro.baselines.pir
import repro.core.geometry
import repro.core.requests
import repro.experiments.calibration

MODULES = [
    repro.core.geometry,
    repro.core.requests,
    repro.experiments.calibration,
    repro.baselines.pir,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0


def test_docstring_examples_exist_somewhere():
    """At least the curated modules actually carry runnable examples."""
    total = sum(
        doctest.testmod(module, verbose=False).attempted for module in MODULES
    )
    assert total >= 6
