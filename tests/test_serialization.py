"""Tests for policy / location-database persistence."""

import io
import json

import pytest

from repro import LocationDatabase, PolicyError, Rect, ReproError
from repro.core.binary_dp import solve
from repro.core.geometry import Circle, Point
from repro.core.policy import CloakingPolicy
from repro.core.serialization import (
    atomic_write_bytes,
    atomic_write_json,
    canonical_dumps,
    checksum_of,
    file_checksum,
    load_policy,
    policy_from_dict,
    policy_to_dict,
    read_locations_csv,
    save_policy,
    write_locations_csv,
)
from repro.data import uniform_users
from repro.trees import BinaryTree


@pytest.fixture
def region():
    return Rect(0, 0, 512, 512)


@pytest.fixture
def policy(region):
    db = uniform_users(80, region, seed=181)
    return solve(BinaryTree.build(region, db, 8), 8).policy()


class TestPolicyRoundTrip:
    def test_dict_round_trip(self, policy):
        rebuilt = policy_from_dict(policy_to_dict(policy))
        assert rebuilt.name == policy.name
        assert len(rebuilt) == len(policy)
        for uid, region in policy.items():
            assert rebuilt.cloak_for(uid) == region
            assert rebuilt.db.location_of(uid) == policy.db.location_of(uid)

    def test_file_round_trip(self, policy, tmp_path):
        path = tmp_path / "policy.json"
        save_policy(policy, str(path))
        rebuilt = load_policy(str(path))
        assert rebuilt.cost() == pytest.approx(policy.cost())
        assert rebuilt.min_group_size() == policy.min_group_size()

    def test_circle_cloaks_round_trip(self):
        db = LocationDatabase([("a", 1, 1), ("b", 2, 2)])
        circle = Circle(Point(0, 0), 5)
        policy = CloakingPolicy({"a": circle, "b": circle}, db)
        rebuilt = policy_from_dict(policy_to_dict(policy))
        assert rebuilt.cloak_for("a") == circle

    def test_format_validated(self):
        with pytest.raises(ReproError, match="format"):
            policy_from_dict({"format": "something-else"})

    def test_version_validated(self, policy):
        data = policy_to_dict(policy)
        data["version"] = 99
        with pytest.raises(ReproError, match="version"):
            policy_from_dict(data)

    def test_tampered_file_rejected_by_masking_check(self, policy, tmp_path):
        """A corrupted cloak that no longer covers its user must not
        load — the masking invariant re-validates on load."""
        data = policy_to_dict(policy)
        data["users"][0]["cloak"] = {
            "type": "rect", "x1": 1000, "y1": 1000, "x2": 1001, "y2": 1001,
        }
        with pytest.raises(PolicyError, match="not masking"):
            policy_from_dict(data)

    def test_unknown_cloak_type(self, policy):
        data = policy_to_dict(policy)
        data["users"][0]["cloak"] = {"type": "hexagon"}
        with pytest.raises(ReproError, match="unknown cloak type"):
            policy_from_dict(data)

    def test_json_is_stable(self, policy, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        save_policy(policy, str(a))
        save_policy(policy, str(b))
        assert a.read_text() == b.read_text()


class TestCrashConsistentPrimitives:
    def test_canonical_dumps_is_order_insensitive(self):
        assert canonical_dumps({"b": 1, "a": [2, 3]}) == canonical_dumps(
            {"a": [2, 3], "b": 1}
        )
        assert canonical_dumps({"a": 1}) == '{"a":1}'

    def test_checksum_agrees_across_processes_logically(self):
        doc = {"serial": 3, "users": ["a", "b"]}
        assert checksum_of(doc) == checksum_of(dict(reversed(doc.items())))
        assert checksum_of(doc) != checksum_of({"serial": 4, "users": ["a", "b"]})

    def test_atomic_write_bytes_replaces_whole_file(self, tmp_path):
        path = tmp_path / "blob.bin"
        atomic_write_bytes(str(path), b"first version")
        atomic_write_bytes(str(path), b"second")
        assert path.read_bytes() == b"second"
        # No temp-file droppings survive the rename.
        assert [p.name for p in tmp_path.iterdir()] == ["blob.bin"]

    def test_atomic_write_json_returns_content_checksum(self, tmp_path):
        path = tmp_path / "doc.json"
        doc = {"k": 5, "region": [0, 0, 512, 512]}
        digest = atomic_write_json(str(path), doc)
        assert digest == checksum_of(doc)
        assert json.loads(path.read_text()) == doc
        assert file_checksum(str(path)) == checksum_of(doc)

    def test_file_checksum_detects_bit_flip(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(str(path), {"a": 1})
        before = file_checksum(str(path))
        raw = bytearray(path.read_bytes())
        raw[0] ^= 0x01
        path.write_bytes(bytes(raw))
        assert file_checksum(str(path)) != before


class TestLocationCsv:
    def test_round_trip(self, region, tmp_path):
        db = uniform_users(30, region, seed=182)
        path = tmp_path / "locs.csv"
        write_locations_csv(db, str(path))
        rebuilt = read_locations_csv(str(path))
        assert rebuilt.user_ids() == db.user_ids()
        for uid in db.user_ids():
            assert rebuilt.location_of(uid) == db.location_of(uid)

    def test_stream_round_trip(self, region):
        db = uniform_users(10, region, seed=183)
        buffer = io.StringIO()
        write_locations_csv(db, buffer)
        buffer.seek(0)
        rebuilt = read_locations_csv(buffer)
        assert len(rebuilt) == 10

    def test_header_required(self):
        with pytest.raises(ReproError, match="header"):
            read_locations_csv(io.StringIO("a,1,2\n"))

    def test_malformed_row(self):
        source = io.StringIO("userid,locx,locy\nu1,1\n")
        with pytest.raises(ReproError, match="malformed"):
            read_locations_csv(source)

    def test_non_numeric_coordinate(self):
        source = io.StringIO("userid,locx,locy\nu1,one,2\n")
        with pytest.raises(ReproError, match="non-numeric"):
            read_locations_csv(source)

    def test_blank_lines_skipped(self):
        source = io.StringIO("userid,locx,locy\nu1,1,2\n\nu2,3,4\n")
        assert len(read_locations_csv(source)) == 2
