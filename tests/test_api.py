"""API-surface tests: exports, error hierarchy, version."""

import importlib

import pytest

import repro
from repro.core import errors


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError), name

    def test_breach_error_carries_users(self):
        err = errors.AnonymityBreachError("boom", breached_users=["a", "b"])
        assert err.breached_users == ("a", "b")

    def test_breach_error_defaults(self):
        assert errors.AnonymityBreachError("boom").breached_users == ()


@pytest.mark.parametrize(
    "module_name",
    [
        "repro",
        "repro.core",
        "repro.trees",
        "repro.lbs",
        "repro.baselines",
        "repro.attacks",
        "repro.data",
        "repro.parallel",
        "repro.experiments",
    ],
)
class TestExports:
    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__")
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_all_sorted_unique(self, module_name):
        module = importlib.import_module(module_name)
        assert len(module.__all__) == len(set(module.__all__))


class TestVersion:
    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)
