"""Crash-consistent snapshot store and CSP kill-and-restart recovery."""

import os

import pytest

from repro import Rect
from repro.attacks.audit import audit_policy
from repro.core.binary_dp import solve
from repro.core.errors import RecoveryError
from repro.data import uniform_users
from repro.lbs.mobility import random_moves
from repro.lbs.pipeline import CSP
from repro.lbs.poi import generate_pois
from repro.lbs.provider import LBSProvider
from repro.robustness.recovery import PolicyJournal
from repro.trees import BinaryTree

REGION = Rect(0, 0, 1024, 1024)
K = 5
FINGERPRINT = {"engine": "object", "k": K}


@pytest.fixture
def provider():
    return LBSProvider(generate_pois(REGION, {"rest": 25}, seed=3))


@pytest.fixture
def journal(tmp_path):
    return PolicyJournal(str(tmp_path / "journal"))


def build_policy(seed=42, n=60):
    db = uniform_users(n, REGION, seed=seed)
    return solve(BinaryTree.build(REGION, db, K), K).policy()


def churn(csp, rounds=2, fraction=0.15, seed=100):
    """Advance the CSP through ``rounds`` snapshots of real movement."""
    for index in range(rounds):
        moves = random_moves(
            csp.anonymizer.current_db,
            fraction,
            REGION,
            max_distance=120.0,
            seed=seed + index,
        )
        csp.advance_snapshot(moves)


def assert_bit_identical(a, b):
    assert len(a) == len(b)
    for uid, cloak in a.items():
        assert b.cloak_for(uid) == cloak


class TestPolicyJournal:
    def test_commit_recover_round_trip(self, journal):
        policy = build_policy()
        journal.commit(policy, 0, FINGERPRINT)
        snapshot = journal.recover()
        assert snapshot.serial == 0
        assert snapshot.fingerprint == FINGERPRINT
        assert not snapshot.torn_tail
        assert_bit_identical(policy, snapshot.policy)

    def test_latest_committed_serial_wins(self, journal):
        journal.commit(build_policy(seed=1), 0, FINGERPRINT)
        journal.commit(build_policy(seed=2), 1, FINGERPRINT)
        assert journal.committed_serials() == [0, 1]
        assert journal.latest_serial() == 1
        assert journal.recover().serial == 1

    def test_no_journal_is_empty(self, journal):
        with pytest.raises(RecoveryError) as err:
            journal.recover()
        assert err.value.reason == "empty"

    def test_fingerprint_mismatch_fails_closed(self, journal):
        journal.commit(build_policy(), 0, FINGERPRINT)
        with pytest.raises(RecoveryError) as err:
            journal.recover(fingerprint={"engine": "object", "k": K + 1})
        assert err.value.reason == "fingerprint"

    def test_stale_db_serial_fails_closed(self, journal):
        journal.commit(build_policy(), 3, FINGERPRINT)
        with pytest.raises(RecoveryError) as err:
            journal.recover(current_serial=6, max_stale_snapshots=1)
        assert err.value.reason == "stale"
        # Within the bound the same snapshot is admissible.
        assert journal.recover(
            current_serial=4, max_stale_snapshots=1
        ).serial == 3

    def test_torn_tail_recovers_previous_commit(self, journal):
        journal.commit(build_policy(seed=1), 0, FINGERPRINT)
        journal.commit(build_policy(seed=2), 1, FINGERPRINT)
        # Crash mid-append: an intent with no commit, then a torn line.
        journal._append({"op": "intent", "serial": 2, "file": "x", "checksum": "y"})
        with open(journal._journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"op": "comm')  # no newline — torn
        snapshot = journal.recover()
        assert snapshot.serial == 1
        assert snapshot.torn_tail

    def test_mid_history_corruption_fails_closed(self, journal):
        journal.commit(build_policy(seed=1), 0, FINGERPRINT)
        journal.commit(build_policy(seed=2), 1, FINGERPRINT)
        with open(journal._journal_path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        lines[0] = lines[0][: len(lines[0]) // 2]  # truncated mid-history
        with open(journal._journal_path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(RecoveryError) as err:
            journal.recover()
        assert err.value.reason == "corrupt"

    def test_commit_without_intent_fails_closed(self, journal):
        journal.commit(build_policy(), 0, FINGERPRINT)
        journal._append({"op": "commit", "serial": 99})
        with pytest.raises(RecoveryError) as err:
            journal.recover()
        assert err.value.reason == "corrupt"

    def test_bit_flipped_snapshot_fails_closed(self, journal):
        journal.commit(build_policy(), 0, FINGERPRINT)
        path = os.path.join(journal.root, journal._snapshot_file(0))
        raw = bytearray(open(path, "rb").read())
        raw[len(raw) // 2] ^= 0x01
        with open(path, "wb") as handle:
            handle.write(bytes(raw))
        with pytest.raises(RecoveryError) as err:
            journal.recover()
        assert err.value.reason == "corrupt"

    def test_truncated_snapshot_fails_closed(self, journal):
        journal.commit(build_policy(), 0, FINGERPRINT)
        path = os.path.join(journal.root, journal._snapshot_file(0))
        raw = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(raw[: len(raw) // 2])
        with pytest.raises(RecoveryError) as err:
            journal.recover()
        assert err.value.reason == "corrupt"

    def test_missing_snapshot_file_fails_closed(self, journal):
        journal.commit(build_policy(), 0, FINGERPRINT)
        os.remove(os.path.join(journal.root, journal._snapshot_file(0)))
        with pytest.raises(RecoveryError) as err:
            journal.recover()
        assert err.value.reason == "corrupt"


class TestJournalRetention:
    def test_keep_last_must_be_positive(self, tmp_path):
        with pytest.raises(RecoveryError) as err:
            PolicyJournal(str(tmp_path / "j"), keep_last=0)
        assert err.value.reason == "corrupt"

    def test_commit_prunes_to_newest_serials(self, tmp_path):
        journal = PolicyJournal(str(tmp_path / "j"), keep_last=2)
        policies = {s: build_policy(seed=s) for s in range(5)}
        for serial, policy in policies.items():
            journal.commit(policy, serial, FINGERPRINT)
        assert journal.committed_serials() == [3, 4]
        for serial in range(3):
            path = os.path.join(journal.root, journal._snapshot_file(serial))
            assert not os.path.exists(path)
        snapshot = journal.recover()
        assert snapshot.serial == 4
        assert_bit_identical(policies[4], snapshot.policy)

    def test_compaction_bounds_log_length(self, tmp_path):
        journal = PolicyJournal(str(tmp_path / "j"), keep_last=1)
        for serial in range(6):
            journal.commit(build_policy(seed=serial), serial, FINGERPRINT)
        with open(journal._journal_path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        # One intent + one commit for the single surviving serial, plus
        # the just-appended pair before the post-commit prune rewrote it.
        assert len(lines) == 2
        assert journal.recover().serial == 5

    def test_explicit_prune_reports_dropped(self, journal):
        for serial in range(4):
            journal.commit(build_policy(seed=serial), serial, FINGERPRINT)
        assert journal.prune(2) == (0, 1)
        assert journal.prune(2) == ()  # idempotent
        assert journal.committed_serials() == [2, 3]

    def test_restore_after_prune_succeeds(self, provider, tmp_path):
        journal = PolicyJournal(str(tmp_path / "j"), keep_last=1)
        db = uniform_users(90, REGION, seed=11)
        csp = CSP(REGION, K, db, provider, journal=journal)
        churn(csp, rounds=3)
        expected = {uid: cloak for uid, cloak in csp.policy.items()}
        del csp

        assert len(journal.committed_serials()) == 1
        restored = CSP.restore(provider, journal)
        assert restored.restored
        for uid, cloak in expected.items():
            assert restored.policy.cloak_for(uid) == cloak

    def test_over_pruned_restore_fails_closed(self, tmp_path):
        journal = PolicyJournal(str(tmp_path / "j"), keep_last=1)
        for serial in range(3):
            journal.commit(build_policy(seed=serial), serial, FINGERPRINT)
        # Simulate an over-aggressive prune that also removed the one
        # snapshot the compacted log still references.
        os.remove(os.path.join(journal.root, journal._snapshot_file(2)))
        with pytest.raises(RecoveryError) as err:
            journal.recover()
        assert err.value.reason == "corrupt"

    def test_prune_removes_dp_sidecars(self, provider, tmp_path):
        journal = PolicyJournal(str(tmp_path / "j"), keep_last=1)
        db = uniform_users(90, REGION, seed=11)
        csp = CSP(REGION, K, db, provider, journal=journal)
        churn(csp, rounds=3)
        kept = journal.committed_serials()
        assert len(kept) == 1
        npz = [f for f in os.listdir(journal.root) if f.endswith(".npz")]
        assert npz == [journal._sidecar_file(kept[0])]
        # The surviving sidecar still enables a warm restore.
        del csp
        assert CSP.restore(provider, journal).anonymizer.solution is not None

    def test_stale_bound_still_enforced_after_prune(self, tmp_path):
        journal = PolicyJournal(str(tmp_path / "j"), keep_last=1)
        journal.commit(build_policy(seed=0), 0, FINGERPRINT)
        journal.commit(build_policy(seed=1), 1, FINGERPRINT)
        with pytest.raises(RecoveryError) as err:
            journal.recover(current_serial=4, max_stale_snapshots=1)
        assert err.value.reason == "stale"


class TestCSPRestart:
    def make_csp(self, provider, journal, n_users=90, seed=11):
        db = uniform_users(n_users, REGION, seed=seed)
        return CSP(REGION, K, db, provider, journal=journal)

    def test_kill_and_restart_bit_identical(self, provider, journal):
        csp = self.make_csp(provider, journal)
        churn(csp, rounds=2)
        expected = {uid: cloak for uid, cloak in csp.policy.items()}
        user = sorted(expected)[0]
        del csp  # the "kill": only the journal survives

        restored = CSP.restore(provider, journal)
        assert restored.restored
        assert len(restored.policy) == len(expected)
        for uid, cloak in expected.items():
            assert restored.policy.cloak_for(uid) == cloak
        served = restored.request(user, [("poi", "rest")])
        assert served.degradation == "recovered"
        assert served.anonymized.cloak == expected[user]

    def test_restart_is_warm_and_repairs_forward(self, provider, journal):
        csp = self.make_csp(provider, journal)
        churn(csp, rounds=2)
        del csp

        restored = CSP.restore(provider, journal)
        # The DP sidecar validated: repairs go through resolve_dirty
        # instead of a bulk re-solve.
        assert restored.anonymizer.solution is not None
        moves = random_moves(
            restored.anonymizer.current_db,
            0.05,
            REGION,
            max_distance=80.0,
            seed=7,
        )
        report = restored.advance_snapshot(moves)
        assert report.applied
        assert 0 < report.recomputed_nodes < report.total_nodes
        assert not restored.restored
        user = restored.anonymizer.current_db.user_ids()[0]
        assert restored.request(user, [("poi", "rest")]).degradation == "fresh"
        audit = audit_policy(restored.effective_policy, K)
        assert audit.policy_aware_level >= K

    def test_cold_restore_still_serves(self, provider, journal):
        csp = self.make_csp(provider, journal)
        churn(csp, rounds=1)
        expected = {uid: cloak for uid, cloak in csp.policy.items()}
        serial = csp._snapshot_index
        del csp
        # Corrupt the DP sidecar: restore must fall back cold, never fail.
        sidecar = os.path.join(journal.root, journal._sidecar_file(serial))
        raw = bytearray(open(sidecar, "rb").read())
        raw[len(raw) // 2] ^= 0xFF
        with open(sidecar, "wb") as handle:
            handle.write(bytes(raw))

        restored = CSP.restore(provider, journal)
        assert restored.anonymizer.solution is None  # cold
        for uid, cloak in expected.items():
            assert restored.policy.cloak_for(uid) == cloak
        moves = random_moves(
            restored.anonymizer.current_db,
            0.05,
            REGION,
            max_distance=80.0,
            seed=9,
        )
        assert restored.advance_snapshot(moves).applied
        assert audit_policy(
            restored.effective_policy, K
        ).policy_aware_level >= K

    def test_restore_too_stale_rejected(self, provider, journal):
        csp = self.make_csp(provider, journal)
        churn(csp, rounds=1)
        serial = csp._snapshot_index
        del csp
        with pytest.raises(RecoveryError) as err:
            CSP.restore(
                provider,
                journal,
                current_serial=serial + 3,
                max_stale_snapshots=1,
            )
        assert err.value.reason == "stale"

    def test_restore_within_stale_bound_serves_stale(self, provider, journal):
        csp = self.make_csp(provider, journal)
        churn(csp, rounds=1)
        serial = csp._snapshot_index
        user = csp.anonymizer.current_db.user_ids()[0]
        del csp
        restored = CSP.restore(
            provider,
            journal,
            current_serial=serial + 1,
            max_stale_snapshots=1,
        )
        assert restored.policy_age == 1
        assert restored.request(user, [("poi", "rest")]).degradation == "stale"

    def test_measured_restore_latency_replays_in_des(self, provider, journal):
        """Close the loop: time a real journal restore, then replay that
        latency as a DES process-restart blackout and read the cost off
        the per-rung SLO report."""
        import time as _time

        from repro.lbs.simulation import LBSSimulation

        csp = self.make_csp(provider, journal)
        churn(csp, rounds=1)
        del csp
        start = _time.perf_counter()
        restored = CSP.restore(provider, journal)
        measured = _time.perf_counter() - start
        assert restored.restored and measured > 0.0

        sim = LBSSimulation(
            REGION,
            uniform_users(90, REGION, seed=11),
            K,
            request_rate_per_user=0.5,
            snapshot_period=20.0,
            seed=13,
            restart_at=(7.0,),
            restart_blackout=measured,
        )
        report = sim.run(15.0)
        assert report.restarts == 1
        assert report.restart_seconds == pytest.approx(measured)
        assert report.served_by_rung.get("recovered", 0) > 0
        assert "restarts: 1" in report.slo_summary()
        # The blackout is visible as queueing, bounded by the restore.
        assert max(report.queue_delays) <= measured + 1e-9
