"""Crash-consistent snapshot store and CSP kill-and-restart recovery."""

import os

import pytest

from repro import Rect
from repro.attacks.audit import audit_policy
from repro.core.binary_dp import solve
from repro.core.errors import RecoveryError
from repro.data import uniform_users
from repro.lbs.mobility import random_moves
from repro.lbs.pipeline import CSP
from repro.lbs.poi import generate_pois
from repro.lbs.provider import LBSProvider
from repro.robustness.chaos import ReplicaKillPlan, destroy_replica
from repro.robustness.recovery import PolicyJournal, QuorumJournal
from repro.trees import BinaryTree

REGION = Rect(0, 0, 1024, 1024)
K = 5
FINGERPRINT = {"engine": "object", "k": K}


@pytest.fixture
def provider():
    return LBSProvider(generate_pois(REGION, {"rest": 25}, seed=3))


@pytest.fixture
def journal(tmp_path):
    return PolicyJournal(str(tmp_path / "journal"))


def build_policy(seed=42, n=60):
    db = uniform_users(n, REGION, seed=seed)
    return solve(BinaryTree.build(REGION, db, K), K).policy()


def churn(csp, rounds=2, fraction=0.15, seed=100):
    """Advance the CSP through ``rounds`` snapshots of real movement."""
    for index in range(rounds):
        moves = random_moves(
            csp.anonymizer.current_db,
            fraction,
            REGION,
            max_distance=120.0,
            seed=seed + index,
        )
        csp.advance_snapshot(moves)


def assert_bit_identical(a, b):
    assert len(a) == len(b)
    for uid, cloak in a.items():
        assert b.cloak_for(uid) == cloak


class TestPolicyJournal:
    def test_commit_recover_round_trip(self, journal):
        policy = build_policy()
        journal.commit(policy, 0, FINGERPRINT)
        snapshot = journal.recover()
        assert snapshot.serial == 0
        assert snapshot.fingerprint == FINGERPRINT
        assert not snapshot.torn_tail
        assert_bit_identical(policy, snapshot.policy)

    def test_latest_committed_serial_wins(self, journal):
        journal.commit(build_policy(seed=1), 0, FINGERPRINT)
        journal.commit(build_policy(seed=2), 1, FINGERPRINT)
        assert journal.committed_serials() == [0, 1]
        assert journal.latest_serial() == 1
        assert journal.recover().serial == 1

    def test_no_journal_is_empty(self, journal):
        with pytest.raises(RecoveryError) as err:
            journal.recover()
        assert err.value.reason == "empty"

    def test_fingerprint_mismatch_fails_closed(self, journal):
        journal.commit(build_policy(), 0, FINGERPRINT)
        with pytest.raises(RecoveryError) as err:
            journal.recover(fingerprint={"engine": "object", "k": K + 1})
        assert err.value.reason == "fingerprint"

    def test_stale_db_serial_fails_closed(self, journal):
        journal.commit(build_policy(), 3, FINGERPRINT)
        with pytest.raises(RecoveryError) as err:
            journal.recover(current_serial=6, max_stale_snapshots=1)
        assert err.value.reason == "stale"
        # Within the bound the same snapshot is admissible.
        assert journal.recover(
            current_serial=4, max_stale_snapshots=1
        ).serial == 3

    def test_torn_tail_recovers_previous_commit(self, journal):
        journal.commit(build_policy(seed=1), 0, FINGERPRINT)
        journal.commit(build_policy(seed=2), 1, FINGERPRINT)
        # Crash mid-append: an intent with no commit, then a torn line.
        journal._append({"op": "intent", "serial": 2, "file": "x", "checksum": "y"})
        with open(journal._journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"op": "comm')  # no newline — torn
        snapshot = journal.recover()
        assert snapshot.serial == 1
        assert snapshot.torn_tail

    def test_mid_history_corruption_fails_closed(self, journal):
        journal.commit(build_policy(seed=1), 0, FINGERPRINT)
        journal.commit(build_policy(seed=2), 1, FINGERPRINT)
        with open(journal._journal_path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        lines[0] = lines[0][: len(lines[0]) // 2]  # truncated mid-history
        with open(journal._journal_path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(RecoveryError) as err:
            journal.recover()
        assert err.value.reason == "corrupt"

    def test_commit_without_intent_fails_closed(self, journal):
        journal.commit(build_policy(), 0, FINGERPRINT)
        journal._append({"op": "commit", "serial": 99})
        with pytest.raises(RecoveryError) as err:
            journal.recover()
        assert err.value.reason == "corrupt"

    def test_bit_flipped_snapshot_fails_closed(self, journal):
        journal.commit(build_policy(), 0, FINGERPRINT)
        path = os.path.join(journal.root, journal._snapshot_file(0))
        raw = bytearray(open(path, "rb").read())
        raw[len(raw) // 2] ^= 0x01
        with open(path, "wb") as handle:
            handle.write(bytes(raw))
        with pytest.raises(RecoveryError) as err:
            journal.recover()
        assert err.value.reason == "corrupt"

    def test_truncated_snapshot_fails_closed(self, journal):
        journal.commit(build_policy(), 0, FINGERPRINT)
        path = os.path.join(journal.root, journal._snapshot_file(0))
        raw = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(raw[: len(raw) // 2])
        with pytest.raises(RecoveryError) as err:
            journal.recover()
        assert err.value.reason == "corrupt"

    def test_missing_snapshot_file_fails_closed(self, journal):
        journal.commit(build_policy(), 0, FINGERPRINT)
        os.remove(os.path.join(journal.root, journal._snapshot_file(0)))
        with pytest.raises(RecoveryError) as err:
            journal.recover()
        assert err.value.reason == "corrupt"


class TestJournalRetention:
    def test_keep_last_must_be_positive(self, tmp_path):
        with pytest.raises(RecoveryError) as err:
            PolicyJournal(str(tmp_path / "j"), keep_last=0)
        assert err.value.reason == "corrupt"

    def test_commit_prunes_to_newest_serials(self, tmp_path):
        journal = PolicyJournal(str(tmp_path / "j"), keep_last=2)
        policies = {s: build_policy(seed=s) for s in range(5)}
        for serial, policy in policies.items():
            journal.commit(policy, serial, FINGERPRINT)
        assert journal.committed_serials() == [3, 4]
        for serial in range(3):
            path = os.path.join(journal.root, journal._snapshot_file(serial))
            assert not os.path.exists(path)
        snapshot = journal.recover()
        assert snapshot.serial == 4
        assert_bit_identical(policies[4], snapshot.policy)

    def test_compaction_bounds_log_length(self, tmp_path):
        journal = PolicyJournal(str(tmp_path / "j"), keep_last=1)
        for serial in range(6):
            journal.commit(build_policy(seed=serial), serial, FINGERPRINT)
        with open(journal._journal_path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        # One intent + one commit for the single surviving serial, plus
        # the just-appended pair before the post-commit prune rewrote it.
        assert len(lines) == 2
        assert journal.recover().serial == 5

    def test_explicit_prune_reports_dropped(self, journal):
        for serial in range(4):
            journal.commit(build_policy(seed=serial), serial, FINGERPRINT)
        assert journal.prune(2) == (0, 1)
        assert journal.prune(2) == ()  # idempotent
        assert journal.committed_serials() == [2, 3]

    def test_restore_after_prune_succeeds(self, provider, tmp_path):
        journal = PolicyJournal(str(tmp_path / "j"), keep_last=1)
        db = uniform_users(90, REGION, seed=11)
        csp = CSP(REGION, K, db, provider, journal=journal)
        churn(csp, rounds=3)
        expected = {uid: cloak for uid, cloak in csp.policy.items()}
        del csp

        assert len(journal.committed_serials()) == 1
        restored = CSP.restore(provider, journal)
        assert restored.restored
        for uid, cloak in expected.items():
            assert restored.policy.cloak_for(uid) == cloak

    def test_over_pruned_restore_fails_closed(self, tmp_path):
        journal = PolicyJournal(str(tmp_path / "j"), keep_last=1)
        for serial in range(3):
            journal.commit(build_policy(seed=serial), serial, FINGERPRINT)
        # Simulate an over-aggressive prune that also removed the one
        # snapshot the compacted log still references.
        os.remove(os.path.join(journal.root, journal._snapshot_file(2)))
        with pytest.raises(RecoveryError) as err:
            journal.recover()
        assert err.value.reason == "corrupt"

    def test_prune_removes_dp_sidecars(self, provider, tmp_path):
        journal = PolicyJournal(str(tmp_path / "j"), keep_last=1)
        db = uniform_users(90, REGION, seed=11)
        csp = CSP(REGION, K, db, provider, journal=journal)
        churn(csp, rounds=3)
        kept = journal.committed_serials()
        assert len(kept) == 1
        npz = [f for f in os.listdir(journal.root) if f.endswith(".npz")]
        assert npz == [journal._sidecar_file(kept[0])]
        # The surviving sidecar still enables a warm restore.
        del csp
        assert CSP.restore(provider, journal).anonymizer.solution is not None

    def test_stale_bound_still_enforced_after_prune(self, tmp_path):
        journal = PolicyJournal(str(tmp_path / "j"), keep_last=1)
        journal.commit(build_policy(seed=0), 0, FINGERPRINT)
        journal.commit(build_policy(seed=1), 1, FINGERPRINT)
        with pytest.raises(RecoveryError) as err:
            journal.recover(current_serial=4, max_stale_snapshots=1)
        assert err.value.reason == "stale"


class TestCSPRestart:
    def make_csp(self, provider, journal, n_users=90, seed=11):
        db = uniform_users(n_users, REGION, seed=seed)
        return CSP(REGION, K, db, provider, journal=journal)

    def test_kill_and_restart_bit_identical(self, provider, journal):
        csp = self.make_csp(provider, journal)
        churn(csp, rounds=2)
        expected = {uid: cloak for uid, cloak in csp.policy.items()}
        user = sorted(expected)[0]
        del csp  # the "kill": only the journal survives

        restored = CSP.restore(provider, journal)
        assert restored.restored
        assert len(restored.policy) == len(expected)
        for uid, cloak in expected.items():
            assert restored.policy.cloak_for(uid) == cloak
        served = restored.request(user, [("poi", "rest")])
        assert served.degradation == "recovered"
        assert served.anonymized.cloak == expected[user]

    def test_restart_is_warm_and_repairs_forward(self, provider, journal):
        csp = self.make_csp(provider, journal)
        churn(csp, rounds=2)
        del csp

        restored = CSP.restore(provider, journal)
        # The DP sidecar validated: repairs go through resolve_dirty
        # instead of a bulk re-solve.
        assert restored.anonymizer.solution is not None
        moves = random_moves(
            restored.anonymizer.current_db,
            0.05,
            REGION,
            max_distance=80.0,
            seed=7,
        )
        report = restored.advance_snapshot(moves)
        assert report.applied
        assert 0 < report.recomputed_nodes < report.total_nodes
        assert not restored.restored
        user = restored.anonymizer.current_db.user_ids()[0]
        assert restored.request(user, [("poi", "rest")]).degradation == "fresh"
        audit = audit_policy(restored.effective_policy, K)
        assert audit.policy_aware_level >= K

    def test_cold_restore_still_serves(self, provider, journal):
        csp = self.make_csp(provider, journal)
        churn(csp, rounds=1)
        expected = {uid: cloak for uid, cloak in csp.policy.items()}
        serial = csp._snapshot_index
        del csp
        # Corrupt the DP sidecar: restore must fall back cold, never fail.
        sidecar = os.path.join(journal.root, journal._sidecar_file(serial))
        raw = bytearray(open(sidecar, "rb").read())
        raw[len(raw) // 2] ^= 0xFF
        with open(sidecar, "wb") as handle:
            handle.write(bytes(raw))

        restored = CSP.restore(provider, journal)
        assert restored.anonymizer.solution is None  # cold
        for uid, cloak in expected.items():
            assert restored.policy.cloak_for(uid) == cloak
        moves = random_moves(
            restored.anonymizer.current_db,
            0.05,
            REGION,
            max_distance=80.0,
            seed=9,
        )
        assert restored.advance_snapshot(moves).applied
        assert audit_policy(
            restored.effective_policy, K
        ).policy_aware_level >= K

    def test_restore_too_stale_rejected(self, provider, journal):
        csp = self.make_csp(provider, journal)
        churn(csp, rounds=1)
        serial = csp._snapshot_index
        del csp
        with pytest.raises(RecoveryError) as err:
            CSP.restore(
                provider,
                journal,
                current_serial=serial + 3,
                max_stale_snapshots=1,
            )
        assert err.value.reason == "stale"

    def test_restore_within_stale_bound_serves_stale(self, provider, journal):
        csp = self.make_csp(provider, journal)
        churn(csp, rounds=1)
        serial = csp._snapshot_index
        user = csp.anonymizer.current_db.user_ids()[0]
        del csp
        restored = CSP.restore(
            provider,
            journal,
            current_serial=serial + 1,
            max_stale_snapshots=1,
        )
        assert restored.policy_age == 1
        assert restored.request(user, [("poi", "rest")]).degradation == "stale"

    def test_measured_restore_latency_replays_in_des(self, provider, journal):
        """Close the loop: time a real journal restore, then replay that
        latency as a DES process-restart blackout and read the cost off
        the per-rung SLO report."""
        import time as _time

        from repro.lbs.simulation import LBSSimulation

        csp = self.make_csp(provider, journal)
        churn(csp, rounds=1)
        del csp
        start = _time.perf_counter()
        restored = CSP.restore(provider, journal)
        measured = _time.perf_counter() - start
        assert restored.restored and measured > 0.0

        sim = LBSSimulation(
            REGION,
            uniform_users(90, REGION, seed=11),
            K,
            request_rate_per_user=0.5,
            snapshot_period=20.0,
            seed=13,
            restart_at=(7.0,),
            restart_blackout=measured,
        )
        report = sim.run(15.0)
        assert report.restarts == 1
        assert report.restart_seconds == pytest.approx(measured)
        assert report.served_by_rung.get("recovered", 0) > 0
        assert "restarts: 1" in report.slo_summary()
        # The blackout is visible as queueing, bounded by the restore.
        assert max(report.queue_delays) <= measured + 1e-9


class TestQuorumJournal:
    """Media loss: the journal mirrored across three directories."""

    FP = FINGERPRINT

    @pytest.fixture
    def roots(self, tmp_path):
        return [str(tmp_path / f"replica-{i}") for i in range(3)]

    def test_round_trip_and_quorum_views(self, roots):
        q = QuorumJournal(roots)
        checksum = q.commit(build_policy(seed=1), 0, self.FP)
        q.commit(build_policy(seed=2), 1, self.FP)
        assert q.quorum == 2
        assert q.committed_serials() == [0, 1]
        assert q.latest_serial() == 1
        snapshot = q.recover(fingerprint=self.FP)
        assert snapshot.serial == 1
        assert snapshot.checksum is not None and snapshot.checksum != checksum
        assert q.last_recovery.repaired == ()

    def test_replicas_must_be_distinct(self, tmp_path):
        same = str(tmp_path / "only")
        with pytest.raises(RecoveryError):
            QuorumJournal([same, same, str(tmp_path / "other")])

    @pytest.mark.parametrize("phase", ["before", "intent", "snapshot", "after"])
    def test_single_loss_mid_commit_recovers_bit_identical(self, roots, phase):
        """Destroy any one replica at any phase of a commit: the commit
        still acks a quorum and recovery returns bit-identical state,
        repairing the destroyed replica with a measured MTTR."""
        policy = build_policy(seed=3)
        q = QuorumJournal(
            roots, kill_plan=ReplicaKillPlan.single(1, 1, phase)
        )
        q.commit(policy, 0, self.FP)
        q.commit(build_policy(seed=4), 1, self.FP)
        snapshot = q.recover(fingerprint=self.FP)
        assert snapshot.serial == 1
        report = q.last_recovery
        if phase == "after":
            # The replica acked before dying: the commit saw 3/3, but
            # recovery still finds the dead replica and repairs it.
            assert q.last_commit_failures == ()
        else:
            assert q.last_commit_failures == (1,)
        assert report.repaired == (1,)
        assert report.repair_seconds > 0.0
        # The repaired replica now recovers the same state on its own.
        repaired = PolicyJournal(roots[1]).recover(fingerprint=self.FP)
        assert repaired.serial == snapshot.serial
        assert repaired.checksum == snapshot.checksum
        assert_bit_identical(snapshot.policy, repaired.policy)

    def test_two_of_three_with_torn_tail_replica(self, roots):
        q = QuorumJournal(roots)
        q.commit(build_policy(seed=5), 0, self.FP)
        expected = q.recover(fingerprint=self.FP)
        # Replica 0 crashed mid-append (torn tail), replica 2's media
        # is gone entirely: only replica 1 is pristine, but the torn
        # replica still votes for its last *committed* state, so the
        # read quorum of 2 holds.
        with open(os.path.join(roots[0], "journal.log"), "a") as handle:
            handle.write('{"op": "intent", "serial": 1, "fi')
        destroy_replica(roots[2])
        snapshot = q.recover(fingerprint=self.FP)
        assert snapshot.serial == expected.serial
        assert snapshot.checksum == expected.checksum
        report = q.last_recovery
        assert set(report.voters) == {0, 1}
        # Both the torn and the destroyed replica get rewritten.
        assert set(report.repaired) == {0, 2}
        assert report.replica_states == ("torn", "ok", "empty")
        assert_bit_identical(expected.policy, snapshot.policy)

    def test_double_loss_fails_closed_never_serves(self, roots):
        q = QuorumJournal(
            roots, kill_plan=ReplicaKillPlan.double(1, 0, 2, "snapshot")
        )
        q.commit(build_policy(seed=6), 0, self.FP)
        with pytest.raises(RecoveryError) as err:
            q.commit(build_policy(seed=7), 1, self.FP)
        assert err.value.reason == "quorum"
        # Recovery on the lone survivor must also fail closed — a
        # minority must never resurrect (or coarsen) state on its own.
        with pytest.raises(RecoveryError) as err:
            q.recover(fingerprint=self.FP)
        assert err.value.reason == "quorum"

    def test_permissions_failure_mid_commit(self, roots, monkeypatch):
        """A replica whose directory stops being writable mid-commit
        (PermissionError ⊂ OSError) simply fails to ack; a second such
        replica breaks the quorum."""
        q = QuorumJournal(roots)
        q.commit(build_policy(seed=8), 0, self.FP)

        def denied(record):
            raise PermissionError("journal directory is read-only")

        monkeypatch.setattr(q.replicas[1], "_append", denied)
        q.commit(build_policy(seed=9), 1, self.FP)
        assert q.last_commit_failures == (1,)
        monkeypatch.setattr(q.replicas[2], "_append", denied)
        with pytest.raises(RecoveryError) as err:
            q.commit(build_policy(seed=10), 2, self.FP)
        assert err.value.reason == "quorum"

    def test_prune_is_quorum_coordinated(self, roots):
        q = QuorumJournal(roots)
        for serial in range(4):
            q.commit(build_policy(seed=serial), serial, self.FP)
        destroy_replica(roots[0])
        destroy_replica(roots[1])
        with pytest.raises(RecoveryError) as err:
            q.prune(keep_last=1)
        assert err.value.reason == "quorum"
        # The surviving replica was not touched: fail-closed means
        # nothing pruned anywhere, not "pruned where possible".
        assert q.replicas[2].committed_serials() == [0, 1, 2, 3]

    def test_prune_then_restore_cannot_resurrect_stale_serials(self, roots):
        """Regression for the prune/replication interaction: a replica
        that missed a quorum-coordinated prune keeps serials the
        majority dropped, and a later restore where that replica is the
        only survivor must fail closed rather than resurrect them."""
        q = QuorumJournal(roots)
        for serial in range(4):
            q.commit(build_policy(seed=20 + serial), serial, self.FP)
        # Replica 2's media goes away for the prune...
        saved = roots[2] + ".offline"
        os.rename(roots[2], saved)
        assert q.prune(keep_last=1) == (0, 1, 2)
        # ...and comes back afterwards, still holding serials 0-3.
        os.rename(saved, roots[2])
        stale = QuorumJournal(roots)
        assert PolicyJournal(roots[2]).committed_serials() == [0, 1, 2, 3]
        # Quorum views never expose the minority's stale serials.
        assert stale.committed_serials() == [3]
        # Majority intact: recovery adopts the pruned majority's newest
        # serial and repairs the lagging replica, dropping its stale tail.
        snapshot = stale.recover(fingerprint=self.FP)
        assert snapshot.serial == 3
        assert PolicyJournal(roots[2]).committed_serials() == [3]
        # Majority lost: the stale minority alone must never win.
        destroy_replica(roots[0])
        destroy_replica(roots[1])
        with pytest.raises(RecoveryError) as err:
            QuorumJournal(roots).recover(fingerprint=self.FP)
        assert err.value.reason == "quorum"


class TestQuorumCSPRestore:
    """The full loop: CSP commits through a quorum journal, a replica
    dies mid-commit, restore recovers bit-identical with measured MTTR."""

    @pytest.fixture
    def roots(self, tmp_path):
        return [str(tmp_path / f"replica-{i}") for i in range(3)]

    def make_csp(self, provider, quorum, n_users=90, seed=11):
        db = uniform_users(n_users, REGION, seed=seed)
        return CSP(REGION, K, db, provider, journal=quorum)

    def test_restore_after_replica_destruction_bit_identical(
        self, provider, roots
    ):
        quorum = QuorumJournal(
            roots, kill_plan=ReplicaKillPlan.single(2, 0, "snapshot")
        )
        csp = self.make_csp(provider, quorum)
        churn(csp, rounds=2)  # serial 2's commit destroys replica 0
        expected = {uid: cloak for uid, cloak in csp.policy.items()}
        user = sorted(expected)[0]
        del csp

        restored = CSP.restore(provider, QuorumJournal(roots))
        assert restored.restored
        for uid, cloak in expected.items():
            assert restored.policy.cloak_for(uid) == cloak
        served = restored.request(user, [("poi", "rest")])
        assert served.degradation == "recovered"
        assert served.anonymized.cloak == expected[user]
        # The repair is on the degradation timeline with its MTTR.
        repairs = [
            event for event in restored.events
            if event.reason == "replica-repaired"
        ]
        assert len(repairs) == 1
        assert "replicas [0]" in repairs[0].detail

    def test_quorum_loss_fails_closed_never_serves_coarse(
        self, provider, roots
    ):
        quorum = QuorumJournal(roots)
        csp = self.make_csp(provider, quorum)
        churn(csp, rounds=1)
        del csp
        destroy_replica(roots[0])
        destroy_replica(roots[1])
        with pytest.raises(RecoveryError) as err:
            CSP.restore(provider, QuorumJournal(roots))
        assert err.value.reason == "quorum"


class TestStalenessStateBlock:
    """PR-8 regression: ``policy_age`` and the serving rung ride the
    commit record, so a crash-restart can never silently reset
    staleness to zero and serve over-age cloaks as fresh."""

    FP = FINGERPRINT

    def test_state_survives_commit_recover_round_trip(self, journal):
        journal.commit(
            build_policy(), 3, self.FP,
            state={"policy_age": 1, "rung": "stale"},
        )
        snapshot = journal.recover(max_stale_snapshots=2)
        assert snapshot.serial == 3
        assert snapshot.policy_age == 1
        assert snapshot.rung == "stale"

    def test_stateless_commit_defaults_to_fresh(self, journal):
        journal.commit(build_policy(), 0, self.FP)
        snapshot = journal.recover()
        assert snapshot.policy_age == 0
        assert snapshot.rung == "fresh"

    def test_recommit_of_same_serial_updates_age(self, journal):
        """The failed-repair path re-commits the unchanged policy at
        its own serial with the grown age — newest commit wins."""
        policy = build_policy()
        journal.commit(policy, 2, self.FP)
        journal.commit(
            policy, 2, self.FP,
            state={"policy_age": 2, "rung": "coarsened"},
        )
        snapshot = journal.recover(max_stale_snapshots=2)
        assert snapshot.serial == 2
        assert snapshot.policy_age == 2
        assert snapshot.rung == "coarsened"

    def test_persisted_age_enforces_the_stale_bound(self, journal):
        """Even with no ``current_serial`` hint, a journalled age past
        the bound fails closed: the age is the journal's own testimony
        that the policy trails the world."""
        journal.commit(
            build_policy(), 5, self.FP,
            state={"policy_age": 2, "rung": "coarsened"},
        )
        snapshot = journal.recover(max_stale_snapshots=2)
        assert snapshot.policy_age == 2
        with pytest.raises(RecoveryError) as err:
            journal.recover(max_stale_snapshots=1)
        assert err.value.reason == "stale"

    def test_age_and_serial_gap_combine(self, journal):
        """``current_serial`` measures the gap since the commit; the
        persisted age measures the gap *at* the commit.  The larger of
        the two is the real staleness."""
        journal.commit(
            build_policy(), 5, self.FP,
            state={"policy_age": 1, "rung": "stale"},
        )
        assert journal.recover(
            current_serial=5, max_stale_snapshots=1
        ).policy_age == 1
        with pytest.raises(RecoveryError) as err:
            journal.recover(current_serial=7, max_stale_snapshots=1)
        assert err.value.reason == "stale"

    def test_quorum_round_trip_carries_state(self, tmp_path):
        roots = [str(tmp_path / f"replica-{i}") for i in range(3)]
        quorum = QuorumJournal(roots)
        quorum.commit(
            build_policy(), 1, self.FP,
            state={"policy_age": 1, "rung": "stale"},
        )
        destroy_replica(roots[2])
        snapshot = quorum.recover(max_stale_snapshots=2)
        assert snapshot.serial == 1
        assert snapshot.policy_age == 1
        assert snapshot.rung == "stale"

    def test_csp_journals_its_age_after_failed_repair(
        self, provider, journal
    ):
        """End to end: a CSP whose repair fails re-commits its grown
        age, and the restored CSP resumes on the stale rung instead of
        believing itself fresh."""
        from repro.robustness.faults import (
            FaultInjector,
            FaultPlan,
            FaultRule,
        )

        db = uniform_users(60, REGION, seed=12)
        injector = FaultInjector(
            FaultPlan(
                rules=(FaultRule(site="repair", kind="error", match="1"),),
                seed=0,
            )
        )
        csp = CSP(REGION, K, db, provider, journal=journal,
                  max_stale_snapshots=2, injector=injector)
        moves = random_moves(
            csp.anonymizer.current_db, 0.1, REGION,
            max_distance=120.0, seed=5,
        )
        csp.advance_snapshot(moves)
        assert csp.policy_age == 1
        del csp

        snapshot = journal.recover(max_stale_snapshots=2)
        assert snapshot.policy_age == 1
        assert snapshot.rung == "stale"
        restored = CSP.restore(provider, journal, max_stale_snapshots=2)
        assert restored.policy_age == 1
        served = restored.request(db.user_ids()[0], [("poi", "rest")])
        assert served.degradation == "stale"
        assert served.policy_age == 1


class TestTrajectoryStateBlock:
    """The trajectory-continuity ledger rides the commit record: a
    crash-restart must resume the served-history intersections, or the
    restored CSP would re-serve fine cloaks whose linked anonymity the
    pre-crash history already eroded."""

    FP = FINGERPRINT

    def _constraint(self):
        from repro.trajectory import ContinuityConstraint

        return ContinuityConstraint(K)

    def test_ledger_survives_commit_recover_round_trip(self, journal):
        constraint = self._constraint()
        constraint.ledger.record(
            "u1", Rect(0, 0, 64, 64), ["u1", "u2", "u3"], serial=2
        )
        state = constraint.ledger.to_state()
        journal.commit(
            build_policy(), 2, self.FP, state={"trajectory": state}
        )
        snapshot = journal.recover()
        assert snapshot.trajectory == state

    def test_stateless_commit_has_no_trajectory(self, journal):
        journal.commit(build_policy(), 0, self.FP)
        assert journal.recover().trajectory is None

    def test_killed_csp_restores_ledger_and_cloaks_bit_identical(
        self, provider, journal
    ):
        """SIGKILL mid-trajectory (modelled by ``del`` — only the
        journal survives): the restored CSP's next cloaks are
        bit-identical to what the survivor would have served, and the
        served stream still passes the linking audit."""
        from repro.trajectory import ServedTrajectories

        db = uniform_users(120, REGION, seed=31)
        csp = CSP(
            REGION, K, db, provider,
            journal=journal, trajectory=self._constraint(),
        )
        users = db.user_ids()[:30]
        stream = ServedTrajectories()
        for uid in users:
            served = csp.request(uid, [("poi", "rest")])
            stream.observe(
                uid,
                served.anonymized.cloak,
                csp.policy,
                widened=served.anonymized.cloak != csp.policy.cloak_for(uid),
            )
        churn(csp, rounds=2, fraction=0.4, seed=200)
        for uid in users:
            served = csp.request(uid, [("poi", "rest")])
            stream.observe(
                uid,
                served.anonymized.cloak,
                csp.policy,
                widened=served.anonymized.cloak != csp.policy.cloak_for(uid),
            )
        # One more churn round: its commit carries the ledger state the
        # requests above folded in, so the kill loses nothing.
        churn(csp, rounds=1, fraction=0.4, seed=300)
        expected_state = csp.trajectory.ledger.to_state()
        # A surviving twin tells us what the next serves *would* be.
        twin_state = csp.trajectory.ledger.to_state()
        del csp  # the kill: only the journal survives

        successor = self._constraint()
        restored = CSP.restore(provider, journal, trajectory=successor)
        assert restored.restored
        assert successor.ledger.to_state() == expected_state

        twin = self._constraint()
        twin.ledger.adopt_state(twin_state)
        for uid in users:
            served = restored.request(uid, [("poi", "rest")])
            expected = twin.enforce(
                restored.policy, uid, region=REGION,
                orientation=getattr(
                    restored.anonymizer.tree, "orientation", "vertical"
                ),
            )
            assert served.anonymized.cloak == expected.cloak
            stream.observe(
                uid,
                served.anonymized.cloak,
                restored.policy,
                widened=served.anonymized.cloak
                != restored.policy.cloak_for(uid),
            )
        audit = stream.audit(K)
        assert audit.audited == len(users)
        assert audit.all_hold
        assert audit.min_surviving >= K

    def test_restore_without_constraint_drops_nothing_silently(
        self, provider, journal
    ):
        """Restoring with the defense off is allowed (the state block
        is just carried); restoring with it on adopts the state."""
        db = uniform_users(100, REGION, seed=32)
        csp = CSP(
            REGION, K, db, provider,
            journal=journal, trajectory=self._constraint(),
        )
        csp.request(db.user_ids()[0], [("poi", "rest")])
        churn(csp, rounds=1, fraction=0.2, seed=400)
        del csp
        plain = CSP.restore(provider, journal)
        assert plain.trajectory is None  # defense off: no ledger
        successor = self._constraint()
        CSP.restore(provider, journal, trajectory=successor)
        assert successor.ledger.surviving(db.user_ids()[0]) is not None
