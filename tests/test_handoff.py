"""Online jurisdiction hand-off: a dead server's territory is
re-partitioned, re-solved, and adopted by its neighbours."""

import pytest

from repro import Rect, ServiceUnavailableError
from repro.data import uniform_users
from repro.parallel import (
    RebalancingPool,
    adjacent_rects,
    assign_adopters,
    handoff_shards,
)
from repro.trees.partition import Jurisdiction

REGION = Rect(0, 0, 1024, 1024)
K = 5


def jur(node_id, rect, count=0):
    return Jurisdiction(rect=rect, is_semi=False, count=count, node_id=node_id)


class TestAdjacency:
    def test_shared_edge(self):
        assert adjacent_rects(Rect(0, 0, 10, 10), Rect(10, 0, 20, 10))
        assert adjacent_rects(Rect(0, 0, 10, 10), Rect(0, 10, 10, 20))

    def test_corner_touch_is_not_adjacent(self):
        assert not adjacent_rects(Rect(0, 0, 10, 10), Rect(10, 10, 20, 20))

    def test_disjoint(self):
        assert not adjacent_rects(Rect(0, 0, 10, 10), Rect(30, 0, 40, 10))


class TestHandoffShards:
    def rows_in(self, rect, n, seed=17):
        db = uniform_users(n, rect, seed=seed)
        return [
            (uid, db.location_of(uid).x, db.location_of(uid).y)
            for uid in db.user_ids()
        ]

    def test_empty_territory_yields_no_shards(self):
        assert handoff_shards(Rect(0, 0, 100, 100), [], K) == []

    def test_below_k_fails_closed(self):
        rows = self.rows_in(Rect(0, 0, 100, 100), K - 1)
        with pytest.raises(ServiceUnavailableError) as err:
            handoff_shards(Rect(0, 0, 100, 100), rows, K)
        assert err.value.reason == "handoff"

    def test_shards_restore_fine_k_anonymous_cloaks(self):
        territory = Rect(0, 0, 512, 512)
        rows = self.rows_in(territory, 60)
        shards = handoff_shards(territory, rows, K, base_node_id=100)
        assert shards
        covered = set()
        for jur_, policy, seconds in shards:
            assert jur_.node_id >= 100
            if policy is None:
                assert jur_.count == 0
                continue
            assert seconds >= 0.0
            assert policy.min_group_size() >= K
            for uid, cloak in policy.items():
                covered.add(uid)
                # Fine cloaks, not the coarse territory rectangle.
                assert cloak.area < territory.area
        assert covered == {uid for uid, __, ___ in rows}


class TestAssignAdopters:
    def test_prefers_adjacent_then_least_loaded(self):
        shard = jur(9, Rect(0, 0, 10, 10), count=5)
        neighbour = jur(1, Rect(10, 0, 20, 10), count=50)
        far_but_idle = jur(2, Rect(100, 100, 110, 110), count=0)
        assignment = assign_adopters([shard], [neighbour, far_but_idle])
        assert assignment == {9: 1}  # adjacency beats load

    def test_load_spreads_across_shards(self):
        shards = [
            jur(9, Rect(0, 0, 10, 10), count=30),
            jur(10, Rect(0, 10, 10, 20), count=30),
        ]
        survivors = [
            jur(1, Rect(10, 0, 20, 10), count=10),
            jur(2, Rect(10, 10, 20, 20), count=10),
        ]
        assignment = assign_adopters(shards, survivors)
        # The first adoption raises that survivor's load, so the second
        # shard goes to the other one.
        assert sorted(assignment.values()) == [1, 2]

    def test_no_survivors(self):
        assert assign_adopters([jur(9, Rect(0, 0, 1, 1))], []) == {}


class TestPoolServerFailed:
    def test_handoff_keeps_pool_serving(self):
        db = uniform_users(160, REGION, seed=23)
        pool = RebalancingPool(REGION, K, 4).fit(db)
        before = pool.master_policy()
        dead = pool._jurisdictions[0].node_id
        dead_users = sorted(pool._members[dead])

        report = pool.server_failed(dead)
        assert report.dead_node_id == dead
        assert report.resolved_users == len(dead_users)
        assert report.recovery_seconds >= 0.0
        assert set(report.adopters) <= set(report.shard_ids)
        assert pool.lost_servers == 1

        master = pool.master_policy()
        assert len(master.merged) == len(db)
        assert master.merged.min_group_size() >= K
        # The dead server's users regained *fine* cloaks: per-user area
        # no worse than before the failure on average.
        before_area = sum(
            before.cloak_for(uid).area for uid in dead_users
        ) / len(dead_users)
        after_area = sum(
            master.cloak_for(uid).area for uid in dead_users
        ) / len(dead_users)
        assert after_area <= before_area * 1.05

    def test_pool_advances_after_handoff(self):
        db = uniform_users(160, REGION, seed=23)
        pool = RebalancingPool(REGION, K, 4).fit(db)
        pool.server_failed(pool._jurisdictions[-1].node_id)
        from repro.lbs.mobility import random_moves

        moves = random_moves(pool.db, 0.05, REGION, max_distance=60.0, seed=5)
        report = pool.advance(moves)
        assert report.moved_users == len(moves)
        master = pool.master_policy()
        assert len(master.merged) == len(pool.db)
        assert master.merged.min_group_size() >= K

    def test_empty_territory_handoff(self):
        db = uniform_users(40, Rect(0, 0, 256, 256), seed=9)
        pool = RebalancingPool(REGION, K, 4).fit(db)
        empty = [
            j.node_id
            for j in pool._jurisdictions
            if not pool._members[j.node_id]
        ]
        if not empty:
            pytest.skip("partition left no empty jurisdiction")
        report = pool.server_failed(empty[0])
        assert report.shard_ids == ()
        assert report.resolved_users == 0
