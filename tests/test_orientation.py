"""Tests for binary-tree orientations and the best-orientation solver."""

import numpy as np
import pytest

from repro import LocationDatabase, Rect, TreeError
from repro.core.binary_dp import solve, solve_best_orientation
from repro.data import uniform_users
from repro.trees import BinaryTree, QuadTree

from conftest import random_instance


@pytest.fixture
def region():
    return Rect(0, 0, 64, 64)


class TestHorizontalOrientation:
    def test_orientation_validated(self, region):
        with pytest.raises(TreeError, match="orientation"):
            BinaryTree(region, LocationDatabase(), 1, orientation="diagonal")

    def test_horizontal_splits_squares_horizontally(self, region):
        db = uniform_users(200, region, seed=171)
        tree = BinaryTree.build(region, db, 10, orientation="horizontal")
        for node in tree.nodes.values():
            if node.is_leaf:
                continue
            a, b = node.children
            if node.is_semi:
                assert a.rect.x2 == b.rect.x1  # wide semis cut vertically
            else:
                assert a.rect.y2 == b.rect.y1  # squares cut horizontally
        tree.check_invariants()

    def test_wide_semi_root_accepted(self):
        db = LocationDatabase([("a", 1, 1)])
        wide = Rect(0, 0, 64, 32)
        tree = BinaryTree(wide, db, 1)
        assert tree.root.is_semi

    def test_orientations_are_mirror_symmetric(self, region):
        """Reflecting the points across the diagonal swaps orientations,
        so the two optima are exchanged under transposition."""
        rng = np.random.default_rng(172)
        coords = rng.uniform(0, 64, size=(40, 2))
        db_v = LocationDatabase.from_array(coords)
        db_h = LocationDatabase.from_array(coords[:, ::-1])
        k = 4
        cost_v = solve(
            BinaryTree.build(region, db_v, k, max_depth=6, orientation="vertical"),
            k,
        ).optimal_cost
        cost_h = solve(
            BinaryTree.build(region, db_h, k, max_depth=6, orientation="horizontal"),
            k,
        ).optimal_cost
        assert cost_v == pytest.approx(cost_h)

    @pytest.mark.parametrize("seed", range(500, 506))
    def test_horizontal_also_embeds_quad_policies(self, seed):
        """Both orientations contain every quadrant, so either optimum
        is at most the quad-tree optimum."""
        region, db, k = random_instance(seed)
        if len(db) < k:
            return
        quad = QuadTree.build_adaptive(region, db, split_threshold=k, max_depth=3)
        quad_cost = solve(quad, k, prune=False).optimal_cost
        horizontal = BinaryTree.build(
            region, db, k, max_depth=6, orientation="horizontal"
        )
        assert solve(horizontal, k).optimal_cost <= quad_cost + 1e-9

    @pytest.mark.parametrize("seed", range(506, 512))
    def test_horizontal_policies_are_k_anonymous(self, seed):
        region, db, k = random_instance(seed)
        if len(db) < k:
            return
        tree = BinaryTree.build(region, db, k, max_depth=8, orientation="horizontal")
        policy = solve(tree, k).policy()
        assert policy.min_group_size() >= k

    def test_moves_work_in_horizontal_trees(self, region):
        from repro.lbs import random_moves

        db = uniform_users(150, region, seed=173)
        tree = BinaryTree.build(region, db, 8, orientation="horizontal")
        moves = random_moves(db, 0.3, region, max_distance=20, seed=174)
        tree.apply_moves(moves)
        tree.check_invariants()


class TestBestOrientation:
    @pytest.mark.parametrize("seed", range(512, 520))
    def test_best_is_min_of_both(self, seed):
        region, db, k = random_instance(seed)
        if len(db) < k:
            return
        costs = []
        for orientation in ("vertical", "horizontal"):
            tree = BinaryTree.build(
                region, db, k, max_depth=6, orientation=orientation
            )
            costs.append(solve(tree, k).optimal_cost)
        best = solve_best_orientation(region, db, k, max_depth=6)
        assert best.optimal_cost == pytest.approx(min(costs))

    def test_best_orientation_policy_valid(self, region):
        db = uniform_users(100, region, seed=175)
        solution = solve_best_orientation(region, db, 8)
        policy = solution.policy()
        assert policy.min_group_size() >= 8
        assert policy.cost() == pytest.approx(solution.optimal_cost)

    def test_infeasible_propagates(self, region):
        from repro import NoFeasiblePolicyError

        db = LocationDatabase([("a", 1, 1)])
        solution = solve_best_orientation(region, db, 5)
        with pytest.raises(NoFeasiblePolicyError):
            __ = solution.optimal_cost
