"""Tests for the user movement model (§VI-C)."""

import pytest

from repro import Rect, WorkloadError
from repro.data import uniform_users
from repro.lbs import (
    movement_stream,
    random_moves,
    trajectory_schedule,
    walk_snapshots,
)


@pytest.fixture
def region():
    return Rect(0, 0, 1000, 1000)


@pytest.fixture
def db(region):
    return uniform_users(200, region, seed=141)


class TestRandomMoves:
    def test_fraction_controls_count(self, db, region):
        assert len(random_moves(db, 0.1, region)) == 20
        assert len(random_moves(db, 0.0, region)) == 0
        assert len(random_moves(db, 1.0, region)) == 200

    def test_distance_bound(self, db, region):
        moves = random_moves(db, 0.5, region, max_distance=200.0, seed=1)
        for uid, new_point in moves.items():
            old = db.location_of(uid)
            assert old.distance_to(new_point) <= 200.0 + 1e-9

    def test_moves_stay_on_map(self, region):
        # Users on the border get clipped rather than escaping.
        from repro import LocationDatabase

        db = LocationDatabase([(f"u{i}", 0.0, float(i)) for i in range(50)])
        moves = random_moves(db, 1.0, region, max_distance=500.0, seed=2)
        for p in moves.values():
            assert region.contains(p)

    def test_deterministic_given_seed(self, db, region):
        a = random_moves(db, 0.2, region, seed=7)
        b = random_moves(db, 0.2, region, seed=7)
        assert a == b

    def test_fraction_validated(self, db, region):
        with pytest.raises(WorkloadError):
            random_moves(db, 1.5, region)
        with pytest.raises(WorkloadError):
            random_moves(db, 0.1, region, max_distance=-1)


class TestMovementStream:
    def test_yields_requested_snapshots(self, db, region):
        stream = list(movement_stream(db, 0.1, region, n_snapshots=5, seed=3))
        assert len(stream) == 5
        assert all(len(m) == 20 for m in stream)

    def test_stream_is_a_walk(self, db, region):
        """Each step moves from the *previous* snapshot's position."""
        move_sets = list(
            movement_stream(
                db, 0.3, region, n_snapshots=4, max_distance=100, seed=4
            )
        )
        snapshots = walk_snapshots(db, move_sets)
        assert len(snapshots) == 5
        assert snapshots[0] is db
        for current, moves in zip(snapshots, move_sets):
            for uid, new_point in moves.items():
                old = current.location_of(uid)
                assert old.distance_to(new_point) <= 100 + 1e-9


class TestTrajectorySchedule:
    def _schedule(self, db, region, seed=5):
        return trajectory_schedule(
            db,
            0.3,
            region,
            rate_per_user=0.05,
            duration=100.0,
            snapshot_period=25.0,
            max_distance=150.0,
            seed=seed,
        )

    def test_shapes(self, db, region):
        schedule = self._schedule(db, region)
        # 100 s / 25 s windows → 4 snapshots, 3 move boundaries.
        assert schedule.n_snapshots == 4
        assert len(schedule.moves) == 3
        assert len(schedule.snapshots(db)) == 4
        assert all(0.0 <= t < 100.0 for t, __, ___ in schedule.arrivals)

    def test_deterministic_given_seed(self, db, region):
        a = self._schedule(db, region, seed=9)
        b = self._schedule(db, region, seed=9)
        assert a.arrivals == b.arrivals
        assert a.moves == b.moves
        c = self._schedule(db, region, seed=10)
        assert a.arrivals != c.arrivals

    def test_arrival_batches_window_arrivals(self, db, region):
        schedule = self._schedule(db, region)
        batches = schedule.arrival_batches()
        assert len(batches) == schedule.n_snapshots
        assert sum(len(b) for b in batches) == len(schedule.arrivals)
        for index, batch in enumerate(batches[:-1]):
            for t, __, ___ in batch:
                assert index * 25.0 <= t < (index + 1) * 25.0

    def test_moves_are_a_walk(self, db, region):
        schedule = self._schedule(db, region)
        snapshots = schedule.snapshots(db)
        for current, moves in zip(snapshots, schedule.moves):
            for uid, new_point in moves.items():
                old = current.location_of(uid)
                assert old.distance_to(new_point) <= 150.0 + 1e-9

    def test_validates_inputs(self, db, region):
        with pytest.raises(WorkloadError):
            trajectory_schedule(
                db, 0.3, region,
                rate_per_user=0.05, duration=0.0, snapshot_period=10.0,
            )
        with pytest.raises(WorkloadError):
            trajectory_schedule(
                db, 0.3, region,
                rate_per_user=0.05, duration=10.0, snapshot_period=0.0,
            )
