"""Second property-based suite: persistence, pyramids, workloads,
circular solvers, and policy-group algebra."""

import json

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import LocationDatabase, Point, Rect
from repro.baselines import solve_greedy, verify_solution
from repro.baselines.casper_adaptive import CasperPyramid
from repro.core.binary_dp import solve
from repro.core.policy import CloakingPolicy
from repro.core.serialization import policy_from_dict, policy_to_dict
from repro.data import zipf_weights
from repro.trees import BinaryTree

SIDE = 64.0

coords = st.tuples(
    st.floats(min_value=0.0, max_value=SIDE, allow_nan=False, width=32),
    st.floats(min_value=0.0, max_value=SIDE, allow_nan=False, width=32),
)
point_lists = st.lists(coords, min_size=2, max_size=20)
ks = st.integers(min_value=2, max_value=4)


def db_from(points):
    return LocationDatabase((f"u{i}", x, y) for i, (x, y) in enumerate(points))


class TestSerializationProperties:
    @given(point_lists, ks)
    @settings(max_examples=25, deadline=None)
    def test_policy_json_round_trip(self, points, k):
        assume(len(points) >= k)
        db = db_from(points)
        tree = BinaryTree.build(Rect(0, 0, SIDE, SIDE), db, k, max_depth=8)
        policy = solve(tree, k).policy()
        payload = json.loads(json.dumps(policy_to_dict(policy)))
        rebuilt = policy_from_dict(payload)
        assert rebuilt.cost() == pytest.approx(policy.cost())
        assert rebuilt.min_group_size() == policy.min_group_size()
        for uid in db.user_ids():
            assert rebuilt.cloak_for(uid) == policy.cloak_for(uid)


class TestPyramidProperties:
    @given(point_lists, st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None)
    def test_incremental_counts_match_rebuild(self, points, seed):
        db = db_from(points)
        region = Rect(0, 0, SIDE, SIDE)
        pyramid = CasperPyramid(region, db, height=4)
        rng = np.random.default_rng(seed)
        moves = {
            uid: Point(float(rng.uniform(0, SIDE)), float(rng.uniform(0, SIDE)))
            for uid in db.user_ids()
            if rng.random() < 0.5
        }
        pyramid.apply_moves(moves)
        pyramid.check_counts()
        fresh = CasperPyramid(region, db.with_moves(moves), height=4)
        for level in range(5):
            assert np.array_equal(pyramid.counts[level], fresh.counts[level])

    @given(point_lists, ks)
    @settings(max_examples=25, deadline=None)
    def test_cloaks_are_k_inside(self, points, k):
        assume(len(points) >= k)
        db = db_from(points)
        pyramid = CasperPyramid(Rect(0, 0, SIDE, SIDE), db, height=5)
        for uid, point in db.items():
            cloak = pyramid.cloak(point, k)
            assert cloak.contains(point)
            assert db.count_in(cloak) >= k


class TestCircularProperties:
    @given(point_lists, ks)
    @settings(max_examples=20, deadline=None)
    def test_greedy_output_verifies(self, points, k):
        assume(len(points) >= k)
        db = db_from(points)
        centers = [Point(SIDE / 4, SIDE / 4), Point(3 * SIDE / 4, SIDE / 2)]
        solution = solve_greedy(db, centers, k)
        verify_solution(db, centers, k, solution, budget=solution.cost)


class TestPolicyGroupAlgebra:
    @given(point_lists, ks)
    @settings(max_examples=25, deadline=None)
    def test_groups_partition_users(self, points, k):
        assume(len(points) >= k)
        db = db_from(points)
        tree = BinaryTree.build(Rect(0, 0, SIDE, SIDE), db, k, max_depth=8)
        policy = solve(tree, k).policy()
        groups = policy.groups()
        flattened = [uid for members in groups.values() for uid in members]
        assert sorted(flattened) == sorted(db.user_ids())
        # Every group is spatially consistent: members inside their cloak.
        for region, members in groups.items():
            for uid in members:
                assert region.contains(db.location_of(uid))

    @given(point_lists, ks)
    @settings(max_examples=25, deadline=None)
    def test_cost_decomposes_over_groups(self, points, k):
        assume(len(points) >= k)
        db = db_from(points)
        tree = BinaryTree.build(Rect(0, 0, SIDE, SIDE), db, k, max_depth=8)
        policy = solve(tree, k).policy()
        by_groups = sum(
            len(members) * region.area
            for region, members in policy.groups().items()
        )
        assert by_groups == pytest.approx(policy.cost())


class TestZipfProperties:
    @given(
        st.integers(min_value=1, max_value=500),
        st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    )
    def test_zipf_is_a_distribution(self, n, exponent):
        weights = zipf_weights(n, exponent)
        assert len(weights) == n
        assert weights.sum() == pytest.approx(1.0)
        assert (weights > 0).all()
        assert all(a >= b - 1e-12 for a, b in zip(weights, weights[1:]))
