"""Async robustness primitives: retry/backoff port, clocks, and the
single-flight answer cache.

The async ports must be semantically identical to their sync twins —
same policies, same delays (deterministic jitter included), shareable
breaker instances — so the sync path can stay the privacy oracle while
the gateway overlaps I/O.
"""

import asyncio

import pytest

from repro.core.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ReproError,
)
from repro.core.requests import AnonymizedRequest, normalize_payload
from repro.lbs.cache import AsyncAnswerCache
from repro.lbs.provider import QueryAnswer
from repro.robustness import (
    CircuitBreaker,
    ManualClock,
    RetryPolicy,
    VirtualClock,
    breaker_clock,
    retry_call,
    retry_call_async,
)


def run(coro):
    return asyncio.run(coro)


class Flaky:
    """Fails ``failures`` times, then succeeds with ``value``."""

    def __init__(self, failures, value="ok", exc=TimeoutError):
        self.failures = failures
        self.value = value
        self.exc = exc
        self.calls = 0

    async def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc(f"boom {self.calls}")
        return self.value


class TestVirtualClock:
    def test_sleep_accumulates_and_yields(self):
        clock = VirtualClock()

        async def use():
            await clock.sleep(1.5)
            await clock.sleep(0.5)
            return clock.monotonic()

        assert run(use()) == 2.0
        assert clock.slept == 2.0

    def test_negative_sleep_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ReproError):
            run(clock.sleep(-1))

    def test_advance_is_not_backoff(self):
        clock = VirtualClock(start=10.0)
        clock.advance(5.0)
        assert clock.monotonic() == 15.0
        assert clock.slept == 0.0

    def test_breaker_clock_reads_through(self):
        clock = VirtualClock(start=3.0)
        sync_view = breaker_clock(clock)
        assert sync_view.monotonic() == 3.0
        with pytest.raises(ReproError):
            sync_view.sleep(1.0)


class TestRetryCallAsync:
    def test_succeeds_after_transient_failures(self):
        fn = Flaky(2)
        clock = VirtualClock()
        policy = RetryPolicy(max_attempts=3, base_delay=0.1, seed=4)
        assert run(retry_call_async(fn, policy=policy, clock=clock)) == "ok"
        assert fn.calls == 3

    def test_backoff_identical_to_sync_twin(self):
        """The async port reuses RetryPolicy verbatim: total backoff must
        equal the sync retry_call's to the last jittered microsecond."""
        policy = RetryPolicy(max_attempts=4, base_delay=0.07, seed=9)

        sync_clock = ManualClock()
        with pytest.raises(TimeoutError):
            retry_call(
                _always_fail_sync, policy=policy, clock=sync_clock
            )

        async_clock = VirtualClock()
        with pytest.raises(TimeoutError):
            run(
                retry_call_async(
                    _always_fail_async, policy=policy, clock=async_clock
                )
            )
        assert async_clock.slept == sync_clock.slept > 0.0

    def test_exhaustion_reraises_last_error(self):
        fn = Flaky(5)
        with pytest.raises(TimeoutError, match="boom 2"):
            run(
                retry_call_async(
                    fn,
                    policy=RetryPolicy(max_attempts=2, base_delay=0.0),
                    clock=VirtualClock(),
                )
            )

    def test_non_retryable_propagates_immediately(self):
        fn = Flaky(1, exc=ValueError)
        with pytest.raises(ValueError):
            run(
                retry_call_async(
                    fn,
                    policy=RetryPolicy(max_attempts=5, base_delay=0.0),
                    clock=VirtualClock(),
                    retryable=(TimeoutError,),
                )
            )
        assert fn.calls == 1

    def test_deadline_refuses_doomed_backoff(self):
        fn = Flaky(10)
        clock = VirtualClock()
        with pytest.raises(DeadlineExceededError):
            run(
                retry_call_async(
                    fn,
                    policy=RetryPolicy(
                        max_attempts=10, base_delay=1.0, jitter=0.0
                    ),
                    clock=clock,
                    deadline=2.5,
                )
            )
        # The overrunning backoff is refused, never slept toward.
        assert clock.slept <= 2.5

    def test_breaker_shared_with_sync_path(self):
        """One breaker instance guards both serving paths: async failures
        push it open, and the sync path then fails fast too."""
        clock = VirtualClock()
        breaker = CircuitBreaker(
            failure_threshold=2,
            reset_timeout=60.0,
            clock=breaker_clock(clock),
        )
        with pytest.raises(TimeoutError):
            run(
                retry_call_async(
                    Flaky(9),
                    policy=RetryPolicy(max_attempts=2, base_delay=0.0),
                    clock=clock,
                    breaker=breaker,
                )
            )
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            retry_call(
                _always_fail_sync,
                policy=RetryPolicy(max_attempts=2, base_delay=0.0),
                clock=ManualClock(),
                breaker=breaker,
            )

    def test_cancellation_neither_retries_nor_trips_breaker(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(
            failure_threshold=1,
            clock=breaker_clock(clock),
        )
        started = 0

        async def hang():
            nonlocal started
            started += 1
            await asyncio.sleep(3600)

        async def drive():
            task = asyncio.ensure_future(
                retry_call_async(
                    hang,
                    policy=RetryPolicy(max_attempts=3, base_delay=0.0),
                    clock=clock,
                    breaker=breaker,
                )
            )
            await asyncio.sleep(0.01)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task

        run(drive())
        assert started == 1  # cancellation burned no retry attempt
        assert breaker.state == "closed"  # and is not a provider failure


def _always_fail_sync():
    raise TimeoutError("down")


async def _always_fail_async():
    raise TimeoutError("down")


def _request(request_id, cloak="cloak-a", category="rest"):
    return AnonymizedRequest(
        request_id=request_id,
        cloak=cloak,
        payload=normalize_payload([("poi", category)]),
    )


class CountingLoader:
    def __init__(self, delay=0.0, exc=None):
        self.calls = 0
        self.delay = delay
        self.exc = exc

    async def __call__(self, request):
        self.calls += 1
        if self.delay:
            await asyncio.sleep(self.delay)
        if self.exc is not None:
            raise self.exc
        return QueryAnswer(request.request_id, ())


class TestAsyncAnswerCache:
    def test_single_flight_fill(self):
        cache = AsyncAnswerCache()
        loader = CountingLoader(delay=0.01)

        async def drive():
            return await asyncio.gather(
                *(cache.fetch(_request(i), loader) for i in range(8))
            )

        results = run(drive())
        assert loader.calls == 1  # one provider call for 8 racers
        assert cache.stats.misses == 1
        assert cache.stats.coalesced == 7
        assert cache.stats.hits == 0
        # Everyone got the answer, re-stamped with their own id.
        assert [a.request_id for a, __, ___ in results] == list(range(8))
        hit_flags = [hit for __, hit, ___ in results]
        coalesced_flags = [c for __, ___, c in results]
        assert hit_flags.count(True) == 0
        assert coalesced_flags.count(True) == 7

    def test_hit_after_fill(self):
        cache = AsyncAnswerCache()
        loader = CountingLoader()

        async def drive():
            await cache.fetch(_request(1), loader)
            return await cache.fetch(_request(2), loader)

        answer, hit, coalesced = run(drive())
        assert hit and not coalesced
        assert loader.calls == 1
        assert cache.stats.hits == 1
        assert cache.deferred_billing == {"rest": 1}
        assert answer.request_id == 2

    def test_distinct_keys_do_not_share(self):
        cache = AsyncAnswerCache()
        loader = CountingLoader()

        async def drive():
            await asyncio.gather(
                cache.fetch(_request(1, cloak="a"), loader),
                cache.fetch(_request(2, cloak="b"), loader),
            )

        run(drive())
        assert loader.calls == 2
        assert cache.stats.misses == 2

    def test_failed_fill_fans_same_exception_and_leaves_no_trace(self):
        cache = AsyncAnswerCache()
        boom = ConnectionError("wire down")
        loader = CountingLoader(delay=0.01, exc=boom)

        async def drive():
            return await asyncio.gather(
                *(cache.fetch(_request(i), loader) for i in range(5)),
                return_exceptions=True,
            )

        results = run(drive())
        assert all(exc is boom for exc in results)  # the same instance
        assert len(cache) == 0
        assert cache.stats.misses == 0  # failures are not misses
        assert cache.stats.hits == 0
        # A later fetch retries from scratch and can succeed.
        ok_loader = CountingLoader()
        answer, hit, coalesced = run(cache.fetch(_request(9), ok_loader))
        assert not hit and not coalesced
        assert ok_loader.calls == 1

    def test_cancelled_waiter_does_not_kill_shared_fill(self):
        cache = AsyncAnswerCache()
        loader = CountingLoader(delay=0.02)

        async def drive():
            first = asyncio.ensure_future(cache.fetch(_request(1), loader))
            await asyncio.sleep(0.001)
            second = asyncio.ensure_future(cache.fetch(_request(2), loader))
            await asyncio.sleep(0.001)
            second.cancel()
            with pytest.raises(asyncio.CancelledError):
                await second
            return await first

        answer, hit, coalesced = run(drive())
        assert answer.request_id == 1
        assert loader.calls == 1
        assert cache.stats.misses == 1

    def test_flush_returns_billing(self):
        cache = AsyncAnswerCache()
        loader = CountingLoader()

        async def drive():
            await cache.fetch(_request(1), loader)
            await cache.fetch(_request(2), loader)
            await cache.fetch(_request(3), loader)

        run(drive())
        assert cache.flush() == {"rest": 2}
        assert len(cache) == 0
        assert cache.deferred_billing == {}


class TestAsyncCacheCloseDiscipline:
    """Regression for the fail-closed linter fix: ``close()`` swallows
    only the cancellation it requested; anything else propagates."""

    def test_close_cancels_inflight_fills_quietly(self):
        cache = AsyncAnswerCache()
        loader = CountingLoader(delay=60.0)

        async def drive():
            waiter = asyncio.ensure_future(cache.fetch(_request(1), loader))
            await asyncio.sleep(0)
            await cache.close()
            with pytest.raises(asyncio.CancelledError):
                await waiter

        run(drive())
        assert len(cache._fills) == 0 and len(cache._inflight) == 0

    def test_close_propagates_unexpected_task_failure(self):
        cache = AsyncAnswerCache()

        async def explode():
            raise ValueError("boom — not a cancellation")

        async def drive():
            task = asyncio.get_event_loop().create_task(explode())
            await asyncio.sleep(0)
            cache._fills["bogus"] = task
            with pytest.raises(ValueError, match="boom"):
                await cache.close()

        run(drive())

    def test_loader_failure_reaches_waiters_not_close(self):
        cache = AsyncAnswerCache()
        loader = CountingLoader(exc=TimeoutError("wire down"))

        async def drive():
            with pytest.raises(TimeoutError):
                await cache.fetch(_request(1), loader)
            await cache.close()  # nothing left to swallow or raise

        run(drive())
        assert cache.stats.misses == 0 and len(cache) == 0
