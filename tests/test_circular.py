"""Tests for the circular-cloak problem of Theorem 1."""

import math

import pytest

from repro import LocationDatabase, NoFeasiblePolicyError, Point, Rect, ReproError
from repro.baselines import solve_exact, solve_greedy
from repro.data import uniform_users


@pytest.fixture
def centers():
    return [Point(0, 0), Point(10, 0), Point(5, 8)]


class TestExactSolver:
    def test_single_group_when_n_equals_k(self, centers):
        db = LocationDatabase([("a", 1, 0), ("b", 2, 0), ("c", 3, 0)])
        result = solve_exact(db, centers, 3)
        assert result.n_groups == 1
        # Best center is (0,0): radius 3 → cost 3·π·9.
        assert result.cost == pytest.approx(3 * math.pi * 9)

    def test_two_natural_clusters(self, centers):
        db = LocationDatabase(
            [("a", 0, 1), ("b", 1, 0), ("c", 10, 1), ("d", 9, 0)]
        )
        result = solve_exact(db, centers, 2)
        assert result.n_groups == 2
        groups = {frozenset(g) for g in result.groups}
        assert groups == {frozenset({"a", "b"}), frozenset({"c", "d"})}

    def test_all_groups_at_least_k(self, centers):
        db = uniform_users(10, Rect(0, 0, 10, 10), seed=61)
        result = solve_exact(db, centers, 3)
        assert all(len(g) >= 3 for g in result.groups)
        assert sum(len(g) for g in result.groups) == 10

    def test_policy_is_policy_aware_anonymous(self, centers):
        db = uniform_users(9, Rect(0, 0, 10, 10), seed=62)
        result = solve_exact(db, centers, 3)
        assert result.policy.min_group_size() >= 3

    def test_every_member_inside_its_circle(self, centers):
        db = uniform_users(8, Rect(0, 0, 10, 10), seed=63)
        result = solve_exact(db, centers, 2)
        for uid, point in db.items():
            assert result.policy.cloak_for(uid).contains(point)

    def test_cost_formula(self, centers):
        db = uniform_users(7, Rect(0, 0, 10, 10), seed=64)
        result = solve_exact(db, centers, 3)
        recomputed = sum(
            result.policy.cloak_for(uid).area for uid in db.user_ids()
        )
        assert result.cost == pytest.approx(recomputed)

    def test_infeasible(self, centers):
        db = LocationDatabase([("a", 1, 1)])
        with pytest.raises(NoFeasiblePolicyError):
            solve_exact(db, centers, 2)

    def test_size_guard(self, centers):
        db = uniform_users(20, Rect(0, 0, 10, 10), seed=65)
        with pytest.raises(ReproError, match="NP-complete"):
            solve_exact(db, centers, 2)

    def test_no_centers(self):
        db = LocationDatabase([("a", 1, 1), ("b", 2, 2)])
        with pytest.raises(NoFeasiblePolicyError):
            solve_exact(db, [], 2)


class TestGreedySolver:
    @pytest.mark.parametrize("seed", range(66, 74))
    def test_never_beats_exact(self, centers, seed):
        db = uniform_users(9, Rect(0, 0, 10, 10), seed=seed)
        exact = solve_exact(db, centers, 3)
        greedy = solve_greedy(db, centers, 3)
        assert greedy.cost >= exact.cost - 1e-9

    def test_greedy_feasible_and_anonymous(self, centers):
        db = uniform_users(50, Rect(0, 0, 10, 10), seed=75)
        result = solve_greedy(db, centers, 5)
        assert result.policy.min_group_size() >= 5
        assert sum(len(g) for g in result.groups) == 50

    def test_greedy_scales_past_exact_guard(self, centers):
        db = uniform_users(200, Rect(0, 0, 10, 10), seed=76)
        result = solve_greedy(db, centers, 10)
        assert result.n_groups >= 2

    def test_greedy_infeasible(self, centers):
        db = LocationDatabase([("a", 1, 1)])
        with pytest.raises(NoFeasiblePolicyError):
            solve_greedy(db, centers, 2)


class TestVerifier:
    """The polynomial certificate verifier of Theorem 1's NP membership."""

    def test_accepts_exact_and_greedy_outputs(self, centers):
        db = uniform_users(9, Rect(0, 0, 10, 10), seed=77)
        from repro.baselines import verify_solution

        exact = solve_exact(db, centers, 3)
        verify_solution(db, centers, 3, exact)
        verify_solution(db, centers, 3, exact, budget=exact.cost)
        greedy = solve_greedy(db, centers, 3)
        verify_solution(db, centers, 3, greedy)

    def test_rejects_budget_violation(self, centers):
        from repro.baselines import verify_solution

        db = uniform_users(6, Rect(0, 0, 10, 10), seed=78)
        result = solve_exact(db, centers, 3)
        with pytest.raises(ReproError, match="budget"):
            verify_solution(db, centers, 3, result, budget=result.cost / 2)

    def test_rejects_undersized_group(self, centers):
        from dataclasses import replace

        from repro.baselines import verify_solution

        db = uniform_users(6, Rect(0, 0, 10, 10), seed=79)
        result = solve_exact(db, centers, 3)
        with pytest.raises(ReproError, match="smaller than k"):
            verify_solution(db, centers, 6, result)

    def test_rejects_foreign_center(self):
        from repro.baselines import verify_solution

        db = uniform_users(4, Rect(0, 0, 10, 10), seed=80)
        result = solve_exact(db, [Point(5, 5)], 2)
        with pytest.raises(ReproError, match="allowed set"):
            verify_solution(db, [Point(0, 0)], 2, result)
