"""Tests for the ``repro.analysis`` static-analysis gate.

Each rule family gets fixture snippets in a throwaway tree: a true
positive that must fire, a laundered/clean negative that must not, and
the suppression/baseline paths that keep the gate adoptable.  The final
class is the self-check the CI ``lint`` job runs: the live ``src/``
tree must be clean modulo the committed baseline.
"""

import json
import pathlib
import textwrap

import pytest

from repro.analysis import Analyzer, Baseline
from repro.analysis.cli import main

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
COMMITTED_BASELINE = ROOT / "analysis-baseline.json"


def write_tree(root, files):
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def scan(tmp_path, files, baseline=None):
    write_tree(tmp_path, files)
    return Analyzer().run([tmp_path], baseline=baseline)


def rules_fired(report):
    return sorted({f.rule for f in report.new_findings})


# ---------------------------------------------------------------------------
# PA: privacy taint
# ---------------------------------------------------------------------------


class TestPrivacyTaint:
    def test_raw_location_into_sink_fires(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "lbs/leaky.py": """
                class CSP:
                    def handle(self, mpc, provider, uid):
                        location = mpc.locate(uid)
                        return provider.serve(location)
                """
            },
        )
        assert "PA001" in rules_fired(report)
        (finding,) = [f for f in report.new_findings if f.rule == "PA001"]
        assert finding.symbol == "CSP.handle"
        assert report.exit_code("new") == 1

    def test_laundered_flow_is_clean(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "lbs/clean.py": """
                class CSP:
                    def handle(self, mpc, policy, provider, uid):
                        location = mpc.locate(uid)
                        cloak = policy.cloak_for(uid)
                        anonymized = policy.anonymize(location)
                        provider.serve(cloak)
                        return provider.serve(anonymized)
                """
            },
        )
        assert rules_fired(report) == []
        assert report.exit_code("any") == 0

    def test_taint_survives_reassignment_and_fstring(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "lbs/hop.py": """
                def relay(mpc, provider, uid):
                    raw = mpc.location_of(uid)
                    boxed = (uid, raw)
                    provider.serve(boxed)
                    print(f"at {raw}")
                """
            },
        )
        assert rules_fired(report) == ["PA001", "PA002"]

    def test_wire_constructor_with_raw_location_fires(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "serving/pack.py": """
                def pack(rid, location, payload):
                    return AnonymizedRequest(rid, location, payload)
                """
            },
        )
        assert "PA003" in rules_fired(report)

    def test_inline_taint_tag_creates_a_source(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "lbs/tagged.py": """
                class Store:
                    def __init__(self, rows):
                        self.coords = dict(rows)  # taint: location

                    def ship(self, provider):
                        return provider.serve(self.coords)
                """
            },
        )
        assert "PA001" in rules_fired(report)


# ---------------------------------------------------------------------------
# FC: fail-closed exception discipline
# ---------------------------------------------------------------------------


class TestFailClosed:
    def test_swallowed_handler_in_scope_fires(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "lbs/handlers.py": """
                def lookup(db, uid):
                    try:
                        return db.get(uid)
                    except KeyError:
                        return None
                """
            },
        )
        assert rules_fired(report) == ["FC002"]

    def test_bare_except_fires_even_when_reraising(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "serving/bare.py": """
                def pump(step):
                    try:
                        step()
                    except:
                        raise
                """
            },
        )
        assert rules_fired(report) == ["FC001"]

    def test_reraise_and_degrade_are_clean(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "lbs/ladder.py": """
                def serve_safely(step, events):
                    try:
                        return step()
                    except ValueError:
                        events.append(DegradationEvent("stale", "fault"))
                    except OSError as exc:
                        raise ServiceUnavailableError("fail closed") from exc
                """
            },
        )
        assert rules_fired(report) == []

    def test_cancellation_swallow_is_exempt(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "serving/cancel.py": """
                import asyncio

                async def reap(task):
                    try:
                        await task
                    except asyncio.CancelledError:
                        pass
                """
            },
        )
        assert rules_fired(report) == []

    def test_out_of_scope_swallow_is_ignored(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "experiments/plots.py": """
                def best_effort(draw):
                    try:
                        draw()
                    except OSError:
                        pass
                """
            },
        )
        assert rules_fired(report) == []


# ---------------------------------------------------------------------------
# AS: async-safety
# ---------------------------------------------------------------------------


class TestAsyncSafety:
    def test_blocking_sleep_in_async_def_fires(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "serving/gateway.py": """
                import time

                async def pump(queue):
                    time.sleep(0.1)
                    return await queue.get()
                """
            },
        )
        assert rules_fired(report) == ["AS001"]

    def test_sync_retry_and_result_block_the_loop(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "serving/mixed.py": """
                from repro.robustness import retry_call

                async def call(fut, op):
                    retry_call(op)
                    return fut.result()
                """
            },
        )
        assert [f.rule for f in report.new_findings] == ["AS001", "AS001"]

    def test_await_in_loop_under_lock_fires(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "serving/hotlock.py": """
                async def drain(lock, items):
                    async with lock:
                        for item in items:
                            await item.flush()
                """
            },
        )
        assert rules_fired(report) == ["AS002"]

    def test_await_under_lock_outside_loop_is_clean(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "serving/oklock.py": """
                async def hand_off(lock, conn):
                    async with lock:
                        await conn.send()
                    for _ in range(3):
                        await conn.drain()
                """
            },
        )
        assert rules_fired(report) == []

    def test_sync_code_out_of_scope_is_ignored(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "experiments/warmup.py": """
                import time

                async def lazy():
                    time.sleep(1.0)
                """
            },
        )
        assert rules_fired(report) == []


# ---------------------------------------------------------------------------
# DT: determinism in the DP kernels
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_unseeded_rng_in_kernel_fires(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "core/bulk_dp.py": """
                import random

                import numpy as np

                def jitter(xs):
                    rng = np.random.default_rng()
                    return random.choice(xs)
                """
            },
        )
        assert [f.rule for f in report.new_findings] == ["DT001", "DT001"]

    def test_seeded_rng_is_clean(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "core/flat_dp.py": """
                import numpy as np

                def shuffle(xs, seed):
                    rng = np.random.default_rng(seed)
                    rng.shuffle(xs)
                    return xs
                """
            },
        )
        assert rules_fired(report) == []

    def test_wall_clock_in_kernel_fires(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "core/binary_dp.py": """
                import time

                def stamp(rows):
                    return [(time.time(), r) for r in rows]
                """
            },
        )
        assert rules_fired(report) == ["DT002"]

    def test_set_iteration_in_kernel_fires(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "trees/flat.py": """
                def order(users):
                    out = []
                    for uid in set(users):
                        out.append(uid)
                    return out
                """
            },
        )
        assert rules_fired(report) == ["DT003"]

    def test_same_code_outside_kernels_is_ignored(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "experiments/sampling.py": """
                import time

                def sample(users):
                    return (time.time(), set(users))
                """
            },
        )
        assert rules_fired(report) == []


# ---------------------------------------------------------------------------
# RS: resource safety
# ---------------------------------------------------------------------------


class TestResourceSafety:
    def test_unreleased_shared_memory_fires(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "trees/leaky.py": """
                from multiprocessing import shared_memory

                def publish(size):
                    shm = shared_memory.SharedMemory(create=True, size=size)
                    return shm.name
                """
            },
        )
        assert "RS001" in rules_fired(report)
        (finding,) = [f for f in report.new_findings if f.rule == "RS001"]
        assert finding.symbol == "publish"

    def test_with_block_is_clean(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "trees/ctx.py": """
                from multiprocessing import shared_memory

                def peek(name):
                    with shared_memory.SharedMemory(name=name) as shm:
                        return bytes(shm.buf[:4])
                """
            },
        )
        assert rules_fired(report) == []

    def test_try_handler_release_is_clean(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "trees/guarded.py": """
                from multiprocessing import shared_memory

                def publish(blocks, size):
                    shm = shared_memory.SharedMemory(create=True, size=size)
                    try:
                        for offset, data in blocks:
                            shm.buf[offset : offset + len(data)] = data
                    except BaseException:
                        shm.close()
                        shm.unlink()
                        raise
                    return shm
                """
            },
        )
        assert rules_fired(report) == []

    def test_owner_class_is_clean(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "trees/owner.py": """
                from multiprocessing import shared_memory

                class Segment:
                    @classmethod
                    def attach(cls, name):
                        shm = shared_memory.SharedMemory(name=name)
                        return cls(shm)

                    def __init__(self, shm):
                        self._shm = shm

                    def close(self):
                        self._shm.close()

                    def unlink(self):
                        self._shm.unlink()
                """
            },
        )
        assert rules_fired(report) == []

    def test_out_of_scope_creation_is_ignored(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "experiments/scratch.py": """
                from multiprocessing import shared_memory

                def grab(size):
                    return shared_memory.SharedMemory(create=True, size=size)
                """
            },
        )
        assert rules_fired(report) == []


# ---------------------------------------------------------------------------
# EP: epoch integrity of the flat-tree arrays
# ---------------------------------------------------------------------------


class TestEpochIntegrity:
    def test_array_store_outside_owners_fires(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "serving/patch.py": """
                def tweak(flat, idx):
                    flat.count[idx] = 0
                    flat.area[idx] += 1.0
                    del flat.leaf_rows[idx]
                """
            },
        )
        assert [f.rule for f in report.new_findings] == [
            "EP001", "EP001", "EP001",
        ]

    def test_owning_layers_may_mutate(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "trees/compile.py": """
                def fill(flat, idx, n):
                    flat.count[idx] = n
                """,
                "streaming/repair.py": """
                def patch(flat, idx, n):
                    flat.count[idx] = n
                """,
            },
        )
        assert rules_fired(report) == []

    def test_reads_and_other_fields_are_clean(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "serving/read.py": """
                def peek(flat, stats, idx):
                    total = flat.count[idx] + flat.area[idx]
                    stats.hits[idx] = total  # not a flat-tree field
                    return total
                """
            },
        )
        assert rules_fired(report) == []


# ---------------------------------------------------------------------------
# TJ: trajectory-ledger ownership
# ---------------------------------------------------------------------------


class TestTrajectoryLedgerOwnership:
    def test_ledger_mutation_outside_owner_fires(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "serving/rewrite.py": """
                def forget(ledger, uid, entry):
                    ledger._traj_surviving[uid] = frozenset()
                    ledger._traj_entries.clear()
                    ledger._traj_entries[uid].append(entry)
                    del ledger._traj_surviving[uid]
                """
            },
        )
        assert [f.rule for f in report.new_findings] == [
            "TJ001", "TJ001", "TJ001", "TJ001",
        ]

    def test_rebind_fires(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "lbs/reset.py": """
                def reset(ledger):
                    ledger._traj_surviving = {}
                """
            },
        )
        assert rules_fired(report) == ["TJ001"]

    def test_owning_package_may_mutate(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "trajectory/ledger.py": """
                class Ledger:
                    def record(self, uid, entry, surviving):
                        self._traj_surviving[uid] = surviving
                        self._traj_entries[uid].append(entry)
                """
            },
        )
        assert rules_fired(report) == []

    def test_reads_and_snapshots_are_clean(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "serving/consume.py": """
                def shard(ledger, uids):
                    alive = {u: ledger._traj_surviving.get(u) for u in uids}
                    state = ledger.subset_state(uids)
                    other = dict(ledger._traj_entries)
                    return alive, state, other
                """
            },
        )
        assert rules_fired(report) == []


# ---------------------------------------------------------------------------
# Suppressions, baselines, CLI
# ---------------------------------------------------------------------------

SWALLOW = {
    "lbs/quiet.py": """
    def lookup(db, uid):
        try:
            return db.get(uid)
        # Miss means "no override"; the caller re-raises.  # analysis: ok[FC002]
        except KeyError:
            return None
    """
}


class TestSuppressionAndBaseline:
    def test_inline_suppression_counts_not_fires(self, tmp_path):
        report = scan(tmp_path, SWALLOW)
        assert rules_fired(report) == []
        assert report.suppressed == 1

    def test_baseline_grandfathers_old_findings(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "lbs/old.py": """
                def lookup(db, uid):
                    try:
                        return db.get(uid)
                    except KeyError:
                        return None
                """
            },
        )
        assert report.exit_code("new") == 1
        baseline = Baseline.from_findings(report.findings)

        again = Analyzer().run([tmp_path], baseline=baseline)
        assert again.new_findings == []
        assert len(again.baselined_findings) == 1
        assert again.exit_code("new") == 0
        assert again.exit_code("any") == 1  # still visible, just not fatal

    def test_baseline_is_line_number_independent(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "lbs/drift.py": """
                def lookup(db, uid):
                    try:
                        return db.get(uid)
                    except KeyError:
                        return None
                """
            },
        )
        baseline = Baseline.from_findings(report.findings)
        # Unrelated edit above the finding: the fingerprint must hold.
        target = tmp_path / "lbs" / "drift.py"
        target.write_text(
            '"""Docstring pushed everything down two lines."""\n\n'
            + target.read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        again = Analyzer().run([tmp_path], baseline=baseline)
        assert again.findings and again.new_findings == []


class TestCli:
    def _violation_tree(self, tmp_path):
        return write_tree(
            tmp_path,
            {
                "lbs/leak.py": """
                def relay(mpc, provider, uid):
                    return provider.serve(mpc.locate(uid))
                """
            },
        )

    def test_exit_one_on_violation_zero_when_clean(self, tmp_path, capsys):
        tree = self._violation_tree(tmp_path)
        assert main([str(tree)]) == 1
        clean = write_tree(tmp_path / "ok", {"lbs/fine.py": "X = 1\n"})
        assert main([str(clean)]) == 0
        capsys.readouterr()

    def test_json_report_schema(self, tmp_path, capsys):
        tree = self._violation_tree(tmp_path)
        assert main([str(tree), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert set(payload["counts"]) == {
            "total", "new", "baselined", "suppressed", "files",
        }
        (finding,) = payload["findings"]
        for key in ("rule", "path", "line", "col", "message",
                    "symbol", "snippet", "fingerprint", "baselined"):
            assert key in finding
        assert finding["rule"] == "PA001"
        assert not finding["baselined"]

    def test_write_baseline_roundtrip(self, tmp_path, capsys):
        tree = self._violation_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(
            [str(tree), "--baseline", str(baseline), "--write-baseline"]
        ) == 0
        assert main([str(tree), "--baseline", str(baseline)]) == 0
        assert main(
            [str(tree), "--baseline", str(baseline), "--fail-on", "any"]
        ) == 1
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("PA001", "FC001", "AS001", "DT001"):
            assert rule_id in out


# ---------------------------------------------------------------------------
# Self-check: the live tree stays clean
# ---------------------------------------------------------------------------


class TestLiveTree:
    def test_src_is_clean_modulo_committed_baseline(self):
        baseline = (
            Baseline.load(COMMITTED_BASELINE)
            if COMMITTED_BASELINE.exists()
            else None
        )
        report = Analyzer().run([SRC], baseline=baseline)
        assert [f.render() for f in report.new_findings] == []
        assert report.files_scanned > 50

    def test_committed_baseline_is_empty(self):
        # The gate was adopted with every true positive fixed, so the
        # baseline must not silently regrow; grandfathering a finding
        # is a reviewed decision, not a default.
        assert len(Baseline.load(COMMITTED_BASELINE)) == 0
