"""Tests for the high-level anonymizer façade."""

import pytest

from repro import (
    IncrementalAnonymizer,
    LocationDatabase,
    Point,
    PolicyAwareAnonymizer,
    Rect,
    ReproError,
)
from repro.core.binary_dp import solve
from repro.core.requests import ServiceRequest
from repro.data import uniform_users
from repro.lbs import random_moves
from repro.trees import BinaryTree


@pytest.fixture
def region():
    return Rect(0, 0, 256, 256)


@pytest.fixture
def db(region):
    return uniform_users(150, region, seed=21)


class TestPolicyAwareAnonymizer:
    def test_requires_fit(self, region):
        anonymizer = PolicyAwareAnonymizer(region, k=5)
        with pytest.raises(ReproError, match="fit"):
            __ = anonymizer.optimal_cost
        with pytest.raises(ReproError, match="fit"):
            __ = anonymizer.policy

    def test_k_validated(self, region):
        with pytest.raises(ReproError):
            PolicyAwareAnonymizer(region, k=0)

    def test_fit_returns_self(self, region, db):
        anonymizer = PolicyAwareAnonymizer(region, k=5)
        assert anonymizer.fit(db) is anonymizer

    def test_cost_matches_direct_solver(self, region, db):
        anonymizer = PolicyAwareAnonymizer(region, k=5).fit(db)
        direct = solve(BinaryTree.build(region, db, 5), 5).optimal_cost
        assert anonymizer.optimal_cost == pytest.approx(direct)

    def test_policy_is_cached(self, region, db):
        anonymizer = PolicyAwareAnonymizer(region, k=5).fit(db)
        assert anonymizer.policy is anonymizer.policy

    def test_anonymize_round_trip(self, region, db):
        anonymizer = PolicyAwareAnonymizer(region, k=5).fit(db)
        uid = db.user_ids()[3]
        sr = ServiceRequest(uid, db.location_of(uid), (("poi", "rest"),))
        ar = anonymizer.anonymize(sr)
        assert ar.cloak.contains(sr.location)
        assert ar.payload == sr.payload

    def test_average_cloak_area(self, region, db):
        anonymizer = PolicyAwareAnonymizer(region, k=5).fit(db)
        assert anonymizer.average_cloak_area() == pytest.approx(
            anonymizer.optimal_cost / len(db)
        )

    def test_policy_is_k_anonymous(self, region, db):
        anonymizer = PolicyAwareAnonymizer(region, k=7).fit(db)
        assert anonymizer.policy.min_group_size() >= 7


class TestIncrementalAnonymizer:
    def test_update_matches_bulk(self, region, db):
        anonymizer = IncrementalAnonymizer(region, k=5).fit(db)
        moves = random_moves(db, 0.2, region, max_distance=30, seed=4)
        report = anonymizer.update(moves)
        assert report.moved_users == len(moves)
        moved_db = db.with_moves(moves)
        bulk = solve(BinaryTree.build(region, moved_db, 5), 5).optimal_cost
        assert anonymizer.optimal_cost == pytest.approx(bulk)

    def test_update_report_fractions(self, region, db):
        anonymizer = IncrementalAnonymizer(region, k=5).fit(db)
        moves = random_moves(db, 0.05, region, max_distance=10, seed=5)
        report = anonymizer.update(moves)
        assert 0.0 < report.recomputed_fraction <= 1.0
        assert report.recomputed_nodes <= report.total_nodes

    def test_policy_refreshed_after_update(self, region, db):
        anonymizer = IncrementalAnonymizer(region, k=5).fit(db)
        before = anonymizer.policy
        uid = db.user_ids()[0]
        anonymizer.update({uid: Point(255, 255)})
        after = anonymizer.policy
        assert after.cloak_for(uid).contains(Point(255, 255))
        assert before is not after

    def test_current_db_tracks_moves(self, region, db):
        anonymizer = IncrementalAnonymizer(region, k=5).fit(db)
        uid = db.user_ids()[0]
        anonymizer.update({uid: Point(200, 200)})
        assert anonymizer.current_db.location_of(uid) == Point(200, 200)

    def test_repeated_updates_stay_consistent(self, region, db):
        anonymizer = IncrementalAnonymizer(region, k=6).fit(db)
        current = db
        for step in range(5):
            moves = random_moves(current, 0.1, region, max_distance=25, seed=step)
            anonymizer.update(moves)
            current = current.with_moves(moves)
            bulk = solve(BinaryTree.build(region, current, 6), 6).optimal_cost
            assert anonymizer.optimal_cost == pytest.approx(bulk)
            assert anonymizer.policy.min_group_size() >= 6
