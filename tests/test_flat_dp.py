"""Property tests for the flat-array DP engine (§V over arrays).

The flat engine's contract is *bit identity*: every per-node cost
vector — not just the optimum — must equal the object solver's, which
in turn matches the literal Algorithm 1.  The memoized incremental
path must preserve that identity across arbitrary move schedules while
recomputing no more nodes than the object path.
"""

import random
from collections import Counter
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.attacks.audit import audit_policy
from repro.core.binary_dp import (
    _solve_object,
    resolve_dirty,
    solve,
    solve_best_orientation,
)
from repro.core.bulk_dp import solve_naive
from repro.core.errors import NoFeasiblePolicyError
from repro.core.flat_dp import (
    FlatTreeSolution,
    SubtreeMemo,
    extract_cloaks,
    is_binary_tree,
    resolve_dirty_flat,
    solve_arrays,
    solve_flat,
)
from repro.core.geometry import Point, Rect
from repro.core.locationdb import LocationDatabase
from repro.data import uniform_users
from repro.lbs import random_moves
from repro.parallel import parallel_bulk_anonymize
from repro.trees.binarytree import BinaryTree
from repro.trees.flat import FlatTree

REGION = Rect(0, 0, 256, 256)


def _random_instance(rng, n_max=70):
    n = rng.randint(0, n_max)
    k = rng.randint(1, 6)
    rows = [
        (f"u{i}", rng.uniform(0, 256), rng.uniform(0, 256)) for i in range(n)
    ]
    return LocationDatabase(rows), k


def _cost_or_none(solution):
    try:
        return solution.optimal_cost
    except NoFeasiblePolicyError:
        return None


@pytest.mark.parametrize("seed", [101, 102, 103, 104, 105, 106])
def test_flat_matches_object_and_naive(seed):
    """Flat ≡ object (bit-identical vectors) ≡ Algorithm 1 (cost)."""
    rng = random.Random(seed)
    for __ in range(6):
        db, k = _random_instance(rng)
        tree = BinaryTree.build(REGION, db, k)
        for prune in (True, False):
            flat_sol = solve_flat(tree, k, prune=prune)
            obj_sol = _solve_object(tree, k, prune)
            cf, co = _cost_or_none(flat_sol), _cost_or_none(obj_sol)
            assert cf == co  # exact, including infeasibility
            for nid, ns in obj_sol.solutions.items():
                assert np.array_equal(ns.vec, flat_sol.solutions[nid].vec)
        naive_cost = _cost_or_none(solve_naive(tree, k))
        if cf is None:
            assert naive_cost is None
        else:
            assert naive_cost == pytest.approx(cf, rel=1e-9, abs=1e-9)


@pytest.mark.parametrize("seed", [201, 202, 203])
def test_flat_policy_is_k_anonymous(seed):
    """The extracted policy achieves the optimum and cloaks ≥ k users."""
    rng = random.Random(seed)
    for __ in range(4):
        db, k = _random_instance(rng)
        if len(db) < k:
            continue
        tree = BinaryTree.build(REGION, db, k)
        flat_sol = solve_flat(tree, k)
        cost = _cost_or_none(flat_sol)
        if cost is None:
            continue
        policy = flat_sol.policy()
        assert policy.cost() == pytest.approx(cost, rel=1e-9, abs=1e-9)
        assert len(policy) == len(db)
        report = audit_policy(policy, k)
        assert report.safe_policy_aware, report.summary()


@pytest.mark.parametrize("seed", [301, 302, 303, 304])
def test_standalone_extraction_matches_solution_policy(seed):
    """Worker-side extract_cloaks ≡ the solution's own extraction."""
    rng = random.Random(seed)
    for __ in range(4):
        db, k = _random_instance(rng)
        tree = BinaryTree.build(REGION, db, k)
        flat = FlatTree.compile(tree, with_payload=True)
        vecs = solve_arrays(flat, k)
        sol = solve_flat(tree, k)
        cost = _cost_or_none(sol)
        if cost is None:
            with pytest.raises(NoFeasiblePolicyError):
                extract_cloaks(flat, vecs, k)
            continue
        cloaks = extract_cloaks(flat, vecs, k)
        assert set(cloaks) == set(db.user_ids())
        groups = Counter(cloaks.values())
        assert all(size >= k for size in groups.values())
        total = sum((r[2] - r[0]) * (r[3] - r[1]) for r in cloaks.values())
        assert total == pytest.approx(cost, rel=1e-9, abs=1e-9)


@pytest.mark.parametrize("seed", [401, 402, 403, 404, 405])
def test_memoized_repair_equals_scratch_solve(seed):
    """resolve_dirty on the flat engine stays bit-identical to a from-
    scratch flat solve across random move schedules, and never
    recomputes more nodes than the object path."""
    rng = random.Random(seed)
    region = Rect(0, 0, 2048, 2048)
    db = uniform_users(rng.randint(40, 120), region, seed=seed)
    k = rng.randint(2, 6)
    tree_f = BinaryTree.build(region, db, k)
    tree_o = BinaryTree.build(region, db, k)
    sol_f = solve(tree_f, k, engine="flat")
    sol_o = solve(tree_o, k, engine="object")
    assert isinstance(sol_f, FlatTreeSolution)
    for step in range(5):
        moves = random_moves(
            tree_f.db, 0.3, region, max_distance=600, seed=seed * 10 + step
        )
        dirty_f = tree_f.apply_moves(moves)
        dirty_o = tree_o.apply_moves(moves)
        sol_f, rec_f = resolve_dirty(sol_f, dirty_f)
        sol_o, rec_o = resolve_dirty(sol_o, dirty_o)
        scratch = solve_flat(tree_f, k)
        assert rec_f <= rec_o
        assert _cost_or_none(sol_f) == _cost_or_none(scratch)
        assert _cost_or_none(sol_f) == _cost_or_none(sol_o)
        for nid, ns in scratch.solutions.items():
            assert np.array_equal(ns.vec, sol_f.solutions[nid].vec)


def test_memo_shares_across_identical_subtrees():
    """A 2×2 grid of identical leaves hash-conses: far fewer misses
    than nodes, and a re-solve with the same memo is all hits."""
    rows = []
    for qx in (32, 96):
        for qy in (32, 96):
            for i in range(4):
                rows.append((f"u{qx}-{qy}-{i}", qx + i, qy + i))
    db = LocationDatabase(rows)
    tree = BinaryTree.build(Rect(0, 0, 128, 128), db, 2)
    memo = SubtreeMemo(2, True)
    flat = FlatTree.compile(tree)
    first = solve_arrays(flat, 2, memo=memo)
    assert memo.hits > 0  # the four congruent quadrant subtrees share
    misses_after_first = memo.misses
    again = solve_arrays(flat, 2, memo=memo)
    assert memo.misses == misses_after_first  # everything served cached
    for a, b in zip(first, again):
        assert np.array_equal(a, b)


@pytest.mark.parametrize("transport", ["flat", "rows"])
def test_parallel_transports_agree(transport):
    region = Rect(0, 0, 4096, 4096)
    db = uniform_users(600, region, seed=77)
    results = {}
    for tr in ("flat", "rows"):
        results[tr] = parallel_bulk_anonymize(
            region, db, 10, 4, transport=tr
        )
    merged_flat = results["flat"].master.merged
    merged_rows = results["rows"].master.merged
    assert merged_flat.cost() == pytest.approx(merged_rows.cost(), rel=1e-9)
    for uid in db.user_ids():
        assert merged_flat.cloak_for(uid) == merged_rows.cloak_for(uid)
    report = audit_policy(results[transport].master.merged, 10)
    assert report.safe_policy_aware, report.summary()


def test_orientation_pool_matches_serial():
    region = Rect(0, 0, 1024, 1024)
    db = uniform_users(300, region, seed=55)
    serial = solve_best_orientation(region, db, 8)
    with ThreadPoolExecutor(max_workers=2) as pool:
        pooled = solve_best_orientation(region, db, 8, pool=pool)
    obj = solve_best_orientation(region, db, 8, engine="object")
    assert serial.optimal_cost == pooled.optimal_cost
    assert serial.optimal_cost == obj.optimal_cost


def test_engine_validation_and_fallback():
    db = uniform_users(30, REGION, seed=9)
    tree = BinaryTree.build(REGION, db, 3)
    with pytest.raises(Exception):
        solve(tree, 3, engine="warp")
    assert is_binary_tree(tree)
    flat_sol = solve(tree, 3)  # default engine
    assert isinstance(flat_sol, FlatTreeSolution)
    obj_sol = solve(tree, 3, engine="object")
    assert flat_sol.optimal_cost == obj_sol.optimal_cost


def test_empty_and_tiny_instances():
    empty = LocationDatabase([])
    tree = BinaryTree.build(REGION, empty, 2)
    sol = solve_flat(tree, 2)
    assert sol.optimal_cost == 0.0
    assert sol.policy().cost() == 0.0
    flat = FlatTree.compile(tree, with_payload=True)
    assert extract_cloaks(flat, solve_arrays(flat, 2), 2) == {}
    # Fewer users than k: infeasible, consistently in both engines.
    two = LocationDatabase([("a", 1, 1), ("b", 2, 2)])
    tree2 = BinaryTree.build(REGION, two, 5)
    assert _cost_or_none(solve_flat(tree2, 5)) is None
    assert _cost_or_none(_solve_object(tree2, 5, True)) is None
