"""Tests for the adaptive Casper pyramid."""

import numpy as np
import pytest

from repro import LocationDatabase, NoFeasiblePolicyError, Point, Rect, TreeError
from repro.baselines import casper_policy
from repro.baselines.casper_adaptive import CasperPyramid
from repro.data import uniform_users
from repro.lbs import random_moves


@pytest.fixture
def region():
    return Rect(0, 0, 1024, 1024)


@pytest.fixture
def db(region):
    return uniform_users(300, region, seed=281)


class TestConstruction:
    def test_counts_roll_up(self, region, db):
        pyramid = CasperPyramid(region, db, height=6)
        pyramid.check_counts()

    def test_square_required(self, db):
        with pytest.raises(TreeError, match="square"):
            CasperPyramid(Rect(0, 0, 10, 20), db, 3)

    def test_height_validated(self, region, db):
        with pytest.raises(TreeError):
            CasperPyramid(region, db, -1)

    def test_zero_height_pyramid(self, region, db):
        pyramid = CasperPyramid(region, db, 0)
        assert pyramid.cloak(Point(5, 5), 10) == region


class TestCloaking:
    def test_cloak_contains_point_and_k_users(self, region, db):
        pyramid = CasperPyramid(region, db, height=6)
        for uid, point in list(db.items())[:60]:
            cloak = pyramid.cloak(point, 10)
            assert cloak.contains(point)
            assert db.count_in(cloak) >= 10

    def test_matches_prototype_cloak_sizes(self, region, db):
        """On a static snapshot the pyramid's cloaks have exactly the
        sizes the quadtree prototype produces (orientation of an
        equal-count semi tie may differ; areas cannot)."""
        from repro.trees import QuadTree

        k = 10
        height = 6
        tree = QuadTree.build_adaptive(
            region, db, split_threshold=k, max_depth=height
        )
        # Precondition for exact depth correspondence: no adaptive leaf
        # at max depth still holds ≥ k users.
        assert all(
            leaf.count < k or leaf.depth < height for leaf in tree.leaves()
        )
        prototype = casper_policy(region, db, k, max_depth=height, tree=tree)
        pyramid = CasperPyramid(region, db, height=height)
        for uid, point in db.items():
            assert pyramid.cloak(point, k).area == pytest.approx(
                prototype.cloak_for(uid).area
            )

    def test_policy_is_k_inside(self, region, db):
        pyramid = CasperPyramid(region, db, height=6)
        policy = pyramid.policy(10)
        assert policy.min_inside_count() >= 10

    def test_infeasible(self, region):
        db = LocationDatabase([("a", 1, 1)])
        pyramid = CasperPyramid(region, db, 4)
        with pytest.raises(NoFeasiblePolicyError):
            pyramid.cloak(Point(1, 1), 2)


class TestMaintenance:
    def test_moves_update_counts(self, region, db):
        pyramid = CasperPyramid(region, db, height=6)
        moves = random_moves(db, 0.2, region, max_distance=100, seed=282)
        touched = pyramid.apply_moves(moves)
        pyramid.check_counts()
        assert touched >= 0
        assert len(pyramid.db) == len(db)

    def test_incremental_equals_rebuild(self, region, db):
        pyramid = CasperPyramid(region, db, height=6)
        current = db
        for step in range(3):
            moves = random_moves(current, 0.3, region, max_distance=200, seed=step)
            pyramid.apply_moves(moves)
            current = current.with_moves(moves)
        fresh = CasperPyramid(region, current, height=6)
        for level in range(7):
            assert np.array_equal(
                pyramid.counts[level], fresh.counts[level]
            )
        # And the cloaks agree with the rebuilt pyramid's.
        for uid, point in list(current.items())[:40]:
            assert pyramid.cloak(point, 10) == fresh.cloak(point, 10)

    def test_move_cost_is_logarithmic(self, region, db):
        pyramid = CasperPyramid(region, db, height=6)
        uid = db.user_ids()[0]
        touched = pyramid.apply_moves({uid: Point(1000, 1000)})
        assert touched == 2 * 7  # two paths of height+1 cells

    def test_within_cell_move_is_free(self, region, db):
        pyramid = CasperPyramid(region, db, height=2)  # huge cells
        uid, point = next(iter(db.items()))
        nearby = Point(point.x + 0.25, point.y)
        touched = pyramid.apply_moves({uid: nearby})
        assert touched == 0
        assert pyramid.db.location_of(uid) == nearby

    def test_unknown_user_rejected(self, region, db):
        pyramid = CasperPyramid(region, db, 4)
        with pytest.raises(TreeError, match="unknown"):
            pyramid.apply_moves({"ghost": Point(1, 1)})

    def test_move_outside_map_rejected(self, region, db):
        pyramid = CasperPyramid(region, db, 4)
        with pytest.raises(TreeError, match="outside"):
            pyramid.apply_moves({db.user_ids()[0]: Point(-5, 5)})
