"""Unit tests for cloaking policies (Definition 4, cost of §IV)."""

import pytest

from repro import LocationDatabase, Point, PolicyError, Rect
from repro.core.policy import CloakingPolicy
from repro.core.requests import ServiceRequest


@pytest.fixture
def db():
    return LocationDatabase([("a", 1, 1), ("b", 1, 2), ("c", 3, 3)])


@pytest.fixture
def policy(db):
    r_left = Rect(0, 0, 2, 4)
    r_all = Rect(0, 0, 4, 4)
    return CloakingPolicy({"a": r_left, "b": r_left, "c": r_all}, db, name="p")


class TestConstruction:
    def test_masking_enforced(self, db):
        with pytest.raises(PolicyError, match="not masking"):
            CloakingPolicy(
                {"a": Rect(2, 2, 4, 4), "b": Rect(0, 0, 4, 4), "c": Rect(0, 0, 4, 4)},
                db,
            )

    def test_unknown_user_rejected(self, db):
        cloaks = {u: Rect(0, 0, 4, 4) for u in ("a", "b", "c", "ghost")}
        with pytest.raises(PolicyError, match="unknown user"):
            CloakingPolicy(cloaks, db)

    def test_total_coverage_required(self, db):
        with pytest.raises(PolicyError, match="does not cover"):
            CloakingPolicy({"a": Rect(0, 0, 4, 4)}, db)

    def test_empty_policy_over_empty_db(self):
        policy = CloakingPolicy({}, LocationDatabase())
        assert len(policy) == 0
        assert policy.cost() == 0.0
        assert policy.average_cloak_area() == 0.0


class TestLookup:
    def test_cloak_for(self, policy):
        assert policy.cloak_for("a") == Rect(0, 0, 2, 4)

    def test_cloak_for_unknown_raises(self, policy):
        with pytest.raises(PolicyError):
            policy.cloak_for("ghost")


class TestAnonymize:
    def test_produces_masking_request(self, policy, db):
        sr = ServiceRequest("a", Point(1, 1), (("poi", "rest"),))
        ar = policy.anonymize(sr)
        assert ar.cloak == Rect(0, 0, 2, 4)
        assert ar.payload == sr.payload
        assert ar.cloak.contains(sr.location)

    def test_request_ids_increment(self, policy):
        sr_a = ServiceRequest("a", Point(1, 1))
        sr_b = ServiceRequest("b", Point(1, 2))
        assert policy.anonymize(sr_a).request_id < policy.anonymize(sr_b).request_id

    def test_stale_request_rejected(self, policy):
        # Location does not match the snapshot → wrong-snapshot use.
        sr = ServiceRequest("a", Point(2, 2))
        with pytest.raises(PolicyError, match="not valid"):
            policy.anonymize(sr)

    def test_no_identity_in_output(self, policy):
        sr = ServiceRequest("a", Point(1, 1))
        ar = policy.anonymize(sr)
        assert not hasattr(ar, "user_id")
        assert "a" not in repr(ar.cloak)


class TestAnalysis:
    def test_cost_sums_cloak_areas(self, policy):
        assert policy.cost() == 8.0 + 8.0 + 16.0

    def test_average_cloak_area(self, policy):
        assert policy.average_cloak_area() == pytest.approx(32.0 / 3)

    def test_groups(self, policy):
        groups = policy.groups()
        assert sorted(groups[Rect(0, 0, 2, 4)]) == ["a", "b"]
        assert groups[Rect(0, 0, 4, 4)] == ["c"]

    def test_min_group_size(self, policy):
        assert policy.min_group_size() == 1

    def test_min_inside_count(self, policy):
        # The big cloak holds all 3 users; the left cloak holds a and b.
        assert policy.min_inside_count() == 2

    def test_restricted_to(self, policy):
        sub = policy.restricted_to(["a", "b"])
        assert len(sub) == 2
        assert sub.cloak_for("a") == Rect(0, 0, 2, 4)
