"""Randomized validation of the paper's formal claims (Lemmas 1–5,
Propositions 1–2, Theorem 2) via the executable checkers."""

import itertools

import numpy as np
import pytest

from repro import LocationDatabase, Rect
from repro.baselines import casper_policy, policy_unaware_binary, policy_unaware_quad
from repro.core.binary_dp import solve
from repro.core.configuration import enumerate_ksummation_configurations
from repro.core.lemmas import (
    LemmaViolation,
    check_lemma1,
    check_lemma2,
    check_lemma3,
    check_lemma5,
    check_proposition1,
    check_proposition2,
    check_theorem2,
)
from repro.trees import BinaryTree

from conftest import random_instance


def small_tree(seed, k=None):
    region, db, drawn_k = random_instance(seed, n_range=(4, 14), k_range=(2, 4))
    k = k or drawn_k
    return region, db, k, BinaryTree.build(region, db, k, max_depth=4)


def some_configs(tree, k, limit=12):
    return list(
        itertools.islice(
            enumerate_ksummation_configurations(tree, k, max_nodes=64), limit
        )
    )


class TestLemma1:
    @pytest.mark.parametrize("seed", range(700, 708))
    def test_equivalence_classes(self, seed):
        __, ___, k, tree = small_tree(seed)
        for config in some_configs(tree, k):
            check_lemma1(tree, config, k)


class TestLemma2:
    @pytest.mark.parametrize("seed", range(708, 716))
    def test_configuration_cost(self, seed):
        __, ___, k, tree = small_tree(seed)
        for config in some_configs(tree, k):
            check_lemma2(tree, config)


class TestLemma3:
    @pytest.mark.parametrize("seed", range(716, 724))
    def test_ksummation_iff_anonymous(self, seed):
        __, ___, k, tree = small_tree(seed)
        # Complete k-summation configurations must check out...
        for config in some_configs(tree, k):
            check_lemma3(tree, config, k)
        # ...and so must the same configurations tested against k+1
        # (where k-summation may fail and anonymity must fail with it).
        for config in some_configs(tree, k, limit=6):
            check_lemma3(tree, config, k + 1)

    def test_checkers_are_sensitive(self):
        """The checkers really do raise on violating inputs: a policy
        whose cloak holds fewer than k users trips Proposition 2's
        check, and a breached group trips Proposition 1's premise-free
        variant is vacuous — so test via check_proposition2."""
        from repro.core.policy import CloakingPolicy

        db = LocationDatabase([("a", 1, 1), ("b", 7, 7)])
        lonely = CloakingPolicy(
            {"a": Rect(0, 0, 2, 2), "b": Rect(6, 6, 8, 8)}, db
        )
        with pytest.raises(LemmaViolation):
            check_proposition2(lonely, 2)


class TestLemma5:
    @pytest.mark.parametrize("seed", range(724, 736))
    def test_pruning_preserves_optimum(self, seed):
        __, ___, k, tree = small_tree(seed)
        check_lemma5(tree, k)

    def test_on_skewed_instance(self):
        rng = np.random.default_rng(737)
        coords = np.concatenate(
            [rng.uniform(0, 4, (20, 2)), rng.uniform(60, 64, (5, 2))]
        )
        db = LocationDatabase.from_array(coords)
        tree = BinaryTree.build(Rect(0, 0, 64, 64), db, 3, max_depth=8)
        check_lemma5(tree, 3)


class TestPropositions:
    @pytest.mark.parametrize("seed", range(740, 748))
    def test_proposition1_on_dp_output(self, seed):
        region, db, k = random_instance(seed)
        if len(db) < k:
            return
        policy = solve(BinaryTree.build(region, db, k, max_depth=6), k).policy()
        check_proposition1(policy, k)

    @pytest.mark.parametrize(
        "maker", [policy_unaware_binary, policy_unaware_quad, casper_policy]
    )
    def test_proposition2_on_kinside_family(self, maker):
        region = Rect(0, 0, 512, 512)
        rng = np.random.default_rng(748)
        db = LocationDatabase.from_array(rng.uniform(0, 512, (120, 2)))
        policy = maker(region, db, 8)
        check_proposition2(policy, 8)


class TestTheorem2:
    @pytest.mark.parametrize("seed", range(750, 758))
    def test_dp_matches_exhaustive(self, seed):
        __, ___, k, tree = small_tree(seed)
        check_theorem2(tree, k)

    def test_empty_instance(self):
        tree = BinaryTree.build(Rect(0, 0, 8, 8), LocationDatabase(), 2)
        check_theorem2(tree, 2)
