"""Tests for the shared experiment workload cache."""

import pytest

from repro.experiments import ScaleProfile, current_scale, master_for, sample_for
from repro.experiments.workloads import scaled_master

TINY = ScaleProfile(
    name="tiny",
    master_intersections=200,
    db_sweep=(500, 1_000),
    k_sweep=(5,),
    db_fixed=800,
    k=5,
    server_sweep=(1,),
    move_percentages=(1.0,),
    jurisdiction_sweep=(1,),
)


class TestMasterCache:
    def test_master_is_cached_per_size(self):
        a = master_for(200)
        b = master_for(200)
        assert a is b  # same lru_cache entry, not a regeneration

    def test_master_size_follows_recipe(self):
        __, db = master_for(200)
        assert len(db) == 2_000  # 10 users per intersection

    def test_scaled_master_uses_profile(self):
        region, db = scaled_master(TINY)
        assert len(db) == 2_000
        assert region.width == region.height


class TestSampleFor:
    def test_sample_size(self):
        __, db = sample_for(500, TINY)
        assert len(db) == 500

    def test_oversized_request_returns_master(self):
        __, master = scaled_master(TINY)
        __, db = sample_for(10_000_000, TINY)
        assert len(db) == len(master)

    def test_samples_are_deterministic(self):
        __, a = sample_for(400, TINY, seed=3)
        __, b = sample_for(400, TINY, seed=3)
        assert a.user_ids() == b.user_ids()

    def test_samples_come_from_master(self):
        __, master = scaled_master(TINY)
        __, db = sample_for(300, TINY)
        for uid in db.user_ids():
            assert db.location_of(uid) == master.location_of(uid)


class TestProfiles:
    def test_default_profile_shape(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        profile = current_scale()
        assert profile.name == "default"
        assert profile.k == 50  # the paper's default degree
        assert 1 in profile.server_sweep

    def test_all_profiles_are_consistent(self, monkeypatch):
        for name in ("quick", "default", "full"):
            monkeypatch.setenv("REPRO_SCALE", name)
            profile = current_scale()
            assert profile.db_fixed <= 10 * profile.master_intersections
            assert max(profile.db_sweep) <= 10 * profile.master_intersections
            assert min(profile.k_sweep) >= 2
