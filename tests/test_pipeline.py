"""End-to-end tests of the privacy-conscious pipeline (§II-B)."""

import pytest

from repro import Point, Rect, ReproError
from repro.attacks import PolicyAwareAttacker, PolicyUnawareAttacker
from repro.data import uniform_users
from repro.lbs import CSP, LBSProvider, generate_pois, random_moves


@pytest.fixture
def region():
    return Rect(0, 0, 4096, 4096)


@pytest.fixture
def db(region):
    return uniform_users(300, region, seed=131)


@pytest.fixture
def csp(region, db):
    pois = generate_pois(region, {"rest": 100, "groc": 50}, seed=132)
    return CSP(region, k=10, db=db, provider=LBSProvider(pois))


class TestServing:
    def test_result_is_true_nearest(self, csp, db):
        uid = db.user_ids()[0]
        served = csp.request(uid, [("poi", "rest")])
        location = db.location_of(uid)
        true_nn = csp.provider.pois.nearest(location, "rest")
        assert served.result.poi_id == true_nn.poi_id

    def test_anonymized_request_masks_sender(self, csp, db):
        uid = db.user_ids()[1]
        served = csp.request(uid, [("poi", "rest")])
        assert served.anonymized.cloak.contains(db.location_of(uid))
        assert served.anonymized.payload == served.request.payload

    def test_cloak_holds_k_users_and_k_group(self, csp, db):
        uid = db.user_ids()[2]
        served = csp.request(uid, [("poi", "groc")])
        unaware = PolicyUnawareAttacker(db)
        aware = PolicyAwareAttacker(csp.policy)
        assert unaware.attack(served.anonymized).anonymity >= 10
        assert aware.attack(served.anonymized).anonymity >= 10

    def test_no_identity_leaks_to_lbs(self, csp, db):
        uid = db.user_ids()[3]
        served = csp.request(uid, [("poi", "rest")])
        # The anonymized request carries nothing but id / cloak / payload.
        assert served.anonymized.__dataclass_fields__.keys() == {
            "request_id",
            "cloak",
            "payload",
        }

    def test_unknown_user_rejected(self, csp):
        with pytest.raises(ReproError, match="no location"):
            csp.request("ghost", [("poi", "rest")])

    def test_cache_suppresses_duplicates(self, csp, db):
        # Two users sharing a cloak group issue the same query.
        uid = db.user_ids()[4]
        group = [
            u
            for u, region in csp.policy.items()
            if region == csp.policy.cloak_for(uid)
        ]
        assert len(group) >= 10
        first = csp.request(group[0], [("poi", "rest")])
        second = csp.request(group[1], [("poi", "rest")])
        assert not first.cache_hit and second.cache_hit
        assert csp.provider.served == 1

    def test_cache_disabled(self, region, db):
        pois = generate_pois(region, {"rest": 30}, seed=133)
        csp = CSP(region, 10, db, LBSProvider(pois), use_cache=False)
        uid = db.user_ids()[0]
        csp.request(uid, [("poi", "rest")])
        csp.request(uid, [("poi", "rest")])
        assert csp.provider.served == 2


class TestSnapshots:
    def test_advance_then_serve(self, csp, db, region):
        moves = random_moves(db, 0.1, region, max_distance=50, seed=134)
        report = csp.advance_snapshot(moves)
        assert report.moved_users == len(moves)
        moved_uid = next(iter(moves))
        served = csp.request(moved_uid, [("poi", "rest")])
        assert served.anonymized.cloak.contains(moves[moved_uid])

    def test_policy_stays_anonymous_across_snapshots(self, csp, db, region):
        current = db
        for step in range(3):
            moves = random_moves(current, 0.2, region, max_distance=80, seed=step)
            csp.advance_snapshot(moves)
            current = current.with_moves(moves)
            assert csp.policy.min_group_size() >= 10

    def test_mpc_view_refreshed(self, csp, db, region):
        uid = db.user_ids()[0]
        csp.advance_snapshot({uid: Point(1.0, 1.0)})
        assert csp.mpc.locate(uid) == Point(1.0, 1.0)


class TestCoarseCloakFallThrough:
    """Regression: ``_coarse_cloak_for`` swallows *only* the unknown-user
    lookup miss, and the fall-through still surfaces the canonical
    error (the fail-closed linter pins the handler shape; these tests
    pin the behavior it justifies)."""

    def test_unknown_user_with_registered_coarsening_still_rejects(
        self, csp, db, region
    ):
        # Register a coarsening so _coarse_cloak_for actually runs its
        # policy lookup instead of short-circuiting on the empty dict.
        csp._coarsened[0] = region
        assert csp._coarse_cloak_for("ghost") is None
        with pytest.raises(ReproError, match="no location"):
            csp.request("ghost", [("poi", "rest")])

    def test_known_user_still_served_under_coarsening(self, csp, db, region):
        csp._coarsened[0] = region
        uid = db.user_ids()[0]
        served = csp.request(uid, [("poi", "rest")])
        # The registered region covers every fine cloak, so the served
        # cloak is the coarse override — never something weaker.
        assert served.anonymized.cloak == region
        assert served.degradation == "coarsened"
