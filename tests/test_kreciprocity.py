"""Tests for the base-station circular baseline and its Figure 6(b)
breach of k-reciprocity."""

import pytest

from repro import LocationDatabase, NoFeasiblePolicyError, Point
from repro.attacks import audit_policy
from repro.baselines import (
    satisfies_k_reciprocity,
    station_circle_for,
    station_circle_policy,
)


@pytest.fixture
def fig6b():
    """Figure 6(b): Alice nearer station S1, Bob nearer S2, both inside
    both resulting circles."""
    db = LocationDatabase([("Alice", 2, 0), ("Bob", 3, 0)])
    stations = [Point(0, 0), Point(5, 0)]
    return db, stations


class TestCircleConstruction:
    def test_center_is_nearest_station(self, fig6b):
        db, stations = fig6b
        assert station_circle_for(db, stations, "Alice", 2).center == Point(0, 0)
        assert station_circle_for(db, stations, "Bob", 2).center == Point(5, 0)

    def test_circle_covers_k_users(self, fig6b):
        db, stations = fig6b
        circle = station_circle_for(db, stations, "Alice", 2)
        covered = sum(1 for __, p in db.items() if circle.contains(p))
        assert covered >= 2

    def test_circle_covers_requester(self):
        # Requester farther than the k nearest users to the station.
        db = LocationDatabase([("x", 10, 0), ("a", 1, 0), ("b", 2, 0)])
        circle = station_circle_for(db, [Point(0, 0)], "x", 2)
        assert circle.contains(Point(10, 0))

    def test_unknown_user(self, fig6b):
        db, stations = fig6b
        with pytest.raises(NoFeasiblePolicyError):
            station_circle_for(db, stations, "Zoe", 2)

    def test_too_few_users(self):
        db = LocationDatabase([("a", 0, 0)])
        with pytest.raises(NoFeasiblePolicyError):
            station_circle_for(db, [Point(0, 0)], "a", 2)

    def test_no_stations(self, fig6b):
        db, __ = fig6b
        with pytest.raises(NoFeasiblePolicyError):
            station_circle_policy(db, [], 2)


class TestFigure6bBreach:
    def test_reciprocity_holds(self, fig6b):
        db, stations = fig6b
        policy = station_circle_policy(db, stations, 2)
        assert satisfies_k_reciprocity(policy, 2)

    def test_policy_unaware_safe_but_aware_breached(self, fig6b):
        db, stations = fig6b
        policy = station_circle_policy(db, stations, 2)
        report = audit_policy(policy, 2)
        assert report.safe_policy_unaware
        assert not report.safe_policy_aware
        # Both Alice and Bob are fully identified by their circles.
        assert report.identified_users == ("Alice", "Bob")

    def test_distinct_circles_per_user(self, fig6b):
        db, stations = fig6b
        policy = station_circle_policy(db, stations, 2)
        assert policy.cloak_for("Alice") != policy.cloak_for("Bob")


class TestReciprocityChecker:
    def test_shared_circle_is_reciprocal(self):
        db = LocationDatabase([("a", 1, 0), ("b", 2, 0), ("c", 1.5, 1)])
        policy = station_circle_policy(db, [Point(0, 0)], 3)
        # One station ⇒ same center; radii may differ but all contain all.
        assert satisfies_k_reciprocity(policy, 3)

    def test_violation_detected(self):
        from repro.core.geometry import Circle
        from repro.core.policy import CloakingPolicy

        db = LocationDatabase([("a", 0, 0), ("b", 3, 0)])
        # a's cloak covers both; b's tiny cloak covers only b.
        policy = CloakingPolicy(
            {
                "a": Circle(Point(0, 0), 5),
                "b": Circle(Point(3, 0), 0.5),
            },
            db,
        )
        assert not satisfies_k_reciprocity(policy, 2)
