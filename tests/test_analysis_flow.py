"""The flow-sensitive analysis engine: CFG shapes, the fixpoint
solver, flow/field-sensitive taint witnesses, the lockset rules
(CC001–CC003), incremental ``--changed-only`` soundness, and the
regression tests for the live races those rules caught.

The CFG golden tests pin the *shape* the downstream analyses reason
over — a silent edge change is a silent soundness change, so the
renders are asserted verbatim.
"""

import ast
import pathlib
import textwrap
import threading

import pytest

from repro.analysis import Analyzer, Baseline
from repro.analysis.flow import FlowAnalysis, build_cfg, solve_forward
from repro.analysis.incremental import IncrementalAnalyzer
from repro.analysis.model import Finding, TraceStep

ROOT = pathlib.Path(__file__).resolve().parent.parent


def write_tree(root, files):
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def scan(tmp_path, files, baseline=None):
    write_tree(tmp_path, files)
    return Analyzer().run([tmp_path], baseline=baseline)


def rules_fired(report):
    return sorted({f.rule for f in report.new_findings})


def cfg_of(src):
    tree = ast.parse(textwrap.dedent(src))
    fn = tree.body[0]
    assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(fn.body)


# ---------------------------------------------------------------------------
# CFG construction golden tests
# ---------------------------------------------------------------------------


class TestCfgShapes:
    def test_if_elif_else(self):
        cfg = cfg_of(
            """
            def f(x):
                if x:
                    a = 1
                elif x > 2:
                    a = 2
                else:
                    a = 3
                return a
            """
        )
        assert cfg.render() == textwrap.dedent(
            """\
            B0[entry] -> B2 B3
              test@3
            B1[exit] -> -
            B2[then] -> B4
              stmt:Assign@4
            B3[else] -> B5 B6
              test@5
            B4[endif] -> B1
              stmt:Return@9
            B5[then] -> B7
              stmt:Assign@6
            B6[else] -> B7
              stmt:Assign@8
            B7[endif] -> B4
            B8[dead] -> B1"""
        )
        assert cfg.rpo()[0] == cfg.entry
        assert cfg.rpo()[-1] == cfg.exit

    def test_while_with_break_and_else(self):
        cfg = cfg_of(
            """
            def g(xs):
                total = 0
                while xs:
                    x = xs.pop()
                    if x < 0:
                        break
                    total += x
                else:
                    total = -1
                return total
            """
        )
        render = cfg.render()
        # The loop test has both a body edge and an else edge; ``break``
        # jumps past the else block straight to endloop.
        assert "B2[while] -> B3 B4" in render
        assert "B4[loop-else] -> B5" in render
        assert "B6[then] -> B5" in render  # break -> endloop
        assert "B8[endif] -> B2" in render  # back edge

    def test_try_except_finally(self):
        cfg = cfg_of(
            """
            def h(f):
                try:
                    v = f()
                except ValueError as exc:
                    v = None
                finally:
                    close()
                return v
            """
        )
        assert cfg.render() == textwrap.dedent(
            """\
            B0[entry] -> B3 B4
              stmt:Assign@4
            B1[exit] -> -
            B2[endtry] -> B1
              stmt:Return@9
            B3[except] -> B4
              except-bind@5
              stmt:Assign@6
            B4[finally] -> B2 B1
              stmt:Expr@8
            B5[dead] -> B1"""
        )

    def test_with_emits_enter_and_exit_events(self):
        cfg = cfg_of(
            """
            def w(lock):
                with lock:
                    x = 1
                return x
            """
        )
        render = cfg.render()
        assert "with-enter@3#w0" in render
        assert "with-exit@3#w0" in render

    def test_boolean_short_circuit_is_decomposed(self):
        cfg = cfg_of(
            """
            def b(p, q):
                if p and not q:
                    return 1
                return 0
            """
        )
        render = cfg.render()
        # ``p and not q`` becomes two test blocks: entry tests p and can
        # fall straight to else; the [and] block tests (not q).
        assert "B0[entry] -> B5 B3" in render
        assert "B5[and] -> B3 B2" in render

    def test_nested_function_is_a_leaf_statement(self):
        cfg = cfg_of(
            """
            def outer():
                def inner():
                    while True:
                        pass
                return inner
            """
        )
        # The nested def contributes one stmt event — its body's loop
        # must not leak blocks into the outer CFG.
        render = cfg.render()
        assert "stmt:FunctionDef@3" in render
        assert "[while]" not in render

    def test_code_after_return_is_dead(self):
        cfg = cfg_of(
            """
            def d():
                return 1
                x = 2
            """
        )
        assert "[dead]" in cfg.render()


# ---------------------------------------------------------------------------
# The generic forward solver
# ---------------------------------------------------------------------------


class _MustDefined(FlowAnalysis):
    """Toy must-analysis: which names are assigned on *every* path."""

    def initial(self):
        return frozenset()

    def copy(self, state):
        return state

    def join(self, a, b):
        return a & b

    def transfer(self, event, state):
        if event[0] == "stmt" and isinstance(event[1], ast.Assign):
            names = frozenset(
                t.id for t in event[1].targets if isinstance(t, ast.Name)
            )
            return state | names
        return state


class TestSolver:
    def test_must_definedness_joins_by_intersection(self):
        cfg = cfg_of(
            """
            def f(x):
                if x:
                    a = 1
                    b = 1
                else:
                    b = 2
                c = 3
            """
        )
        in_states = solve_forward(cfg, _MustDefined())
        at_exit = in_states[cfg.exit]
        assert "b" in at_exit and "c" in at_exit
        assert "a" not in at_exit  # only defined on one path

    def test_dead_blocks_are_never_reached(self):
        cfg = cfg_of(
            """
            def d():
                return 1
                x = 2
            """
        )
        in_states = solve_forward(cfg, _MustDefined())
        dead = [
            bid
            for bid in range(len(cfg.blocks))
            if cfg.block(bid).label == "dead"
        ]
        assert dead
        assert all(bid not in in_states for bid in dead)


# ---------------------------------------------------------------------------
# Flow-sensitive taint
# ---------------------------------------------------------------------------


class TestFlowTaint:
    def test_branch_dependent_leak_fires_with_witness(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "lbs/branchy.py": """
                def relay(mpc, provider, uid, risky):
                    if risky:
                        data = mpc.locate(uid)
                    else:
                        data = "ok"
                    return provider.serve(data)
                """
            },
        )
        assert rules_fired(report) == ["PA001"]
        (finding,) = report.new_findings
        assert finding.trace, "flow findings must carry a witness"
        notes = " ".join(step.note for step in finding.trace)
        assert "mpc.locate" in " ".join(s.snippet for s in finding.trace)
        assert "sink" in notes

    def test_kill_then_use_is_clean_but_use_then_retaint_fires(
        self, tmp_path
    ):
        report = scan(
            tmp_path,
            {
                "lbs/order.py": """
                def clean(mpc, policy, provider, uid):
                    data = mpc.locate(uid)
                    data = policy.anonymize(data)
                    return provider.serve(data)

                def dirty(mpc, policy, provider, uid):
                    data = policy.anonymize(mpc.locate(uid))
                    data = mpc.locate(uid)
                    return provider.serve(data)
                """
            },
        )
        assert rules_fired(report) == ["PA001"]
        (finding,) = report.new_findings
        assert finding.symbol == "dirty"

    def test_loop_carried_taint_reaches_the_sink(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "lbs/loopy.py": """
                def pump(mpc, provider, uids):
                    last = None
                    for uid in uids:
                        last = mpc.locate(uid)
                    return provider.serve(last)
                """
            },
        )
        assert "PA001" in rules_fired(report)

    def test_field_sensitive_kill(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "lbs/fields.py": """
                class Clean:
                    def run(self, mpc, policy, provider, uid):
                        self.raw = mpc.locate(uid)
                        self.safe = policy.anonymize(self.raw)
                        return provider.serve(self.safe)

                class Leaky:
                    def run(self, mpc, policy, provider, uid):
                        self.raw = mpc.locate(uid)
                        self.safe = policy.anonymize(self.raw)
                        return provider.serve(self.raw)
                """
            },
        )
        (finding,) = report.new_findings
        assert finding.rule == "PA001"
        assert finding.symbol == "Leaky.run"

    def test_halving_chain_is_a_sanitizer(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "streaming/chain.py": """
                def coarse(mpc, provider, uid, tree):
                    raw = mpc.locate(uid)
                    rungs = halving_chain(tree, raw)
                    return provider.serve(rungs)
                """
            },
        )
        assert rules_fired(report) == []


# ---------------------------------------------------------------------------
# CC001: guarded attribute access
# ---------------------------------------------------------------------------

_LOCKY = """
import threading

class Ledger:
    def __init__(self):
        self._lock = threading.Lock()
        self._rows = {}  # guarded-by: self._lock

    def put(self, k, v):
        with self._lock:
            self._rows[k] = v

    def size(self):
        return len(self._rows)
"""


class TestLocksetCC001:
    def test_unguarded_read_fires_with_witness(self, tmp_path):
        report = scan(tmp_path, {"serving/locky.py": _LOCKY})
        assert rules_fired(report) == ["CC001"]
        (finding,) = report.new_findings
        assert finding.symbol == "Ledger.size"
        assert "_rows" in finding.message
        assert len(finding.trace) == 2
        assert "enter size()" in finding.trace[0].note
        assert "held locks: none" in finding.trace[1].note

    def test_locked_access_and_ctor_store_are_clean(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "serving/locky.py": """
                import threading

                class Ledger:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._rows = {}  # guarded-by: self._lock

                    def put(self, k, v):
                        with self._lock:
                            self._rows[k] = v
                """
            },
        )
        assert rules_fired(report) == []

    def test_locked_suffix_and_def_line_guard_are_exempt(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "serving/conv.py": """
                import threading

                class Ledger:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._rows = {}  # guarded-by: self._lock

                    def drain_locked(self):
                        return dict(self._rows)

                    def view(self):  # guarded-by: self._lock
                        return dict(self._rows)
                """
            },
        )
        assert rules_fired(report) == []

    def test_receiver_relative_spec_follows_the_receiver(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "serving/slots.py": """
                import threading

                class Slot:
                    def __init__(self):
                        self.lock = threading.Lock()
                        self.pending = {}  # guarded-by: self.lock

                def flush(slot):
                    with slot.lock:
                        slot.pending.clear()

                def peek(slot):
                    return len(slot.pending)
                """
            },
        )
        (finding,) = report.new_findings
        assert finding.rule == "CC001"
        assert finding.symbol == "peek"
        assert "`with slot.lock:`" in finding.message

    def test_verbatim_spec_names_the_foreign_lock(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "serving/cv.py": """
                import threading

                class Fleet:
                    def __init__(self):
                        self._cv = threading.Condition()
                        self.acked = 0  # guarded-by: =self._cv

                    def bump(self):
                        with self._cv:
                            self.acked += 1

                    def read(self):
                        return self.acked
                """
            },
        )
        (finding,) = report.new_findings
        assert finding.rule == "CC001"
        assert finding.symbol == "Fleet.read"
        assert "`with self._cv:`" in finding.message

    def test_must_join_one_armed_acquire_still_fires(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "serving/maybe.py": """
                import threading

                class Ledger:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._rows = {}  # guarded-by: self._lock

                    def maybe(self, flag):
                        if flag:
                            self._lock.acquire()
                        self._rows.clear()
                """
            },
        )
        assert rules_fired(report) == ["CC001"]

    def test_acquire_release_calls_move_the_held_set(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "serving/manual.py": """
                import threading

                class Ledger:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._rows = {}  # guarded-by: self._lock

                    def explicit(self):
                        self._lock.acquire()
                        n = len(self._rows)
                        self._lock.release()
                        return n
                """
            },
        )
        assert rules_fired(report) == []

    def test_suppression_comment_is_honoured(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "serving/supp.py": """
                import threading

                class Ledger:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._rows = {}  # guarded-by: self._lock

                    def boot(self):
                        # analysis: ok[CC001] pre-publication setup
                        self._rows = {}
                """
            },
        )
        assert rules_fired(report) == []
        assert report.suppressed == 1


# ---------------------------------------------------------------------------
# CC002: global lock-order consistency
# ---------------------------------------------------------------------------


class TestLockOrderCC002:
    FWD = """
    import threading

    class Pool:
        def __init__(self):
            self.alpha_lock = threading.Lock()
            self.beta_lock = threading.Lock()

        def forward(self):
            with self.alpha_lock:
                with self.beta_lock:
                    return 1
    """

    def test_reversed_order_across_modules_fires_once(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "serving/ab.py": self.FWD,
                "serving/ba.py": """
                class Pool:
                    def reverse(self):
                        with self.beta_lock:
                            with self.alpha_lock:
                                return 2
                """,
            },
        )
        cc2 = [f for f in report.new_findings if f.rule == "CC002"]
        assert len(cc2) == 1  # one side of the cycle, not both
        (finding,) = cc2
        assert finding.path.endswith("ba.py")
        assert "potential deadlock" in finding.message
        assert len(finding.trace) == 2
        assert finding.trace[1].path.endswith("ab.py")

    def test_consistent_order_is_clean(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "serving/ab.py": self.FWD,
                "serving/ab2.py": """
                class Pool:
                    def also_forward(self):
                        with self.alpha_lock:
                            with self.beta_lock:
                                return 3
                """,
            },
        )
        assert "CC002" not in rules_fired(report)

    def test_multi_item_with_counts_as_a_nesting(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "serving/multi.py": """
                class Pool:
                    def one(self):
                        with self.alpha_lock, self.beta_lock:
                            return 1

                    def two(self):
                        with self.beta_lock:
                            with self.alpha_lock:
                                return 2
                """
            },
        )
        assert "CC002" in rules_fired(report)


# ---------------------------------------------------------------------------
# CC003: lost-update write-backs
# ---------------------------------------------------------------------------


class TestLostUpdateCC003:
    def test_write_back_in_a_later_region_fires(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "serving/count.py": """
                import threading

                class Counter:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._total = 0  # guarded-by: self._lock

                    def bump(self, delta):
                        with self._lock:
                            snapshot = self._total
                        with self._lock:
                            self._total = snapshot + delta
                """
            },
        )
        assert rules_fired(report) == ["CC003"]
        (finding,) = report.new_findings
        assert "lost" in finding.message
        assert finding.trace

    def test_same_region_update_is_clean(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "serving/count.py": """
                import threading

                class Counter:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._total = 0  # guarded-by: self._lock

                    def bump(self, delta):
                        with self._lock:
                            snapshot = self._total
                            self._total = snapshot + delta
                """
            },
        )
        assert rules_fired(report) == []

    def test_unlocked_write_back_fires_both_rules(self, tmp_path):
        report = scan(
            tmp_path,
            {
                "serving/count.py": """
                import threading

                class Counter:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._total = 0  # guarded-by: self._lock

                    def racy(self, delta):
                        with self._lock:
                            snapshot = self._total
                        self._total = snapshot + delta
                """
            },
        )
        assert rules_fired(report) == ["CC001", "CC003"]


# ---------------------------------------------------------------------------
# Witnesses, fingerprints, baseline drift
# ---------------------------------------------------------------------------


class TestWitnessesAndFingerprints:
    def test_render_includes_the_witness_block(self, tmp_path):
        report = scan(tmp_path, {"serving/locky.py": _LOCKY})
        (finding,) = report.new_findings
        rendered = finding.render()
        assert "witness:" in rendered
        lines = rendered.splitlines()
        assert lines[0].startswith(f"{finding.path}:{finding.line}:")
        assert any("enter size()" in line for line in lines[1:])

    def test_fingerprint_ignores_trace_and_severity(self):
        base = dict(
            rule="CC001",
            path="a.py",
            line=10,
            col=4,
            message="m",
            symbol="S.f",
            snippet="x = 1",
        )
        plain = Finding(**base)
        traced = Finding(
            **base,
            severity="warning",
            trace=(TraceStep(path="a.py", line=1, snippet="s", note="n"),),
        )
        assert plain.fingerprint == traced.fingerprint

    def test_moving_code_keeps_fingerprints_stable(self, tmp_path):
        report_a = scan(tmp_path / "a", {"serving/locky.py": _LOCKY})
        shifted = "\n\n# a comment pushing everything down\n" + textwrap.dedent(
            _LOCKY
        )
        report_b = scan(tmp_path / "b", {"serving/locky.py": shifted})
        fps_a = sorted(f.fingerprint for f in report_a.new_findings)
        fps_b = sorted(f.fingerprint for f in report_b.new_findings)
        assert fps_a == fps_b
        lines_a = [f.line for f in report_a.new_findings]
        lines_b = [f.line for f in report_b.new_findings]
        assert lines_a != lines_b  # the move really happened

    def test_baseline_survives_the_move(self, tmp_path):
        write_tree(tmp_path / "a", {"serving/locky.py": _LOCKY})
        report_a = Analyzer().run([tmp_path / "a"])
        baseline = Baseline.from_findings(report_a.findings)
        shifted = "\n\n# pushed down\n" + textwrap.dedent(_LOCKY)
        report_b = scan(
            tmp_path / "b", {"serving/locky.py": shifted}, baseline=baseline
        )
        assert report_b.new_findings == []
        assert report_b.exit_code("new") == 0


# ---------------------------------------------------------------------------
# Incremental --changed-only
# ---------------------------------------------------------------------------

_INC_TREE = {
    "serving/locky.py": _LOCKY,
    "lbs/branchy.py": """
    def relay(mpc, provider, uid, risky):
        if risky:
            data = mpc.locate(uid)
        else:
            data = "ok"
        return provider.serve(data)
    """,
    "core/quiet.py": """
    def add(a, b):
        return a + b
    """,
}


def _report_key(report):
    return [
        (f.rule, f.path, f.line, f.col, f.message, f.fingerprint)
        for f in report.findings
    ]


class TestIncremental:
    def test_changed_only_matches_cold_after_an_edit(self, tmp_path):
        tree = write_tree(tmp_path / "tree", dict(_INC_TREE))
        cache = tmp_path / "cache.json"
        driver = IncrementalAnalyzer()
        driver.run_cold([tree], cache_path=cache)

        # Touch one file in a finding-relevant way: un-lock the put().
        edited = textwrap.dedent(_LOCKY).replace(
            "        with self._lock:\n            self._rows[k] = v",
            "        self._rows[k] = v",
        )
        assert edited != textwrap.dedent(_LOCKY)
        (tree / "serving/locky.py").write_text(edited, encoding="utf-8")

        warm = IncrementalAnalyzer()
        incremental = warm.run_changed_only([tree], cache_path=cache)
        assert warm.fallback_reason is None
        assert warm.reused == 2 and warm.analyzed == 1
        cold = IncrementalAnalyzer().run_cold([tree])
        assert _report_key(incremental) == _report_key(cold)
        assert {
            f.symbol for f in incremental.findings if f.rule == "CC001"
        } == {"Ledger.put", "Ledger.size"}

    def test_noop_rerun_reuses_everything(self, tmp_path):
        tree = write_tree(tmp_path / "tree", dict(_INC_TREE))
        cache = tmp_path / "cache.json"
        driver = IncrementalAnalyzer()
        cold = driver.run_cold([tree], cache_path=cache)
        warm = IncrementalAnalyzer()
        incremental = warm.run_changed_only([tree], cache_path=cache)
        assert warm.fallback_reason is None
        assert warm.reused == 3 and warm.analyzed == 0
        assert _report_key(incremental) == _report_key(cold)

    def test_import_graph_change_falls_back_cold(self, tmp_path):
        tree = write_tree(tmp_path / "tree", dict(_INC_TREE))
        cache = tmp_path / "cache.json"
        IncrementalAnalyzer().run_cold([tree], cache_path=cache)
        quiet = tree / "core/quiet.py"
        quiet.write_text(
            "import json\n" + quiet.read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        warm = IncrementalAnalyzer()
        report = warm.run_changed_only([tree], cache_path=cache)
        assert warm.fallback_reason is not None
        assert "import graph changed" in warm.fallback_reason
        assert _report_key(report) == _report_key(
            IncrementalAnalyzer().run_cold([tree])
        )

    def test_missing_cache_falls_back_cold(self, tmp_path):
        tree = write_tree(tmp_path / "tree", dict(_INC_TREE))
        warm = IncrementalAnalyzer()
        warm.run_changed_only([tree], cache_path=tmp_path / "nope.json")
        assert warm.fallback_reason == "no usable cache"

    def test_guard_annotation_change_falls_back_cold(self, tmp_path):
        tree = write_tree(tmp_path / "tree", dict(_INC_TREE))
        cache = tmp_path / "cache.json"
        IncrementalAnalyzer().run_cold([tree], cache_path=cache)
        locky = tree / "serving/locky.py"
        locky.write_text(
            locky.read_text(encoding="utf-8").replace(
                "# guarded-by: self._lock", "# guarded-by: self._mu"
            ),
            encoding="utf-8",
        )
        warm = IncrementalAnalyzer()
        report = warm.run_changed_only([tree], cache_path=cache)
        assert warm.fallback_reason is not None
        assert "guards changed" in warm.fallback_reason
        assert _report_key(report) == _report_key(
            IncrementalAnalyzer().run_cold([tree])
        )


# ---------------------------------------------------------------------------
# Regressions for the live races the lockset gate caught
# ---------------------------------------------------------------------------


class TestLiveRaceRegressions:
    def test_ledger_queries_are_safe_under_concurrent_records(self):
        from repro.core.geometry import Rect
        from repro.trajectory.ledger import TrajectoryLedger

        ledger = TrajectoryLedger(window=4)
        rect = Rect(0, 0, 1, 1)
        errors = []
        stop = threading.Event()

        def writer(base):
            for i in range(400):
                ledger.record(
                    f"u{base}-{i}",
                    rect,
                    [f"u{base}-{i}", "other"],
                    widened=bool(i % 2),
                )

        def reader():
            while not stop.is_set():
                try:
                    ledger.widened_count()
                    ledger.users()
                    len(ledger)
                except RuntimeError as exc:  # pragma: no cover — the bug
                    errors.append(exc)
                    return

        writers = [
            threading.Thread(target=writer, args=(b,)) for b in range(3)
        ]
        readers = [threading.Thread(target=reader) for __ in range(2)]
        for t in readers + writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        for t in readers:
            t.join()
        assert errors == []
        assert len(ledger) == 3 * 400
        assert ledger.widened_count() == 3 * 400 // 2

    def test_breaker_counters_survive_concurrent_failures(self):
        from repro.robustness.retry import CircuitBreaker

        breaker = CircuitBreaker(failure_threshold=100_000)
        threads = [
            threading.Thread(
                target=lambda: [breaker.record_failure() for __ in range(2000)]
            )
            for __ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Below threshold and fully locked: every increment must land.
        assert breaker._consecutive_failures == 4 * 2000
        assert breaker.state == "closed"

    def test_breaker_opens_exactly_once_under_contention(self):
        from repro.robustness.retry import CircuitBreaker

        breaker = CircuitBreaker(failure_threshold=5, reset_timeout=3600.0)
        threads = [
            threading.Thread(
                target=lambda: [breaker.record_failure() for __ in range(50)]
            )
            for __ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert breaker.opened_times == 1
        assert breaker.state == "open"

    def test_accumulator_stats_snapshot_is_consistent(self):
        from repro.core.geometry import Point
        from repro.streaming.ingest import DirtyAccumulator

        acc = DirtyAccumulator()
        acc.add("u1", Point(1, 1))
        acc.add("u1", Point(2, 2))
        acc.add("u2", Point(3, 3))
        stats = acc.stats()
        assert stats == {
            "ingested": 3,
            "coalesced": 1,
            "batches": 0,
            "pending": 2,
        }

    def test_epoch_stats_does_not_deadlock(self):
        from repro.core.geometry import Rect
        from repro.data import uniform_users
        from repro.streaming import EpochManager

        region = Rect(0, 0, 1024, 1024)
        manager = EpochManager(region, 4, uniform_users(48, region, seed=5))
        try:
            stats = manager.stats()
            assert stats["staleness"] == 0
            assert stats["ingested"] == 0
            assert manager.active.serial == stats["active_serial"]
        finally:
            manager.close()

    def test_fleet_mirror_folds_race_routing_rebuilds(self):
        from repro.core.geometry import Rect
        from repro.data import uniform_users
        from repro.lbs import LBSProvider, generate_pois
        from repro.serving import FleetConfig, FleetDispatcher

        region = Rect(0, 0, 2048, 2048)
        db = uniform_users(96, region, seed=9)
        pois = generate_pois(region, {"rest": 20}, seed=10)
        dispatcher = FleetDispatcher(
            region,
            4,
            db,
            LBSProvider(pois),
            FleetConfig(n_workers=2, mode="simulated", trajectory=True),
        )
        try:
            uids = db.user_ids()[:16]
            cloaks = {uid: dispatcher._cloaks[uid] for uid in uids}
            errors = []

            def folder():
                try:
                    for __ in range(40):
                        for uid in uids:
                            dispatcher._record_mirror(
                                uid, Rect(*cloaks[uid])
                            )
                except RuntimeError as exc:  # pragma: no cover — the bug
                    errors.append(exc)

            def rebuilder():
                try:
                    for __ in range(40):
                        dispatcher._routing = dispatcher._build_routing()
                except RuntimeError as exc:  # pragma: no cover — the bug
                    errors.append(exc)

            threads = [
                threading.Thread(target=folder),
                threading.Thread(target=folder),
                threading.Thread(target=rebuilder),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert errors == []
            assert dispatcher._mirror is not None
            assert set(dispatcher._mirror.users()) == set(uids)
        finally:
            dispatcher.close()
