"""Tests for the k-inside baselines PUQ and PUB (Propositions 2–3)."""

import pytest

from repro import LocationDatabase, NoFeasiblePolicyError, Rect
from repro.attacks import audit_policy
from repro.baselines import policy_unaware_binary, policy_unaware_quad
from repro.core.binary_dp import solve
from repro.data import uniform_users
from repro.trees import BinaryTree


@pytest.fixture
def region():
    return Rect(0, 0, 512, 512)


@pytest.fixture
def db(region):
    return uniform_users(250, region, seed=31)


class TestKInsideProperty:
    @pytest.mark.parametrize("maker", [policy_unaware_quad, policy_unaware_binary])
    def test_every_cloak_holds_k_users(self, maker, region, db):
        policy = maker(region, db, 10)
        assert policy.min_inside_count() >= 10

    @pytest.mark.parametrize("maker", [policy_unaware_quad, policy_unaware_binary])
    def test_policy_unaware_audit_passes(self, maker, region, db):
        """Proposition 2: k-inside ⇒ safe against policy-unaware attackers."""
        report = audit_policy(maker(region, db, 10), 10)
        assert report.safe_policy_unaware

    def test_proposition3_breach_instance(self, table1_region, table1_db):
        """Proposition 3: some k-inside policies breach against a
        policy-aware attacker — Table I is the paper's witness."""
        policy = policy_unaware_binary(table1_region, table1_db, 2, max_depth=4)
        report = audit_policy(policy, 2)
        assert report.safe_policy_unaware
        assert not report.safe_policy_aware
        assert report.identified_users == ("Carol",)


class TestTightness:
    def test_pub_cloak_is_tightest(self, region, db):
        tree = BinaryTree.build(region, db, 10)
        policy = policy_unaware_binary(region, db, 10, tree=tree)
        for uid, point in list(db.items())[:40]:
            cloak = policy.cloak_for(uid)
            node = tree.smallest_node_with(point, 10)
            assert cloak == node.rect

    def test_pub_never_costlier_than_puq(self, region, db):
        """The binary vocabulary contains all quadrants, so the per-user
        tightest binary cloak is at most the tightest quadrant."""
        pub = policy_unaware_binary(region, db, 10)
        puq = policy_unaware_quad(region, db, 10)
        for uid in db.user_ids():
            assert pub.cloak_for(uid).area <= puq.cloak_for(uid).area + 1e-9

    def test_pub_lower_bounds_policy_aware_optimum(self, region, db):
        """The PA optimum is itself k-inside over the same vocabulary,
        so PUB (per-user minimum) can only be cheaper."""
        pub = policy_unaware_binary(region, db, 10)
        pa = solve(BinaryTree.build(region, db, 10), 10).policy()
        assert pub.cost() <= pa.cost() + 1e-6


class TestEdgeCases:
    def test_fewer_than_k_users(self, region):
        db = LocationDatabase([("a", 1, 1)])
        with pytest.raises(NoFeasiblePolicyError):
            policy_unaware_quad(region, db, 2)

    def test_exactly_k_users_cloak_at_root(self, region):
        db = LocationDatabase([("a", 1, 1), ("b", 500, 500)])
        policy = policy_unaware_quad(region, db, 2)
        assert policy.cloak_for("a") == region

    def test_example1_cloaks_match_paper(self, table1_region, table1_db):
        """PUB on Table I yields exactly the cloaks of Example 3:
        R1 = (0,0,1,2), R3 = (0,0,2,4), R2 = (2,0,4,4)."""
        policy = policy_unaware_binary(table1_region, table1_db, 2, max_depth=4)
        assert policy.cloak_for("Alice") == Rect(0, 0, 1, 2)
        assert policy.cloak_for("Bob") == Rect(0, 0, 1, 2)
        assert policy.cloak_for("Carol") == Rect(0, 0, 2, 4)
        assert policy.cloak_for("Sam") == Rect(2, 0, 4, 4)
        assert policy.cloak_for("Tom") == Rect(2, 0, 4, 4)
