"""Unit tests for the shared spatial-node machinery."""

import numpy as np
import pytest

from repro import Point, Rect, TreeError
from repro.trees.node import SpatialNode, partition_indices


def make_chain():
    """root → two children (west/east split)."""
    root = SpatialNode(0, Rect(0, 0, 8, 8), 0)
    west = SpatialNode(1, Rect(0, 0, 4, 8), 1, parent=root, is_semi=True)
    east = SpatialNode(2, Rect(4, 0, 8, 8), 1, parent=root, is_semi=True)
    root.children = [west, east]
    return root, west, east


class TestSpatialNode:
    def test_leaf_detection(self):
        root, west, __ = make_chain()
        assert not root.is_leaf
        assert west.is_leaf

    def test_child_for_boundary_prefers_first(self):
        root, west, __ = make_chain()
        # x = 4 is on the shared edge: first child (west) wins.
        assert root.child_for(Point(4, 2)) is west

    def test_child_for_escaping_point_raises(self):
        root, __, __ = make_chain()
        with pytest.raises(TreeError, match="escapes"):
            root.child_for(Point(9, 9))

    def test_iter_subtree_preorder(self):
        root, west, east = make_chain()
        assert [n.node_id for n in root.iter_subtree()] == [0, 1, 2]

    def test_iter_postorder_children_first(self):
        root, __, __ = make_chain()
        assert [n.node_id for n in root.iter_postorder()] == [1, 2, 0]

    def test_path_to_root(self):
        root, west, __ = make_chain()
        assert [n.node_id for n in west.path_to_root()] == [1, 0]

    def test_leaf_for_descends(self):
        root, __, east = make_chain()
        assert root.leaf_for(Point(6, 6)) is east

    def test_repr_mentions_kind(self):
        root, west, __ = make_chain()
        assert "node" in repr(root)
        assert "leaf" in repr(west)

    def test_area(self):
        root, west, __ = make_chain()
        assert root.area == 64
        assert west.area == 32


class TestPartitionIndices:
    def test_partition_is_exhaustive_and_disjoint(self):
        rng = np.random.default_rng(211)
        coords = rng.uniform(0, 8, size=(50, 2))
        indices = np.arange(50)
        rects = list(Rect(0, 0, 8, 8).quadrants())
        parts = partition_indices(coords, indices, rects)
        assert len(parts) == 4
        combined = np.sort(np.concatenate(parts))
        assert np.array_equal(combined, indices)

    def test_boundary_goes_to_first_matching_rect(self):
        coords = np.array([[4.0, 4.0]])  # the exact center: in all four
        rects = list(Rect(0, 0, 8, 8).quadrants())
        parts = partition_indices(coords, np.arange(1), rects)
        assert len(parts[0]) == 1  # NW is first in quadrant order
        assert all(len(p) == 0 for p in parts[1:])

    def test_assignment_matches_child_for(self):
        rng = np.random.default_rng(212)
        coords = rng.uniform(0, 8, size=(40, 2))
        rects = list(Rect(0, 0, 8, 8).quadrants())
        parts = partition_indices(coords, np.arange(40), rects)
        parent = SpatialNode(0, Rect(0, 0, 8, 8), 0)
        parent.children = [
            SpatialNode(i + 1, r, 1, parent=parent) for i, r in enumerate(rects)
        ]
        for rect_idx, part in enumerate(parts):
            for row in part:
                chosen = parent.child_for(Point(*coords[row]))
                assert chosen.rect == rects[rect_idx]

    def test_empty_input(self):
        parts = partition_indices(
            np.empty((0, 2)), np.arange(0), list(Rect(0, 0, 2, 2).quadrants())
        )
        assert all(len(p) == 0 for p in parts)
