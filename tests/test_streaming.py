"""The streaming churn layer: ingest, double-buffered epoch swap,
pinning, and the bounded-staleness degradation ladder.

The acceptance bar is the anonymity invariant of DESIGN §12: every
served cloak is bit-identical to a from-scratch bulk solve (the oracle)
of the *served epoch's* exact snapshot — an epoch swap may change which
snapshot that is, never what a given epoch's cloaks look like.
"""

import numpy as np
import pytest

from repro import Rect, ServiceUnavailableError
from repro.core.errors import RecoveryError, TreeError
from repro.core.geometry import Point
from repro.data import uniform_users
from repro.lbs.mobility import random_moves
from repro.robustness.faults import FaultInjector, FaultPlan, FaultRule
from repro.robustness.recovery import PolicyJournal
from repro.streaming import (
    DirtyAccumulator,
    EpochManager,
    ancestor_cloak,
    halving_chain,
)

REGION = Rect(0, 0, 4096, 4096)
K = 8


@pytest.fixture
def db():
    return uniform_users(240, REGION, seed=11)


def moves_for(db, fraction, seed=1, max_distance=400.0):
    return random_moves(
        db, fraction, REGION, max_distance=max_distance, seed=seed
    )


def clustered_moves(db, fraction, seed=2):
    """Adversarial churn: the movers all pile into one small corner, so
    the dirty region is maximally clustered (deep local rebuilds)."""
    rng = np.random.default_rng(seed)
    users = db.user_ids()
    picks = rng.choice(len(users), size=int(fraction * len(users)),
                       replace=False)
    corner = Rect(0, 0, REGION.width / 8, REGION.height / 8)
    return {
        users[i]: Point(
            float(rng.uniform(corner.x1, corner.x2)),
            float(rng.uniform(corner.y1, corner.y2)),
        )
        for i in picks
    }


def policy_dict(policy):
    return {uid: cloak for uid, cloak in policy.items()}


def assert_oracle_identical(manager):
    assert policy_dict(manager.active.policy) == policy_dict(
        manager.oracle_policy()
    )


def always_fail_repair(seed=0):
    return FaultInjector(
        FaultPlan(rules=(FaultRule(site="repair", kind="error"),), seed=seed)
    )


# ---------------------------------------------------------------------------
# DirtyAccumulator
# ---------------------------------------------------------------------------


class TestDirtyAccumulator:
    def test_coalesces_per_user_keeping_newest(self):
        acc = DirtyAccumulator()
        acc.add("u1", Point(1.0, 1.0))
        acc.add("u2", Point(2.0, 2.0))
        acc.add("u1", Point(9.0, 9.0))  # supersedes the first u1 move
        assert len(acc) == 2
        assert acc.ingested == 3
        assert acc.coalesced == 1
        batch = acc.drain()
        assert batch["u1"] == Point(9.0, 9.0)
        assert len(acc) == 0
        assert acc.batches == 1

    def test_extend_accepts_mapping_and_pairs(self):
        acc = DirtyAccumulator()
        assert acc.extend({"a": Point(1, 1)}) == 1
        assert acc.extend([("b", Point(2, 2)), ("a", Point(3, 3))]) == 2
        assert acc.drain() == {"a": Point(3, 3), "b": Point(2, 2)}

    def test_restore_keeps_newer_pending_moves(self):
        """A failed swap hands its batch back; moves that streamed in
        *after* the drain must win over the restored ones."""
        acc = DirtyAccumulator()
        acc.add("u1", Point(1, 1))
        batch = acc.drain()
        acc.add("u1", Point(5, 5))  # newer ingest while the swap failed
        acc.restore(batch)
        assert acc.drain()["u1"] == Point(5, 5)


# ---------------------------------------------------------------------------
# Geometric coarsening (no tree consulted)
# ---------------------------------------------------------------------------


class TestHalvingChain:
    def test_chain_descends_from_region_to_cloak(self, db):
        manager = EpochManager(REGION, K, db)
        orientation = manager.orientation
        for __, cloak in manager.active.policy.items():
            chain = halving_chain(REGION, orientation, cloak)
            assert chain[0] == REGION
            assert chain[-1] == cloak
            for parent, child in zip(chain, chain[1:]):
                assert parent.contains_rect(child)
                assert child.area == pytest.approx(parent.area / 2)

    def test_ancestor_clamps_at_root(self):
        assert ancestor_cloak(REGION, "vertical", REGION, 3) == REGION

    def test_non_node_rect_is_rejected(self):
        with pytest.raises(TreeError):
            halving_chain(REGION, "vertical", Rect(3.0, 7.0, 100.0, 50.0))

    def test_uniform_levels_up_is_k_safe(self, db):
        """Mapping every cloak ``levels`` up keeps k-anonymity: fine
        groups (≥ k senders) land wholesale inside one ancestor."""
        manager = EpochManager(REGION, K, db)
        orientation = manager.orientation
        coarse_groups = {}
        for uid, cloak in manager.active.policy.items():
            coarse = ancestor_cloak(REGION, orientation, cloak, 2)
            assert coarse.contains_rect(cloak)
            coarse_groups.setdefault(coarse.as_tuple(), set()).add(uid)
        for members in coarse_groups.values():
            assert len(members) >= K


# ---------------------------------------------------------------------------
# Swap correctness: bit-identity with the per-epoch oracle
# ---------------------------------------------------------------------------


class TestEpochSwap:
    @pytest.mark.parametrize("fraction", [0.1, 0.5])
    def test_incremental_swap_matches_bulk_resolve(self, db, fraction):
        manager = EpochManager(REGION, K, db)
        swap = manager.advance(moves_for(db, fraction))
        assert swap.promoted and swap.staleness == 0
        assert swap.moved_users == pytest.approx(
            int(fraction * len(db)), abs=2
        )
        assert_oracle_identical(manager)

    def test_adversarial_clustered_churn_matches_oracle(self, db):
        manager = EpochManager(REGION, K, db)
        manager.advance(clustered_moves(db, 0.3))
        assert_oracle_identical(manager)

    def test_every_epoch_of_a_churn_run_matches_its_oracle(self, db):
        manager = EpochManager(REGION, K, db)
        current = db
        for round_index in range(4):
            moves = moves_for(current, 0.1, seed=50 + round_index)
            manager.ingest(moves)
            swap = manager.advance()
            assert swap.promoted and swap.serial == round_index + 1
            assert_oracle_identical(manager)
            current = manager.active.db
        assert manager.stats()["promoted"] == 4

    def test_ingest_coalesces_into_the_next_swap(self, db):
        manager = EpochManager(REGION, K, db)
        uid = db.user_ids()[0]
        manager.ingest({uid: Point(10.0, 10.0)})
        manager.ingest({uid: Point(700.0, 700.0)})
        assert manager.stats()["pending_moves"] == 1
        manager.advance()
        assert manager.active.db.location_of(uid) == Point(700.0, 700.0)
        assert_oracle_identical(manager)


# ---------------------------------------------------------------------------
# Epoch pinning
# ---------------------------------------------------------------------------


class TestEpochPinning:
    def test_request_admitted_in_epoch_n_is_served_epoch_n(self, db):
        """The satellite-3 property: a swap landing mid-flight changes
        nothing for an already-admitted request."""
        manager = EpochManager(REGION, K, db)
        uid = db.user_ids()[0]
        pin = manager.pin()
        before, rung = manager.serve_cloak(uid, pin)
        assert rung == "fresh"
        swap = manager.advance(moves_for(db, 0.5))
        assert swap.promoted
        assert manager.active.serial == 1
        # The pin still holds epoch 0: same policy object, same cloak.
        assert pin.epoch.serial == 0
        after, __ = manager.serve_cloak(uid, pin)
        assert after == before
        pin.release()
        # A fresh admission sees epoch 1.
        with manager.pin() as fresh:
            assert fresh.epoch.serial == 1

    def test_pinned_segment_survives_swap_until_drained(self, db):
        manager = EpochManager(REGION, K, db, publish_shared=True)
        with manager:
            pin = manager.pin()
            old_epoch = pin.epoch
            manager.advance(moves_for(db, 0.2))
            assert old_epoch.retired
            # Still pinned: the retired epoch's segment must survive.
            assert old_epoch.shared is not None
            assert manager.stats()["lingering_epochs"] == 1
            pin.release()
            # Drained: unlinked exactly once, removed from lingering.
            assert old_epoch.shared is None
            assert manager.stats()["lingering_epochs"] == 0

    def test_release_is_idempotent(self, db):
        manager = EpochManager(REGION, K, db)
        pin = manager.pin()
        pin.release()
        pin.release()
        assert manager.active.pins == 0


# ---------------------------------------------------------------------------
# Bounded staleness: the degradation ladder
# ---------------------------------------------------------------------------


class TestStalenessLadder:
    def test_ladder_walks_stale_coarsened_rejected(self, db):
        manager = EpochManager(
            REGION, K, db,
            max_stale_snapshots=1,
            coarsen_grace=1,
            injector=always_fail_repair(),
        )
        uid = db.user_ids()[0]
        fine, rung = manager.serve_cloak(uid)
        assert rung == "fresh"

        swap = manager.advance(moves_for(db, 0.1))
        assert not swap.promoted and swap.reason == "repair"
        served, rung = manager.serve_cloak(uid)
        assert rung == "stale"
        assert served == fine  # exact old-epoch cloak, never weaker

        manager.advance(moves_for(db, 0.1, seed=3))
        coarse, rung = manager.serve_cloak(uid)
        assert rung == "coarsened"
        assert coarse.contains_rect(fine)
        assert coarse == ancestor_cloak(
            REGION, manager.orientation, fine, 1
        )

        manager.advance(moves_for(db, 0.1, seed=4))
        with pytest.raises(ServiceUnavailableError) as err:
            manager.pin()
        assert err.value.reason == "stale"
        assert [e.level for e in manager.events] == [
            "stale", "coarsened", "rejected",
        ]

    def test_failed_swap_keeps_the_batch_for_the_next_tick(self, db):
        """An injected repair fault must not lose movement: the batch
        goes back to the accumulator and the next (healthy) swap
        applies it — converging to the same oracle."""
        injector = FaultInjector(
            FaultPlan(
                rules=(
                    FaultRule(site="repair", kind="error", match="1"),
                ),
                seed=0,
            )
        )
        manager = EpochManager(REGION, K, db, injector=injector)
        moves = moves_for(db, 0.2)
        swap = manager.advance(moves)
        assert not swap.promoted
        assert manager.stats()["pending_moves"] == len(moves)
        swap = manager.advance()
        assert swap.promoted and swap.moved_users == len(moves)
        assert policy_dict(manager.active.policy) == policy_dict(
            manager.oracle_policy()
        )
        for uid, point in moves.items():
            assert manager.active.db.location_of(uid) == point

    def test_rung_is_fixed_at_admission(self, db):
        """A request admitted fresh stays fresh even if swaps fail (and
        staleness grows) while it is in flight."""
        manager = EpochManager(
            REGION, K, db, injector=always_fail_repair()
        )
        pin = manager.pin()
        assert pin.rung == "fresh"
        manager.advance(moves_for(db, 0.1))
        assert manager.staleness == 1
        __, rung = manager.serve_cloak(db.user_ids()[0], pin)
        assert rung == "fresh"
        pin.release()
        __, rung = manager.serve_cloak(db.user_ids()[0])
        assert rung == "stale"


# ---------------------------------------------------------------------------
# Restart: staleness and rung survive recovery
# ---------------------------------------------------------------------------


class TestRestore:
    def test_coarsened_manager_restores_coarsened(self, db, tmp_path):
        journal = PolicyJournal(str(tmp_path / "journal"))
        manager = EpochManager(
            REGION, K, db,
            journal=journal,
            max_stale_snapshots=1,
            coarsen_grace=1,
            injector=always_fail_repair(),
        )
        uid = db.user_ids()[0]
        manager.advance(moves_for(db, 0.1))
        manager.advance(moves_for(db, 0.1, seed=3))
        coarse, rung = manager.serve_cloak(uid)
        assert rung == "coarsened"

        restored = EpochManager.restore(
            journal,
            current_serial=manager.world_serial,
            max_stale_snapshots=1,
            coarsen_grace=1,
        )
        # The restart did not launder staleness away: same rung, same
        # coarse cloak as before the crash.
        assert restored.staleness == 2
        again, rung = restored.serve_cloak(uid)
        assert rung == "coarsened"
        assert again == coarse

    def test_fully_rejected_manager_fails_closed_on_restore(
        self, db, tmp_path
    ):
        journal = PolicyJournal(str(tmp_path / "journal"))
        manager = EpochManager(
            REGION, K, db,
            journal=journal,
            max_stale_snapshots=1,
            coarsen_grace=1,
            injector=always_fail_repair(),
        )
        for seed in (1, 2, 3):
            manager.advance(moves_for(db, 0.1, seed=seed))
        with pytest.raises(ServiceUnavailableError):
            manager.pin()
        # A manager that died on the rejected rung must not restore
        # into serving: past the whole ladder, recovery fails closed.
        with pytest.raises(RecoveryError) as err:
            EpochManager.restore(
                journal,
                current_serial=manager.world_serial,
                max_stale_snapshots=1,
                coarsen_grace=1,
            )
        assert err.value.reason == "stale"

    def test_clean_swap_restores_fresh(self, db, tmp_path):
        journal = PolicyJournal(str(tmp_path / "journal"))
        manager = EpochManager(REGION, K, db, journal=journal)
        manager.advance(moves_for(db, 0.2))
        restored = EpochManager.restore(
            journal, current_serial=manager.world_serial
        )
        assert restored.staleness == 0
        assert policy_dict(restored.active.policy) == policy_dict(
            manager.active.policy
        )
        # Restore-born epochs announce themselves on the recovered rung.
        with restored.pin() as pin:
            assert pin.rung == "recovered"
        # The rehydrated DP state swaps like a warm shadow.
        swap = restored.advance(
            moves_for(restored.active.db, 0.1, seed=9)
        )
        assert swap.promoted
        assert_oracle_identical(restored)
