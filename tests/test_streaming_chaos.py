"""Mid-swap chaos: every crash window of the epoch swap either completes
the swap or fails closed with the prior epoch intact.

Three real fault families, per DESIGN §12:

* a fleet **worker** SIGKILLed on receiving the epoch broadcast — the
  dispatcher's respawn lands the replacement on the new epoch and the
  swap completes (respawn-as-ack);
* the **repairer process** SIGKILLed between swap-intent and
  swap-commit — restart restores the prior epoch bit-identically (the
  dangling intent is void);
* a journal **replica destroyed** between swap-intent and swap-commit —
  one loss still reaches quorum and promotes; a double loss voids the
  swap, the prior epoch keeps serving stale, and repair + re-commit
  converge on the next tick.

The invariant throughout: served cloaks are bit-identical to a
from-scratch oracle of the *served* epoch, whichever epoch that is.
"""

import pathlib
from multiprocessing import Process

import pytest

from repro import Rect, ServiceUnavailableError
from repro.core.anonymizer import PolicyAwareAnonymizer
from repro.core.errors import RecoveryError
from repro.data import uniform_users
from repro.lbs import LBSProvider, generate_pois
from repro.lbs.mobility import random_moves
from repro.lbs.pipeline import ServedRequest
from repro.robustness.chaos import ReplicaKillPlan, kill_current_process
from repro.robustness.recovery import PolicyJournal, QuorumJournal
from repro.serving import FleetConfig, FleetDispatcher
from repro.streaming import EpochManager

REGION = Rect(0, 0, 4096, 4096)
K = 8
DEV_SHM = pathlib.Path("/dev/shm")


def shm_segments():
    if not DEV_SHM.is_dir():
        return set()
    return {p.name for p in DEV_SHM.iterdir() if p.name.startswith("psm_")}


def policy_dict(policy):
    return {uid: cloak for uid, cloak in policy.items()}


def moves_for(db, fraction, seed=1):
    return random_moves(
        db, fraction, REGION, max_distance=400.0, seed=seed
    )


# ---------------------------------------------------------------------------
# Fleet worker SIGKILL mid-swap
# ---------------------------------------------------------------------------


class TestFleetEpochChaos:
    @pytest.fixture
    def db(self):
        return uniform_users(160, REGION, seed=71)

    @pytest.fixture
    def provider(self):
        return LBSProvider(generate_pois(REGION, {"rest": 60}, seed=72))

    def _workload(self, db, n=30):
        return [(uid, [("poi", "rest")]) for uid in db.user_ids()[:n]]

    def test_advance_epoch_serves_new_oracle_and_drains_segment(
        self, db, provider
    ):
        before = shm_segments()
        config = FleetConfig(n_workers=2, worker_timeout=30.0)
        with FleetDispatcher(REGION, K, db, provider, config) as disp:
            workload = self._workload(db)
            disp.serve(workload)
            moves = moves_for(db, 0.1)
            assert disp.advance_epoch(moves) == 1
            results = disp.serve(workload)
            oracle = PolicyAwareAnonymizer(REGION, K).fit(
                db.with_moves(moves)
            ).policy
            for result in results:
                assert isinstance(result, ServedRequest)
                assert result.anonymized.cloak == oracle.cloak_for(
                    result.request.user_id
                )
        stats = disp.close()
        assert stats.epochs == 1 and stats.lost_workers == 0
        # Both the retired and the final segment are gone: no leak.
        assert shm_segments() <= before

    def test_worker_sigkilled_mid_swap_respawn_completes_it(
        self, db, provider
    ):
        """kill_on_epoch: worker 0 dies between broadcast and ack; the
        respawn (built from the new spec) is the ack, the swap
        completes, and post-swap cloaks match the new-epoch oracle."""
        before = shm_segments()
        config = FleetConfig(
            n_workers=2, worker_timeout=30.0, kill_on_epoch={0: 1}
        )
        with FleetDispatcher(REGION, K, db, provider, config) as disp:
            workload = self._workload(db)
            disp.serve(workload)
            moves = moves_for(db, 0.1)
            assert disp.advance_epoch(moves) == 1
            results = disp.serve(workload)
            oracle = PolicyAwareAnonymizer(REGION, K).fit(
                db.with_moves(moves)
            ).policy
            for result in results:
                assert isinstance(result, ServedRequest)
                assert result.anonymized.cloak == oracle.cloak_for(
                    result.request.user_id
                )
        stats = disp.close()
        assert stats.epochs == 1
        assert stats.respawns == 1
        assert stats.lost_workers == 0
        assert shm_segments() <= before


# ---------------------------------------------------------------------------
# Repairer SIGKILL between swap-intent and swap-commit
# ---------------------------------------------------------------------------


def _repairer_child(root: str, phase: str) -> None:
    """Run one epoch swap and SIGKILL mid-commit at ``phase``."""
    db = uniform_users(150, REGION, seed=21)
    armed = []

    def chaos(fired_phase: str) -> None:
        if armed and fired_phase == phase:
            kill_current_process()

    manager = EpochManager(
        REGION, K, db, journal=PolicyJournal(root), swap_chaos=chaos
    )
    armed.append(True)  # the serial-0 init commit is exempt
    manager.advance(moves_for(db, 0.2, seed=7))
    raise SystemExit(1)  # unreachable: the hook must have killed us


class TestRepairerKill:
    @pytest.mark.parametrize("phase", ["intent", "snapshot"])
    def test_sigkill_mid_commit_restores_prior_epoch(
        self, tmp_path, phase
    ):
        root = str(tmp_path / "journal")
        child = Process(target=_repairer_child, args=(root, phase))
        child.start()
        child.join(timeout=60.0)
        assert child.exitcode == -9  # died by SIGKILL, mid-commit

        # The swap never committed: recovery lands on epoch 0, one swap
        # stale (the dangling swap-intent is void, not a torn hybrid).
        restored = EpochManager.restore(
            PolicyJournal(root), current_serial=1
        )
        assert restored.active.serial == 0
        assert restored.staleness == 1
        assert policy_dict(restored.active.policy) == policy_dict(
            restored.oracle_policy()
        )
        with restored.pin() as pin:
            assert pin.rung == "stale"


# ---------------------------------------------------------------------------
# Replica destruction between swap-intent and swap-commit
# ---------------------------------------------------------------------------


class TestReplicaLossMidSwap:
    @pytest.fixture
    def db(self):
        return uniform_users(150, REGION, seed=23)

    @pytest.fixture
    def roots(self, tmp_path):
        return [str(tmp_path / f"replica-{i}") for i in range(3)]

    @pytest.mark.parametrize("phase", ["intent", "snapshot"])
    def test_single_loss_still_promotes_durably(self, db, roots, phase):
        """Destroying one replica mid-swap-commit leaves a 2/3 quorum:
        the swap promotes, and a restore sees the new epoch."""
        journal = QuorumJournal(
            roots, kill_plan=ReplicaKillPlan.single(1, 1, phase)
        )
        manager = EpochManager(REGION, K, db, journal=journal)
        moves = moves_for(db, 0.15)
        swap = manager.advance(moves)
        assert swap.promoted and swap.committed
        assert journal.last_commit_failures == (1,)
        assert policy_dict(manager.active.policy) == policy_dict(
            manager.oracle_policy()
        )
        restored = EpochManager.restore(journal, current_serial=1)
        assert restored.active.serial == 1
        assert policy_dict(restored.active.policy) == policy_dict(
            manager.active.policy
        )

    def test_double_loss_voids_swap_prior_epoch_intact(self, db, roots):
        """Two replicas destroyed between swap-intent and swap-commit:
        durability is unprovable, so the swap is void — the prior epoch
        keeps serving (stale) and *no* promotion happens.  A minority
        survivor can never re-quorum on its own, so further ticks keep
        failing closed and the ladder marches to rejection — degraded
        availability, never a cloak untied to a durable policy."""
        journal = QuorumJournal(
            roots, kill_plan=ReplicaKillPlan.double(1, 0, 2, "snapshot")
        )
        manager = EpochManager(
            REGION, K, db,
            journal=journal,
            max_stale_snapshots=1,
            coarsen_grace=1,
        )
        epoch0 = policy_dict(manager.active.policy)
        uid = db.user_ids()[0]

        swap = manager.advance(moves_for(db, 0.15))
        assert not swap.promoted
        assert swap.reason == "journal-quorum"
        assert manager.active.serial == 0
        assert manager.staleness == 1
        # Prior epoch intact: stale rung, exact old-epoch cloaks.
        cloak, rung = manager.serve_cloak(uid)
        assert rung == "stale"
        assert cloak == epoch0[uid]

        # The lone survivor is a minority: recovery refuses to
        # resurrect state from it (same bar as the quorum layer's own
        # double-loss test) and further swaps stay void.
        with pytest.raises(RecoveryError) as err:
            journal.recover()
        assert err.value.reason == "quorum"
        swap = manager.advance()
        assert not swap.promoted and swap.reason == "journal-quorum"
        assert manager.staleness == 2
        coarse, rung = manager.serve_cloak(uid)
        assert rung == "coarsened"
        assert coarse.contains_rect(epoch0[uid])

        # Past the ladder: fail closed outright.
        swap = manager.advance()
        assert not swap.promoted
        with pytest.raises(ServiceUnavailableError) as unavailable:
            manager.pin()
        assert unavailable.value.reason == "stale"
