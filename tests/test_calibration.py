"""Tests for the scaling-law analysis helpers."""

import numpy as np
import pytest

from repro import ReproError
from repro.experiments.calibration import (
    PowerLawFit,
    fit_power_law,
    r_squared,
    speedup_curve,
)


class TestRSquared:
    def test_perfect_fit(self):
        assert r_squared([1, 2, 3], [1, 2, 3]) == 1.0

    def test_mean_predictor_is_zero(self):
        actual = [1.0, 2.0, 3.0]
        assert r_squared(actual, [2.0, 2.0, 2.0]) == pytest.approx(0.0)

    def test_constant_series(self):
        assert r_squared([2, 2], [2, 2]) == 1.0
        assert r_squared([2, 2], [3, 3]) == 0.0

    def test_validation(self):
        with pytest.raises(ReproError):
            r_squared([1], [1, 2])
        with pytest.raises(ReproError):
            r_squared([], [])


class TestPowerLawFit:
    def test_recovers_linear(self):
        xs = [1e3, 2e3, 4e3, 8e3]
        ys = [0.5 * x for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(1.0)
        assert fit.scale == pytest.approx(0.5)
        assert fit.r2 == pytest.approx(1.0)
        assert fit.is_near_linear and fit.is_subquadratic

    def test_recovers_quadratic(self):
        xs = [10, 20, 40, 80]
        ys = [3.0 * x * x for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(2.0)
        assert not fit.is_subquadratic

    def test_noisy_fit_reports_r2(self):
        rng = np.random.default_rng(0)
        xs = np.linspace(100, 1000, 12)
        ys = 2.0 * xs * rng.uniform(0.9, 1.1, size=12)
        fit = fit_power_law(list(xs), list(ys))
        assert 0.8 < fit.r2 <= 1.0
        assert 0.8 < fit.exponent < 1.2

    def test_predict(self):
        fit = PowerLawFit(exponent=1.0, scale=2.0, r2=1.0)
        assert fit.predict(10) == 20.0

    def test_validation(self):
        with pytest.raises(ReproError):
            fit_power_law([1], [1])
        with pytest.raises(ReproError):
            fit_power_law([1, -2], [1, 2])
        with pytest.raises(ReproError):
            fit_power_law([1, 2], [0, 2])


class TestSpeedupCurve:
    def test_perfect_scaling(self):
        curve = speedup_curve([1, 2, 4], [8.0, 4.0, 2.0])
        assert curve == [(1, 1.0, 1.0), (2, 2.0, 1.0), (4, 4.0, 1.0)]

    def test_imperfect_scaling(self):
        curve = speedup_curve([1, 4], [8.0, 4.0])
        assert curve[1] == (4, 2.0, 0.5)

    def test_unsorted_input_sorted(self):
        curve = speedup_curve([4, 1], [2.0, 8.0])
        assert [m for m, __, ___ in curve] == [1, 4]

    def test_validation(self):
        with pytest.raises(ReproError):
            speedup_curve([2, 4], [1.0, 0.5])  # no 1-server baseline
        with pytest.raises(ReproError):
            speedup_curve([], [])
        with pytest.raises(ReproError):
            speedup_curve([1, 2], [0.0, 1.0])


class TestOnRecordedResults:
    def test_fig4a_measured_shape_if_available(self):
        """If a default-scale fig4a run is recorded, its single-server
        curve should fit a near-linear power law."""
        import pathlib

        path = pathlib.Path(__file__).resolve().parent.parent / "bench_results" / "fig4a.txt"
        if not path.exists():
            pytest.skip("no recorded fig4a run")
        xs, ys = [], []
        for line in path.read_text().splitlines():
            parts = line.split()
            if len(parts) >= 3 and parts[0].isdigit() and parts[1] == "1":
                xs.append(float(parts[0]))
                ys.append(float(parts[2]))
        if len(xs) < 2:
            pytest.skip("not enough single-server rows")
        fit = fit_power_law(xs, ys)
        assert fit.is_subquadratic
