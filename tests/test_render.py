"""Tests for the ASCII map renderers (Figure 2/3 visuals)."""

import pytest

from repro import LocationDatabase, Rect, ReproError
from repro.data import bay_area_master, sample_users, square_region, uniform_users
from repro.experiments import density_map, depth_map
from repro.trees import BinaryTree, QuadTree


@pytest.fixture
def region():
    return square_region(1024)


class TestDensityMap:
    def test_dimensions(self, region):
        db = uniform_users(100, region, seed=201)
        text = density_map(db, region, width=40, height=10)
        lines = text.split("\n")
        assert len(lines) == 10
        assert all(len(line) == 40 for line in lines)

    def test_empty_db_renders_blank(self, region):
        text = density_map(LocationDatabase(), region, width=10, height=4)
        assert set(text) <= {" ", "\n"}

    def test_hotspot_is_brightest(self, region):
        # All users in the NE corner: the brightest char must be there.
        db = LocationDatabase(
            [(f"u{i}", 1000 + i * 0.01, 1000 + i * 0.01) for i in range(50)]
        )
        text = density_map(db, region, width=16, height=8)
        lines = text.split("\n")
        assert "@" in lines[0]  # row 0 is the north edge
        assert "@" not in "".join(lines[1:])

    def test_grid_validated(self, region):
        with pytest.raises(ReproError):
            density_map(LocationDatabase(), region, width=0)

    def test_skewed_master_shows_contrast(self):
        region, master = bay_area_master(seed=7, n_intersections=500)
        db = sample_users(master, 2_000, seed=7)
        text = density_map(db, region, width=40, height=20)
        # A skewed map has both empty space and bright cells.
        assert " " in text
        assert any(c in text for c in "#%@")


class TestDepthMap:
    def test_binary_tree_rendering(self, region):
        db = uniform_users(400, region, seed=202)
        tree = BinaryTree.build(region, db, 10)
        text = depth_map(tree, width=32, height=16)
        lines = text.split("\n")
        assert len(lines) == 16
        assert all(len(line) == 32 for line in lines)
        # Somewhere the tree is deeper than elsewhere.
        assert len(set(text) - {"\n"}) > 1

    def test_quad_tree_rendering(self, region):
        db = uniform_users(200, region, seed=203)
        tree = QuadTree.build_adaptive(region, db, split_threshold=10)
        text = depth_map(tree, width=20, height=10)
        assert len(text.split("\n")) == 10

    def test_dense_corner_is_deepest(self, region):
        # Everyone in the SW corner; that corner must be brightest.
        db = LocationDatabase(
            [(f"u{i}", 10 + (i % 7), 10 + (i // 7)) for i in range(60)]
        )
        tree = BinaryTree.build(region, db, 5)
        text = depth_map(tree, width=16, height=8)
        lines = text.split("\n")
        ramp = " .:-=+*#%@"
        bottom_left = lines[-1][0]
        top_right = lines[0][-1]
        assert ramp.index(bottom_left) > ramp.index(top_right)

    def test_grid_validated(self, region):
        db = uniform_users(20, region, seed=204)
        tree = BinaryTree.build(region, db, 5)
        with pytest.raises(ReproError):
            depth_map(tree, width=5, height=0)
