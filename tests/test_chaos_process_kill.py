"""Real process-kill chaos: SIGKILL'd workers must not change cloaks.

``mode="process"`` runs each jurisdiction solve in a real worker
process; the :class:`~repro.robustness.chaos.KillPlan` makes chosen
workers SIGKILL themselves mid-solve.  The master must detect the broken
pool, rebuild it, re-dispatch only the lost jurisdictions, and end with
exactly the cloaks a fault-free run produces.
"""

import pytest

from repro import Rect, ReproError
from repro.data import uniform_users
from repro.parallel import parallel_bulk_anonymize
from repro.robustness.chaos import KillPlan
from repro.robustness.retry import RetryPolicy

REGION = Rect(0, 0, 2048, 2048)
K = 4
N_SERVERS = 4


@pytest.fixture(scope="module")
def db():
    return uniform_users(120, REGION, seed=29)


@pytest.fixture(scope="module")
def reference(db):
    """Fault-free cloaks, computed in-process."""
    return parallel_bulk_anonymize(REGION, db, K, N_SERVERS, mode="simulated")


def pick_victim(reference):
    return max(reference.jurisdictions, key=lambda j: j.count).node_id


def members_of(reference, node_id):
    return {
        uid
        for uid in [uid for uid, __ in reference.master.merged.items()]
        if reference.master.server_for(uid).jurisdiction.node_id == node_id
    }


def test_kill_plan_requires_process_mode(db):
    with pytest.raises(ReproError, match="process"):
        parallel_bulk_anonymize(
            REGION,
            db,
            K,
            N_SERVERS,
            mode="simulated",
            kill_plan=KillPlan.first_attempt(0),
        )


def test_transient_sigkill_recovers_identical_cloaks(db, reference):
    victim = pick_victim(reference)
    result = parallel_bulk_anonymize(
        REGION,
        db,
        K,
        N_SERVERS,
        mode="process",
        kill_plan=KillPlan.first_attempt(victim),
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.0),
    )
    assert result.failures == ()
    assert result.recoveries >= 1  # the pool was rebuilt at least once
    assert result.recovery_seconds > 0.0
    assert result.mttr > 0.0
    assert len(result.master.merged) == len(db)
    for uid in [uid for uid, __ in reference.master.merged.items()]:
        assert result.master.cloak_for(uid) == reference.master.cloak_for(uid)


def test_permanent_sigkill_hands_territory_off(db, reference):
    victim = pick_victim(reference)
    victims = members_of(reference, victim)
    result = parallel_bulk_anonymize(
        REGION,
        db,
        K,
        N_SERVERS,
        mode="process",
        kill_plan=KillPlan.permanent(victim, 3),
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.0),
        on_failure="handoff",
    )
    # Only the victim exhausts retries; round-mates killed as collateral
    # damage of the broken pool recover on their own budgets.
    assert [f.node_id for f in result.failures] == [victim]
    failure = result.failures[0]
    assert failure.kind == "crash"
    assert failure.handed_off and not failure.degraded
    assert result.handoffs and all(
        dead == victim for dead, __, ___ in result.handoffs
    )
    # Every user is still served, and the survivors' cloaks are
    # bit-identical to the fault-free run.
    assert len(result.master.merged) == len(db)
    for uid in [uid for uid, __ in reference.master.merged.items()]:
        if uid not in victims:
            assert result.master.cloak_for(uid) == reference.master.cloak_for(
                uid
            )
    assert result.master.merged.min_group_size() >= K
    # Hand-off restores *fine* cloaks: the victims' mean area must match
    # the fault-free optimum, not the coarse territory rectangle.
    fault_free = sum(
        reference.master.cloak_for(uid).area for uid in victims
    ) / len(victims)
    recovered = sum(
        result.master.cloak_for(uid).area for uid in victims
    ) / len(victims)
    assert recovered <= fault_free * 1.05


def test_sigkill_inside_handoff_recovers_identical_cloaks(db, reference):
    """Nested recovery: the pool breaks *again* mid-hand-off.

    The victim jurisdiction is killed on every retry attempt (forcing
    the hand-off), and then the worker re-solving hand-off shard 0 is
    itself SIGKILLed.  The master must rebuild the pool a second time,
    re-dispatch the shard, and end with cloaks bit-identical to the
    hand-off run that suffered no shard kill.
    """
    victim = pick_victim(reference)
    kwargs = dict(
        mode="process",
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.0),
        on_failure="handoff",
    )
    baseline = parallel_bulk_anonymize(
        REGION, db, K, N_SERVERS,
        kill_plan=KillPlan.permanent(victim, 3),
        **kwargs,
    )
    nested = parallel_bulk_anonymize(
        REGION, db, K, N_SERVERS,
        kill_plan=KillPlan.permanent_with_shard_kill(
            victim, 3, shard_index=0, shard_attempts=1
        ),
        **kwargs,
    )
    assert [f.node_id for f in nested.failures] == [victim]
    assert nested.failures[0].handed_off
    assert nested.handoffs == baseline.handoffs
    # The shard kill costs at least one extra pool rebuild beyond the
    # jurisdiction kills' own recoveries.
    assert nested.recoveries > baseline.recoveries
    assert nested.recovery_seconds > 0.0
    # Bit-identical serving for every user — including the dead
    # territory's, whose shard solve was itself killed and re-run.
    assert len(nested.master.merged) == len(db)
    for uid in [uid for uid, __ in baseline.master.merged.items()]:
        assert nested.master.cloak_for(uid) == baseline.master.cloak_for(uid)
    assert nested.master.merged.min_group_size() >= K


def test_shard_kill_exhaustion_falls_back_in_master(db, reference):
    """A shard whose worker dies on every pooled attempt is solved
    in-master — same deterministic DP, so cloaks still match."""
    victim = pick_victim(reference)
    kwargs = dict(
        mode="process",
        retry_policy=RetryPolicy(max_attempts=2, base_delay=0.0),
        on_failure="handoff",
    )
    baseline = parallel_bulk_anonymize(
        REGION, db, K, N_SERVERS,
        kill_plan=KillPlan.permanent(victim, 2),
        **kwargs,
    )
    exhausted = parallel_bulk_anonymize(
        REGION, db, K, N_SERVERS,
        kill_plan=KillPlan.permanent_with_shard_kill(
            victim, 2, shard_index=0, shard_attempts=2
        ),
        **kwargs,
    )
    assert [f.node_id for f in exhausted.failures] == [victim]
    for uid in [uid for uid, __ in baseline.master.merged.items()]:
        assert exhausted.master.cloak_for(uid) == baseline.master.cloak_for(
            uid
        )
