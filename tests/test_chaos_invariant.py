"""The chaos invariant: no fault schedule ever weakens anonymity.

Under every seeded :class:`FaultPlan` in the matrix, every response the
CSP serves uses exactly the cloak of the auditable *effective* policy,
and that policy is policy-aware k-anonymous (zero breached users) at all
times.  Degraded responses are coarser or rejected — never sub-k.
"""

import pytest

from repro import Rect, ServiceUnavailableError
from repro.attacks.audit import audit_policy
from repro.data import uniform_users
from repro.lbs import CSP, LBSProvider, generate_pois, random_moves
from repro.parallel import parallel_bulk_anonymize
from repro.robustness import (
    FaultInjector,
    FaultPlan,
    FaultRule,
    ManualClock,
    RetryPolicy,
)

K = 10

PLANS = [
    FaultPlan(
        rules=(FaultRule("provider", "timeout", probability=0.4),),
        seed=11,
        name="provider-timeouts",
    ),
    FaultPlan(
        rules=(FaultRule("repair", "crash", probability=0.5),),
        seed=12,
        name="repair-crashes",
    ),
    FaultPlan(
        rules=(FaultRule("mpc", "stale", probability=0.7),),
        seed=13,
        name="mpc-stale",
    ),
    FaultPlan(
        rules=(
            FaultRule("provider", "timeout", probability=0.2),
            FaultRule("provider", "error", probability=0.1),
            FaultRule("repair", "crash", probability=0.3),
            FaultRule("mpc", "stale", probability=0.5),
        ),
        seed=14,
        name="kitchen-sink",
    ),
]


@pytest.mark.parametrize("plan", PLANS, ids=lambda p: p.name)
def test_no_fault_plan_ever_breaches_anonymity(plan):
    region = Rect(0, 0, 4096, 4096)
    db = uniform_users(300, region, seed=201)
    pois = generate_pois(region, {"rest": 80, "groc": 40}, seed=202)
    csp = CSP(
        region,
        K,
        db,
        LBSProvider(pois),
        injector=FaultInjector(plan),
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.01),
        clock=ManualClock(),
        max_stale_snapshots=1,
    )
    users = db.user_ids()
    served = rejected = 0
    for period in range(4):
        for i in range(25):
            uid = users[(period * 25 + i * 7) % len(users)]
            category = ("rest", "groc")[i % 2]
            try:
                response = csp.request(uid, [("poi", category)])
            except ServiceUnavailableError:
                rejected += 1
                continue
            served += 1
            # The served cloak is exactly what the auditable effective
            # policy says — no side-channel cloak can leak.
            assert response.anonymized.cloak == (
                csp.effective_policy.cloak_for(uid)
            )
            assert response.degradation in (
                "fresh",
                "coarsened",
                "stale",
            )
        # After every serving period: zero breaches, full stop.
        report = audit_policy(csp.effective_policy, K)
        assert report.safe_policy_aware, (
            f"plan {plan.name!r}, period {period}: {report.summary()}"
        )
        assert report.breached_users == ()
        assert report.identified_users == ()
        moves = random_moves(
            csp.anonymizer.current_db,
            0.3,
            region,
            max_distance=2000,
            seed=300 + period,
        )
        csp.advance_snapshot(moves)
    # The workload must actually have been served under chaos (the
    # invariant is vacuous on an all-rejected run).
    assert served > 0
    if plan.name != "provider-timeouts":
        # All plans except pure provider chaos leave the policy intact
        # often enough that most requests are served.
        assert served > rejected


def test_simulation_under_chaos_reports_degradation():
    from repro.lbs.simulation import LBSSimulation

    region = Rect(0, 0, 4096, 4096)
    db = uniform_users(300, region, seed=201)
    plan = FaultPlan(
        rules=(
            FaultRule("provider", "timeout", probability=0.3),
            FaultRule("repair", "crash", probability=0.5),
        ),
        seed=31,
        name="des-chaos",
    )
    sim = LBSSimulation(
        region,
        db,
        K,
        request_rate_per_user=0.05,
        snapshot_period=30.0,
        seed=41,
        injector=FaultInjector(plan),
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.01),
        max_stale_snapshots=1,
    )
    report = sim.run(300.0)
    assert 0.0 < report.availability <= 1.0
    assert report.failed_snapshots > 0
    assert report.provider_retries > 0
    assert report.served + report.rejected > 0
    assert "availability" in report.summary()

    baseline = LBSSimulation(
        region,
        db,
        K,
        request_rate_per_user=0.05,
        snapshot_period=30.0,
        seed=41,
    ).run(300.0)
    assert baseline.availability == 1.0
    assert report.availability <= baseline.availability


@pytest.mark.parametrize("seed", [21, 22, 23])
def test_parallel_degrade_never_breaches_anonymity(seed):
    region = Rect(0, 0, 1024, 1024)
    db = uniform_users(400, region, seed=101)
    plan = FaultPlan(
        rules=(FaultRule("solve", "crash", probability=0.5),),
        seed=seed,
        name=f"solve-crashes-{seed}",
    )
    result = parallel_bulk_anonymize(
        region,
        db,
        K,
        8,
        injector=FaultInjector(plan),
        retry_policy=RetryPolicy(max_attempts=2, base_delay=0.01),
        on_failure="degrade",
    )
    # Whatever crashed, the merged serving policy keeps every user and
    # every group at or above k.
    assert len(result.master.merged) == len(db)
    report = audit_policy(result.master.merged, K)
    assert report.safe_policy_aware, report.summary()
    assert report.breached_users == ()
