"""The trajectory-continuity defense (``repro.trajectory``): ledger,
constraint solver, and the serving integrations.

The acceptance bar throughout: attack the *served* stream with the
attacker's own tooling (:mod:`repro.attacks.trajectory` semantics via
:class:`ServedTrajectories`) and require every user's surviving
intersection to stay ≥ k — while the undefended baseline demonstrably
erodes below k on the byte-identical workload.
"""

import pytest

from repro import Rect, ReproError, ServiceUnavailableError
from repro.core.binary_dp import solve
from repro.data import uniform_users
from repro.lbs import CSP, LBSProvider, generate_pois
from repro.lbs.mobility import random_moves, trajectory_schedule
from repro.lbs.pipeline import ServedRequest
from repro.serving import FleetConfig, FleetDispatcher
from repro.streaming import EpochManager
from repro.trajectory import (
    ContinuityConstraint,
    ServedTrajectories,
    TrajectoryLedger,
)
from repro.trees import BinaryTree

REGION = Rect(0, 0, 2048, 2048)
K = 5


@pytest.fixture
def provider():
    return LBSProvider(generate_pois(REGION, {"rest": 30}, seed=1))


def build_policy(db):
    return solve(BinaryTree.build(REGION, db, K), K).policy()


# ---------------------------------------------------------------------------
# Ledger
# ---------------------------------------------------------------------------


class TestLedger:
    def test_record_intersects_running_set(self):
        ledger = TrajectoryLedger()
        assert ledger.surviving("u") is None
        first = ledger.record("u", Rect(0, 0, 1, 1), ["a", "b", "c"])
        assert first == frozenset({"a", "b", "c"})
        second = ledger.record("u", Rect(0, 0, 2, 2), ["b", "c", "d"])
        assert second == frozenset({"b", "c"})
        assert ledger.surviving("u") == second
        assert ledger.recorded == 2
        assert ledger.users() == ("u",)

    def test_window_bounds_entries_not_intersection(self):
        ledger = TrajectoryLedger(window=2)
        for step in range(5):
            # Candidate sets shrink by one each step: the intersection
            # must remember all of history even after entries fall out.
            candidates = [f"c{i}" for i in range(5 - step)]
            ledger.record("u", Rect(0, 0, 1 + step, 1), candidates)
        assert len(ledger.entries("u")) == 2  # trimmed observability
        assert ledger.surviving("u") == frozenset({"c0"})  # full history
        assert ledger.recorded == 5

    def test_window_validated(self):
        with pytest.raises(ReproError):
            TrajectoryLedger(window=0)

    def test_state_round_trip_is_bit_identical(self):
        ledger = TrajectoryLedger(window=4)
        ledger.record("u1", Rect(0, 0, 8, 8), ["a", "b"], serial=3)
        ledger.record(
            "u2", Rect(0, 0, 16, 16), ["a", "c"], serial=4, widened=True
        )
        state = ledger.to_state()
        clone = TrajectoryLedger.from_state(state)
        assert clone.to_state() == state
        assert clone.surviving("u1") == ledger.surviving("u1")
        assert clone.entries("u2") == ledger.entries("u2")
        assert clone.recorded == ledger.recorded
        assert clone.widened_count() == ledger.widened_count() == 1

    def test_subset_state_restricts_to_shard(self):
        ledger = TrajectoryLedger()
        ledger.record("u1", Rect(0, 0, 8, 8), ["a"])
        ledger.record("u2", Rect(0, 0, 8, 8), ["b"])
        shard = TrajectoryLedger.from_state(ledger.subset_state(["u2"]))
        assert shard.users() == ("u2",)
        assert shard.surviving("u1") is None

    def test_adopt_state_rejects_unknown_version(self):
        with pytest.raises(ReproError):
            TrajectoryLedger().adopt_state({"version": 99, "users": {}})

    def test_adoption_continues_the_intersection(self):
        """A hand-off (respawn, epoch swap, restore) must constrain the
        successor exactly as the predecessor was constrained."""
        a = TrajectoryLedger()
        a.record("u", Rect(0, 0, 1, 1), ["a", "b", "c"])
        b = TrajectoryLedger.from_state(a.to_state())
        assert b.record("u", Rect(0, 0, 2, 2), ["b", "c", "d"]) == (
            frozenset({"b", "c"})
        )


# ---------------------------------------------------------------------------
# Constraint solver
# ---------------------------------------------------------------------------


class TestContinuityConstraint:
    def test_no_history_serves_fine_cloak(self):
        db = uniform_users(80, REGION, seed=21)
        policy = build_policy(db)
        uid = db.user_ids()[0]
        constraint = ContinuityConstraint(K)
        decision = constraint.admissible(policy, uid, region=REGION)
        assert decision.cloak == policy.cloak_for(uid)
        assert not decision.widened and decision.levels == 0
        assert decision.k_evidence >= K
        assert decision.surviving >= K
        # candidates are exactly the policy's anonymity group
        assert uid in decision.candidates
        assert set(decision.candidates) == {
            other
            for other, region in policy.items()
            if region == policy.cloak_for(uid)
        }

    def test_admissible_does_not_record_enforce_does(self):
        db = uniform_users(80, REGION, seed=21)
        policy = build_policy(db)
        uid = db.user_ids()[0]
        constraint = ContinuityConstraint(K)
        constraint.admissible(policy, uid, region=REGION)
        assert constraint.ledger.surviving(uid) is None
        constraint.enforce(policy, uid, region=REGION, serial=2)
        assert constraint.ledger.surviving(uid) is not None
        (entry,) = constraint.ledger.entries(uid)
        assert entry.serial == 2

    def _eroding_pair(self, seed=22):
        """Two snapshots whose fine-group intersection drops below K
        for at least one user — the widening trigger."""
        db = uniform_users(120, REGION, seed=seed)
        p1 = build_policy(db)
        moves = random_moves(db, 0.5, REGION, max_distance=700, seed=seed)
        p2 = build_policy(db.with_moves(moves))
        for uid in db.user_ids():
            g1 = {u for u, r in p1.items() if r == p1.cloak_for(uid)}
            g2 = {u for u, r in p2.items() if r == p2.cloak_for(uid)}
            if len(g1 & g2) < K:
                return p1, p2, uid
        pytest.skip("no eroding user at this seed")

    def test_widens_to_smallest_admissible_ancestor(self):
        p1, p2, uid = self._eroding_pair()
        constraint = ContinuityConstraint(K)
        constraint.enforce(p1, uid, region=REGION, serial=0)
        decision = constraint.enforce(p2, uid, region=REGION, serial=1)
        assert decision.widened and decision.levels > 0
        fine = p2.cloak_for(uid)
        assert decision.cloak.contains_rect(fine)
        assert decision.cloak.area > fine.area
        assert decision.surviving >= K
        # widened candidate semantics: everyone whose fine cloak fits
        assert set(decision.candidates) == {
            other
            for other, region in p2.items()
            if decision.cloak.contains_rect(region)
        }
        # one level less must NOT have been admissible (smallest wins)
        prior = constraint.ledger.surviving(uid)
        assert prior is not None and len(prior) >= K

    def test_fail_closed_when_priors_left_the_system(self):
        db = uniform_users(60, REGION, seed=23)
        policy = build_policy(db)
        uid = db.user_ids()[0]
        constraint = ContinuityConstraint(K)
        # Poison the history: the survivors are users the policy has
        # never heard of, so no widening up to the root can help.
        constraint.ledger.record(
            uid, Rect(0, 0, 4, 4), ["ghost-1", "ghost-2", uid]
        )
        with pytest.raises(ServiceUnavailableError) as err:
            constraint.enforce(policy, uid, region=REGION)
        assert err.value.reason == "trajectory"
        assert "fail-closed" in str(err.value)


# ---------------------------------------------------------------------------
# CSP integration + the closing audit gate
# ---------------------------------------------------------------------------


def _replay(defended, n_users=130, seed=31):
    """One seeded schedule through a real CSP; returns the audit."""
    db = uniform_users(n_users, REGION, seed=seed)
    schedule = trajectory_schedule(
        db,
        0.4,
        REGION,
        rate_per_user=0.06,
        duration=100.0,
        snapshot_period=20.0,
        max_distance=600.0,
        seed=seed,
    )
    provider = LBSProvider(generate_pois(REGION, {"rest": 30}, seed=1))
    trajectory = ContinuityConstraint(K) if defended else None
    csp = CSP(REGION, K, db, provider, trajectory=trajectory)
    stream = ServedTrajectories()
    rejected = 0
    for index, batch in enumerate(schedule.arrival_batches()):
        for __, user, category in batch:
            try:
                served = csp.request(user, [("poi", category)])
            except ServiceUnavailableError as exc:
                assert exc.reason == "trajectory"
                rejected += 1
                continue
            cloak = served.anonymized.cloak
            stream.observe(
                user,
                cloak,
                csp.policy,
                widened=cloak != csp.policy.cloak_for(user),
            )
        if index < len(schedule.moves):
            csp.advance_snapshot(schedule.moves[index])
    return stream.audit(K), rejected, csp


class TestCSPAuditGate:
    def test_defended_stream_holds_for_every_user(self):
        audit, __, csp = _replay(defended=True)
        assert audit.audited > 0
        assert audit.all_hold
        assert audit.min_surviving >= K
        assert all(level >= K for level in audit.min_curve)
        assert csp.trajectory.ledger.recorded > 0

    def test_undefended_baseline_erodes_below_k(self):
        audit, rejected, __ = _replay(defended=False)
        assert rejected == 0  # nothing rejects without the defense
        assert audit.failing  # ...and that is exactly the problem
        assert audit.min_surviving < K

    def test_defense_never_registers_group_coarsening(self):
        """Widenings are per-request decisions, not policy overrides:
        the CSP's group-coarsening registry must stay untouched."""
        __, ___, csp = _replay(defended=True)
        assert not csp._coarsened


# ---------------------------------------------------------------------------
# EpochManager: ledger survives swaps and journal restores
# ---------------------------------------------------------------------------


class TestEpochManagerDefense:
    def _churned(self, manager, db, rounds=3, seed=41):
        current = db
        for step in range(rounds):
            for uid in current.user_ids()[:40]:
                manager.serve_cloak(uid)
            moves = random_moves(
                current, 0.4, REGION, max_distance=500, seed=seed + step
            )
            manager.advance(moves)
            current = current.with_moves(moves)
        return current

    def test_ledger_survives_epoch_swaps(self):
        db = uniform_users(120, REGION, seed=41)
        constraint = ContinuityConstraint(K)
        manager = EpochManager(REGION, K, db, trajectory=constraint)
        try:
            current = self._churned(manager, db)
            for uid in current.user_ids()[:40]:
                manager.serve_cloak(uid)
            for uid in current.user_ids()[:40]:
                surviving = constraint.ledger.surviving(uid)
                assert surviving is not None
                assert len(surviving) >= K
            # entries span multiple epoch serials: nothing was reset
            serials = {
                entry.serial
                for uid in current.user_ids()[:40]
                for entry in constraint.ledger.entries(uid)
            }
            assert len(serials) > 1
        finally:
            manager.close()

    def test_journal_restore_resumes_bit_identical(self, tmp_path):
        from repro.robustness.recovery import PolicyJournal

        journal = PolicyJournal(str(tmp_path / "journal"))
        db = uniform_users(120, REGION, seed=42)
        constraint = ContinuityConstraint(K)
        manager = EpochManager(
            REGION, K, db, journal=journal, trajectory=constraint
        )
        try:
            current = self._churned(manager, db, seed=42)
            expected_state = constraint.ledger.to_state()
            expected_cloaks = {
                uid: manager.serve_cloak(uid)[0]
                for uid in current.user_ids()[:30]
            }
        finally:
            manager.close()

        successor = ContinuityConstraint(K)
        restored = EpochManager.restore(journal, trajectory=successor)
        try:
            # The commit preceding the kill carries the ledger; serves
            # made after it are the bounded exposure — here there were
            # none between the last advance() and the snapshot above.
            assert successor.ledger.to_state() == expected_state
            for uid, cloak in expected_cloaks.items():
                assert restored.serve_cloak(uid)[0] == cloak
        finally:
            restored.close()


# ---------------------------------------------------------------------------
# Fleet: mirror ledger, epoch hand-off, respawn hand-off
# ---------------------------------------------------------------------------


class TestFleetDefense:
    def _workload(self, db):
        return [(uid, [("poi", "rest")]) for uid in db.user_ids()]

    def test_simulated_fleet_holds_across_epochs(self, provider):
        db = uniform_users(100, REGION, seed=51)
        dispatcher = FleetDispatcher(
            REGION,
            K,
            db,
            provider,
            FleetConfig(n_workers=3, mode="simulated", trajectory=True),
        )
        try:
            current = db
            for step in range(3):
                results = dispatcher.serve(self._workload(current))
                assert all(
                    isinstance(r, ServedRequest) for r in results
                )
                moves = random_moves(
                    current, 0.4, REGION, max_distance=500, seed=51 + step
                )
                dispatcher.advance_epoch(moves)
                current = current.with_moves(moves)
            results = dispatcher.serve(self._workload(current))
            mirror = dispatcher._mirror
            assert mirror is not None
            assert len(mirror) == len(db)
            for uid in db.user_ids():
                surviving = mirror.surviving(uid)
                assert surviving is not None and len(surviving) >= K
        finally:
            dispatcher.close()

    def test_process_fleet_holds_through_respawn(self, provider):
        db = uniform_users(60, REGION, seed=52)
        dispatcher = FleetDispatcher(
            REGION,
            K,
            db,
            provider,
            FleetConfig(
                n_workers=2,
                mode="process",
                trajectory=True,
                kill_after={1: 8},
                worker_timeout=30.0,
            ),
        )
        try:
            current = db
            for step in range(2):
                results = dispatcher.serve(self._workload(current))
                assert all(
                    isinstance(r, ServedRequest) for r in results
                )
                moves = random_moves(
                    current, 0.4, REGION, max_distance=500, seed=52 + step
                )
                dispatcher.advance_epoch(moves)
                current = current.with_moves(moves)
            results = dispatcher.serve(self._workload(current))
            assert all(isinstance(r, ServedRequest) for r in results)
            mirror = dispatcher._mirror
            assert mirror is not None
            for uid in db.user_ids():
                surviving = mirror.surviving(uid)
                assert surviving is not None and len(surviving) >= K
        finally:
            stats = dispatcher.close()
        assert stats.respawns >= 1
        assert stats.lost_workers == 0
