"""Tests for the operational attackers and the paper's Propositions 1–3."""

import pytest

from repro import LocationDatabase, Rect
from repro.attacks import (
    AttackResult,
    PolicyAwareAttacker,
    PolicyUnawareAttacker,
)
from repro.baselines import policy_unaware_binary
from repro.core.binary_dp import solve
from repro.core.requests import AnonymizedRequest, ServiceRequest
from repro.data import uniform_users
from repro.trees import BinaryTree

from conftest import random_instance


def anonymize_all(policy, db):
    return [
        policy.anonymize(ServiceRequest(uid, db.location_of(uid)))
        for uid in db.user_ids()
    ]


class TestAttackResult:
    def test_anonymity_and_identified(self):
        ar = AnonymizedRequest(1, Rect(0, 0, 1, 1))
        single = AttackResult(ar, ("alice",))
        multi = AttackResult(ar, ("alice", "bob"))
        assert single.anonymity == 1 and single.identified == "alice"
        assert multi.anonymity == 2 and multi.identified is None
        assert single.breaches(2) and not multi.breaches(2)


class TestPolicyUnawareAttacker:
    def test_candidates_are_cloak_population(self):
        db = LocationDatabase([("a", 1, 1), ("b", 2, 2), ("c", 9, 9)])
        attacker = PolicyUnawareAttacker(db)
        ar = AnonymizedRequest(1, Rect(0, 0, 4, 4))
        assert sorted(attacker.attack(ar).candidates) == ["a", "b"]

    def test_min_anonymity_over_set(self):
        db = LocationDatabase([("a", 1, 1), ("b", 2, 2), ("c", 9, 9)])
        attacker = PolicyUnawareAttacker(db)
        ars = [
            AnonymizedRequest(1, Rect(0, 0, 4, 4)),
            AnonymizedRequest(2, Rect(8, 8, 10, 10)),
        ]
        assert attacker.min_anonymity(ars) == 1

    def test_empty_request_set(self):
        attacker = PolicyUnawareAttacker(LocationDatabase())
        assert attacker.min_anonymity([]) == 0


class TestPolicyAwareAttacker:
    def test_candidates_are_cloak_group(self, table1_region, table1_db):
        policy = policy_unaware_binary(table1_region, table1_db, 2, max_depth=4)
        attacker = PolicyAwareAttacker(policy)
        ar_c = policy.anonymize(
            ServiceRequest("Carol", table1_db.location_of("Carol"))
        )
        assert attacker.attack(ar_c).candidates == ("Carol",)
        assert attacker.attack(ar_c).identified == "Carol"

    def test_unknown_cloak_has_no_candidates(self, table1_region, table1_db):
        policy = policy_unaware_binary(table1_region, table1_db, 2, max_depth=4)
        attacker = PolicyAwareAttacker(policy)
        foreign = AnonymizedRequest(99, Rect(0, 0, 0.5, 0.5))
        assert attacker.attack(foreign).anonymity == 0

    def test_identified_senders(self, table1_region, table1_db):
        policy = policy_unaware_binary(table1_region, table1_db, 2, max_depth=4)
        attacker = PolicyAwareAttacker(policy)
        ars = anonymize_all(policy, table1_db)
        assert attacker.identified_senders(ars) == ["Carol"]


class TestPropositions:
    @pytest.mark.parametrize("seed", range(300, 312))
    def test_proposition1_aware_at_most_unaware(self, seed):
        """Prop 1 (contrapositive view): the policy-aware candidate set
        is a subset of the unaware one, so aware anonymity ≤ unaware."""
        region, db, k = random_instance(seed)
        if len(db) < k:
            return
        policy = solve(BinaryTree.build(region, db, k, max_depth=6), k).policy()
        ars = anonymize_all(policy, db)
        aware = PolicyAwareAttacker(policy)
        unaware = PolicyUnawareAttacker(db)
        for ar in ars:
            a = set(aware.attack(ar).candidates)
            u = set(unaware.attack(ar).candidates)
            assert a <= u

    @pytest.mark.parametrize("seed", range(312, 320))
    def test_proposition1_dp_output_safe_both_ways(self, seed):
        """A policy that defends policy-aware attackers also defends
        policy-unaware ones (Prop 1) — check on the DP's output."""
        region, db, k = random_instance(seed)
        if len(db) < k:
            return
        policy = solve(BinaryTree.build(region, db, k, max_depth=6), k).policy()
        ars = anonymize_all(policy, db)
        assert PolicyAwareAttacker(policy).min_anonymity(ars) >= k
        assert PolicyUnawareAttacker(db).min_anonymity(ars) >= k

    @pytest.mark.parametrize("seed", range(320, 330))
    def test_proposition2_kinside_unaware_safe(self, seed):
        region, db, k = random_instance(seed, n_range=(8, 40))
        if len(db) < k:
            return
        policy = policy_unaware_binary(region, db, k)
        ars = anonymize_all(policy, db)
        assert PolicyUnawareAttacker(db).min_anonymity(ars) >= k

    def test_proposition3_witness(self, table1_region, table1_db):
        """Not all k-inside policies defend policy-aware attackers."""
        policy = policy_unaware_binary(table1_region, table1_db, 2, max_depth=4)
        ars = anonymize_all(policy, table1_db)
        assert PolicyUnawareAttacker(table1_db).min_anonymity(ars) >= 2
        assert PolicyAwareAttacker(policy).min_anonymity(ars) < 2
