"""The asyncio serving gateway: oracle identity, admission control,
coalesced failure fan-out, and pooled-connection lifecycle.

The privacy acceptance bar is absolute: every cloak the async gateway
emits must be identical to what the synchronous ``CSP.request`` oracle
emits for the same user — concurrency buys throughput, never a
different anonymity decision.
"""

import asyncio

import pytest

from repro import Rect, ReproError, ServiceUnavailableError
from repro.core.requests import AnonymizedRequest, normalize_payload
from repro.data import uniform_users
from repro.lbs import CSP, LBSProvider, generate_pois
from repro.lbs.pipeline import ServedRequest
from repro.robustness import (
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    FaultRule,
    RetryPolicy,
)
from repro.serving import (
    AsyncGateway,
    AsyncProviderClient,
    CoalescingBatcher,
    GatewayConfig,
    run_gateway,
)
from repro.serving.gateway import serve_all

K = 8
REGION = Rect(0, 0, 4096, 4096)


@pytest.fixture
def db():
    return uniform_users(160, REGION, seed=71)


@pytest.fixture
def provider():
    pois = generate_pois(REGION, {"rest": 80, "groc": 40}, seed=72)
    return LBSProvider(pois)


def make_csp(db, provider, **kwargs):
    return CSP(REGION, K, db, provider, **kwargs)


def workload_for(db, n, categories=("rest", "groc")):
    users = db.user_ids()
    return [
        (users[i % len(users)], [("poi", categories[i % len(categories)])])
        for i in range(n)
    ]


class TestConfig:
    def test_knobs_validated(self):
        for bad in (
            dict(max_inflight=0),
            dict(queue_high_water=0),
            dict(rate_per_user=-1.0),
            dict(burst_per_user=0.5),
        ):
            with pytest.raises(ReproError):
                GatewayConfig(**bad).validate()

    def test_batcher_knobs_validated(self):
        async def round_fn(requests):
            return ()

        with pytest.raises(ReproError):
            CoalescingBatcher(round_fn, max_batch=0)
        with pytest.raises(ReproError):
            CoalescingBatcher(round_fn, max_wait=-1)

    def test_client_knobs_validated(self, provider):
        with pytest.raises(ReproError):
            AsyncProviderClient(provider, pool_size=0)
        with pytest.raises(ReproError):
            AsyncProviderClient(provider, rtt=-1)
        with pytest.raises(ReproError):
            AsyncProviderClient(provider, deadline=0)


class TestOracleIdentity:
    def test_async_cloaks_identical_to_sync_oracle(self, db, provider):
        """The acceptance invariant: zero anonymity violations — every
        served cloak equals the sync oracle's for that user."""
        workload = workload_for(db, 120)
        oracle = make_csp(db, provider)
        expected = [oracle.request(uid, payload) for uid, payload in workload]

        csp = make_csp(db, provider)
        results, stats = csp.serve_async(
            workload, GatewayConfig(rtt=0.002, max_batch=32)
        )
        assert stats.served == len(workload)
        assert stats.errors == stats.shed == stats.throttled == 0
        mismatches = 0
        for (uid, __), served, want in zip(workload, results, expected):
            assert isinstance(served, ServedRequest)
            assert served.request.user_id == uid
            if served.anonymized.cloak != want.anonymized.cloak:
                mismatches += 1
            assert served.result == want.result
            assert served.degradation == want.degradation == "fresh"
        assert mismatches == 0

    def test_coalescing_amortizes_provider_traffic(self, db, provider):
        workload = workload_for(db, 150)
        csp = make_csp(db, provider)
        results, stats = csp.serve_async(
            workload, GatewayConfig(rtt=0.001, max_batch=32)
        )
        assert stats.served == len(workload)
        # k-anonymity makes cloaks shared, so distinct provider queries
        # must undercut one-per-request, and rounds undercut queries.
        assert stats.provider_queries < stats.served
        assert stats.queries_per_request < 1.0
        assert stats.provider_rounds <= stats.provider_queries
        assert stats.cache_hits + stats.coalesced > 0
        assert csp.base_provider.served == stats.provider_queries

    def test_sync_path_unchanged_after_async_run(self, db, provider):
        """Running the gateway must not perturb the sync oracle."""
        workload = workload_for(db, 40)
        csp = make_csp(db, provider)
        csp.serve_async(workload, GatewayConfig())
        oracle = make_csp(db, provider)
        for uid, payload in workload[:10]:
            a = csp.request(uid, payload)
            b = oracle.request(uid, payload)
            assert a.anonymized.cloak == b.anonymized.cloak


class TestAdmissionControl:
    def test_shed_under_burst_is_deterministic(self, db, provider):
        """Past the high-water mark submissions shed fail-closed, and the
        same seeded burst sheds the same requests on every run."""
        workload = workload_for(db, 30)
        config = GatewayConfig(
            max_inflight=1, queue_high_water=4, rtt=0.002
        )

        def burst():
            csp = make_csp(db, provider)
            results, stats = csp.serve_async(workload, config)
            shed_idx = [
                i
                for i, r in enumerate(results)
                if isinstance(r, ServiceUnavailableError)
                and r.reason == "shed"
            ]
            return shed_idx, stats

        first_idx, first_stats = burst()
        second_idx, second_stats = burst()
        assert first_stats.shed == len(first_idx) == 30 - 4
        assert first_idx == second_idx
        assert first_stats.served == second_stats.served == 4
        assert 0.0 < first_stats.availability < 1.0

    def test_token_bucket_throttles_chatty_user(self, db, provider):
        user = db.user_ids()[0]
        workload = [(user, [("poi", "rest")])] * 6
        csp = make_csp(db, provider)
        results, stats = csp.serve_async(
            workload,
            GatewayConfig(rate_per_user=0.0001, burst_per_user=2.0),
        )
        assert stats.throttled == 4
        throttled = [
            r for r in results if isinstance(r, ServiceUnavailableError)
        ]
        assert len(throttled) == 4
        assert all(r.reason == "throttle" for r in throttled)
        assert stats.served == 2

    def test_quiet_users_unaffected_by_rate_limit(self, db, provider):
        workload = workload_for(db, 20)  # distinct users
        csp = make_csp(db, provider)
        __, stats = csp.serve_async(
            workload, GatewayConfig(rate_per_user=0.0001, burst_per_user=2.0)
        )
        assert stats.throttled == 0
        assert stats.served == 20


class TestCoalescedFailure:
    def test_shared_round_failure_fans_one_typed_error(self, db, provider):
        """Every waiter coalesced onto a failed round gets the *same*
        ServiceUnavailableError instance, and the breaker counts the
        round's attempts once — not once per waiter."""
        plan = FaultPlan(
            rules=(FaultRule(site="provider", kind="error"),), seed=3
        )
        breaker = CircuitBreaker(failure_threshold=100)
        csp = make_csp(
            db,
            provider,
            injector=FaultInjector(plan),
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.0),
            circuit_breaker=breaker,
        )
        workload = workload_for(db, 24)
        results, stats = csp.serve_async(
            workload, GatewayConfig(max_batch=64, max_wait=0.005)
        )
        failures = [
            r for r in results if isinstance(r, ServiceUnavailableError)
        ]
        assert len(failures) == len(workload)
        assert all(f.reason == "provider" for f in failures)
        assert stats.errors == len(workload)
        assert stats.served == 0
        # One window → one round → exactly max_attempts breaker counts,
        # no matter how many waiters shared the round.
        assert breaker._consecutive_failures == 2
        assert any(e.level == "rejected" for e in csp.events)

    def test_transient_round_failure_retries_to_success(self, db, provider):
        plan = FaultPlan(
            rules=(
                FaultRule(site="provider", kind="error", max_attempt=1),
            ),
            seed=3,
        )
        csp = make_csp(
            db,
            provider,
            injector=FaultInjector(plan),
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.0),
        )
        workload = workload_for(db, 30)
        results, stats = csp.serve_async(
            workload, GatewayConfig(max_batch=64, max_wait=0.005)
        )
        assert stats.served == len(workload)
        assert stats.errors == 0
        assert all(isinstance(r, ServedRequest) for r in results)
        # The injector struck at least the first attempt of each round.
        assert csp.injector.fired.get(("provider", "error"), 0) >= 1


def _anon(request_id, offset=0):
    return AnonymizedRequest(
        request_id=request_id,
        cloak=Rect(offset * 8, 0, offset * 8 + 64, 64),
        payload=normalize_payload([("poi", "rest")]),
    )


class TestPooledClient:
    def test_cancellation_reaches_the_pooled_connection(self, provider):
        """A caller cancelled mid-round must tear down the in-flight
        connection (never return a half-read one) and the pool must come
        back to full strength with a fresh replacement."""
        client = AsyncProviderClient(provider, pool_size=2, rtt=0.05)

        async def drive():
            task = asyncio.ensure_future(client.serve_round([_anon(1)]))
            await asyncio.sleep(0.005)  # mid-RTT
            assert client.idle_connections == 1
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task

        asyncio.run(drive())
        assert client.stats.cancelled == 1
        assert client.stats.replaced == 1

        async def after():
            # Full strength, and the replacement is a *new* connection.
            assert client.idle_connections == 2
            conns = [await client._acquire(), await client._acquire()]
            ids = {c.conn_id for c in conns}
            assert any(i >= 2 for i in ids)
            assert all(not c.closed for c in conns)
            for c in conns:
                client._release(c)

        asyncio.run(after())

    def test_deadline_overrun_replaces_connection(self, provider):
        client = AsyncProviderClient(
            provider, pool_size=1, rtt=0.05, deadline=0.01
        )
        from repro.core.errors import DeadlineExceededError

        async def drive():
            with pytest.raises(DeadlineExceededError):
                await client.serve_round([_anon(1)])

        asyncio.run(drive())
        assert client.stats.deadline_hits == 1
        assert client.stats.replaced == 1

        async def after():
            assert client.idle_connections == 1

        asyncio.run(after())

    def test_provider_error_returns_connection_intact(self):
        class Broken:
            def serve_many(self, requests):
                raise ConnectionError("5xx")

        client = AsyncProviderClient(Broken(), pool_size=1)

        async def drive():
            with pytest.raises(ConnectionError):
                await client.serve_round([_anon(1)])
            assert client.idle_connections == 1

        asyncio.run(drive())
        assert client.stats.replaced == 0

    def test_round_pays_one_rtt_for_many_queries(self, provider):
        from repro.robustness import VirtualClock

        clock = VirtualClock()
        client = AsyncProviderClient(provider, pool_size=4, rtt=0.01, clock=clock)

        async def drive():
            return await client.serve_round(
                [_anon(i, offset=i) for i in range(10)]
            )

        asyncio.run(drive())
        assert clock.slept == pytest.approx(0.01)  # one RTT, ten queries
        assert client.stats.rounds == 1
        assert client.stats.queries == 10
        assert client.stats.batching == 10.0


class TestGatewayCancellation:
    def test_cancelled_submit_counts_and_leaves_gateway_serving(
        self, db, provider
    ):
        csp = make_csp(db, provider)
        gateway = AsyncGateway(csp, GatewayConfig(rtt=0.03, max_wait=0.001))
        users = db.user_ids()

        async def drive():
            victim = asyncio.ensure_future(
                gateway.submit(users[0], [("poi", "rest")])
            )
            await asyncio.sleep(0.005)
            victim.cancel()
            with pytest.raises(asyncio.CancelledError):
                await victim
            # The gateway keeps serving after the cancellation.
            served = await gateway.submit(users[1], [("poi", "rest")])
            await gateway.close()
            return served

        served = asyncio.run(drive())
        assert isinstance(served, ServedRequest)
        assert gateway.stats.cancelled == 1
        assert gateway.stats.served == 1


class TestFacade:
    def test_run_gateway_matches_serve_async(self, db, provider):
        workload = workload_for(db, 20)
        a_results, a_stats = run_gateway(
            make_csp(db, provider), workload, GatewayConfig()
        )
        b_results, b_stats = make_csp(db, provider).serve_async(
            workload, GatewayConfig()
        )
        assert a_stats.served == b_stats.served == 20
        for x, y in zip(a_results, b_results):
            assert x.anonymized.cloak == y.anonymized.cloak

    def test_serve_all_preserves_workload_order(self, db, provider):
        csp = make_csp(db, provider)
        gateway = AsyncGateway(csp, GatewayConfig())
        workload = workload_for(db, 12)
        results = asyncio.run(serve_all(gateway, workload))
        assert [r.request.user_id for r in results] == [
            uid for uid, __ in workload
        ]


class TestGauges:
    def test_queue_and_inflight_high_water_tracked(self, db, provider):
        config = GatewayConfig(max_inflight=4, rtt=0.005)
        __, stats = run_gateway(
            make_csp(db, provider), workload_for(db, 40), config
        )
        assert stats.queue_depth_high_water >= 1
        assert 1 <= stats.inflight_high_water <= config.max_inflight
        # A 40-deep burst against 4 inflight slots must actually queue.
        assert stats.queue_depth_high_water > config.max_inflight

    def test_gauges_zero_on_idle_gateway(self, db, provider):
        __, stats = run_gateway(
            make_csp(db, provider), [], GatewayConfig()
        )
        assert stats.queue_depth_high_water == 0
        assert stats.inflight_high_water == 0
