"""White-box tests of the optimized solver's kernels and of the tree
invariant checker's failure detection (error injection)."""

import numpy as np
import pytest

from repro import LocationDatabase, Rect, TreeError
from repro.core.binary_dp import (
    NodeSolution,
    _aggregate_children,
    _cap_for,
    _min_plus,
    _node_step,
)
from repro.data import uniform_users
from repro.trees import BinaryTree

INF = float("inf")


class TestMinPlus:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(261)
        for __ in range(10):
            a = rng.uniform(0, 100, size=rng.integers(1, 8))
            b = rng.uniform(0, 100, size=rng.integers(1, 8))
            out = _min_plus(a, b)
            assert len(out) == len(a) + len(b) - 1
            for j in range(len(out)):
                expected = min(
                    a[i] + b[j - i]
                    for i in range(len(a))
                    if 0 <= j - i < len(b)
                )
                assert out[j] == pytest.approx(expected)

    def test_empty_operand(self):
        assert len(_min_plus(np.empty(0), np.array([1.0]))) == 0

    def test_inf_entries_ignored(self):
        a = np.array([INF, 1.0])
        b = np.array([2.0, 3.0])
        out = _min_plus(a, b)
        # out[0] can only come from a[0]+b[0] = inf.
        assert out[0] == INF
        assert out[1] == 3.0  # a[1]+b[0]

    def test_commutative(self):
        rng = np.random.default_rng(262)
        a, b = rng.uniform(0, 10, 5), rng.uniform(0, 10, 3)
        assert np.allclose(_min_plus(a, b), _min_plus(b, a))


class TestAggregateChildren:
    def test_single_child_pieces(self):
        sol = NodeSolution(0, d=5, vec=np.array([7.0, 3.0]))
        pieces = _aggregate_children([sol])
        # (0, conv([0], vec)) and (5, [0]) — dense part plus sentinel.
        as_dict = {}
        for offset, arr in pieces:
            for i, value in enumerate(arr):
                key = offset + i
                as_dict[key] = min(as_dict.get(key, INF), value)
        assert as_dict[0] == 7.0
        assert as_dict[1] == 3.0
        assert as_dict[5] == 0.0

    def test_two_children_cover_all_combos(self):
        a = NodeSolution(0, d=3, vec=np.array([10.0]))
        b = NodeSolution(1, d=4, vec=np.array([20.0, 5.0]))
        pieces = _aggregate_children([a, b])
        combos = {}
        for offset, arr in pieces:
            for i, value in enumerate(arr):
                key = offset + i
                combos[key] = min(combos.get(key, INF), value)
        # u_a ∈ {0:10, 3:0}; u_b ∈ {0:20, 1:5, 4:0}.
        assert combos[0] == 30.0       # 0+0
        assert combos[1] == 15.0       # 0+1
        assert combos[3] == 20.0       # 3+0
        assert combos[4] == pytest.approx(5.0)  # best of 0+4 (10) and 3+1 (5)
        assert combos[7] == 0.0        # 3+4 sentinel+sentinel

    def test_empty_vec_child(self):
        a = NodeSolution(0, d=2, vec=np.empty(0))
        b = NodeSolution(1, d=3, vec=np.array([1.0]))
        pieces = _aggregate_children([a, b])
        combos = {}
        for offset, arr in pieces:
            for i, value in enumerate(arr):
                combos[offset + i] = min(combos.get(offset + i, INF), value)
        assert set(combos) == {2, 5}  # only via a's sentinel
        assert combos[2] == 1.0 and combos[5] == 0.0


class TestNodeStep:
    class FakeNode:
        def __init__(self, area):
            self.rect = Rect(0, 0, area ** 0.5, area ** 0.5)

    def test_equality_and_cloak_choices(self):
        node = self.FakeNode(area=4.0)
        # temp: j=0 cost 8; j=5 cost 0 (sentinel-ish piece).
        pieces = [(0, np.array([8.0])), (5, np.array([0.0]))]
        vec = _node_step(node, pieces, k=2, cap=3)
        # u=0: either temp[0]=8, or cloak 5 from j=5: 0 + 5·4 = 20 → 8.
        assert vec[0] == 8.0
        # u=3: temp[3] missing; j ≥ 5: cloak 2 → 0 + 2·4 = 8.
        assert vec[3] == 8.0

    def test_k_gap_respected(self):
        node = self.FakeNode(area=1.0)
        pieces = [(4, np.array([0.0]))]  # only j=4 available
        vec = _node_step(node, pieces, k=3, cap=2)
        # u=0: cloak 4 ≥ 3 OK → cost 4. u=2: j=4 needs cloak 2 < k → inf.
        assert vec[0] == 4.0
        assert vec[2] == INF

    def test_negative_cap(self):
        node = self.FakeNode(area=1.0)
        assert len(_node_step(node, [], k=2, cap=-1)) == 0


class TestCapFor:
    def test_cap_formula(self):
        class N:
            count = 20
            depth = 3

        assert _cap_for(N, k=5, prune=False) == 15
        assert _cap_for(N, k=5, prune=True) == min(15, 18)

    def test_negative_when_sparse(self):
        class N:
            count = 2
            depth = 1

        assert _cap_for(N, k=5, prune=False) == -3


class TestInvariantInjection:
    """check_invariants must catch each corruption category."""

    @pytest.fixture
    def tree(self):
        region = Rect(0, 0, 256, 256)
        db = uniform_users(120, region, seed=263)
        return BinaryTree.build(region, db, 8)

    def test_clean_tree_passes(self, tree):
        tree.check_invariants()

    def test_corrupted_leaf_count(self, tree):
        leaf = next(l for l in tree.leaves() if l.count > 0)
        leaf.count += 1
        with pytest.raises(TreeError, match="count mismatch"):
            tree.check_invariants()

    def test_corrupted_internal_count(self, tree):
        internal = next(n for n in tree.nodes.values() if not n.is_leaf)
        internal.count += 1
        with pytest.raises(TreeError, match="mismatch|collapsed"):
            tree.check_invariants()

    def test_stale_leaf_assignment(self, tree):
        populated = [l for l in tree.leaves() if l.count > 0]
        leaf_a, leaf_b = populated[0], populated[1]
        row = next(iter(leaf_a.point_index))
        # Move the row's membership without updating _leaf_of.
        leaf_a.point_index.discard(row)
        leaf_a.count -= 1
        leaf_b.point_index.add(row)
        leaf_b.count += 1
        with pytest.raises(TreeError):
            tree.check_invariants()

    def test_point_outside_leaf(self, tree):
        populated = next(l for l in tree.leaves() if l.count > 0)
        row = next(iter(populated.point_index))
        tree.coords[row] = (
            populated.rect.x2 + 50.0,
            populated.rect.y2 + 50.0,
        )
        with pytest.raises(TreeError, match="outside"):
            tree.check_invariants()

    def test_registry_desync(self, tree):
        some_leaf = tree.leaves()[0]
        del tree.nodes[some_leaf.node_id]
        with pytest.raises(TreeError, match="registry"):
            tree.check_invariants()

    def test_lazy_violation(self, tree):
        # Force a leaf to look over-full.
        leaf = tree.leaves()[0]
        for fake_row in range(10_000, 10_000 + tree.split_threshold + 1):
            leaf.point_index.add(fake_row)
        leaf.count = len(leaf.point_index)
        with pytest.raises(TreeError):
            tree.check_invariants()
