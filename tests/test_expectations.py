"""Tests for the machine-checkable paper expectations."""

import json
import pathlib

import pytest

from repro.experiments import Table
from repro.experiments.expectations import (
    EXPECTATIONS,
    verify_results,
)


def write_json(directory, stem, table):
    with open(directory / f"{stem}.json", "w", encoding="utf-8") as handle:
        json.dump(table.to_dict(), handle)


def fig5a_table(ratio):
    table = Table("fig5a", ["n_users", "policy_aware", "casper", "pub", "puq", "pa_over_casper"])
    table.add(
        n_users=1000,
        policy_aware=ratio * 10.0,
        casper=10.0,
        pub=11.0,
        puq=ratio * 10.0 + 1.0,
        pa_over_casper=ratio,
    )
    return table


class TestVerifyResults:
    def test_missing_everything(self, tmp_path):
        results = verify_results(tmp_path)
        assert all(r.status == "missing" for r in results)
        assert {r.experiment_id for r in results} == set(EXPECTATIONS)

    def test_passing_table(self, tmp_path):
        write_json(tmp_path, "fig5a", fig5a_table(1.4))
        results = {r.experiment_id: r for r in verify_results(tmp_path)}
        assert results["fig5a"].status == "pass"

    def test_failing_table_names_the_claim(self, tmp_path):
        write_json(tmp_path, "fig5a", fig5a_table(2.4))
        results = {r.experiment_id: r for r in verify_results(tmp_path)}
        assert results["fig5a"].status == "fail"
        assert "1.7" in results["fig5a"].detail

    def test_fig5b_divergence_detected(self, tmp_path):
        table = Table(
            "fig5b",
            ["percent_moving", "incremental_seconds", "bulk_seconds",
             "recomputed_nodes", "total_nodes", "costs_equal"],
        )
        table.add(
            percent_moving=1.0,
            incremental_seconds=0.1,
            bulk_seconds=0.5,
            recomputed_nodes=10,
            total_nodes=100,
            costs_equal=False,
        )
        write_json(tmp_path, "fig5b", table)
        results = {r.experiment_id: r for r in verify_results(tmp_path)}
        assert results["fig5b"].status == "fail"
        assert "diverged" in results["fig5b"].detail

    def test_table1_breach_must_be_present(self, tmp_path):
        table = Table(
            "table1",
            ["policy", "user", "cloak", "aware_candidates", "unaware_candidates"],
        )
        # A (wrong) world where the 2-inside policy doesn't breach.
        table.add(policy="PUB", user="Carol", cloak="r",
                  aware_candidates=2, unaware_candidates=3)
        write_json(tmp_path, "table1", table)
        results = {r.experiment_id: r for r in verify_results(tmp_path)}
        assert results["table1"].status == "fail"

    def test_repo_results_all_pass_if_present(self):
        repo_results = (
            pathlib.Path(__file__).resolve().parent.parent / "bench_results"
        )
        if not any(repo_results.glob("*.json")):
            pytest.skip("no recorded JSON results yet")
        results = verify_results(repo_results)
        failing = [r for r in results if r.status == "fail"]
        assert not failing, [f"{r.experiment_id}: {r.detail}" for r in failing]


class TestTableRoundTrip:
    def test_to_from_dict(self):
        table = Table("t", ["a", "b"])
        table.add(a=1, b="x")
        rebuilt = Table.from_dict(table.to_dict())
        assert rebuilt.title == "t"
        assert rebuilt.rows == table.rows

    def test_json_round_trip(self):
        table = fig5a_table(1.3)
        rebuilt = Table.from_dict(json.loads(json.dumps(table.to_dict())))
        assert rebuilt.rows == table.rows
