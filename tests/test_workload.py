"""Tests for the request-workload generator."""

import numpy as np
import pytest

from repro import Rect, WorkloadError
from repro.data import request_stream, uniform_users, zipf_weights


@pytest.fixture
def db():
    return uniform_users(100, Rect(0, 0, 1000, 1000), seed=271)


class TestZipfWeights:
    def test_normalized(self):
        weights = zipf_weights(50, 0.8)
        assert weights.sum() == pytest.approx(1.0)
        assert (weights > 0).all()

    def test_monotone_decreasing(self):
        weights = zipf_weights(20, 1.0)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_zero_exponent_is_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert np.allclose(weights, 0.1)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            zipf_weights(0)
        with pytest.raises(WorkloadError):
            zipf_weights(5, -1)


class TestRequestStream:
    def test_events_are_time_ordered(self, db):
        events = list(request_stream(db, 100.0, 0.1, seed=1))
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(0 < t < 100.0 for t in times)

    def test_volume_matches_rate(self, db):
        events = list(request_stream(db, 200.0, 0.1, seed=2))
        expected = 100 * 0.1 * 200.0
        assert 0.7 * expected < len(events) < 1.3 * expected

    def test_users_and_payloads_valid(self, db):
        user_ids = set(db.user_ids())
        for event in request_stream(db, 50.0, 0.1, seed=3):
            assert event.user_id in user_ids
            assert dict(event.payload)["poi"] in {
                "rest", "groc", "cinema", "hospital",
            }

    def test_user_popularity_is_skewed(self, db):
        from collections import Counter

        counts = Counter(
            e.user_id for e in request_stream(db, 2000.0, 0.1, seed=4)
        )
        ranked = sorted(counts.values(), reverse=True)
        top_decile = sum(ranked[:10])
        assert top_decile > 0.25 * sum(ranked)  # heavy users dominate

    def test_category_weights_respected(self, db):
        from collections import Counter

        counts = Counter(
            dict(e.payload)["poi"]
            for e in request_stream(
                db, 2000.0, 0.1, categories={"a": 9.0, "b": 1.0}, seed=5
            )
        )
        assert counts["a"] > 5 * counts["b"]

    def test_deterministic(self, db):
        a = list(request_stream(db, 50.0, 0.1, seed=6))
        b = list(request_stream(db, 50.0, 0.1, seed=6))
        assert a == b

    def test_validation(self, db):
        from repro import LocationDatabase

        with pytest.raises(WorkloadError):
            list(request_stream(db, 0, 0.1))
        with pytest.raises(WorkloadError):
            list(request_stream(db, 10, 0))
        with pytest.raises(WorkloadError):
            list(request_stream(LocationDatabase(), 10, 0.1))
        with pytest.raises(WorkloadError):
            list(request_stream(db, 10, 0.1, categories={"x": -1}))
