"""Unit tests for service / anonymized requests (Definitions 1–3)."""

import pytest

from repro import LocationDatabase, Point, Rect
from repro.core.geometry import Circle
from repro.core.requests import (
    AnonymizedRequest,
    ServiceRequest,
    masks,
    normalize_payload,
    request_id_factory,
)


@pytest.fixture
def db():
    return LocationDatabase([("alice", 1, 1), ("bob", 3, 2)])


class TestServiceRequest:
    def test_make_normalizes(self):
        sr = ServiceRequest.make("alice", 1, 1, [("poi", "rest")])
        assert sr.user_id == "alice"
        assert sr.location == Point(1, 1)
        assert sr.payload == (("poi", "rest"),)

    def test_validity_requires_matching_location(self, db):
        assert ServiceRequest("alice", Point(1, 1)).is_valid_for(db)
        assert not ServiceRequest("alice", Point(2, 2)).is_valid_for(db)

    def test_validity_requires_known_user(self, db):
        assert not ServiceRequest("mallory", Point(1, 1)).is_valid_for(db)

    def test_requests_are_immutable_values(self):
        a = ServiceRequest.make("u", 1, 2, [("poi", "rest")])
        b = ServiceRequest.make("u", 1, 2, [("poi", "rest")])
        assert a == b
        assert hash(a) == hash(b)


class TestNormalizePayload:
    def test_coerces_to_strings(self):
        assert normalize_payload([(1, 2)]) == (("1", "2"),)

    def test_preserves_order(self):
        payload = normalize_payload([("b", "2"), ("a", "1")])
        assert payload == (("b", "2"), ("a", "1"))

    def test_empty(self):
        assert normalize_payload([]) == ()


class TestAnonymizedRequest:
    def test_cost_is_cloak_area(self):
        ar = AnonymizedRequest(1, Rect(0, 0, 2, 3))
        assert ar.cost == 6.0

    def test_circle_cloak_supported(self):
        ar = AnonymizedRequest(1, Circle(Point(0, 0), 1))
        assert ar.cost == pytest.approx(3.14159, abs=1e-3)


class TestMasks:
    def test_masks_requires_containment_and_payload(self):
        sr = ServiceRequest.make("u", 1, 1, [("poi", "rest")])
        inside = AnonymizedRequest(1, Rect(0, 0, 2, 2), (("poi", "rest"),))
        outside = AnonymizedRequest(2, Rect(5, 5, 6, 6), (("poi", "rest"),))
        wrong_payload = AnonymizedRequest(3, Rect(0, 0, 2, 2), (("poi", "groc"),))
        assert masks(inside, sr)
        assert not masks(outside, sr)
        assert not masks(wrong_payload, sr)

    def test_example_masking(self, table1_db=None):
        # Example 4 of the paper: AR_c masks SR_c.
        sr_c = ServiceRequest.make(
            "Carol", 1, 4, [("poi", "rest"), ("cat", "ital")]
        )
        ar_c = AnonymizedRequest(
            169, Rect(0, 0, 2, 4), (("poi", "rest"), ("cat", "ital"))
        )
        assert masks(ar_c, sr_c)


class TestRequestIdFactory:
    def test_ids_are_consecutive(self):
        nxt = request_id_factory()
        assert [nxt(), nxt(), nxt()] == [1, 2, 3]

    def test_custom_start(self):
        nxt = request_id_factory(167)
        assert nxt() == 167

    def test_factories_are_independent(self):
        a, b = request_id_factory(), request_id_factory()
        a()
        assert b() == 1
