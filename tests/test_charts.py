"""Tests for the ASCII chart renderer."""

import pytest

from repro import ReproError
from repro.experiments import Table, bar_chart, chart_table, line_chart


class TestLineChart:
    def test_dimensions_and_markers(self):
        text = line_chart(
            [1, 2, 3], {"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]},
            width=30, height=8,
        )
        lines = text.split("\n")
        assert "o=a" in lines[-1] and "x=b" in lines[-1]
        body = "\n".join(lines[:-1])
        assert "o" in body and "x" in body

    def test_extremes_on_axis_labels(self):
        text = line_chart([0, 10], {"s": [5.0, 50.0]}, width=20, height=6)
        assert "50" in text and "5" in text
        assert "0" in text and "10" in text

    def test_log_axis(self):
        text = line_chart(
            [1, 2, 3], {"s": [1.0, 100.0, 10_000.0]},
            width=20, height=9, log_y=True,
        )
        assert "log y" in text
        # On a log axis the three points are evenly spaced vertically.
        rows = [
            i
            for i, line in enumerate(text.split("\n"))
            if "o" in line and "legend" not in line
        ]
        assert len(rows) == 3
        assert rows[1] - rows[0] == rows[2] - rows[1]

    def test_constant_series(self):
        text = line_chart([1, 2], {"s": [5.0, 5.0]}, width=12, height=5)
        assert "o" in text

    def test_validation(self):
        with pytest.raises(ReproError):
            line_chart([], {}, width=20, height=6)
        with pytest.raises(ReproError):
            line_chart([1], {"s": [1.0, 2.0]}, width=20, height=6)
        with pytest.raises(ReproError):
            line_chart([1], {"s": [1.0]}, width=2, height=2)
        with pytest.raises(ReproError):
            line_chart([1], {"s": [0.0]}, width=20, height=6, log_y=True)
        with pytest.raises(ReproError):
            line_chart(
                [1], {str(i): [1.0] for i in range(9)}, width=20, height=6
            )


class TestBarChart:
    def test_scaling(self):
        text = bar_chart(["a", "bb"], [1.0, 4.0], width=8)
        lines = text.split("\n")
        assert lines[1].count("█") == 8
        assert lines[0].count("█") == 2

    def test_zero_bar(self):
        text = bar_chart(["x", "y"], [0.0, 2.0], width=4)
        assert "x │ 0" in text

    def test_validation(self):
        with pytest.raises(ReproError):
            bar_chart([], [])
        with pytest.raises(ReproError):
            bar_chart(["a"], [-1.0])


class TestChartTable:
    def test_charts_table_columns(self):
        table = Table("demo", ["n", "t"])
        table.add(n=10, t=1.0)
        table.add(n=20, t=2.0)
        text = chart_table(table, "n", ["t"])
        assert "demo" in text and "o=t" in text

    def test_missing_column(self):
        table = Table("demo", ["n"])
        table.add(n=1)
        with pytest.raises(ReproError, match="no column"):
            chart_table(table, "n", ["zzz"])
