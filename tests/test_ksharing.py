"""Tests for the k-sharing baseline [11] and its Figure 6(a) breach."""

import pytest

from repro import LocationDatabase, NoFeasiblePolicyError, Rect
from repro.attacks import audit_policy
from repro.baselines import (
    first_request_candidates,
    first_request_group,
    ksharing_policy,
    satisfies_k_sharing,
)
from repro.core.geometry import bounding_rect
from repro.data import uniform_users


@pytest.fixture
def fig6a_db():
    """Figure 6(a): A and B adjacent, C off to the side."""
    return LocationDatabase([("A", 3, 0), ("B", 4, 0), ("C", 7, 0)])


class TestGroupFormation:
    def test_group_contains_requester_first(self, fig6a_db):
        assert first_request_group(fig6a_db, 2, "C")[0] == "C"

    def test_group_size_is_k(self, fig6a_db):
        assert len(first_request_group(fig6a_db, 2, "C")) == 2

    def test_groups_depend_on_requester(self, fig6a_db):
        """The order-dependence at the heart of the breach: C groups
        with B, but B groups with A."""
        assert first_request_group(fig6a_db, 2, "C") == ["C", "B"]
        assert first_request_group(fig6a_db, 2, "B") == ["B", "A"]
        assert first_request_group(fig6a_db, 2, "A") == ["A", "B"]

    def test_unknown_requester(self, fig6a_db):
        with pytest.raises(NoFeasiblePolicyError):
            first_request_group(fig6a_db, 2, "Z")

    def test_too_few_users(self):
        db = LocationDatabase([("A", 0, 0)])
        with pytest.raises(NoFeasiblePolicyError):
            first_request_group(db, 2, "A")


class TestFigure6aBreach:
    def test_observed_cloak_identifies_sender(self, fig6a_db):
        group = first_request_group(fig6a_db, 2, "C")
        cloak = bounding_rect(fig6a_db.location_of(u) for u in group)
        candidates = first_request_candidates(fig6a_db, 2, cloak)
        assert candidates == ["C"]  # total identification

    def test_ab_cloak_is_ambiguous(self, fig6a_db):
        """The {A,B} cloak could come from either A or B — no breach
        for those two senders."""
        cloak = bounding_rect(
            [fig6a_db.location_of("A"), fig6a_db.location_of("B")]
        )
        assert sorted(first_request_candidates(fig6a_db, 2, cloak)) == ["A", "B"]


class TestBulkPolicy:
    def test_ksharing_property_holds(self):
        db = uniform_users(60, Rect(0, 0, 256, 256), seed=51)
        policy = ksharing_policy(db, 5)
        assert satisfies_k_sharing(policy, 5)

    def test_policy_unaware_safe(self):
        db = uniform_users(60, Rect(0, 0, 256, 256), seed=52)
        report = audit_policy(ksharing_policy(db, 5), 5)
        assert report.safe_policy_unaware

    def test_arrival_order_changes_groups(self):
        db = uniform_users(40, Rect(0, 0, 256, 256), seed=53)
        order_a = db.user_ids()
        order_b = list(reversed(order_a))
        policy_a = ksharing_policy(db, 4, arrival_order=order_a)
        policy_b = ksharing_policy(db, 4, arrival_order=order_b)
        cloaks_a = {u: policy_a.cloak_for(u) for u in order_a}
        cloaks_b = {u: policy_b.cloak_for(u) for u in order_a}
        assert cloaks_a != cloaks_b  # the realized "policy" is unstable

    def test_stragglers_join_groups(self):
        # 7 users, k=3: two groups of 3 plus one straggler → 3+4 split.
        db = LocationDatabase(
            [(f"u{i}", float(i), 0.0) for i in range(7)]
        )
        policy = ksharing_policy(db, 3)
        sizes = sorted(len(g) for g in policy.groups().values())
        assert sum(sizes) == 7
        assert all(size >= 3 for size in sizes)

    def test_order_must_be_permutation(self):
        db = LocationDatabase([("a", 0, 0), ("b", 1, 1)])
        with pytest.raises(NoFeasiblePolicyError, match="permutation"):
            ksharing_policy(db, 2, arrival_order=["a"])

    def test_too_few_users(self):
        db = LocationDatabase([("a", 0, 0)])
        with pytest.raises(NoFeasiblePolicyError):
            ksharing_policy(db, 2)
