"""Retry/backoff, deadlines, and the circuit breaker (repro.robustness.retry)."""

import pytest

from repro.core.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ReproError,
)
from repro.robustness import (
    CircuitBreaker,
    ManualClock,
    RetryPolicy,
    retry_call,
)


class Flaky:
    """Fails the first ``n_failures`` calls, then succeeds forever."""

    def __init__(self, n_failures, exc=TimeoutError):
        self.n_failures = n_failures
        self.exc = exc
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.n_failures:
            raise self.exc(f"flaky failure {self.calls}")
        return "answer"


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ReproError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ReproError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ReproError):
            RetryPolicy(jitter=1.0)

    def test_backoff_schedule_grows_and_caps(self):
        policy = RetryPolicy(
            max_attempts=6,
            base_delay=0.1,
            multiplier=2.0,
            max_delay=0.5,
            jitter=0.0,
        )
        delays = [policy.delay_for(i) for i in range(5)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=1.0, jitter=0.2, seed=42)
        assert policy.delay_for(0) == policy.delay_for(0)
        for attempt in range(4):
            raw = min(1.0 * 2.0**attempt, policy.max_delay)
            assert raw * 0.8 <= policy.delay_for(attempt) <= raw * 1.2
        other = RetryPolicy(base_delay=1.0, jitter=0.2, seed=43)
        assert other.delay_for(0) != policy.delay_for(0)

    def test_total_backoff_sums_interattempt_waits(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.1, jitter=0.0)
        assert policy.total_backoff() == pytest.approx(0.1 + 0.2)


class TestRetryCall:
    def test_retry_then_succeed(self):
        clock = ManualClock()
        fn = Flaky(2)
        policy = RetryPolicy(max_attempts=3, base_delay=0.1, jitter=0.0)
        assert retry_call(fn, policy=policy, clock=clock) == "answer"
        assert fn.calls == 3
        assert clock.slept == pytest.approx(0.1 + 0.2)

    def test_exhaustion_reraises_last_error(self):
        clock = ManualClock()
        fn = Flaky(10)
        with pytest.raises(TimeoutError, match="failure 3"):
            retry_call(
                fn,
                policy=RetryPolicy(max_attempts=3, jitter=0.0),
                clock=clock,
            )
        assert fn.calls == 3

    def test_non_retryable_propagates_immediately(self):
        fn = Flaky(10, exc=ValueError)
        with pytest.raises(ValueError):
            retry_call(
                fn,
                policy=RetryPolicy(max_attempts=5),
                clock=ManualClock(),
                retryable=(TimeoutError,),
            )
        assert fn.calls == 1

    def test_deadline_cuts_backoff_short(self):
        clock = ManualClock()
        fn = Flaky(10)
        policy = RetryPolicy(
            max_attempts=5, base_delay=1.0, multiplier=2.0, jitter=0.0
        )
        # First backoff (1s) fits a 1.5s budget; the second (2s) cannot.
        with pytest.raises(DeadlineExceededError, match="2 attempt"):
            retry_call(fn, policy=policy, clock=clock, deadline=1.5)
        assert fn.calls == 2
        assert clock.slept == pytest.approx(1.0)  # never slept toward doom

    def test_on_attempt_observes_every_try(self):
        seen = []
        fn = Flaky(1)
        retry_call(
            fn,
            policy=RetryPolicy(max_attempts=3, jitter=0.0),
            clock=ManualClock(),
            on_attempt=lambda attempt, exc: seen.append(
                (attempt, exc is None)
            ),
        )
        assert seen == [(0, False), (1, True)]


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        clock = ManualClock()
        breaker = CircuitBreaker(
            failure_threshold=3, reset_timeout=10.0, clock=clock
        )
        assert breaker.state == "closed"
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.rejected == 1
        assert breaker.opened_times == 1

    def test_half_open_probe_recovers(self):
        clock = ManualClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=10.0, clock=clock
        )
        breaker.allow()
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.state == "half_open"
        assert breaker.allow()  # the probe
        breaker.record_success()
        assert breaker.state == "closed"

    def test_failed_probe_reopens(self):
        clock = ManualClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=5.0, clock=clock
        )
        breaker.allow()
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opened_times == 2

    def test_retry_call_respects_open_breaker(self):
        clock = ManualClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=60.0, clock=clock
        )
        fn = Flaky(10)
        policy = RetryPolicy(max_attempts=1)
        with pytest.raises(TimeoutError):
            retry_call(fn, policy=policy, clock=clock, breaker=breaker)
        calls_so_far = fn.calls
        with pytest.raises(CircuitOpenError):
            retry_call(fn, policy=policy, clock=clock, breaker=breaker)
        assert fn.calls == calls_so_far  # rejected without attempting

    def test_breaker_opening_cuts_retry_loop_short(self):
        clock = ManualClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=60.0, clock=clock
        )
        fn = Flaky(10)
        policy = RetryPolicy(max_attempts=5, base_delay=0.1, jitter=0.0)
        # The breaker trips on the first failure; the second attempt is
        # rejected before calling, ending the retry loop early.
        with pytest.raises(CircuitOpenError):
            retry_call(fn, policy=policy, clock=clock, breaker=breaker)
        assert fn.calls == 1


class TestManualClock:
    def test_sleep_advances_and_accumulates(self):
        clock = ManualClock(start=100.0)
        clock.sleep(2.5)
        clock.advance(1.0)
        assert clock.monotonic() == pytest.approx(103.5)
        assert clock.slept == pytest.approx(2.5)

    def test_negative_sleep_rejected(self):
        with pytest.raises(ReproError):
            ManualClock().sleep(-1.0)
