"""Unit tests for the literal Algorithm 1 (``solve_naive``)."""

import pytest

from repro import LocationDatabase, NoFeasiblePolicyError, Rect, ReproError
from repro.core.bulk_dp import solve_naive
from repro.trees import BinaryTree, QuadTree


@pytest.fixture
def region():
    return Rect(0, 0, 8, 8)


class TestLeafRows:
    def test_leaf_row_contents(self, region):
        db = LocationDatabase([("a", 1, 1), ("b", 2, 2), ("c", 3, 3)])
        tree = QuadTree.build_full(region, db, depth=0)  # root-only tree
        matrix = solve_naive(tree, k=2)
        row = matrix.rows[tree.root.node_id]
        # u = d: cost 0 (cloak nothing).
        assert row[3][0] == 0.0
        # u = 0: cloak all 3 at root area 64 → 192; u=1: cloak 2 → 128.
        assert row[0][0] == 3 * 64
        assert row[1][0] == 2 * 64
        # u = 2 would cloak 1 < k: absent from the matrix.
        assert 2 not in row

    def test_sparse_leaf_only_passes_up(self, region):
        db = LocationDatabase([("a", 1, 1)])
        tree = QuadTree.build_full(region, db, depth=0)
        matrix = solve_naive(tree, k=2)
        row = matrix.rows[tree.root.node_id]
        assert list(row) == [1]
        assert row[1][0] == 0.0


class TestOptima:
    def test_hand_computed_instance(self, region):
        # 2 users in SW, 2 in NE; k=2 ⇒ cloak each pair in its quadrant.
        db = LocationDatabase(
            [("a", 1, 1), ("b", 2, 2), ("c", 6, 6), ("d", 7, 7)]
        )
        tree = QuadTree.build_full(region, db, depth=1)
        matrix = solve_naive(tree, k=2)
        assert matrix.optimal_cost == 4 * 16  # two quadrant cloaks, 2 users each

    def test_forced_root_cloak(self, region):
        # One user per quadrant; k=2 forces cloaking at the root.
        db = LocationDatabase(
            [("a", 1, 1), ("b", 1, 7), ("c", 7, 1), ("d", 7, 7)]
        )
        tree = QuadTree.build_full(region, db, depth=1)
        matrix = solve_naive(tree, k=2)
        assert matrix.optimal_cost == 4 * 64

    def test_mixed_split(self, region):
        # 3 users in SW (cloakable there), 1 in NE (must go to root with
        # company): optimal passes one SW user up to join the NE user?
        # No — cloaking at root needs ≥ 2, and SW can spare one.
        db = LocationDatabase(
            [("a", 1, 1), ("b", 2, 2), ("c", 3, 3), ("d", 7, 7)]
        )
        tree = QuadTree.build_full(region, db, depth=1)
        matrix = solve_naive(tree, k=2)
        # Option A: all 4 at root = 256. Option B: 2 at SW (32) + 2 at
        # root (128) = 160. Option C: 3 at SW + 1 at root — illegal.
        assert matrix.optimal_cost == 160

    def test_infeasible_raises(self, region):
        db = LocationDatabase([("a", 1, 1)])
        tree = QuadTree.build_full(region, db, depth=1)
        with pytest.raises(NoFeasiblePolicyError):
            solve_naive(tree, k=2).optimal_cost

    def test_empty_db_is_trivially_feasible(self, region):
        tree = QuadTree.build_full(region, LocationDatabase(), depth=1)
        assert solve_naive(tree, k=2).optimal_cost == 0.0

    def test_k_validated(self, region):
        tree = QuadTree.build_full(region, LocationDatabase(), depth=0)
        with pytest.raises(ReproError):
            solve_naive(tree, k=0)


class TestExtraction:
    def test_policy_is_k_anonymous_and_cost_matches(self, region):
        db = LocationDatabase(
            [("a", 1, 1), ("b", 2, 2), ("c", 3, 3), ("d", 7, 7), ("e", 6, 1)]
        )
        tree = QuadTree.build_full(region, db, depth=1)
        matrix = solve_naive(tree, k=2)
        policy = matrix.policy()
        assert policy.min_group_size() >= 2
        assert policy.cost() == pytest.approx(matrix.optimal_cost)

    def test_works_on_binary_trees_too(self, region):
        db = LocationDatabase(
            [("a", 1, 1), ("b", 2, 2), ("c", 6, 6), ("d", 7, 7)]
        )
        tree = BinaryTree.build(region, db, 2, max_depth=4)
        matrix = solve_naive(tree, k=2)
        policy = matrix.policy()
        assert policy.min_group_size() >= 2
        assert matrix.optimal_cost <= 4 * 64

    def test_configuration_satisfies_ksummation(self, region):
        db = LocationDatabase(
            [("a", 1, 1), ("b", 2, 2), ("c", 6, 6), ("d", 7, 7)]
        )
        tree = QuadTree.build_full(region, db, depth=1)
        config = solve_naive(tree, k=2).configuration()
        config.validate()
        assert config.is_complete
        assert config.satisfies_ksummation(2)
