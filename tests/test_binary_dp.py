"""Tests for the optimized DP solver (§V) — cross-validated against the
literal Algorithm 1 and against exhaustive configuration enumeration."""

import numpy as np
import pytest

from repro import LocationDatabase, NoFeasiblePolicyError, Rect, ReproError
from repro.core.binary_dp import NodeSolution, solve
from repro.core.bulk_dp import solve_naive
from repro.core.configuration import (
    configuration_of_policy,
    enumerate_ksummation_configurations,
)
from repro.data import uniform_users
from repro.trees import BinaryTree, QuadTree

from conftest import random_instance


class TestNodeSolution:
    def test_cost_at(self):
        sol = NodeSolution(0, d=5, vec=np.array([10.0, 8.0]))
        assert sol.cost_at(0) == 10.0
        assert sol.cost_at(1) == 8.0
        assert sol.cost_at(5) == 0.0  # sentinel: pass everything up
        assert sol.cost_at(3) == float("inf")

    def test_domain(self):
        sol = NodeSolution(0, d=5, vec=np.array([10.0, 8.0]))
        js, costs = sol.domain()
        assert list(js) == [0, 1, 5]
        assert list(costs) == [10.0, 8.0, 0.0]


class TestAgainstNaive:
    @pytest.mark.parametrize("seed", range(12))
    def test_quad_tree_costs_match(self, seed):
        region, db, k = random_instance(seed)
        tree = QuadTree.build_adaptive(region, db, split_threshold=k, max_depth=3)
        try:
            expected = solve_naive(tree, k).optimal_cost
        except NoFeasiblePolicyError:
            with pytest.raises(NoFeasiblePolicyError):
                __ = solve(tree, k, prune=False).optimal_cost
            return
        assert solve(tree, k, prune=False).optimal_cost == pytest.approx(expected)

    @pytest.mark.parametrize("seed", range(12, 24))
    def test_binary_tree_costs_match(self, seed):
        region, db, k = random_instance(seed)
        tree = BinaryTree.build(region, db, k, max_depth=6)
        try:
            expected = solve_naive(tree, k).optimal_cost
        except NoFeasiblePolicyError:
            return
        assert solve(tree, k, prune=False).optimal_cost == pytest.approx(expected)
        # Lemma 5 pruning never changes the optimum.
        assert solve(tree, k, prune=True).optimal_cost == pytest.approx(expected)


class TestAgainstExhaustiveEnumeration:
    @pytest.mark.parametrize("seed", range(6))
    def test_dp_is_globally_optimal(self, seed):
        region, db, k = random_instance(seed + 100, n_range=(4, 14), k_range=(2, 4))
        tree = BinaryTree.build(region, db, k, max_depth=4)
        if len(db) < k:
            return
        best = min(
            c.cost() for c in enumerate_ksummation_configurations(tree, k, 64)
        )
        assert solve(tree, k).optimal_cost == pytest.approx(best)


class TestFeasibility:
    def test_too_few_users(self):
        region = Rect(0, 0, 8, 8)
        db = LocationDatabase([("a", 1, 1), ("b", 2, 2)])
        tree = BinaryTree.build(region, db, 3)
        with pytest.raises(NoFeasiblePolicyError):
            __ = solve(tree, 3).optimal_cost

    def test_exactly_k_users(self):
        region = Rect(0, 0, 8, 8)
        db = LocationDatabase([("a", 1, 1), ("b", 2, 2), ("c", 7, 7)])
        tree = BinaryTree.build(region, db, 3)
        solution = solve(tree, 3)
        # Everyone must share one cloak — the root (nobody fits deeper).
        assert solution.optimal_cost == pytest.approx(3 * 64)
        policy = solution.policy()
        assert policy.min_group_size() == 3

    def test_empty_db(self):
        tree = BinaryTree.build(Rect(0, 0, 8, 8), LocationDatabase(), 2)
        solution = solve(tree, 2)
        assert solution.optimal_cost == 0.0
        assert len(solution.policy()) == 0

    def test_k_validated(self):
        tree = BinaryTree.build(Rect(0, 0, 8, 8), LocationDatabase(), 2)
        with pytest.raises(ReproError):
            solve(tree, 0)


class TestExtraction:
    @pytest.mark.parametrize("seed", range(24, 36))
    def test_policy_cost_equals_dp_optimum(self, seed):
        region, db, k = random_instance(seed)
        if len(db) < k:
            return
        tree = BinaryTree.build(region, db, k, max_depth=8)
        solution = solve(tree, k)
        policy = solution.policy()
        assert policy.cost() == pytest.approx(solution.optimal_cost)
        assert policy.min_group_size() >= k

    def test_extracted_configuration_is_ksummation(self):
        region = Rect(0, 0, 64, 64)
        db = uniform_users(60, region, seed=9)
        tree = BinaryTree.build(region, db, 5)
        config = solve(tree, 5).configuration()
        config.validate()
        assert config.is_complete
        assert config.satisfies_ksummation(5)

    def test_extraction_on_quad_tree(self):
        region = Rect(0, 0, 64, 64)
        db = uniform_users(40, region, seed=10)
        tree = QuadTree.build_adaptive(region, db, split_threshold=4, max_depth=3)
        solution = solve(tree, 4, prune=False)
        policy = solution.policy()
        assert policy.cost() == pytest.approx(solution.optimal_cost)
        assert policy.min_group_size() >= 4

    def test_extraction_deterministic(self):
        region = Rect(0, 0, 64, 64)
        db = uniform_users(50, region, seed=11)
        tree = BinaryTree.build(region, db, 5)
        p1 = solve(tree, 5).policy()
        p2 = solve(tree, 5).policy()
        assert {u: c for u, c in p1.items()} == {u: c for u, c in p2.items()}


class TestStructuralProperties:
    @pytest.mark.parametrize("seed", range(36, 44))
    def test_binary_never_worse_than_quad(self, seed):
        """Any quad-tree policy is also a binary-tree policy (§V), so
        the binary optimum is never more expensive."""
        region, db, k = random_instance(seed)
        if len(db) < k:
            return
        quad = QuadTree.build_adaptive(region, db, split_threshold=k, max_depth=3)
        binary = BinaryTree.build(region, db, k, max_depth=6)
        quad_cost = solve(quad, k, prune=False).optimal_cost
        assert solve(binary, k).optimal_cost <= quad_cost + 1e-9

    @pytest.mark.parametrize("seed", range(44, 52))
    def test_cost_monotone_in_k(self, seed):
        """Stronger anonymity can only cost more: optimal cost is
        non-decreasing in k (any k+1-anonymous policy is k-anonymous)."""
        region, db, __ = random_instance(seed, n_range=(12, 30))
        costs = []
        for k in (2, 3, 4):
            tree = BinaryTree.build(region, db, k, max_depth=6)
            try:
                costs.append(solve(tree, k).optimal_cost)
            except NoFeasiblePolicyError:
                costs.append(float("inf"))
        assert costs == sorted(costs)
