"""Tests for the trajectory-linking attack (demonstrating the paper's
declared future-work gap)."""

import pytest

from repro import LocationDatabase, Point, Rect
from repro.attacks import anonymity_erosion, trajectory_attack
from repro.core.anonymizer import IncrementalAnonymizer
from repro.core.binary_dp import solve
from repro.core.requests import AnonymizedRequest
from repro.data import uniform_users
from repro.lbs import random_moves
from repro.trees import BinaryTree


@pytest.fixture
def region():
    return Rect(0, 0, 2048, 2048)


class TestTrajectoryAttack:
    def test_single_snapshot_keeps_k(self, region):
        db = uniform_users(120, region, seed=161)
        policy = solve(BinaryTree.build(region, db, 10), 10).policy()
        uid = db.user_ids()[0]
        request = AnonymizedRequest(1, policy.cloak_for(uid), ())
        result = trajectory_attack([(request, policy)])
        assert result.anonymity >= 10
        assert uid in result.surviving

    def test_intersection_semantics(self, region):
        """Crafted two-snapshot scenario: the intersection of two groups
        pins the mover down to fewer than k candidates."""
        # Snapshot 1: a,b together far from c,d.
        db1 = LocationDatabase(
            [("a", 10, 10), ("b", 20, 20), ("c", 2000, 2000), ("d", 2010, 2010)]
        )
        p1 = solve(BinaryTree.build(region, db1, 2, max_depth=8), 2).policy()
        # Snapshot 2: a moved next to c; b moved far away with d.
        db2 = LocationDatabase(
            [("a", 2005, 2005), ("c", 2000, 2000), ("b", 15, 15), ("d", 20, 10)]
        )
        p2 = solve(BinaryTree.build(region, db2, 2, max_depth=8), 2).policy()
        linked = [
            (AnonymizedRequest(1, p1.cloak_for("a"), ()), p1),
            (AnonymizedRequest(2, p2.cloak_for("a"), ()), p2),
        ]
        result = trajectory_attack(linked)
        # Each snapshot alone gives ≥ 2 candidates...
        assert all(len(c) >= 2 for c in result.per_request)
        # ...but only "a" is in both groups.
        assert result.surviving == ("a",)
        assert result.identified

    def test_true_sender_always_survives(self, region):
        """The real user is consistent with every snapshot, so linking
        can never rule her out."""
        db = uniform_users(150, region, seed=162)
        anonymizer = IncrementalAnonymizer(region, 8).fit(db)
        uid = db.user_ids()[5]
        policies = [anonymizer.policy]
        current = db
        for step in range(3):
            moves = random_moves(current, 0.3, region, max_distance=400, seed=step)
            anonymizer.update(moves)
            current = current.with_moves(moves)
            policies.append(anonymizer.policy)
        erosion = anonymity_erosion(uid, policies)
        assert all(level >= 1 for level in erosion)

    def test_erosion_is_monotone_nonincreasing(self, region):
        db = uniform_users(150, region, seed=163)
        anonymizer = IncrementalAnonymizer(region, 8).fit(db)
        uid = db.user_ids()[9]
        policies = [anonymizer.policy]
        current = db
        for step in range(4):
            moves = random_moves(current, 0.4, region, max_distance=600, seed=10 + step)
            anonymizer.update(moves)
            current = current.with_moves(moves)
            policies.append(anonymizer.policy)
        erosion = anonymity_erosion(uid, policies)
        assert erosion[0] >= 8  # per-snapshot guarantee holds at start
        assert erosion == sorted(erosion, reverse=True)

    def test_erosion_happens_in_practice(self, region):
        """With enough movement, *some* user's trajectory anonymity drops
        below k — the gap the paper's future work must close."""
        db = uniform_users(200, region, seed=164)
        k = 10
        anonymizer = IncrementalAnonymizer(region, k).fit(db)
        policies = [anonymizer.policy]
        current = db
        for step in range(5):
            moves = random_moves(current, 0.5, region, max_distance=800, seed=20 + step)
            anonymizer.update(moves)
            current = current.with_moves(moves)
            policies.append(anonymizer.policy)
        eroded = 0
        for uid in db.user_ids()[:50]:
            if anonymity_erosion(uid, policies)[-1] < k:
                eroded += 1
        assert eroded > 0


class TestAttackEdgeCases:
    def test_empty_linked_sequence_rejected(self):
        """An empty observation set is not an identification — it must
        raise instead of returning 0 surviving candidates."""
        with pytest.raises(ValueError, match="at least one linked"):
            trajectory_attack([])

    def test_empty_policy_sequence_rejected(self, region):
        db = uniform_users(30, region, seed=165)
        with pytest.raises(ValueError, match="at least one policy"):
            anonymity_erosion(db.user_ids()[0], [])

    def test_erosion_clamps_at_k_floor(self, region):
        """With ``k`` given, the curve starts exactly at k and never
        exceeds it — slack above the guarantee is clipped."""
        db = uniform_users(150, region, seed=166)
        k = 8
        anonymizer = IncrementalAnonymizer(region, k).fit(db)
        policies = [anonymizer.policy]
        current = db
        for step in range(3):
            moves = random_moves(
                current, 0.4, region, max_distance=600, seed=30 + step
            )
            anonymizer.update(moves)
            current = current.with_moves(moves)
            policies.append(anonymizer.policy)
        uid = db.user_ids()[3]
        raw = anonymity_erosion(uid, policies)
        clamped = anonymity_erosion(uid, policies, k)
        assert clamped[0] == k
        assert all(level <= k for level in clamped)
        assert clamped == [min(level, k) for level in raw]
        # still monotone non-increasing after clamping
        assert clamped == sorted(clamped, reverse=True)
