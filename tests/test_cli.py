"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro import LocationDatabase, Rect
from repro.cli import enclosing_region, main
from repro.core.serialization import (
    load_policy,
    read_locations_csv,
    save_policy,
    write_locations_csv,
)
from repro.baselines import policy_unaware_binary
from repro.data import uniform_users


@pytest.fixture
def csv_path(tmp_path):
    region = Rect(0, 0, 1024, 1024)
    db = uniform_users(400, region, seed=191)
    path = tmp_path / "locs.csv"
    write_locations_csv(db, str(path))
    return path


class TestEnclosingRegion:
    def test_power_of_two_square(self):
        import math

        db = LocationDatabase([("a", 3, 7), ("b", 900, 400)])
        region = enclosing_region(db)
        assert region.width == region.height
        assert math.log2(region.width).is_integer()
        for __, p in db.items():
            assert region.contains(p)

    def test_margin_keeps_boundary_points_interior(self):
        db = LocationDatabase([("a", 0, 0)])
        region = enclosing_region(db, margin=1.0)
        assert region.x1 < 0 < region.x2


class TestGenerate:
    def test_generate_writes_csv(self, tmp_path):
        out = tmp_path / "gen.csv"
        code = main(
            ["generate", "--users", "500", "--seed", "3", "--out", str(out)]
        )
        assert code == 0
        db = read_locations_csv(str(out))
        assert len(db) == 500

    def test_generate_deterministic(self, tmp_path):
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        main(["generate", "--users", "200", "--seed", "9", "--out", str(a)])
        main(["generate", "--users", "200", "--seed", "9", "--out", str(b)])
        assert a.read_text() == b.read_text()


class TestAnonymize:
    @pytest.mark.parametrize("orientation", ["vertical", "horizontal", "best"])
    def test_anonymize_produces_safe_policy(self, csv_path, tmp_path, orientation):
        out = tmp_path / "policy.json"
        code = main(
            [
                "anonymize",
                "--locations", str(csv_path),
                "--k", "10",
                "--out", str(out),
                "--orientation", orientation,
            ]
        )
        assert code == 0
        policy = load_policy(str(out))
        assert policy.min_group_size() >= 10

    def test_best_never_worse_than_vertical(self, csv_path, tmp_path):
        v, b = tmp_path / "v.json", tmp_path / "b.json"
        main(["anonymize", "--locations", str(csv_path), "--k", "10",
              "--out", str(v), "--orientation", "vertical"])
        main(["anonymize", "--locations", str(csv_path), "--k", "10",
              "--out", str(b), "--orientation", "best"])
        assert load_policy(str(b)).cost() <= load_policy(str(v)).cost() + 1e-6

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        code = main(
            ["anonymize", "--locations", str(tmp_path / "nope.csv"),
             "--k", "5", "--out", str(tmp_path / "p.json")]
        )
        assert code != 0 or capsys.readouterr().err


class TestAuditAndCloak:
    def test_audit_safe_policy_exits_zero(self, csv_path, tmp_path, capsys):
        out = tmp_path / "policy.json"
        main(["anonymize", "--locations", str(csv_path), "--k", "10",
              "--out", str(out)])
        code = main(["audit", "--policy", str(out), "--k", "10"])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_audit_breached_policy_exits_one(self, tmp_path, capsys):
        region = Rect(0, 0, 4, 4)
        db = LocationDatabase(
            [("Alice", 1, 1), ("Bob", 1, 2), ("Carol", 1, 4),
             ("Sam", 3, 1), ("Tom", 4, 4)]
        )
        policy = policy_unaware_binary(region, db, 2, max_depth=4)
        path = tmp_path / "breached.json"
        save_policy(policy, str(path))
        code = main(["audit", "--policy", str(path), "--k", "2"])
        assert code == 1
        assert "BREACH" in capsys.readouterr().out

    def test_cloak_lookup(self, csv_path, tmp_path, capsys):
        out = tmp_path / "policy.json"
        main(["anonymize", "--locations", str(csv_path), "--k", "10",
              "--out", str(out)])
        db = read_locations_csv(str(csv_path))
        uid = db.user_ids()[0]
        code = main(["cloak", "--policy", str(out), "--user", uid])
        assert code == 0
        assert ".." in capsys.readouterr().out  # a rect rendering

    def test_cloak_unknown_user(self, csv_path, tmp_path, capsys):
        out = tmp_path / "policy.json"
        main(["anonymize", "--locations", str(csv_path), "--k", "10",
              "--out", str(out)])
        code = main(["cloak", "--policy", str(out), "--user", "ghost"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestExperimentCommand:
    def test_table1_runs(self, capsys):
        code = main(["experiment", "table1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Carol" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestSLOReportCommand:
    def test_quick_report_writes_artifacts(self, tmp_path, capsys):
        code = main(
            ["slo-report", "--scale", "quick",
             "--results-dir", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "durability" in out
        assert "capacity sweep" in out
        assert "cross-validation" in out
        report = json.loads((tmp_path / "slo.json").read_text())
        assert report["durability"]["bit_identical"] is True
        assert report["durability"]["quorum_loss_fails_closed"] is True
        invariant = report["controller_invariant"]
        assert invariant["adaptive_subset_of_static"] is True
        assert invariant["points_checked"] == 3
        assert len(report["cross_validation"]) == 2
        assert (tmp_path / "slo.txt").read_text().startswith("== Closed-loop")

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["slo-report", "--scale", "enormous"])


class TestTrajectoryCommand:
    def test_quick_report_writes_artifacts(self, tmp_path, capsys):
        code = main(
            ["trajectory", "--scale", "quick",
             "--results-dir", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "served scenario" in out
        assert "erosion curve" in out
        report = json.loads((tmp_path / "trajectory.json").read_text())
        assert report["all_gates_pass"] is True
        gates = report["gates"]
        assert gates["defended_scenario_holds_all_users"] is True
        assert gates["undefended_scenario_erodes_below_k"] is True
        assert gates["defended_des_holds_all_users"] is True
        assert gates["undefended_des_erodes_below_k"] is True
        defended = report["scenario"]["defended"]
        assert defended["holding"] == defended["audited"]
        assert report["scenario"]["undefended"]["min_surviving"] < report["k"]
        txt = (tmp_path / "trajectory.txt").read_text()
        assert txt.startswith("== Trajectory report")

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["trajectory", "--scale", "enormous"])


class TestFleetCommand:
    def test_simulated_fleet_prints_per_worker_stats(self, capsys):
        code = main(
            ["fleet", "--users", "80", "--requests", "60",
             "--workers", "3", "--k", "8", "--rtt", "0.0",
             "--mode", "simulated"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet: 3 worker(s), mode=simulated" in out
        assert "worker 0:" in out and "worker 2:" in out
        assert "60 served, 0 failed" in out

    def test_process_fleet_exits_zero(self, capsys):
        code = main(
            ["fleet", "--users", "60", "--requests", "40",
             "--workers", "2", "--k", "8", "--rtt", "0.001"]
        )
        assert code == 0
        assert "respawns 0" in capsys.readouterr().out

    def test_unknown_mode_rejected(self):
        with pytest.raises(SystemExit):
            main(["fleet", "--mode", "threads"])
