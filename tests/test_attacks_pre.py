"""Tests for the literal Definition 5/6 machinery (PREs), including the
paper's worked Examples 6–8, and cross-validation against the
operational attackers."""

import pytest

from repro import LocationDatabase, Rect, ReproError
from repro.attacks import (
    MaskingFamily,
    PolicyAwareAttacker,
    PolicyUnawareAttacker,
    SingletonFamily,
    enumerate_pres,
    provides_sender_k_anonymity,
    sender_anonymity_level,
)
from repro.baselines import policy_unaware_binary
from repro.core.binary_dp import solve
from repro.core.policy import CloakingPolicy
from repro.core.requests import ServiceRequest
from repro.data import uniform_users
from repro.trees import BinaryTree

from conftest import random_instance

PAYLOAD = (("poi", "rest"), ("cat", "ital"))


def anonymize_all(policy, db, payload=PAYLOAD):
    requests = [
        ServiceRequest(uid, db.location_of(uid), payload)
        for uid in db.user_ids()
    ]
    return [policy.anonymize(sr) for sr in requests]


class TestExample6:
    """Example 6: the policy-unaware attacker finds 3 PREs for AR_c; the
    {P1}-aware attacker finds only Carol."""

    @pytest.fixture
    def p1(self, table1_region, table1_db):
        # P1 is the 2-inside policy of Example 5 = PUB on Table I.
        return policy_unaware_binary(table1_region, table1_db, 2, max_depth=4)

    def test_policy_unaware_sees_three_senders(self, p1, table1_db):
        sr_c = ServiceRequest("Carol", table1_db.location_of("Carol"), PAYLOAD)
        ar_c = p1.anonymize(sr_c)
        family = MaskingFamily(table1_db)
        pres = list(enumerate_pres([ar_c], table1_db, family))
        senders = {pre[ar_c].user_id for pre in pres}
        assert senders == {"Alice", "Bob", "Carol"}
        assert sender_anonymity_level([ar_c], table1_db, family) == 3

    def test_policy_aware_identifies_carol(self, p1, table1_db):
        sr_c = ServiceRequest("Carol", table1_db.location_of("Carol"), PAYLOAD)
        ar_c = p1.anonymize(sr_c)
        family = SingletonFamily(p1)
        pres = list(enumerate_pres([ar_c], table1_db, family))
        assert {pre[ar_c].user_id for pre in pres} == {"Carol"}
        assert sender_anonymity_level([ar_c], table1_db, family) == 1
        assert not provides_sender_k_anonymity([ar_c], table1_db, family, 2)


class TestExample8:
    """Example 8: the optimal policy-aware policy gives 2 PREs per AR."""

    def test_p2_style_policy_is_2_anonymous(self, table1_region, table1_db):
        policy = solve(
            BinaryTree.build(table1_region, table1_db, 2, max_depth=4), 2
        ).policy()
        ars = anonymize_all(policy, table1_db)
        family = SingletonFamily(policy)
        assert sender_anonymity_level(ars, table1_db, family) >= 2


class TestMaskingFamily:
    def test_vocabulary_constraint(self, table1_db):
        allowed = Rect(0, 0, 2, 4)
        family = MaskingFamily(table1_db, vocabulary={allowed})
        policy = CloakingPolicy(
            {
                uid: (allowed if table1_db.location_of(uid).x <= 2 else Rect(0, 0, 4, 4))
                for uid in table1_db.user_ids()
            },
            table1_db,
        )
        sr = ServiceRequest("Sam", table1_db.location_of("Sam"), PAYLOAD)
        ar = policy.anonymize(sr)  # cloak (0,0,4,4) is not in C
        assert list(enumerate_pres([ar], table1_db, family)) == []

    def test_determinism_constraint_across_requests(self, table1_db):
        """Two ARs with identical payloads cannot reverse-engineer to the
        same service request under any single deterministic policy."""
        from repro.core.requests import AnonymizedRequest

        cloak = Rect(0, 0, 1, 2)  # contains only Alice and Bob
        ar1 = AnonymizedRequest(1, cloak, PAYLOAD)
        ar2 = AnonymizedRequest(2, cloak, PAYLOAD)
        family = MaskingFamily(table1_db)
        pres = list(enumerate_pres([ar1, ar2], table1_db, family))
        for pre in pres:
            # Same-sender assignments to distinct ARs are inconsistent
            # with determinism *unless* the ARs are equal as values.
            assert not (
                pre[ar1].user_id == pre[ar2].user_id and ar1 != ar2
            ) or ar1 == ar2
        # Both users can still appear across different PREs.
        senders = {(pre[ar1].user_id, pre[ar2].user_id) for pre in pres}
        assert ("Alice", "Bob") in senders and ("Bob", "Alice") in senders

    def test_guard_against_blowup(self):
        db = uniform_users(40, Rect(0, 0, 64, 64), seed=81)
        policy = CloakingPolicy(
            {uid: Rect(0, 0, 64, 64) for uid in db.user_ids()}, db
        )
        ars = anonymize_all(policy, db)
        with pytest.raises(ReproError, match="too large"):
            list(enumerate_pres(ars, db, MaskingFamily(db)))


class TestCrossValidation:
    """The operational attackers compute exactly the Definition-6 levels."""

    @pytest.mark.parametrize("seed", range(200, 206))
    def test_policy_aware_levels_agree(self, seed):
        region, db, k = random_instance(seed, n_range=(4, 9), k_range=(2, 3))
        if len(db) < k:
            return
        policy = solve(BinaryTree.build(region, db, k, max_depth=4), k).policy()
        ars = anonymize_all(policy, db)
        operational = PolicyAwareAttacker(policy).min_anonymity(ars)
        literal = sender_anonymity_level(ars, db, SingletonFamily(policy))
        assert operational == literal

    @pytest.mark.parametrize("seed", range(206, 212))
    def test_policy_unaware_levels_agree_per_request(self, seed):
        region, db, k = random_instance(seed, n_range=(4, 8), k_range=(2, 3))
        if len(db) < k:
            return
        policy = solve(BinaryTree.build(region, db, k, max_depth=4), k).policy()
        attacker = PolicyUnawareAttacker(db)
        family = MaskingFamily(db)
        for uid in db.user_ids():
            sr = ServiceRequest(uid, db.location_of(uid), PAYLOAD)
            ar = policy.anonymize(sr)
            assert attacker.attack(ar).anonymity == sender_anonymity_level(
                [ar], db, family
            )


class TestKInsideFamily:
    """The intermediate attacker: knows the CSP runs *some* k-inside
    policy, but not which."""

    def test_sits_between_the_extremes(self, table1_region, table1_db):
        from repro.attacks import KInsideFamily

        p1 = policy_unaware_binary(table1_region, table1_db, 2, max_depth=4)
        sr_c = ServiceRequest("Carol", table1_db.location_of("Carol"), PAYLOAD)
        ar_c = p1.anonymize(sr_c)
        unaware = sender_anonymity_level([ar_c], table1_db, MaskingFamily(table1_db))
        kinside = sender_anonymity_level(
            [ar_c], table1_db, KInsideFamily(table1_db, 2)
        )
        aware = sender_anonymity_level([ar_c], table1_db, SingletonFamily(p1))
        assert aware <= kinside <= unaware
        # R3 holds 3 users ≥ k, so the k-inside attacker learns nothing
        # beyond the unaware one here.
        assert kinside == unaware == 3
        assert aware == 1

    def test_underfull_cloak_is_inconsistent(self, table1_db):
        """A cloak holding < k users cannot come from any k-inside
        policy — the family yields no PREs for it."""
        from repro.attacks import KInsideFamily
        from repro.core.requests import AnonymizedRequest

        tiny = Rect(0.5, 0.5, 1.5, 1.5)  # contains only Alice
        ar = AnonymizedRequest(1, tiny, PAYLOAD)
        family = KInsideFamily(table1_db, 2)
        assert list(enumerate_pres([ar], table1_db, family)) == []

    def test_vocabulary_constraint_inherited(self, table1_db):
        from repro.attacks import KInsideFamily
        from repro.core.requests import AnonymizedRequest

        big = Rect(0, 0, 4, 4)
        family = KInsideFamily(table1_db, 2, vocabulary={Rect(0, 0, 2, 4)})
        ar = AnonymizedRequest(1, big, PAYLOAD)
        assert list(enumerate_pres([ar], table1_db, family)) == []
