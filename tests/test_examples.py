"""Static sanity checks for the example scripts.

The examples are long-running by design (they carry the narrative of
the repo), so the test suite does not execute them; it verifies they
compile, follow the script conventions, and only import public API.
"""

import ast
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_at_least_the_promised_examples_exist():
    names = {path.name for path in EXAMPLE_FILES}
    assert {"quickstart.py", "attack_demo.py", "sf_bay_simulation.py"} <= names
    assert len(names) >= 3


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
class TestExampleScripts:
    def test_compiles(self, path):
        ast.parse(path.read_text(), filename=str(path))

    def test_has_docstring_and_main(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} lacks a docstring"
        functions = [
            node.name for node in tree.body if isinstance(node, ast.FunctionDef)
        ]
        assert "main" in functions, f"{path.name} lacks a main()"

    def test_has_main_guard(self, path):
        assert 'if __name__ == "__main__":' in path.read_text()

    def test_imports_only_public_modules(self, path):
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                root = node.module.split(".")[0]
                assert root in {"repro", "numpy", "time"}, (
                    f"{path.name} imports {node.module}"
                )

    def test_importable_names_resolve(self, path):
        """Every ``from repro.x import y`` in an example resolves."""
        import importlib

        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if not isinstance(node, ast.ImportFrom) or not node.module:
                continue
            if not node.module.startswith("repro"):
                continue
            module = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{path.name}: {node.module}.{alias.name} missing"
                )
