"""The sharded gateway fleet: ring routing, shared-segment lifecycle,
and multi-worker serving against the single-process sync oracle.

The privacy acceptance bar is unchanged from the single gateway: every
cloak any fleet worker emits must be identical to what the synchronous
``CSP.request`` oracle emits for the same user — sharding buys cores,
never a different anonymity decision.  The dispatch invariant under
test: one cloak key → one worker, so coalescing still collapses
duplicates inside the owning worker.
"""

import pathlib
import pickle

import pytest

from repro import Rect, ReproError, ServiceUnavailableError
from repro.core.errors import TreeError
from repro.data import uniform_users
from repro.lbs import CSP, LBSProvider, generate_pois
from repro.lbs.pipeline import ServedRequest
from repro.serving import (
    FleetConfig,
    FleetDispatcher,
    GatewayConfig,
    GatewayStats,
    HashRing,
    merge_gateway_stats,
    run_fleet,
    run_gateway,
)
from repro.trees.binarytree import BinaryTree
from repro.trees.flat import FlatTree, SharedFlatTree

K = 8
REGION = Rect(0, 0, 4096, 4096)
DEV_SHM = pathlib.Path("/dev/shm")


@pytest.fixture
def db():
    return uniform_users(160, REGION, seed=71)


@pytest.fixture
def provider():
    pois = generate_pois(REGION, {"rest": 80, "groc": 40}, seed=72)
    return LBSProvider(pois)


def workload_for(db, n, categories=("rest", "groc")):
    users = db.user_ids()
    return [
        (users[i % len(users)], [("poi", categories[i % len(categories)])])
        for i in range(n)
    ]


def cloak_of(result):
    assert isinstance(result, ServedRequest), result
    return result.anonymized.cloak


def shm_segments():
    if not DEV_SHM.is_dir():
        return set()
    return {p.name for p in DEV_SHM.iterdir() if p.name.startswith("psm_")}


def compiled(db, with_payload=True):
    tree = BinaryTree.build(REGION, db, K, max_depth=40)
    return FlatTree.compile(tree, with_payload=with_payload)


def _group_by_cloak(cloaks):
    groups = {}
    for uid, cloak in cloaks.items():
        groups.setdefault(cloak, []).append(uid)
    return groups


# ---------------------------------------------------------------------------
# Consistent-hash ring
# ---------------------------------------------------------------------------


class TestHashRing:
    KEYS = [f"key-{i}".encode() for i in range(2000)]

    def test_deterministic_and_total(self):
        a = HashRing(range(4))
        b = HashRing(range(4))
        owners = [a.worker_for(k) for k in self.KEYS]
        assert owners == [b.worker_for(k) for k in self.KEYS]
        assert set(owners) == {0, 1, 2, 3}

    def test_join_moves_about_one_nth_and_only_steals(self):
        ring = HashRing(range(4))
        before = {k: ring.worker_for(k) for k in self.KEYS}
        ring.add(4)
        moved = 0
        for k, old in before.items():
            new = ring.worker_for(k)
            if new != old:
                moved += 1
                # a joining worker only *steals* keys; none shuffle
                # between the incumbents.
                assert new == 4
        expected = len(self.KEYS) / 5
        assert moved <= 2.5 * expected
        assert moved > 0

    def test_leave_moves_only_the_leavers_keys(self):
        ring = HashRing(range(4))
        before = {k: ring.worker_for(k) for k in self.KEYS}
        ring.remove(2)
        for k, old in before.items():
            new = ring.worker_for(k)
            if old != 2:
                assert new == old
            else:
                assert new != 2

    def test_join_then_leave_roundtrips(self):
        ring = HashRing(range(3))
        before = {k: ring.worker_for(k) for k in self.KEYS}
        ring.add(7)
        ring.remove(7)
        assert {k: ring.worker_for(k) for k in self.KEYS} == before

    def test_empty_ring_fails_closed(self):
        ring = HashRing(range(1))
        ring.remove(0)
        with pytest.raises(ReproError):
            ring.worker_for(b"anything")

    def test_replicas_validated(self):
        with pytest.raises(ReproError):
            HashRing(range(2), replicas=0)


# ---------------------------------------------------------------------------
# Shared-memory FlatTree lifecycle
# ---------------------------------------------------------------------------


class TestSharedFlatTree:
    def test_publish_attach_roundtrip_and_tiny_handle(self, db):
        flat = compiled(db)
        with SharedFlatTree.publish(flat) as shared:
            assert len(pickle.dumps(shared.handle)) < 2048
            attached = SharedFlatTree.attach(shared.handle)
            try:
                other = attached.tree
                assert other.n_nodes == flat.n_nodes
                assert other.user_ids == flat.user_ids
                assert (other.ids == flat.ids).all()
                assert (other.rects == flat.rects).all()
            finally:
                attached.close()

    def test_attach_after_unlink_fails_closed(self, db):
        shared = SharedFlatTree.publish(compiled(db))
        handle = shared.handle
        shared.unlink()
        shared.close()
        with pytest.raises(TreeError):
            SharedFlatTree.attach(handle)

    def test_only_the_owner_may_unlink(self, db):
        with SharedFlatTree.publish(compiled(db)) as shared:
            attached = SharedFlatTree.attach(shared.handle)
            try:
                with pytest.raises(TreeError):
                    attached.unlink()
            finally:
                attached.close()

    def test_context_exit_leaves_no_segment_behind(self, db):
        before = shm_segments()
        with SharedFlatTree.publish(compiled(db)) as shared:
            during = shm_segments()
            assert shared.handle.segment.lstrip("/") in during - before
        assert shm_segments() <= before

    def test_closed_views_fail_closed(self, db):
        shared = SharedFlatTree.publish(compiled(db))
        try:
            shared_tree = shared.tree
            assert shared_tree.n_nodes > 0
            del shared_tree
        finally:
            shared.unlink()
            shared.close()
        with pytest.raises(TreeError):
            __ = shared.tree


# ---------------------------------------------------------------------------
# Fleet serving vs the sync oracle
# ---------------------------------------------------------------------------


class TestFleetOracleIdentity:
    def _oracle(self, db, provider, workload):
        results, __ = run_gateway(
            CSP(REGION, K, db, provider), workload, GatewayConfig(rtt=0.0)
        )
        return [cloak_of(r) for r in results]

    def test_simulated_fleet_matches_oracle(self, db, provider):
        workload = workload_for(db, 120)
        oracle = self._oracle(db, provider, workload)
        pois = generate_pois(REGION, {"rest": 80, "groc": 40}, seed=72)
        results, stats = run_fleet(
            REGION,
            K,
            db,
            LBSProvider(pois),
            workload,
            FleetConfig(
                n_workers=3, mode="simulated", gateway=GatewayConfig(rtt=0.0)
            ),
        )
        assert [cloak_of(r) for r in results] == oracle
        assert stats.totals.served == len(workload)
        assert sum(stats.per_worker_requests) == len(workload)
        assert stats.wall_seconds == max(stats.per_worker_seconds)

    def test_process_fleet_matches_oracle(self, db, provider):
        workload = workload_for(db, 60)
        oracle = self._oracle(db, provider, workload)
        pois = generate_pois(REGION, {"rest": 80, "groc": 40}, seed=72)
        before = shm_segments()
        results, stats = run_fleet(
            REGION,
            K,
            db,
            LBSProvider(pois),
            workload,
            FleetConfig(
                n_workers=2, mode="process", gateway=GatewayConfig(rtt=0.0)
            ),
        )
        assert [cloak_of(r) for r in results] == oracle
        assert stats.totals.served == len(workload)
        assert stats.respawns == 0 and stats.lost_workers == 0
        assert shm_segments() <= before  # segment unlinked at close

    def test_duplicates_coalesce_inside_the_owning_worker(self, db, provider):
        # Every submission is the same (user, payload): one cloak key,
        # therefore ONE worker owns the whole burst and the batcher
        # collapses it — the dispatch invariant in action.
        uid = db.user_ids()[0]
        workload = [(uid, [("poi", "rest")])] * 40
        results, stats = run_fleet(
            REGION,
            K,
            db,
            provider,
            workload,
            FleetConfig(
                n_workers=4,
                mode="simulated",
                gateway=GatewayConfig(rtt=0.0, max_batch=64, max_wait=0.005),
            ),
        )
        assert stats.totals.served == 40
        busy = [n for n in stats.per_worker_requests if n > 0]
        assert busy == [40]  # a single owner, not a spread
        assert stats.totals.coalesced > 0

    def test_bounded_load_keeps_shares_even(self, db, provider):
        # With only ~n/k distinct cloak keys, first-choice hashing is
        # lumpy; bounded-load assignment must keep every worker's user
        # share under ~1.15x the even split (plus one whole cloak group
        # of slack, since groups are indivisible).
        dispatcher = FleetDispatcher(
            REGION,
            K,
            db,
            provider,
            FleetConfig(n_workers=4, mode="simulated"),
        )
        try:
            shares = {}
            for uid in db.user_ids():
                widx = dispatcher.route(uid)
                shares[widx] = shares.get(widx, 0) + 1
            even = len(db) / 4
            heaviest = max(
                len(g)
                for g in _group_by_cloak(dispatcher._cloaks).values()
            )
            assert max(shares.values()) <= max(
                1.15 * even + heaviest, heaviest
            )
            assert len(shares) == 4  # nobody idles
        finally:
            dispatcher.close()

    def test_same_cloak_routes_to_same_worker(self, db, provider):
        dispatcher = FleetDispatcher(
            REGION,
            K,
            db,
            provider,
            FleetConfig(n_workers=4, mode="simulated"),
        )
        try:
            cloaks = dispatcher._cloaks
            by_cloak = {}
            for uid, cloak in cloaks.items():
                by_cloak.setdefault(cloak, set()).add(
                    dispatcher.route(uid)
                )
            assert all(len(owners) == 1 for owners in by_cloak.values())
        finally:
            dispatcher.close()


# ---------------------------------------------------------------------------
# Worker death: respawn and fail-closed retirement
# ---------------------------------------------------------------------------


class TestWorkerDeath:
    def test_killed_worker_is_respawned_and_reserves(self, db, provider):
        workload = workload_for(db, 40)
        results, stats = run_fleet(
            REGION,
            K,
            db,
            provider,
            workload,
            FleetConfig(
                n_workers=2,
                mode="process",
                gateway=GatewayConfig(rtt=0.0),
                kill_after={0: 5},
                worker_timeout=30.0,
            ),
        )
        assert all(isinstance(r, ServedRequest) for r in results)
        assert stats.respawns == 1
        assert stats.lost_workers == 0

    def test_exhausted_respawns_fail_closed(self, db, provider):
        workload = workload_for(db, 40)
        results, stats = run_fleet(
            REGION,
            K,
            db,
            provider,
            workload,
            FleetConfig(
                n_workers=2,
                mode="process",
                gateway=GatewayConfig(rtt=0.0),
                kill_after={0: 5},
                max_respawns=0,
                worker_timeout=30.0,
            ),
        )
        rejected = [r for r in results if not isinstance(r, ServedRequest)]
        assert rejected, "the dead shard's in-flight work must surface"
        assert all(
            isinstance(r, ServiceUnavailableError)
            and r.reason == "worker-lost"
            for r in rejected
        )
        assert stats.lost_workers == 1
        served = [r for r in results if isinstance(r, ServedRequest)]
        assert len(served) + len(rejected) == len(workload)


# ---------------------------------------------------------------------------
# Stats plumbing and config validation
# ---------------------------------------------------------------------------


class TestFleetStats:
    def test_merge_sums_counters_and_maxes_gauges(self):
        a = GatewayStats(
            submitted=3,
            served=2,
            shed=1,
            shed_high_water=1,
            queue_depth_high_water=5,
            inflight_high_water=2,
        )
        b = GatewayStats(
            submitted=4,
            served=4,
            coalesced=3,
            queue_depth_high_water=3,
            inflight_high_water=6,
        )
        merged = merge_gateway_stats(a, b)
        assert merged.submitted == 7
        assert merged.served == 6
        assert merged.shed == 1 and merged.shed_high_water == 1
        assert merged.coalesced == 3
        assert merged.queue_depth_high_water == 5
        assert merged.inflight_high_water == 6
        assert merged.shed_by_cause["high_water"] == 1

    def test_config_validation(self):
        for bad in (
            dict(n_workers=0),
            dict(mode="threads"),
            dict(worker_timeout=0.0),
            dict(max_respawns=-1),
        ):
            with pytest.raises(ReproError):
                FleetConfig(**bad).validate()
