"""Incremental maintenance (§IV): the repaired DP must always equal a
from-scratch bulk recomputation, under arbitrary move streams."""

import numpy as np
import pytest

from repro import Point, Rect
from repro.core.binary_dp import resolve_dirty, solve
from repro.data import uniform_users
from repro.lbs import movement_stream, random_moves
from repro.trees import BinaryTree


@pytest.fixture
def region():
    return Rect(0, 0, 512, 512)


def assert_equivalent_to_bulk(tree, solution, k):
    fresh_tree = BinaryTree.build(tree.region, tree.db, k, max_depth=tree.max_depth)
    fresh = solve(fresh_tree, k)
    assert solution.optimal_cost == pytest.approx(fresh.optimal_cost)


class TestResolveDirty:
    def test_single_move(self, region):
        db = uniform_users(120, region, seed=1)
        tree = BinaryTree.build(region, db, 5)
        solution = solve(tree, 5)
        dirty = tree.apply_moves({db.user_ids()[0]: Point(500, 500)})
        repaired, recomputed = resolve_dirty(solution, dirty)
        assert recomputed >= 1
        assert_equivalent_to_bulk(tree, repaired, 5)

    def test_recomputation_is_partial_for_local_moves(self, region):
        db = uniform_users(600, region, seed=2)
        tree = BinaryTree.build(region, db, 8)
        solution = solve(tree, 8)
        moves = random_moves(db, 0.01, region, max_distance=5, seed=3)
        dirty = tree.apply_moves(moves)
        repaired, recomputed = resolve_dirty(solution, dirty)
        assert recomputed < len(tree)  # strictly partial repair
        assert_equivalent_to_bulk(tree, repaired, 8)

    def test_everything_moves(self, region):
        db = uniform_users(100, region, seed=4)
        tree = BinaryTree.build(region, db, 5)
        solution = solve(tree, 5)
        rng = np.random.default_rng(0)
        moves = {
            uid: Point(float(rng.uniform(0, 512)), float(rng.uniform(0, 512)))
            for uid in db.user_ids()
        }
        dirty = tree.apply_moves(moves)
        repaired, __ = resolve_dirty(solution, dirty)
        assert_equivalent_to_bulk(tree, repaired, 5)

    def test_long_move_stream(self, region):
        db = uniform_users(200, region, seed=5)
        k = 6
        tree = BinaryTree.build(region, db, k)
        solution = solve(tree, k)
        for moves in movement_stream(db, 0.15, region, n_snapshots=6,
                                     max_distance=40, seed=6):
            dirty = tree.apply_moves(moves)
            solution, __ = resolve_dirty(solution, dirty)
            tree.check_invariants()
        assert_equivalent_to_bulk(tree, solution, k)

    @pytest.mark.parametrize("orientation", ["vertical", "horizontal"])
    def test_policy_extraction_after_repair(self, region, orientation):
        db = uniform_users(150, region, seed=7)
        tree = BinaryTree.build(region, db, 5, orientation=orientation)
        solution = solve(tree, 5)
        moves = random_moves(db, 0.1, region, max_distance=100, seed=8)
        dirty = tree.apply_moves(moves)
        repaired, __ = resolve_dirty(solution, dirty)
        policy = repaired.policy()
        assert policy.min_group_size() >= 5
        assert policy.cost() == pytest.approx(repaired.optimal_cost)

    @pytest.mark.parametrize("orientation", ["vertical", "horizontal"])
    def test_repair_equals_bulk_in_both_orientations(self, region, orientation):
        db = uniform_users(180, region, seed=10)
        k = 6
        tree = BinaryTree.build(region, db, k, orientation=orientation)
        solution = solve(tree, k)
        moves = random_moves(db, 0.2, region, max_distance=60, seed=11)
        dirty = tree.apply_moves(moves)
        repaired, __ = resolve_dirty(solution, dirty)
        fresh_tree = BinaryTree.build(
            region, tree.db, k, orientation=orientation
        )
        fresh = solve(fresh_tree, k)
        assert repaired.optimal_cost == pytest.approx(fresh.optimal_cost)

    def test_moves_crossing_jurisdiction_boundaries(self, region):
        # Move users from the far west to the far east repeatedly; both
        # subtree shapes and counts change drastically.
        db = uniform_users(300, region, seed=9)
        k = 7
        tree = BinaryTree.build(region, db, k)
        solution = solve(tree, k)
        west_users = [
            uid for uid, p in db.items() if p.x < 128
        ][:50]
        moves = {uid: Point(500.0, float(i)) for i, uid in enumerate(west_users)}
        dirty = tree.apply_moves(moves)
        solution, __ = resolve_dirty(solution, dirty)
        tree.check_invariants()
        assert_equivalent_to_bulk(tree, solution, k)
