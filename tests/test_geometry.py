"""Unit tests for the geometry primitives."""

import math

import pytest

from repro.core.errors import GeometryError
from repro.core.geometry import Circle, Point, Rect, bounding_rect


class TestPoint:
    def test_distance_is_euclidean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_distance_is_symmetric(self):
        a, b = Point(1.5, -2), Point(-4, 7)
        assert a.distance_to(b) == b.distance_to(a)

    def test_distance_to_self_is_zero(self):
        p = Point(2.5, 3.5)
        assert p.distance_to(p) == 0.0

    def test_translated(self):
        assert Point(1, 2).translated(3, -1) == Point(4, 1)

    def test_as_tuple(self):
        assert Point(1, 2).as_tuple() == (1, 2)

    def test_points_are_hashable_values(self):
        assert len({Point(1, 2), Point(1, 2), Point(2, 1)}) == 2

    def test_ordering_is_lexicographic(self):
        assert Point(1, 5) < Point(2, 0)
        assert Point(1, 1) < Point(1, 2)


class TestRect:
    def test_degenerate_rect_rejected(self):
        with pytest.raises(GeometryError):
            Rect(2, 0, 1, 1)
        with pytest.raises(GeometryError):
            Rect(0, 2, 1, 1)

    def test_zero_area_rect_allowed(self):
        # A point-rect is legal (a bounding box of one point).
        r = Rect(1, 1, 1, 1)
        assert r.area == 0.0
        assert r.contains(Point(1, 1))

    def test_dimensions(self):
        r = Rect(1, 2, 4, 8)
        assert (r.width, r.height, r.area) == (3, 6, 18)

    def test_center(self):
        assert Rect(0, 0, 4, 2).center == Point(2, 1)

    def test_containment_is_closed(self):
        r = Rect(0, 0, 2, 2)
        for p in (Point(0, 0), Point(2, 2), Point(0, 2), Point(1, 0)):
            assert r.contains(p)
        assert not r.contains(Point(2.0001, 1))
        assert not r.contains(Point(1, -0.0001))

    def test_contains_rect(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(2, 2, 5, 5))
        assert outer.contains_rect(outer)
        assert not outer.contains_rect(Rect(5, 5, 11, 6))

    def test_intersects_and_intersection(self):
        a = Rect(0, 0, 4, 4)
        b = Rect(2, 2, 6, 6)
        assert a.intersects(b)
        assert a.intersection(b) == Rect(2, 2, 4, 4)

    def test_touching_rects_intersect(self):
        # Closed rectangles sharing only an edge still intersect.
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 0, 2, 1))

    def test_disjoint_intersection_raises(self):
        with pytest.raises(GeometryError):
            Rect(0, 0, 1, 1).intersection(Rect(3, 3, 4, 4))

    def test_quadrants_partition_area(self):
        r = Rect(0, 0, 8, 8)
        quads = r.quadrants()
        assert len(quads) == 4
        assert sum(q.area for q in quads) == r.area
        # NW, NE, SW, SE order per the docstring
        nw, ne, sw, se = quads
        assert nw == Rect(0, 4, 4, 8)
        assert ne == Rect(4, 4, 8, 8)
        assert sw == Rect(0, 0, 4, 4)
        assert se == Rect(4, 0, 8, 4)

    def test_halves_vertical(self):
        west, east = Rect(0, 0, 4, 8).halves_vertical()
        assert west == Rect(0, 0, 2, 8)
        assert east == Rect(2, 0, 4, 8)

    def test_halves_horizontal(self):
        south, north = Rect(0, 0, 4, 8).halves_horizontal()
        assert south == Rect(0, 0, 4, 4)
        assert north == Rect(0, 4, 4, 8)

    def test_sample_grid_points_inside(self):
        r = Rect(1, 1, 3, 5)
        pts = list(r.sample_grid(3))
        assert len(pts) == 9
        assert all(r.contains(p) for p in pts)

    def test_sample_grid_rejects_nonpositive(self):
        with pytest.raises(GeometryError):
            list(Rect(0, 0, 1, 1).sample_grid(0))

    def test_as_tuple_roundtrip(self):
        r = Rect(1, 2, 3, 4)
        assert Rect(*r.as_tuple()) == r

    def test_str_is_compact(self):
        assert str(Rect(0, 0, 2, 4)) == "[0,0 .. 2,4]"


class TestCircle:
    def test_negative_radius_rejected(self):
        with pytest.raises(GeometryError):
            Circle(Point(0, 0), -1)

    def test_area(self):
        assert Circle(Point(0, 0), 2).area == pytest.approx(4 * math.pi)

    def test_containment_is_closed(self):
        c = Circle(Point(0, 0), 5)
        assert c.contains(Point(3, 4))  # exactly on the boundary
        assert c.contains(Point(0, 0))
        assert not c.contains(Point(3.1, 4.1))

    def test_boundary_tolerance(self):
        # The minimal disk through a farthest member must contain it
        # despite float noise in the radius computation.
        center = Point(0.1, 0.2)
        member = Point(10.3, -7.7)
        c = Circle(center, center.distance_to(member))
        assert c.contains(member)

    def test_intersects(self):
        assert Circle(Point(0, 0), 1).intersects(Circle(Point(2, 0), 1))
        assert not Circle(Point(0, 0), 1).intersects(Circle(Point(5, 0), 1))


class TestBoundingRect:
    def test_single_point(self):
        assert bounding_rect([Point(3, 4)]) == Rect(3, 4, 3, 4)

    def test_multiple_points(self):
        r = bounding_rect([Point(1, 5), Point(4, 2), Point(2, 8)])
        assert r == Rect(1, 2, 4, 8)

    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            bounding_rect([])

    def test_contains_all_inputs(self):
        pts = [Point(i * 0.7, (i * i) % 5) for i in range(20)]
        box = bounding_rect(pts)
        assert all(box.contains(p) for p in pts)
