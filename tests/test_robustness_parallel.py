"""Fault tolerance of the parallel engine (crashed jurisdictions,
retry rounds, fail-closed degradation) in both execution modes."""

import pytest

from repro import JurisdictionSolveError, Rect
from repro.data import uniform_users
from repro.parallel import parallel_bulk_anonymize
from repro.robustness import FaultInjector, FaultPlan, FaultRule, RetryPolicy

K = 10


@pytest.fixture(scope="module")
def region():
    return Rect(0, 0, 1024, 1024)


@pytest.fixture(scope="module")
def db(region):
    return uniform_users(400, region, seed=101)


@pytest.fixture(scope="module")
def target_node(region, db):
    """A jurisdiction node id of the deterministic 4-way partition."""
    result = parallel_bulk_anonymize(region, db, K, 4)
    assert result.n_servers >= 2
    return result.jurisdictions[0].node_id


def crash_plan(match=None, max_attempt=None, seed=0):
    return FaultPlan(
        rules=(
            FaultRule(
                "solve", "crash", match=match, max_attempt=max_attempt
            ),
        ),
        seed=seed,
    )


class TestSimulatedMode:
    def test_crash_raises_with_jurisdiction_metadata(self, region, db):
        with pytest.raises(JurisdictionSolveError) as excinfo:
            parallel_bulk_anonymize(
                region,
                db,
                K,
                4,
                injector=FaultInjector(crash_plan()),
            )
        err = excinfo.value
        assert err.node_id is not None
        assert err.n_users >= K
        assert err.kind == "crash"
        assert err.attempts == 1

    def test_retry_rounds_recover_transient_crashes(self, region, db):
        injector = FaultInjector(crash_plan(max_attempt=1))
        result = parallel_bulk_anonymize(
            region,
            db,
            K,
            4,
            injector=injector,
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.01),
        )
        assert result.failures == ()
        assert result.availability == 1.0
        # Every jurisdiction needed the second round.
        assert all(n == 2 for __, n in result.attempts)
        assert result.retry_seconds > 0
        baseline = parallel_bulk_anonymize(region, db, K, 4)
        assert result.cost == pytest.approx(baseline.cost)

    def test_permanent_crash_degrades_fail_closed(
        self, region, db, target_node
    ):
        injector = FaultInjector(crash_plan(match=str(target_node)))
        result = parallel_bulk_anonymize(
            region,
            db,
            K,
            4,
            injector=injector,
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.01),
            on_failure="degrade",
        )
        assert result.degraded_node_ids == (target_node,)
        (failure,) = result.failures
        assert failure.kind == "crash"
        assert failure.attempts == 2
        assert failure.degraded
        assert 0 < result.availability < 1.0
        # Everyone is still covered and the merged policy is still ≥ k:
        # the degraded jurisdiction serves its own rectangle as one cloak.
        assert len(result.master.merged) == len(db)
        assert result.master.min_group_size() >= K
        jur = next(
            j for j in result.jurisdictions if j.node_id == target_node
        )
        degraded = [
            uid
            for uid, cloak in result.master.merged.items()
            if cloak == jur.rect
        ]
        assert len(degraded) == result.degraded_users >= K
        # Degradation costs utility, never privacy.
        baseline = parallel_bulk_anonymize(region, db, K, 4)
        assert result.cost >= baseline.cost

    def test_straggler_budget_counts_as_timeout(self, region, db):
        plan = FaultPlan(
            rules=(FaultRule("solve", "straggle", delay=5.0),), seed=0
        )
        with pytest.raises(JurisdictionSolveError) as excinfo:
            parallel_bulk_anonymize(
                region,
                db,
                K,
                4,
                injector=FaultInjector(plan),
                jurisdiction_timeout=1.0,
            )
        assert excinfo.value.kind == "timeout"

    def test_happy_path_reports_single_attempts(self, region, db):
        result = parallel_bulk_anonymize(region, db, K, 4)
        assert result.failures == ()
        assert result.availability == 1.0
        assert result.retry_seconds == 0.0
        assert all(n == 1 for __, n in result.attempts)
        assert len(result.attempts) == result.n_servers


class TestProcessMode:
    def test_crash_raises_with_jurisdiction_metadata(
        self, region, db, target_node
    ):
        injector = FaultInjector(crash_plan(match=str(target_node)))
        with pytest.raises(JurisdictionSolveError) as excinfo:
            parallel_bulk_anonymize(
                region,
                db,
                K,
                4,
                mode="process",
                injector=injector,
            )
        assert excinfo.value.node_id == target_node
        assert excinfo.value.kind == "crash"

    def test_permanent_crash_degrades_fail_closed(
        self, region, db, target_node
    ):
        injector = FaultInjector(crash_plan(match=str(target_node)))
        result = parallel_bulk_anonymize(
            region,
            db,
            K,
            4,
            mode="process",
            injector=injector,
            on_failure="degrade",
        )
        assert result.degraded_node_ids == (target_node,)
        assert len(result.master.merged) == len(db)
        assert result.master.min_group_size() >= K
