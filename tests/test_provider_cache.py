"""Tests for the LBS provider and the CSP answer cache (§VII)."""

import pytest

from repro import Point, Rect, ReproError
from repro.core.geometry import Circle
from repro.core.requests import AnonymizedRequest
from repro.lbs import AnswerCache, LBSProvider, generate_pois


@pytest.fixture
def region():
    return Rect(0, 0, 1000, 1000)


@pytest.fixture
def provider(region):
    return LBSProvider(generate_pois(region, {"rest": 80, "groc": 40}, seed=121))


def nn_request(rid=1, cloak=Rect(100, 100, 200, 200), category="rest"):
    return AnonymizedRequest(rid, cloak, (("poi", category),))


class TestProvider:
    def test_nn_serving(self, provider):
        answer = provider.serve(nn_request())
        assert answer.size >= 1
        assert all(p.category == "rest" for p in answer.candidates)

    def test_range_serving(self, provider, region):
        request = AnonymizedRequest(
            2, Rect(0, 0, 500, 500), (("poi", "groc"), ("range", "50"))
        )
        answer = provider.serve(request)
        window = Rect(0, 0, 550, 550)
        assert all(window.contains(p.location) for p in answer.candidates)
        assert all(p.category == "groc" for p in answer.candidates)

    def test_billing_counters(self, provider):
        provider.serve(nn_request(1, category="rest"))
        provider.serve(nn_request(2, category="rest"))
        provider.serve(nn_request(3, category="groc"))
        assert provider.billing == {"rest": 2, "groc": 1}
        assert provider.served == 3

    def test_missing_category_rejected(self, provider):
        with pytest.raises(ReproError, match="poi"):
            provider.serve(AnonymizedRequest(1, Rect(0, 0, 1, 1), ()))

    def test_circle_cloak_rejected(self, provider):
        request = AnonymizedRequest(
            1, Circle(Point(0, 0), 5), (("poi", "rest"),)
        )
        with pytest.raises(ReproError, match="rectangular"):
            provider.serve(request)


class TestCache:
    def test_hit_on_identical_cloak_and_payload(self, provider):
        cache = AnswerCache(provider)
        first = cache.fetch(nn_request(1))
        second = cache.fetch(nn_request(2))
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert first.candidates == second.candidates
        # Each answer carries its own request id.
        assert first.request_id == 1 and second.request_id == 2
        # The LBS saw only one request — the duplicate was suppressed.
        assert provider.served == 1

    def test_miss_on_different_payload(self, provider):
        cache = AnswerCache(provider)
        cache.fetch(nn_request(1, category="rest"))
        cache.fetch(nn_request(2, category="groc"))
        assert cache.stats.misses == 2

    def test_miss_on_different_cloak(self, provider):
        cache = AnswerCache(provider)
        cache.fetch(nn_request(1, cloak=Rect(0, 0, 100, 100)))
        cache.fetch(nn_request(2, cloak=Rect(0, 0, 100, 200)))
        assert cache.stats.misses == 2

    def test_deferred_billing_and_flush(self, provider):
        cache = AnswerCache(provider)
        for rid in range(1, 5):
            cache.fetch(nn_request(rid))
        assert cache.deferred_billing == {"rest": 3}
        settled = cache.flush()
        assert settled == {"rest": 3}
        assert len(cache) == 0
        assert cache.deferred_billing == {}
        # After the flush the next identical request hits the LBS again.
        cache.fetch(nn_request(9))
        assert provider.served == 2

    def test_hit_rate(self, provider):
        cache = AnswerCache(provider)
        assert cache.stats.hit_rate == 0.0
        cache.fetch(nn_request(1))
        cache.fetch(nn_request(2))
        assert cache.stats.hit_rate == 0.5
