"""Randomized end-to-end scenario tests at moderate scale.

Each scenario wires several subsystems together and runs long enough
for emergent interactions (moves → splits/collapses → repairs →
serving) to surface; all library invariants must hold at every step.
"""

import numpy as np
import pytest

from repro import IncrementalAnonymizer, LocationDatabase, Point, Rect
from repro.attacks import PolicyAwareAttacker, audit_policy
from repro.core.binary_dp import solve
from repro.data import bay_area_master, request_stream, sample_users
from repro.lbs import CSP, LBSProvider, generate_pois, random_moves
from repro.parallel import RebalancingPool, parallel_bulk_anonymize
from repro.trees import BinaryTree


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_full_day_of_a_csp(seed):
    """Serve Zipf traffic over several snapshots of a skewed population;
    privacy, masking, and cache semantics hold throughout."""
    region, master = bay_area_master(seed=seed, n_intersections=400)
    db = sample_users(master, 1_500, seed=seed)
    k = 12
    pois = generate_pois(region, {"rest": 60, "groc": 30}, seed=seed)
    csp = CSP(region, k, db, LBSProvider(pois))
    rng = np.random.default_rng(seed)

    current = db
    for snapshot in range(3):
        attacker = PolicyAwareAttacker(csp.policy)
        for event in request_stream(
            current, duration=40.0, rate_per_user=0.02,
            categories={"rest": 2.0, "groc": 1.0}, seed=rng,
        ):
            served = csp.request(event.user_id, event.payload)
            # Masking + k-anonymity per request.
            location = current.location_of(event.user_id)
            assert served.anonymized.cloak.contains(location)
            assert attacker.attack(served.anonymized).anonymity >= k
            # Client filter returns the true nearest candidate.
            if served.result is not None:
                category = dict(event.payload)["poi"]
                true_nn = pois.nearest(location, category)
                assert served.result.poi_id == true_nn.poi_id
        moves = random_moves(current, 0.1, region, max_distance=200, seed=rng)
        csp.advance_snapshot(moves)
        current = current.with_moves(moves)
        assert audit_policy(csp.policy, k).safe_policy_aware


@pytest.mark.parametrize("seed", [4, 5])
def test_population_collapse_and_regrowth(seed):
    """Extreme migrations (everyone into one corner and back out) keep
    the incremental DP equal to bulk and the tree invariants intact."""
    region = Rect(0, 0, 4096, 4096)
    rng = np.random.default_rng(seed)
    db = LocationDatabase.from_array(rng.uniform(0, 4096, (800, 2)))
    k = 15
    anonymizer = IncrementalAnonymizer(region, k).fit(db)

    # Phase 1: collapse into the SW corner.
    collapse = {
        uid: Point(float(rng.uniform(0, 200)), float(rng.uniform(0, 200)))
        for uid in db.user_ids()
    }
    anonymizer.update(collapse)
    anonymizer.tree.check_invariants()
    bulk = solve(BinaryTree.build(region, anonymizer.current_db, k), k)
    assert anonymizer.optimal_cost == pytest.approx(bulk.optimal_cost)

    # Phase 2: scatter back out.
    scatter = {
        uid: Point(float(rng.uniform(0, 4096)), float(rng.uniform(0, 4096)))
        for uid in db.user_ids()
    }
    anonymizer.update(scatter)
    anonymizer.tree.check_invariants()
    bulk = solve(BinaryTree.build(region, anonymizer.current_db, k), k)
    assert anonymizer.optimal_cost == pytest.approx(bulk.optimal_cost)
    assert anonymizer.policy.min_group_size() >= k


def test_parallel_vs_pool_vs_single_agree_on_quality():
    """Three deployment shapes of the same algorithm agree: single
    solver, static parallel split, and the rebalancing pool all deliver
    k-anonymity with costs within 1% of each other."""
    region = Rect(0, 0, 8192, 8192)
    rng = np.random.default_rng(6)
    db = LocationDatabase.from_array(rng.uniform(0, 8192, (1_200, 2)))
    k = 20

    single_cost = solve(BinaryTree.build(region, db, k), k).optimal_cost
    static = parallel_bulk_anonymize(region, db, k, 8)
    pool = RebalancingPool(region, k, 8).fit(db)
    pool_cost = pool.master_policy().cost()

    assert static.master.min_group_size() >= k
    assert pool.master_policy().min_group_size() >= k
    assert static.cost <= single_cost * 1.01
    assert pool_cost <= single_cost * 1.01
    assert static.cost >= single_cost - 1e-6
    assert pool_cost >= single_cost - 1e-6


def test_duplicate_coordinates_at_scale():
    """Hundreds of users stacked on identical points (an office tower)
    must not break the tree, the DP, or extraction."""
    region = Rect(0, 0, 1024, 1024)
    rows = [(f"t{i}", 512.0, 512.0) for i in range(300)]
    rows += [(f"s{i}", 100.0 + i, 100.0) for i in range(100)]
    db = LocationDatabase(rows)
    k = 25
    tree = BinaryTree.build(region, db, k, max_depth=20)
    tree.check_invariants()
    solution = solve(tree, k)
    policy = solution.policy()
    assert policy.min_group_size() >= k
    assert policy.cost() == pytest.approx(solution.optimal_cost)
    # The tower's users share tiny cloaks (max_depth floor), the street
    # users get street-sized ones; nobody is stuck with the whole map.
    assert policy.cloak_for("t0").area < region.area
