"""Property-based tests (hypothesis) over the core data structures and
the paper's invariants."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import LocationDatabase, NoFeasiblePolicyError, Point, Rect
from repro.attacks import PolicyAwareAttacker, PolicyUnawareAttacker
from repro.baselines import policy_unaware_binary
from repro.core.binary_dp import solve
from repro.core.configuration import configuration_of_policy
from repro.core.requests import ServiceRequest
from repro.trees import BinaryTree

SIDE = 64.0

coords = st.tuples(
    st.floats(min_value=0.0, max_value=SIDE, allow_nan=False, width=32),
    st.floats(min_value=0.0, max_value=SIDE, allow_nan=False, width=32),
)


def db_from(points):
    return LocationDatabase(
        (f"u{i}", x, y) for i, (x, y) in enumerate(points)
    )


point_lists = st.lists(coords, min_size=2, max_size=24)
ks = st.integers(min_value=2, max_value=4)


class TestGeometryProperties:
    @given(coords, coords)
    def test_distance_symmetry_and_triangle(self, a, b):
        pa, pb = Point(*a), Point(*b)
        origin = Point(0, 0)
        assert pa.distance_to(pb) == pytest.approx(pb.distance_to(pa))
        assert origin.distance_to(pb) <= (
            origin.distance_to(pa) + pa.distance_to(pb) + 1e-6
        )

    @given(st.lists(coords, min_size=1, max_size=20))
    def test_bounding_rect_contains_all(self, points):
        from repro.core.geometry import bounding_rect

        pts = [Point(*c) for c in points]
        box = bounding_rect(pts)
        assert all(box.contains(p) for p in pts)

    @given(coords)
    def test_quadrants_cover_parent(self, c):
        rect = Rect(0, 0, SIDE, SIDE)
        p = Point(*c)
        assert any(q.contains(p) for q in rect.quadrants())

    @given(coords)
    def test_halves_cover_parent(self, c):
        rect = Rect(0, 0, SIDE, SIDE)
        p = Point(*c)
        assert any(h.contains(p) for h in rect.halves_vertical())
        assert any(h.contains(p) for h in rect.halves_horizontal())


class TestTreeProperties:
    @given(point_lists, ks)
    @settings(max_examples=40, deadline=None)
    def test_tree_partitions_points(self, points, k):
        db = db_from(points)
        tree = BinaryTree.build(Rect(0, 0, SIDE, SIDE), db, k, max_depth=8)
        assert sum(leaf.count for leaf in tree.leaves()) == len(db)
        tree.check_invariants()

    @given(point_lists, ks)
    @settings(max_examples=25, deadline=None)
    def test_moves_preserve_invariants(self, points, k):
        db = db_from(points)
        tree = BinaryTree.build(Rect(0, 0, SIDE, SIDE), db, k, max_depth=8)
        # Send the first half of the users to mirrored positions.
        moves = {}
        for uid, p in list(db.items())[: len(db) // 2]:
            moves[uid] = Point(SIDE - p.x, SIDE - p.y)
        tree.apply_moves(moves)
        tree.check_invariants()
        assert tree.root.count == len(db)


class TestOptimalPolicyProperties:
    @given(point_lists, ks)
    @settings(max_examples=30, deadline=None)
    def test_output_is_policy_aware_k_anonymous(self, points, k):
        assume(len(points) >= k)
        db = db_from(points)
        tree = BinaryTree.build(Rect(0, 0, SIDE, SIDE), db, k, max_depth=8)
        policy = solve(tree, k).policy()
        assert policy.min_group_size() >= k
        # Masking: every user inside her cloak (enforced at build, but
        # assert the public view too).
        for uid, p in db.items():
            assert policy.cloak_for(uid).contains(p)

    @given(point_lists, ks)
    @settings(max_examples=30, deadline=None)
    def test_extraction_matches_dp_cost(self, points, k):
        assume(len(points) >= k)
        db = db_from(points)
        tree = BinaryTree.build(Rect(0, 0, SIDE, SIDE), db, k, max_depth=8)
        solution = solve(tree, k)
        policy = solution.policy()
        assert policy.cost() == pytest.approx(solution.optimal_cost)
        config = configuration_of_policy(tree, policy)
        assert config.satisfies_ksummation(k)
        assert config.is_complete

    @given(point_lists, ks)
    @settings(max_examples=25, deadline=None)
    def test_pub_lower_bound(self, points, k):
        """k-inside over the same vocabulary lower-bounds the policy-
        aware optimum: privacy is never free, but never *cheaper*."""
        assume(len(points) >= k)
        db = db_from(points)
        region = Rect(0, 0, SIDE, SIDE)
        pa = solve(BinaryTree.build(region, db, k, max_depth=8), k).policy()
        pub = policy_unaware_binary(region, db, k, max_depth=8)
        assert pub.cost() <= pa.cost() + 1e-6

    @given(point_lists, ks)
    @settings(max_examples=25, deadline=None)
    def test_pruning_is_lossless(self, points, k):
        assume(len(points) >= k)
        db = db_from(points)
        tree = BinaryTree.build(Rect(0, 0, SIDE, SIDE), db, k, max_depth=8)
        pruned = solve(tree, k, prune=True).optimal_cost
        unpruned = solve(tree, k, prune=False).optimal_cost
        assert pruned == pytest.approx(unpruned)

    @given(point_lists, ks)
    @settings(max_examples=20, deadline=None)
    def test_infeasible_iff_too_few_users(self, points, k):
        db = db_from(points)
        tree = BinaryTree.build(Rect(0, 0, SIDE, SIDE), db, k, max_depth=8)
        solution = solve(tree, k)
        if len(db) >= k:
            assert math.isfinite(solution.optimal_cost)
        else:
            with pytest.raises(NoFeasiblePolicyError):
                __ = solution.optimal_cost


class TestAttackerProperties:
    @given(point_lists, ks)
    @settings(max_examples=20, deadline=None)
    def test_aware_candidates_subset_of_unaware(self, points, k):
        assume(len(points) >= k)
        db = db_from(points)
        tree = BinaryTree.build(Rect(0, 0, SIDE, SIDE), db, k, max_depth=8)
        policy = solve(tree, k).policy()
        aware = PolicyAwareAttacker(policy)
        unaware = PolicyUnawareAttacker(db)
        for uid in db.user_ids():
            ar = policy.anonymize(ServiceRequest(uid, db.location_of(uid)))
            assert set(aware.attack(ar).candidates) <= set(
                unaware.attack(ar).candidates
            )
            # The true sender is always among the candidates.
            assert uid in aware.attack(ar).candidates


class TestIncrementalProperties:
    @given(point_lists, ks, st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_incremental_equals_bulk(self, points, k, seed):
        assume(len(points) >= k)
        db = db_from(points)
        region = Rect(0, 0, SIDE, SIDE)
        tree = BinaryTree.build(region, db, k, max_depth=8)
        solution = solve(tree, k)
        rng = np.random.default_rng(seed)
        moves = {}
        for uid in db.user_ids():
            if rng.random() < 0.4:
                moves[uid] = Point(
                    float(rng.uniform(0, SIDE)), float(rng.uniform(0, SIDE))
                )
        from repro.core.binary_dp import resolve_dirty

        dirty = tree.apply_moves(moves)
        repaired, __ = resolve_dirty(solution, dirty)
        fresh = solve(BinaryTree.build(region, tree.db, k, max_depth=8), k)
        assert repaired.optimal_cost == pytest.approx(fresh.optimal_cost)
