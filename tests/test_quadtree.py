"""Unit tests for the quad tree (§IV substrate)."""

import pytest

from repro import LocationDatabase, Point, Rect, TreeError
from repro.data import uniform_users
from repro.trees import QuadTree


@pytest.fixture
def region():
    return Rect(0, 0, 16, 16)


@pytest.fixture
def db():
    return LocationDatabase(
        [("a", 1, 1), ("b", 2, 1), ("c", 9, 9), ("d", 15, 15), ("e", 9, 1)]
    )


class TestConstruction:
    def test_root_must_be_square(self, db):
        with pytest.raises(TreeError, match="square"):
            QuadTree(Rect(0, 0, 4, 8), db)

    def test_full_tree_node_count(self, region, db):
        tree = QuadTree.build_full(region, db, depth=2)
        assert len(tree) == 1 + 4 + 16
        assert tree.height == 2

    def test_counts_sum_at_every_level(self, region, db):
        tree = QuadTree.build_full(region, db, depth=2)
        for node in tree.iter_postorder():
            if not node.is_leaf:
                assert node.count == sum(c.count for c in node.children)
        assert tree.root.count == len(db)

    def test_adaptive_stops_below_threshold(self, region):
        db = uniform_users(500, region, seed=0)
        tree = QuadTree.build_adaptive(region, db, split_threshold=20)
        for leaf in tree.leaves():
            # A leaf was not split: either too sparse or at max depth.
            assert leaf.count < 20 or leaf.depth >= 24

    def test_adaptive_threshold_validated(self, region, db):
        with pytest.raises(TreeError):
            QuadTree.build_adaptive(region, db, split_threshold=0)

    def test_max_depth_respected(self, region):
        db = uniform_users(2000, region, seed=1)
        tree = QuadTree.build_adaptive(region, db, split_threshold=2, max_depth=3)
        assert tree.height <= 3


class TestQueries:
    def test_leaf_for_descends_correctly(self, region, db):
        tree = QuadTree.build_full(region, db, depth=2)
        leaf = tree.leaf_for(Point(1, 1))
        assert leaf.rect.contains(Point(1, 1))
        assert leaf.depth == 2

    def test_leaf_for_outside_map_raises(self, region, db):
        tree = QuadTree.build_full(region, db, depth=1)
        with pytest.raises(TreeError, match="outside"):
            tree.leaf_for(Point(17, 0))

    def test_users_of(self, region, db):
        tree = QuadTree.build_full(region, db, depth=1)
        sw = tree.root.children[2]  # SW quadrant per Rect.quadrants order
        assert sorted(tree.users_of(sw)) == ["a", "b"]
        se = tree.root.children[3]
        assert tree.users_of(se) == ["e"]

    def test_node_by_id(self, region, db):
        tree = QuadTree.build_full(region, db, depth=1)
        assert tree.node_by_id(0) is tree.root

    def test_postorder_children_before_parents(self, region, db):
        tree = QuadTree.build_full(region, db, depth=2)
        seen = set()
        for node in tree.iter_postorder():
            for child in node.children:
                assert child.node_id in seen
            seen.add(node.node_id)
        assert len(seen) == len(tree)


class TestSmallestNodeWith:
    def test_returns_tightest_qualifying_quadrant(self, region, db):
        tree = QuadTree.build_full(region, db, depth=2)
        # a and b share the deepest SW sub-quadrant region (0,0,4,4).
        node = tree.smallest_node_with(Point(1, 1), 2)
        assert node.rect == Rect(0, 0, 4, 4)

    def test_falls_back_to_root(self, region, db):
        tree = QuadTree.build_full(region, db, depth=2)
        node = tree.smallest_node_with(Point(15, 15), 4)
        assert node is tree.root

    def test_none_when_map_too_sparse(self, region, db):
        tree = QuadTree.build_full(region, db, depth=1)
        assert tree.smallest_node_with(Point(1, 1), 99) is None

    def test_result_always_contains_query_point(self, region):
        db = uniform_users(300, region, seed=7)
        tree = QuadTree.build_adaptive(region, db, split_threshold=10)
        for uid, point in list(db.items())[:50]:
            node = tree.smallest_node_with(point, 10)
            assert node.rect.contains(point)
            assert node.count >= 10


class TestStats:
    def test_stats_fields(self, region, db):
        stats = QuadTree.build_full(region, db, depth=1).stats()
        assert stats["nodes"] == 5
        assert stats["leaves"] == 4
        assert stats["height"] == 1
        # NW holds nobody, NE holds c and d, SW holds a and b, SE holds e.
        assert stats["max_leaf_count"] == 2
