"""Tests for the bench-result report builder."""

import pytest

from repro.experiments.report import (
    EXPECTED_RESULTS,
    build_report,
    collect_results,
)


@pytest.fixture
def results_dir(tmp_path):
    (tmp_path / "fig3.txt").write_text("== Figure 3 ==\nrows here\n")
    (tmp_path / "table1.txt").write_text("== Table I ==\nCarol\n")
    return tmp_path


class TestCollect:
    def test_reads_present_files(self, results_dir):
        results = {r.experiment_id: r for r in collect_results(results_dir)}
        assert results["fig3"].recorded
        assert "rows here" in results["fig3"].table_text
        assert not results["fig4a"].recorded

    def test_every_expected_id_appears(self, results_dir):
        results = collect_results(results_dir)
        assert {r.experiment_id for r in results} == set(EXPECTED_RESULTS)

    def test_empty_dir(self, tmp_path):
        assert all(not r.recorded for r in collect_results(tmp_path))


class TestBuildReport:
    def test_includes_recorded_tables(self, results_dir):
        report = build_report(results_dir)
        assert "## fig3" in report
        assert "rows here" in report
        assert "Carol" in report

    def test_lists_missing_runs(self, results_dir):
        report = build_report(results_dir)
        assert "Missing runs" in report
        assert "`fig4a`" in report

    def test_no_missing_section_when_complete(self, tmp_path):
        for stem, __ in EXPECTED_RESULTS.values():
            (tmp_path / f"{stem}.txt").write_text("== x ==\n")
        report = build_report(tmp_path)
        assert "Missing runs" not in report

    def test_custom_title(self, results_dir):
        assert build_report(results_dir, title="My Run").startswith("# My Run")

    def test_repo_results_are_wellformed(self):
        """The checked-in bench_results (if present) parse cleanly."""
        import pathlib

        repo_results = pathlib.Path(__file__).resolve().parent.parent / "bench_results"
        if not repo_results.exists():
            pytest.skip("no recorded results yet")
        report = build_report(repo_results)
        assert report.startswith("#")
