"""Error paths and degradation ladder of the CSP pipeline under faults."""

import pytest

from repro import Point, Rect, ServiceUnavailableError, UnknownUserError
from repro.attacks.audit import audit_policy
from repro.data import uniform_users
from repro.lbs import CSP, LBSProvider, generate_pois, random_moves
from repro.lbs.cache import AnswerCache
from repro.lbs.provider import QueryAnswer
from repro.robustness import (
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    FaultRule,
    ManualClock,
    RetryPolicy,
)

K = 10


@pytest.fixture
def region():
    return Rect(0, 0, 4096, 4096)


@pytest.fixture
def db(region):
    return uniform_users(300, region, seed=131)


@pytest.fixture
def provider(region):
    pois = generate_pois(region, {"rest": 100, "groc": 50}, seed=132)
    return LBSProvider(pois)


def make_csp(region, db, provider, **kwargs):
    return CSP(region, K, db, provider, **kwargs)


class TestErrorPaths:
    def test_unknown_user_raises_specific_error(self, region, db, provider):
        csp = make_csp(region, db, provider)
        with pytest.raises(UnknownUserError, match="no location"):
            csp.request("ghost", [("poi", "rest")])

    def test_unknown_user_in_policy_lookup(self, region, db, provider):
        csp = make_csp(region, db, provider)
        with pytest.raises(UnknownUserError, match="no cloak"):
            csp.policy.cloak_for("ghost")

    def test_empty_candidate_set_yields_none(self, region, db, provider):
        csp = make_csp(region, db, provider)
        served = csp.request(db.user_ids()[0], [("poi", "nonexistent")])
        assert served.result is None
        assert served.answer.candidates == ()

    def test_provider_failure_leaves_cache_stats_consistent(
        self, region, db, provider
    ):
        plan = FaultPlan(rules=(FaultRule("provider", "error"),), seed=1)
        csp = make_csp(
            region, db, provider, injector=FaultInjector(plan)
        )
        with pytest.raises(ServiceUnavailableError) as excinfo:
            csp.request(db.user_ids()[0], [("poi", "rest")])
        assert excinfo.value.reason == "provider"
        # The failed fetch was never recorded as a hit or a miss, and
        # nothing was cached.
        assert csp.cache.stats.hits == 0
        assert csp.cache.stats.misses == 0
        assert len(csp.cache) == 0

    def test_flaky_provider_keeps_answer_cache_consistent(self):
        class FlakyProvider:
            def __init__(self):
                self.calls = 0

            def serve(self, request):
                self.calls += 1
                if self.calls == 1:
                    raise TimeoutError("first call drops")
                return QueryAnswer(request.request_id, ())

        class Req:
            request_id = 1
            cloak = Rect(0, 0, 10, 10)
            payload = (("poi", "rest"),)

        cache = AnswerCache(FlakyProvider())
        with pytest.raises(TimeoutError):
            cache.fetch(Req())
        assert cache.stats.errors == 1
        assert cache.stats.total == 0
        assert len(cache) == 0
        # The retried fetch is indistinguishable from a first attempt.
        cache.fetch(Req())
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0
        assert len(cache) == 1


class TestRetryAndBreaker:
    def test_transient_provider_fault_retried_to_success(
        self, region, db, provider
    ):
        plan = FaultPlan(
            rules=(FaultRule("provider", "timeout", max_attempt=2),),
            seed=2,
        )
        clock = ManualClock()
        csp = make_csp(
            region,
            db,
            provider,
            injector=FaultInjector(plan),
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.01),
            clock=clock,
        )
        served = csp.request(db.user_ids()[0], [("poi", "rest")])
        assert served.provider_attempts == 3
        assert served.degradation == "fresh"  # retries are invisible
        assert clock.slept > 0  # backoff charged to the virtual clock

    def test_deadline_bounds_the_retry_budget(self, region, db, provider):
        plan = FaultPlan(rules=(FaultRule("provider", "timeout"),), seed=3)
        csp = make_csp(
            region,
            db,
            provider,
            injector=FaultInjector(plan),
            retry_policy=RetryPolicy(
                max_attempts=10, base_delay=1.0, jitter=0.0
            ),
            provider_deadline=2.5,
            clock=ManualClock(),
        )
        with pytest.raises(ServiceUnavailableError) as excinfo:
            csp.request(db.user_ids()[0], [("poi", "rest")])
        assert excinfo.value.reason == "provider"

    def test_breaker_fails_fast_after_trip(self, region, db, provider):
        plan = FaultPlan(rules=(FaultRule("provider", "error"),), seed=4)
        clock = ManualClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=60.0, clock=clock
        )
        csp = make_csp(
            region,
            db,
            provider,
            injector=FaultInjector(plan),
            circuit_breaker=breaker,
            clock=clock,
        )
        with pytest.raises(ServiceUnavailableError):
            csp.request(db.user_ids()[0], [("poi", "rest")])
        assert breaker.state == "open"
        with pytest.raises(ServiceUnavailableError):
            csp.request(db.user_ids()[1], [("poi", "rest")])
        assert breaker.rejected >= 1


class TestCoarseningRung:
    @pytest.fixture
    def stale_csp(self, region, db, provider):
        plan = FaultPlan(rules=(FaultRule("mpc", "stale"),), seed=7)
        csp = make_csp(
            region, db, provider, injector=FaultInjector(plan)
        )
        moves = random_moves(
            db, 0.5, region, max_distance=3000, seed=5
        )
        csp.advance_snapshot(moves)
        return csp, moves

    def test_stale_mpc_coarsens_and_stays_k_anonymous(self, stale_csp):
        csp, moves = stale_csp
        coarsened = 0
        for uid in list(moves)[:30]:
            served = csp.request(uid, [("poi", "rest")])
            # The served cloak always covers the (stale) reported
            # location and matches the auditable effective policy.
            assert served.anonymized.cloak.contains(served.request.location)
            assert served.anonymized.cloak == csp.effective_policy.cloak_for(
                uid
            )
            if served.degradation == "coarsened":
                coarsened += 1
            report = audit_policy(csp.effective_policy, K)
            assert report.safe_policy_aware, report.summary()
        assert coarsened > 0

    def test_coarsened_set_is_an_antichain(self, stale_csp):
        csp, moves = stale_csp
        for uid in list(moves)[:30]:
            csp.request(uid, [("poi", "rest")])
        rects = list(csp._coarsened.values())
        for i, a in enumerate(rects):
            for b in rects[i + 1:]:
                assert not a.contains_rect(b) and not b.contains_rect(a)

    def test_fresh_snapshot_clears_coarsening(
        self, stale_csp, region
    ):
        csp, moves = stale_csp
        for uid in list(moves)[:10]:
            csp.request(uid, [("poi", "rest")])
        assert csp._coarsened
        next_moves = random_moves(
            csp.anonymizer.current_db,
            0.1,
            region,
            max_distance=50,
            seed=6,
        )
        csp.advance_snapshot(next_moves)
        assert not csp._coarsened


class TestStaleAndRejectRungs:
    @pytest.fixture
    def repair_faulty_csp(self, region, db, provider):
        plan = FaultPlan(rules=(FaultRule("repair", "crash"),), seed=9)
        return make_csp(
            region,
            db,
            provider,
            injector=FaultInjector(plan),
            max_stale_snapshots=1,
        )

    def test_failed_repair_serves_stale_within_bound(
        self, repair_faulty_csp, region, db
    ):
        csp = repair_faulty_csp
        moves = random_moves(db, 0.1, region, max_distance=50, seed=11)
        report = csp.advance_snapshot(moves)
        assert report.applied is False
        assert csp.policy_age == 1
        served = csp.request(db.user_ids()[0], [("poi", "rest")])
        assert served.degradation == "stale"
        assert served.policy_age == 1

    def test_aged_out_policy_rejects_fail_closed(
        self, repair_faulty_csp, region, db
    ):
        csp = repair_faulty_csp
        for seed in (11, 12):
            moves = random_moves(
                db, 0.1, region, max_distance=50, seed=seed
            )
            csp.advance_snapshot(moves)
        assert csp.policy_age == 2
        with pytest.raises(ServiceUnavailableError) as excinfo:
            csp.request(db.user_ids()[0], [("poi", "rest")])
        assert excinfo.value.reason == "stale"

    def test_happy_path_metadata_is_fresh(self, region, db, provider):
        csp = make_csp(region, db, provider)
        served = csp.request(db.user_ids()[0], [("poi", "rest")])
        assert served.degradation == "fresh"
        assert not served.degraded
        assert served.provider_attempts == 1
        assert served.policy_age == 0
        repeat = csp.request(db.user_ids()[0], [("poi", "rest")])
        assert repeat.cache_hit
        assert repeat.provider_attempts == 0
