"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import LocationDatabase, Rect
from repro.data import square_region, uniform_users


@pytest.fixture
def table1_db() -> LocationDatabase:
    """Table I of the paper: the five users of the running example."""
    return LocationDatabase(
        [
            ("Alice", 1, 1),
            ("Bob", 1, 2),
            ("Carol", 1, 4),
            ("Sam", 3, 1),
            ("Tom", 4, 4),
        ]
    )


@pytest.fixture
def table1_region() -> Rect:
    return Rect(0, 0, 4, 4)


@pytest.fixture
def small_region() -> Rect:
    return square_region(1024)


@pytest.fixture
def small_db(small_region) -> LocationDatabase:
    """200 uniformly placed users — enough structure for k up to ~20."""
    return uniform_users(200, small_region, seed=1234)


def random_instance(seed: int, n_range=(4, 30), k_range=(2, 6), side=64.0):
    """A random (region, db, k) triple for randomized cross-checks."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(*n_range))
    k = int(rng.integers(*k_range))
    coords = rng.uniform(0, side, size=(n, 2))
    return Rect(0, 0, side, side), LocationDatabase.from_array(coords), k
