"""Unit tests for the location database (§II-A)."""

import numpy as np
import pytest

from repro import LocationDatabase, Point, Rect, ReproError
from repro.core.locationdb import SnapshotSequence


class TestConstruction:
    def test_rows_roundtrip(self):
        db = LocationDatabase([("a", 1, 2), ("b", 3, 4)])
        assert sorted(db.rows()) == [("a", 1.0, 2.0), ("b", 3.0, 4.0)]

    def test_duplicate_user_rejected(self):
        with pytest.raises(ReproError, match="duplicate"):
            LocationDatabase([("a", 1, 2), ("a", 3, 4)])

    def test_from_points(self):
        db = LocationDatabase.from_points({"x": Point(5, 6)})
        assert db.location_of("x") == Point(5, 6)

    def test_from_array(self):
        db = LocationDatabase.from_array(np.array([[1, 2], [3, 4]]))
        assert db.user_ids() == ["u0", "u1"]
        assert db.location_of("u1") == Point(3, 4)

    def test_from_array_shape_checked(self):
        with pytest.raises(ReproError, match="n, 2"):
            LocationDatabase.from_array(np.zeros((3, 3)))

    def test_empty_database(self):
        db = LocationDatabase()
        assert len(db) == 0
        assert db.coords_array().shape == (0, 2)


class TestAccess:
    @pytest.fixture
    def db(self):
        return LocationDatabase([("a", 0, 0), ("b", 2, 2), ("c", 5, 5)])

    def test_len_contains_iter(self, db):
        assert len(db) == 3
        assert "a" in db and "z" not in db
        assert list(db) == ["a", "b", "c"]

    def test_location_of_unknown_is_none(self, db):
        assert db.location_of("z") is None

    def test_users_in_closed_region(self, db):
        assert db.users_in(Rect(0, 0, 2, 2)) == ["a", "b"]

    def test_count_in(self, db):
        assert db.count_in(Rect(1, 1, 10, 10)) == 2

    def test_extent(self, db):
        assert db.extent() == Rect(0, 0, 5, 5)

    def test_coords_array_order_matches_user_ids(self, db):
        coords = db.coords_array()
        for i, uid in enumerate(db.user_ids()):
            assert Point(*coords[i]) == db.location_of(uid)

    def test_subset(self, db):
        sub = db.subset(["c", "a"])
        assert set(sub.user_ids()) == {"a", "c"}
        assert sub.location_of("c") == Point(5, 5)

    def test_restricted_to(self, db):
        sub = db.restricted_to(Rect(0, 0, 3, 3))
        assert sub.user_ids() == ["a", "b"]


class TestMoves:
    def test_with_moves_relocates(self):
        db = LocationDatabase([("a", 0, 0), ("b", 1, 1)])
        moved = db.with_moves({"a": Point(9, 9)})
        assert moved.location_of("a") == Point(9, 9)
        assert moved.location_of("b") == Point(1, 1)
        # Original snapshot is untouched.
        assert db.location_of("a") == Point(0, 0)

    def test_with_moves_unknown_user_rejected(self):
        db = LocationDatabase([("a", 0, 0)])
        with pytest.raises(ReproError, match="unknown"):
            db.with_moves({"z": Point(1, 1)})


class TestSnapshotSequence:
    def test_advance_and_history(self):
        seq = SnapshotSequence(LocationDatabase([("a", 0, 0), ("b", 1, 1)]))
        seq.advance({"a": Point(5, 5)})
        assert len(seq) == 2
        assert seq.current.location_of("a") == Point(5, 5)
        assert seq[0].location_of("a") == Point(0, 0)

    def test_moved_users(self):
        seq = SnapshotSequence(LocationDatabase([("a", 0, 0), ("b", 1, 1)]))
        seq.advance({"b": Point(2, 2)})
        assert seq.moved_users(1) == ["b"]

    def test_moved_users_index_validation(self):
        seq = SnapshotSequence(LocationDatabase([("a", 0, 0)]))
        with pytest.raises(ReproError):
            seq.moved_users(0)
        with pytest.raises(ReproError):
            seq.moved_users(1)
