"""Tests for the Casper prototype baseline [23]."""

import pytest

from repro import LocationDatabase, NoFeasiblePolicyError, Rect
from repro.attacks import audit_policy
from repro.baselines import casper_cloak, casper_policy, policy_unaware_quad
from repro.data import uniform_users
from repro.trees import QuadTree


@pytest.fixture
def region():
    return Rect(0, 0, 512, 512)


@pytest.fixture
def db(region):
    return uniform_users(250, region, seed=41)


class TestCloakShape:
    def test_cloak_contains_requester_and_k_users(self, region, db):
        policy = casper_policy(region, db, 10)
        for uid, point in db.items():
            cloak = policy.cloak_for(uid)
            assert cloak.contains(point)
            assert db.count_in(cloak) >= 10

    def test_cloaks_are_cells_or_semi_quadrants(self, region, db):
        """Every Casper cloak is a quadrant or a 2:1 / 1:2 rectangle."""
        policy = casper_policy(region, db, 10)
        for __, cloak in policy.items():
            ratio = cloak.width / cloak.height
            assert ratio in (0.5, 1.0, 2.0)

    def test_semi_quadrant_choice_beats_full_parent(self, region, db):
        """Whenever Casper picks a semi-quadrant, the parent quadrant
        (twice the area) would also have qualified — Casper's whole
        point is halving that cloak."""
        tree = QuadTree.build_adaptive(region, db, split_threshold=10)
        for uid, point in list(db.items())[:60]:
            cloak = casper_cloak(tree, point, 10)
            if cloak.width != cloak.height:  # it is a semi-quadrant
                assert db.count_in(cloak) >= 10


class TestUtility:
    def test_casper_at_most_puq_per_user(self, region, db):
        """Casper's cloak never exceeds the tightest qualifying quadrant:
        it returns either a quadrant at least as deep, or half of one."""
        casper = casper_policy(region, db, 10)
        puq = policy_unaware_quad(region, db, 10)
        assert casper.cost() <= puq.cost() + 1e-6

    def test_average_area_reported(self, region, db):
        policy = casper_policy(region, db, 10)
        assert policy.average_cloak_area() > 0


class TestPrivacy:
    def test_policy_unaware_safe(self, region, db):
        report = audit_policy(casper_policy(region, db, 10), 10)
        assert report.safe_policy_unaware

    def test_policy_aware_breach_on_table1(self, table1_region, table1_db):
        policy = casper_policy(table1_region, table1_db, 2, max_depth=2)
        report = audit_policy(policy, 2)
        assert report.safe_policy_unaware
        assert not report.safe_policy_aware


class TestEdgeCases:
    def test_fewer_than_k_users(self, region):
        db = LocationDatabase([("a", 5, 5)])
        with pytest.raises(NoFeasiblePolicyError):
            casper_policy(region, db, 2)

    def test_root_fallback(self, region):
        # Two users in opposite corners: no semi-quadrant holds both.
        db = LocationDatabase([("a", 1, 1), ("b", 510, 510)])
        policy = casper_policy(region, db, 2)
        assert policy.cloak_for("a") == region
