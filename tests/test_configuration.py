"""Unit tests for configurations and k-summation (Definitions 7–9,
Lemmas 1–3)."""

import pytest

from repro import ConfigurationError, LocationDatabase, Rect
from repro.core.configuration import (
    Configuration,
    configuration_of_policy,
    enumerate_ksummation_configurations,
    policy_from_configuration,
)
from repro.core.policy import CloakingPolicy
from repro.data import uniform_users
from repro.trees import BinaryTree, QuadTree


@pytest.fixture
def region():
    return Rect(0, 0, 16, 16)


@pytest.fixture
def db():
    # Four users in the SW corner, two in the NE corner.
    return LocationDatabase(
        [
            ("a", 1, 1),
            ("b", 2, 2),
            ("c", 3, 1),
            ("d", 1, 3),
            ("e", 13, 13),
            ("f", 14, 14),
        ]
    )


@pytest.fixture
def tree(region, db):
    return QuadTree.build_full(region, db, depth=1)


def config_for(tree, values_by_rect):
    values = {}
    for node in tree.iter_postorder():
        values[node.node_id] = values_by_rect[node.rect]
    return Configuration(tree, values)


class TestValidation:
    def test_valid_configuration_passes(self, tree):
        # Leaves pass everything up; root cloaks everyone.
        values = {n.node_id: n.count for n in tree.iter_postorder()}
        values[tree.root.node_id] = 0
        Configuration(tree, values).validate()

    def test_leaf_over_capacity_rejected(self, tree):
        values = {n.node_id: n.count for n in tree.iter_postorder()}
        leaf = tree.root.children[0]
        values[leaf.node_id] = leaf.count + 1
        with pytest.raises(ConfigurationError, match="exceeds d"):
            Configuration(tree, values).validate()

    def test_internal_over_delta_rejected(self, tree):
        values = {n.node_id: 0 for n in tree.iter_postorder()}
        values[tree.root.node_id] = 1
        with pytest.raises(ConfigurationError, match="exceeds Δ"):
            Configuration(tree, values).validate()

    def test_negative_rejected(self, tree):
        values = {n.node_id: n.count for n in tree.iter_postorder()}
        values[tree.root.node_id] = -1
        with pytest.raises(ConfigurationError, match="negative"):
            Configuration(tree, values).validate()

    def test_missing_node_raises(self, tree):
        with pytest.raises(ConfigurationError, match="no value"):
            Configuration(tree, {})[tree.root.node_id]


class TestCost:
    def test_cost_counts_cloaked_times_area(self, tree, db):
        # Everything passed up and cloaked at the root: 6 users × 256 m².
        values = {n.node_id: n.count for n in tree.iter_postorder()}
        values[tree.root.node_id] = 0
        assert Configuration(tree, values).cost() == 6 * 256

    def test_cost_with_leaf_cloaking(self, tree, db):
        # SW leaf (4 users) cloaks all its users; root cloaks the rest.
        sw = tree.root.children[2]
        values = {n.node_id: n.count for n in tree.iter_postorder()}
        values[sw.node_id] = 0
        values[tree.root.node_id] = 0
        cost = Configuration(tree, values).cost()
        assert cost == 4 * 64 + 2 * 256

    def test_is_complete(self, tree):
        values = {n.node_id: n.count for n in tree.iter_postorder()}
        assert not Configuration(tree, values).is_complete
        values[tree.root.node_id] = 0
        assert Configuration(tree, values).is_complete


class TestKSummation:
    def test_all_at_root_satisfies(self, tree):
        values = {n.node_id: n.count for n in tree.iter_postorder()}
        values[tree.root.node_id] = 0
        assert Configuration(tree, values).satisfies_ksummation(2)

    def test_partial_cloak_below_k_fails(self, tree):
        # Root cloaks only 1 of 6 (passes up 5) — cloaking < k is banned.
        values = {n.node_id: n.count for n in tree.iter_postorder()}
        values[tree.root.node_id] = 5
        assert not Configuration(tree, values).satisfies_ksummation(2)

    def test_sparse_leaf_must_pass_all(self, tree):
        # NE leaf holds 2 users; with k=3 it must pass both up.
        ne = tree.root.children[1]
        values = {n.node_id: n.count for n in tree.iter_postorder()}
        values[ne.node_id] = 0  # cloaks 2 < k=3
        values[tree.root.node_id] = 0
        assert not Configuration(tree, values).satisfies_ksummation(3)

    def test_lemma3_matches_group_audit(self, region):
        """Lemma 3 operational check: a configuration satisfies
        k-summation iff the materialized policy's cloak groups are ≥ k."""
        db = uniform_users(40, region, seed=5)
        tree = BinaryTree.build(region, db, 3, max_depth=6)
        count = 0
        for config in enumerate_ksummation_configurations(tree, 3, max_nodes=64):
            policy = policy_from_configuration(tree, config)
            assert policy.min_group_size() >= 3
            count += 1
            if count >= 50:
                break
        assert count > 0


class TestRoundTrip:
    def test_policy_config_policy(self, region):
        db = uniform_users(30, region, seed=2)
        tree = BinaryTree.build(region, db, 3, max_depth=6)
        configs = enumerate_ksummation_configurations(tree, 3, max_nodes=64)
        config = next(configs)
        policy = policy_from_configuration(tree, config)
        back = configuration_of_policy(tree, policy)
        for node in tree.iter_postorder():
            assert back[node.node_id] == config[node.node_id]
        # Lemma 2: configuration cost equals policy cost.
        assert config.cost() == pytest.approx(policy.cost())

    def test_foreign_cloak_rejected(self, tree, db):
        policy = CloakingPolicy(
            {uid: Rect(0, 0, 16, 16) for uid in db.user_ids()}, db
        )
        # Tamper: a cloak that is not a node of this tree.
        bad = CloakingPolicy(
            {
                uid: (Rect(0, 0, 3, 3) if uid == "a" else Rect(0, 0, 16, 16))
                for uid in db.user_ids()
            },
            db,
        )
        configuration_of_policy(tree, policy)  # fine
        with pytest.raises(ConfigurationError, match="not a tree node"):
            configuration_of_policy(tree, bad)

    def test_incomplete_configuration_cannot_materialize(self, tree):
        values = {n.node_id: n.count for n in tree.iter_postorder()}
        config = Configuration(tree, values)  # root passes everyone up
        with pytest.raises(ConfigurationError, match="incomplete"):
            policy_from_configuration(tree, config)


class TestEnumeration:
    def test_enumeration_guard(self, region):
        db = uniform_users(500, region, seed=0)
        tree = BinaryTree.build(region, db, 2, max_depth=12)
        with pytest.raises(ConfigurationError, match="refusing"):
            list(enumerate_ksummation_configurations(tree, 2, max_nodes=8))

    def test_all_enumerated_are_complete_and_valid(self, region):
        db = uniform_users(12, region, seed=4)
        tree = BinaryTree.build(region, db, 3, max_depth=4)
        configs = list(enumerate_ksummation_configurations(tree, 3))
        assert configs
        for config in configs:
            config.validate()
            assert config.is_complete
            assert config.satisfies_ksummation(3)
