"""Tests for the PIR cost model (§VII comparison substrate)."""

import pytest

from repro import ReproError
from repro.baselines import PIRCostModel


@pytest.fixture
def model():
    return PIRCostModel()


class TestPIRCostModel:
    def test_reference_point_matches_paper(self, model):
        """At the reference 65K POIs on one server the model reproduces
        the 20–45 s/query range quoted from [15]."""
        latency = model.seconds_per_query(65_000, servers=1)
        assert 20.0 <= latency <= 45.0

    def test_eight_servers_in_reported_range(self, model):
        """[15] reports 6–12 s/query on 8 servers."""
        latency = model.seconds_per_query(65_000, servers=8)
        assert 3.0 <= latency <= 12.0

    def test_latency_scales_with_pois(self, model):
        assert model.seconds_per_query(130_000) == pytest.approx(
            2 * model.seconds_per_query(65_000)
        )

    def test_parallelism_helps_sublinearly(self, model):
        one = model.seconds_per_query(65_000, 1)
        sixteen = model.seconds_per_query(65_000, 16)
        assert sixteen < one
        assert sixteen > one / 16  # imperfect efficiency

    def test_throughput_is_reciprocal(self, model):
        assert model.throughput(65_000, 4) == pytest.approx(
            1.0 / model.seconds_per_query(65_000, 4)
        )

    def test_answer_size_is_sqrt_n(self, model):
        assert model.answer_size(65_000) == 255
        assert model.answer_size(100) == 10

    def test_validation(self, model):
        with pytest.raises(ReproError):
            model.seconds_per_query(0)
        with pytest.raises(ReproError):
            model.seconds_per_query(100, servers=0)
        with pytest.raises(ReproError):
            model.answer_size(0)

    def test_three_orders_of_magnitude_vs_cloaking(self, model):
        """The paper's §VII claim: adopting cloaking + GIS evaluation is
        ~3 orders of magnitude more throughput than PIR per snapshot."""
        pir_qps = model.throughput(10_000, servers=1)
        cloaking_qps = 1.0 / 0.0025  # 0.5 ms lookup + 2 ms query
        assert cloaking_qps / pir_qps > 1_000
