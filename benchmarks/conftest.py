"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one table/figure of the paper (see the
experiment index in DESIGN.md).  Rendered result tables are printed and
also written to ``bench_results/<name>.txt`` so EXPERIMENTS.md can be
refreshed from a run.  Set ``REPRO_SCALE=quick|default|full`` to choose
workload sizes.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.experiments import Table, current_scale

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "bench_results"


@pytest.fixture(scope="session")
def profile():
    return current_scale()


@pytest.fixture(scope="session")
def record_table():
    """Persist a rendered experiment table (and echo it to stdout)."""

    def _record(name: str, table: Table) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = table.render()
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with open(RESULTS_DIR / f"{name}.json", "w", encoding="utf-8") as f:
            json.dump(table.to_dict(), f, indent=1)
        print("\n" + text)

    return _record


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark an expensive function with a single measured round."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
