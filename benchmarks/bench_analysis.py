"""Static-analysis benchmark: full-tree scan cost of ``repro.analysis``.

The lint gate runs on every CI push and in pre-commit, so its wall-clock
cost is part of the developer loop.  This bench times a cold full scan
of ``src/`` (parse + taint fixpoint + all four rule families), a
single-package scan (``lbs/`` — the taint-heaviest subtree), and the
taint-summary fixpoint alone, and records files/s so regressions in the
visitor or the interprocedural pass show up as a throughput drop rather
than anecdotes.
"""

import pathlib
import time

from repro.analysis import Analyzer, Project
from repro.experiments import Table

from conftest import run_once

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src"


def _scan(paths):
    analyzer = Analyzer()
    started = time.perf_counter()
    report = analyzer.run(paths)
    elapsed = time.perf_counter() - started
    return report, elapsed


def _fixpoint(analyzer, modules):
    started = time.perf_counter()
    project = Project(modules, analyzer.config)
    elapsed = time.perf_counter() - started
    return len(project.taint_summaries), elapsed


def test_analysis_throughput(record_table, benchmark):
    table = Table(
        "Static-analysis scan cost (repro.analysis)",
        [
            "scenario",
            "files",
            "findings",
            "suppressed",
            "seconds",
            "files_per_s",
        ],
    )

    def scenarios():
        rows = []
        for name, paths in (
            ("full src/ tree", [SRC]),
            ("lbs/ package only", [SRC / "repro" / "lbs"]),
        ):
            report, elapsed = _scan(paths)
            rows.append(
                dict(
                    scenario=name,
                    files=report.files_scanned,
                    findings=len(report.findings),
                    suppressed=report.suppressed,
                    seconds=elapsed,
                    files_per_s=report.files_scanned / max(elapsed, 1e-9),
                )
            )
        analyzer = Analyzer()
        modules = analyzer.load([SRC])
        summaries, elapsed = _fixpoint(analyzer, modules)
        rows.append(
            dict(
                scenario="taint-summary fixpoint",
                files=len(modules),
                findings=summaries,
                suppressed=0,
                seconds=elapsed,
                files_per_s=len(modules) / max(elapsed, 1e-9),
            )
        )
        return rows

    rows = run_once(benchmark, scenarios)
    for row in rows:
        table.add(**row)

    record_table("analysis", table)

    full = rows[0]
    # Functional gates: the tree itself must scan clean (new findings
    # break CI before they break this bench), and a full scan has to
    # stay interactive — pre-commit runs it on every commit.
    assert full["findings"] == 0
    assert full["seconds"] < 30.0
