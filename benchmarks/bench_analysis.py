"""Static-analysis benchmark: full-tree scan cost of ``repro.analysis``.

The lint gate runs on every CI push and in pre-commit, so its wall-clock
cost is part of the developer loop.  This bench times a cold full scan
of ``src/`` (parse + CFG fixpoints + all rule families), a
single-package scan (``lbs/`` — the taint-heaviest subtree), the
taint-summary fixpoint alone, and the incremental ``--changed-only``
path (no-op rerun and a one-file edit against a warm cache), recording
files/s so regressions in the CFG builder, the solvers, or the cache
reuse logic show up as a throughput drop rather than anecdotes.
"""

import pathlib
import shutil
import tempfile
import time

from repro.analysis import Analyzer, Project
from repro.analysis.incremental import IncrementalAnalyzer
from repro.experiments import Table

from conftest import run_once

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src"


def _scan(paths):
    analyzer = Analyzer()
    started = time.perf_counter()
    report = analyzer.run(paths)
    elapsed = time.perf_counter() - started
    return report, elapsed


def _fixpoint(analyzer, modules):
    started = time.perf_counter()
    project = Project(modules, analyzer.config)
    elapsed = time.perf_counter() - started
    return len(project.taint_summaries), elapsed


def _incremental_rows():
    """Cold-with-cache vs ``--changed-only`` on a throwaway src/ copy."""
    rows = []
    with tempfile.TemporaryDirectory(prefix="bench-analysis-") as tmp:
        tree = pathlib.Path(tmp) / "src"
        shutil.copytree(SRC, tree)
        cache = pathlib.Path(tmp) / "cache.json"

        def timed(scenario, driver, method):
            started = time.perf_counter()
            report = method([tree], cache_path=cache)
            elapsed = time.perf_counter() - started
            rows.append(
                dict(
                    scenario=scenario,
                    files=report.files_scanned,
                    findings=len(report.findings),
                    suppressed=report.suppressed,
                    seconds=elapsed,
                    files_per_s=report.files_scanned / max(elapsed, 1e-9),
                )
            )
            assert driver.fallback_reason is None or scenario.startswith(
                "cold"
            ), driver.fallback_reason
            return elapsed

        driver = IncrementalAnalyzer()
        timed("cold run + cache write", driver, driver.run_cold)
        warm = IncrementalAnalyzer()
        timed("changed-only, no edits", warm, warm.run_changed_only)
        # One-file edit: a comment keeps findings and interface facts
        # identical, which is exactly the common dev-loop case.
        target = tree / "repro" / "lbs" / "pipeline.py"
        target.write_text(
            target.read_text(encoding="utf-8") + "\n# bench edit\n",
            encoding="utf-8",
        )
        edited = IncrementalAnalyzer()
        timed("changed-only, 1-file edit", edited, edited.run_changed_only)
        assert edited.analyzed == 1
    return rows


def test_analysis_throughput(record_table, benchmark):
    table = Table(
        "Static-analysis scan cost (repro.analysis)",
        [
            "scenario",
            "files",
            "findings",
            "suppressed",
            "seconds",
            "files_per_s",
        ],
    )

    def scenarios():
        rows = []
        for name, paths in (
            ("full src/ tree", [SRC]),
            ("lbs/ package only", [SRC / "repro" / "lbs"]),
        ):
            report, elapsed = _scan(paths)
            rows.append(
                dict(
                    scenario=name,
                    files=report.files_scanned,
                    findings=len(report.findings),
                    suppressed=report.suppressed,
                    seconds=elapsed,
                    files_per_s=report.files_scanned / max(elapsed, 1e-9),
                )
            )
        analyzer = Analyzer()
        modules = analyzer.load([SRC])
        summaries, elapsed = _fixpoint(analyzer, modules)
        rows.append(
            dict(
                scenario="taint-summary fixpoint",
                files=len(modules),
                findings=summaries,
                suppressed=0,
                seconds=elapsed,
                files_per_s=len(modules) / max(elapsed, 1e-9),
            )
        )
        rows.extend(_incremental_rows())
        return rows

    rows = run_once(benchmark, scenarios)
    for row in rows:
        table.add(**row)

    record_table("analysis", table)

    full = rows[0]
    # Functional gates: the tree itself must scan clean (new findings
    # break CI before they break this bench), and a full scan has to
    # stay interactive — pre-commit runs it on every commit.
    assert full["findings"] == 0
    assert full["seconds"] < 10.0
    # The incremental path must actually pay off: a one-file edit
    # against a warm cache has to beat the cold run by ≥ 3x.
    cold = next(r for r in rows if r["scenario"] == "cold run + cache write")
    edit = next(
        r for r in rows if r["scenario"] == "changed-only, 1-file edit"
    )
    assert edit["findings"] == cold["findings"]
    assert cold["seconds"] / max(edit["seconds"], 1e-9) >= 3.0
