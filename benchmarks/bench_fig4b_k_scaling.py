"""Experiment ``fig4b``: bulk anonymization time vs k at fixed |D|.

Paper shape: quasi-linear (really sub-linear) growth in k.  In this
implementation the per-node DP work grows with k while the number of
materialized nodes shrinks as |B| ≈ |D|/k, so the total stays gentle;
we assert the sub-quadratic envelope rather than a specific slope.
"""

import pytest

from repro.experiments import run_fig4b

from conftest import run_once


def test_fig4b_k_scaling(benchmark, profile, record_table):
    table = run_once(benchmark, run_fig4b, profile)
    record_table("fig4b", table)
    rows = sorted(table.rows, key=lambda r: r["k"])

    # Gentle growth: time never scales worse than k² across the sweep
    # (the paper's curve is sub-linear; ours includes tree (re)builds).
    k1, t1 = rows[0]["k"], rows[0]["total_seconds"]
    for row in rows[1:]:
        ratio = row["total_seconds"] / max(t1, 1e-9)
        assert ratio <= (row["k"] / k1) ** 2 + 2.0, (row["k"], ratio)

    # Cost grows monotonically with k — stronger privacy costs utility.
    costs = [r["cost"] for r in rows]
    assert costs == sorted(costs)

    # Tree size shrinks as k grows (|B| ≈ |D| / k).
    nodes = [r["tree_nodes"] for r in rows]
    assert nodes == sorted(nodes, reverse=True)
