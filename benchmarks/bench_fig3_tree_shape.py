"""Experiment ``fig3``: shape of the lazily-materialized binary tree.

The paper (Figure 3) observes that a binary tree of height ≤ 20 covers
1M Bay-Area locations at k = 50, with no leaf holding more than k users
and denser areas producing deeper (finer-grained) nodes.  We check the
same qualitative facts at the active scale.
"""

import math

import pytest

from repro.experiments import run_fig3, sample_for
from repro.trees import BinaryTree

from conftest import run_once


def test_fig3_tree_shape(benchmark, profile, record_table):
    table = run_once(benchmark, run_fig3, profile)
    record_table("fig3", table)
    for row in table.rows:
        # No leaf exceeds k (the lazy-materialization invariant).
        assert row["max_leaf_count"] < profile.k
        # Height stays logarithmic-ish: generous bound 2·log2(n/k) + 16.
        bound = 2 * math.log2(max(row["n_users"] / profile.k, 2)) + 16
        assert row["height"] <= bound


def test_fig3_density_adapts_depth(profile, record_table):
    """Denser regions get deeper leaves (the grey-scale of Fig 3(a))."""
    region, db = sample_for(profile.db_fixed, profile)
    tree = BinaryTree.build(region, db, profile.k)
    leaves = tree.leaves()
    populated = [l for l in leaves if l.count > 0]
    deep = [l for l in populated if l.depth >= tree.height - 2]
    shallow = [l for l in populated if l.depth <= tree.height // 2]
    assert deep, "expected some deep leaves in dense areas"
    if shallow:
        # Deep leaves are smaller — finer cloak granularity where dense.
        assert max(l.rect.area for l in deep) < min(
            l.rect.area for l in shallow
        )
