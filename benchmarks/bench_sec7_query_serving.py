"""Experiment ``sec7-cache``: per-query serving through the CSP pipeline.

§VII argues the scheme's operating point: sub-second bulk
initialization, then *milliseconds per query* (cloak lookup + candidate
query), with the CSP answer cache suppressing duplicate requests (the
frequency-attack counter-measure) and preserving billing.  Two
measurements: the figure-style aggregate run, and a tight
microbenchmark of the steady-state request path.
"""

import pytest

from repro.data import uniform_users
from repro.experiments import run_sec7_cache
from repro.lbs import CSP, LBSProvider, generate_pois
from repro.core.geometry import Rect

from conftest import run_once


def test_sec7_pipeline_aggregate(benchmark, record_table):
    table = run_once(benchmark, run_sec7_cache)
    record_table("sec7_cache", table)
    row = table.rows[0]
    # Milliseconds-per-query operating point (generous envelope).
    assert row["mean_latency_ms"] < 50.0
    # The cache suppressed duplicates: the LBS saw fewer requests.
    assert row["lbs_served"] < row["requests"]
    assert row["cache_hit_rate"] > 0.0


def test_sec7_request_latency_microbench(benchmark):
    region = Rect(0, 0, 65_536, 65_536)
    db = uniform_users(2_000, region, seed=17)
    pois = generate_pois(region, {"rest": 200}, seed=17)
    csp = CSP(region, 25, db, LBSProvider(pois))
    users = db.user_ids()
    counter = [0]

    def one_request():
        uid = users[counter[0] % len(users)]
        counter[0] += 1
        return csp.request(uid, [("poi", "rest")])

    served = benchmark(one_request)
    assert served.result is not None
