"""Experiment ``fig5a``: average cloak area of the four policies.

Paper shape (§VI-B): Casper has the smallest cloaks; the policy-aware
optimum is nearly identical to the policy-unaware quad tree and at most
~1.7× Casper — the measured "price of the stronger guarantee".
"""

import pytest

from repro.experiments import run_fig5a

from conftest import run_once


def test_fig5a_cloak_area(benchmark, profile, record_table):
    table = run_once(benchmark, run_fig5a, profile)
    record_table("fig5a", table)
    for row in table.rows:
        # Casper is the utility floor of the comparison.
        assert row["casper"] <= row["pub"] + 1e-6
        assert row["casper"] <= row["puq"] + 1e-6
        # PUB lower-bounds the policy-aware optimum (same vocabulary).
        assert row["pub"] <= row["policy_aware"] + 1e-6
        # The headline number: policy-aware ≤ ~1.7 × Casper (we allow a
        # small margin for the synthetic data).
        assert row["pa_over_casper"] <= 1.9, row
        # "Nearly identical to the policy-unaware quad tree": same
        # ballpark, not an order of magnitude apart.
        assert row["policy_aware"] <= row["puq"] * 1.5 + 1e-6
