"""Experiment ``fig4a``: bulk anonymization time vs |D| and server count.

Paper shape: running time is linear in |D| (the §V complexity analysis
predicts O(k·|D|·log²(|D|/k))), and m share-nothing servers cut wall
clock by ≈ m.  The bench regenerates the whole figure once, then
asserts the two shapes on the recorded rows.
"""

import pytest

from repro.experiments import run_fig4a

from conftest import run_once


def test_fig4a_bulk_anonymization(benchmark, profile, record_table):
    table = run_once(benchmark, run_fig4a, profile)
    record_table("fig4a", table)
    rows = table.rows

    # Shape 1 — near-linear scaling in |D| (single server): doubling the
    # input must not blow up super-linearly beyond a generous factor.
    single = sorted(
        (r["n_users"], r["wall_seconds"]) for r in rows if r["servers"] == 1
    )
    for (n1, t1), (n2, t2) in zip(single, single[1:]):
        growth = t2 / max(t1, 1e-9)
        assert growth <= (n2 / n1) * 2.5, (n1, n2, t1, t2)

    # Shape 2 — parallel speedup: the most-parallel configuration beats
    # the single server on the largest workload.
    biggest = max(r["n_users"] for r in rows)
    at_big = {r["servers"]: r["wall_seconds"] for r in rows if r["n_users"] == biggest}
    max_servers = max(at_big)
    if max_servers > 1:
        assert at_big[max_servers] < at_big[1]

    # Cost is independent of how many servers computed it (±1%, §VI-D).
    for n_users in {r["n_users"] for r in rows}:
        costs = [r["cost"] for r in rows if r["n_users"] == n_users]
        assert max(costs) <= min(costs) * 1.01 + 1e-9
