"""Experiment ``sec6d``: utility loss of jurisdiction partitioning.

Paper shape: splitting the map across servers leaves the cost within 1%
of the single-server optimum even for thousands of jurisdictions (the
paper stress-tested 4096; cost divergence appears only when an optimal
cloak would have spanned a jurisdiction border).
"""

import pytest

from repro.experiments import run_sec6d

from conftest import run_once


def test_sec6d_parallel_cost_divergence(benchmark, profile, record_table):
    table = run_once(benchmark, run_sec6d, profile)
    record_table("sec6d", table)
    for row in table.rows:
        # Never better than the optimum (sanity), never >1% worse (the
        # paper's headline bound).
        assert row["overhead_percent"] >= -1e-6
        assert row["overhead_percent"] <= 1.0, row
    # The single-jurisdiction row is exactly the optimum.
    base = min(table.rows, key=lambda r: r["jurisdictions_requested"])
    assert base["overhead_percent"] == pytest.approx(0.0, abs=1e-9)
