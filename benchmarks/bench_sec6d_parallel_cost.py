"""Experiment ``sec6d``: utility loss of jurisdiction partitioning.

Paper shape: splitting the map across servers leaves the cost within 1%
of the single-server optimum even for thousands of jurisdictions (the
paper stress-tested 4096; cost divergence appears only when an optimal
cloak would have spanned a jurisdiction border).

The transport comparison rides along: dispatching jurisdictions as
shared-memory handles must shrink the pickled payload by at least an
order of magnitude versus shipping each compiled subtree, while staying
bit-identical in cost and cloaks.  The gate applies up to 64
jurisdictions; beyond that the subtrees themselves shrink toward
handle size and the ratio honestly decays (recorded, not gated).
"""

import pytest

from repro.experiments import run_sec6d
from repro.parallel import parallel_bulk_anonymize

from conftest import run_once


def test_sec6d_parallel_cost_divergence(benchmark, profile, record_table):
    table = run_once(benchmark, run_sec6d, profile)
    record_table("sec6d", table)
    for row in table.rows:
        # Never better than the optimum (sanity), never >1% worse (the
        # paper's headline bound).
        assert row["overhead_percent"] >= -1e-6
        assert row["overhead_percent"] <= 1.0, row
    # The single-jurisdiction row is exactly the optimum.
    base = min(table.rows, key=lambda r: r["jurisdictions_requested"])
    assert base["overhead_percent"] == pytest.approx(0.0, abs=1e-9)


def test_sec6d_shm_transport_shrinks_dispatch(profile, record_table):
    from repro.experiments import Table
    from repro.experiments.workloads import sample_for

    region, db = sample_for(profile.db_fixed, profile)
    k = profile.k
    table = Table(
        "§VI-D transport — pickled subtrees vs shared-memory handles",
        [
            "jurisdictions",
            "flat_payload_bytes",
            "shm_payload_bytes",
            "ratio",
            "bit_identical",
        ],
    )
    for n_servers in profile.jurisdiction_sweep:
        flat = parallel_bulk_anonymize(
            region, db, k, n_servers, transport="flat"
        )
        shm = parallel_bulk_anonymize(
            region, db, k, n_servers, transport="shm"
        )
        # Bit-identical outcome — the handle names the same arrays the
        # pickled subtree carried.
        identical = shm.cost == flat.cost and all(
            shm.master.cloak_for(u) == flat.master.cloak_for(u)
            for u in db.user_ids()
        )
        ratio = (
            flat.dispatch_payload_bytes / shm.dispatch_payload_bytes
        )
        table.add(
            jurisdictions=n_servers,
            flat_payload_bytes=flat.dispatch_payload_bytes,
            shm_payload_bytes=shm.dispatch_payload_bytes,
            ratio=round(ratio, 1),
            bit_identical=identical,
        )
        assert identical, f"transport changed the outcome at {n_servers}"
        if n_servers <= 64:
            # ≥ 10× smaller dispatch payload (the PR's acceptance bar).
            assert ratio >= 10.0, (
                f"shm payload only {ratio:.1f}x smaller at {n_servers} "
                f"jurisdictions ({flat.dispatch_payload_bytes} vs "
                f"{shm.dispatch_payload_bytes} B)"
            )
    record_table("sec6d_transport", table)
