"""Extension benchmark: the adaptive Casper pyramid.

The paper skipped the adaptive variant "since it only affects the
running time and not the size of the cloak" (§VI-B).  This bench makes
both halves of that sentence measurable: per-snapshot maintenance cost
of the pyramid versus rebuilding it, with cloak sizes asserted equal.
"""

import pytest

from repro.baselines.casper_adaptive import CasperPyramid
from repro.data import uniform_users
from repro.core.geometry import Rect
from repro.experiments import Table, timed
from repro.lbs import random_moves

from conftest import run_once

N_USERS = 20_000
HEIGHT = 8
K = 50


def _run_adaptive():
    region = Rect(0, 0, 65_536, 65_536)
    db = uniform_users(N_USERS, region, seed=43)
    pyramid = CasperPyramid(region, db, height=HEIGHT)
    table = Table(
        "Adaptive Casper — incremental maintenance vs rebuild",
        [
            "percent_moving",
            "maintain_seconds",
            "rebuild_seconds",
            "cells_touched",
            "cloaks_identical",
        ],
    )
    current = db
    for percent in (0.5, 2.0, 10.0):
        moves = random_moves(
            current, percent / 100.0, region, max_distance=200.0,
            seed=int(percent * 10),
        )
        with timed() as t_inc:
            touched = pyramid.apply_moves(moves)
        current = current.with_moves(moves)
        with timed() as t_rebuild:
            fresh = CasperPyramid(region, current, height=HEIGHT)
        sample = current.user_ids()[::97]
        identical = all(
            pyramid.cloak(current.location_of(uid), K)
            == fresh.cloak(current.location_of(uid), K)
            for uid in sample
        )
        table.add(
            percent_moving=percent,
            maintain_seconds=t_inc[0],
            rebuild_seconds=t_rebuild[0],
            cells_touched=touched,
            cloaks_identical=identical,
        )
    return table


def test_adaptive_casper_maintenance(benchmark, record_table):
    table = run_once(benchmark, _run_adaptive)
    record_table("ext_adaptive_casper", table)
    for row in table.rows:
        # "Only affects the running time, not the size of the cloak".
        assert row["cloaks_identical"]
        # Maintenance beats rebuilding at every move rate measured.
        assert row["maintain_seconds"] < row["rebuild_seconds"]
