"""Extension benchmark: the §VII deployment story, end to end.

Runs the deterministic discrete-event simulator and the PIR cost model
to regenerate the paper's feasibility comparison: milliseconds per
cloaked query and thousands of requests per simulated second, versus
seconds per query for cryptographic PIR — the "three orders of
magnitude" claim, with the answer cache's LBS-offload quantified.
"""

import pytest

from repro.baselines import PIRCostModel
from repro.data import uniform_users
from repro.core.geometry import Rect
from repro.experiments import Table
from repro.lbs import LBSSimulation

from conftest import run_once

N_POIS = 10_000


def _run_des():
    region = Rect(0, 0, 65_536, 65_536)
    db = uniform_users(2_000, region, seed=29)
    table = Table(
        "§VII deployment — simulated serving vs the PIR cost model",
        [
            "system",
            "mean_latency_s",
            "p99_latency_s",
            "throughput_qps",
            "lbs_load_fraction",
        ],
    )
    for label, use_cache in (("cloaking+cache", True), ("cloaking", False)):
        sim = LBSSimulation(
            region,
            db,
            k=25,
            request_rate_per_user=0.05,
            snapshot_period=30.0,
            move_fraction=0.02,
            use_cache=use_cache,
            seed=5,
        )
        report = sim.run(120.0)
        table.add(
            system=label,
            mean_latency_s=report.mean_latency,
            p99_latency_s=report.latency_percentile(99),
            throughput_qps=report.throughput,
            lbs_load_fraction=report.lbs_queries / report.served,
        )
    pir = PIRCostModel()
    for servers in (1, 8):
        latency = pir.seconds_per_query(N_POIS, servers)
        table.add(
            system=f"PIR×{servers} [15]",
            mean_latency_s=latency,
            p99_latency_s=latency,
            throughput_qps=pir.throughput(N_POIS, servers),
            lbs_load_fraction=1.0,
        )
    return table


def test_des_throughput_vs_pir(benchmark, record_table):
    table = run_once(benchmark, _run_des)
    record_table("sec7_des", table)
    rows = {r["system"]: r for r in table.rows}
    cloaked = rows["cloaking+cache"]
    pir1 = rows["PIR×1 [15]"]
    # Milliseconds vs seconds: ≥ 3 orders of magnitude in mean latency.
    assert pir1["mean_latency_s"] / cloaked["mean_latency_s"] > 100
    # The cache strictly offloads the LBS.
    assert (
        cloaked["lbs_load_fraction"] < rows["cloaking"]["lbs_load_fraction"]
    )
