"""Experiment ``ablate-dp``: the §V optimization ladder.

Measures each rung the paper climbs from Algorithm 1 to the production
solver — naive quad DP, staged (min-plus) combine, binary tree, Lemma-5
pruning — verifying that every optimization preserves the optimum for
its tree while slashing runtime.
"""

import pytest

from repro.experiments import run_ablation_dp

from conftest import run_once


def test_ablation_optimization_ladder(benchmark, record_table):
    table = run_once(benchmark, run_ablation_dp, 100, 5)
    record_table("ablate_dp", table)
    rows = {r["variant"]: r for r in table.rows}

    # Cost-preservation within each tree type.
    assert rows["Algorithm 1 (naive)"]["cost"] == pytest.approx(
        rows["staged min-plus"]["cost"]
    )
    assert rows["staged, no Lemma 5"]["cost"] == pytest.approx(
        rows["staged + Lemma 5"]["cost"]
    )

    # The binary tree's optimum is at most the quad tree's (§V).
    assert (
        rows["staged + Lemma 5"]["cost"]
        <= rows["Algorithm 1 (naive)"]["cost"] + 1e-6
    )

    # The staged combine crushes the naive product loop.
    assert (
        rows["staged min-plus"]["seconds"]
        < rows["Algorithm 1 (naive)"]["seconds"]
    )
