"""Extension benchmark: run-time orientation choice for the binary tree.

§V fixes vertical semi-quadrants "for simplicity" but notes the
implementation can choose between vertical and horizontal trees at run
time.  This bench measures the utility spread between the two static
orientations and the win from picking the better one per snapshot.
"""

import pytest

from repro.core.binary_dp import solve, solve_best_orientation
from repro.experiments import Table, sample_for
from repro.trees import BinaryTree

from conftest import run_once


def _run_orientation(profile):
    table = Table(
        "Extension — binary-tree orientation choice (§V remark)",
        ["n_users", "vertical", "horizontal", "best", "win_vs_vertical_pct"],
    )
    for n_users in profile.db_sweep:
        region, db = sample_for(n_users, profile)
        k = profile.k
        costs = {}
        for orientation in ("vertical", "horizontal"):
            tree = BinaryTree.build(region, db, k, orientation=orientation)
            costs[orientation] = solve(tree, k).optimal_cost
        best = solve_best_orientation(region, db, k).optimal_cost
        table.add(
            n_users=len(db),
            vertical=costs["vertical"],
            horizontal=costs["horizontal"],
            best=best,
            win_vs_vertical_pct=100.0
            * (costs["vertical"] - best)
            / costs["vertical"],
        )
    return table


def test_orientation_choice(benchmark, profile, record_table):
    table = run_once(benchmark, _run_orientation, profile)
    record_table("ext_orientation", table)
    for row in table.rows:
        assert row["best"] == pytest.approx(
            min(row["vertical"], row["horizontal"])
        )
        assert row["win_vs_vertical_pct"] >= -1e-9
