"""Experiment ``table1``: Table I / Example 1 / Figure 1.

Regenerates the paper's motivating example: on the five-user location
database, the 2-inside policy (the paper's P1; our PUB baseline emits
its exact cloaks) lets a policy-aware attacker identify Carol, while the
optimal policy-aware policy (the paper's P2) protects everyone.
"""

import pytest

from repro.experiments import run_table1

from conftest import run_once


def test_table1_motivating_example(benchmark, record_table):
    table = run_once(benchmark, run_table1)
    record_table("table1", table)
    rows = {(r["policy"], r["user"]): r for r in table.rows}
    carol = rows[("PUB", "Carol")]
    # The breach: one policy-aware candidate, despite 3 unaware ones.
    assert carol["aware_candidates"] == 1
    assert carol["unaware_candidates"] == 3
    # The optimal policy-aware policy protects all five senders.
    for (policy, __), row in rows.items():
        if policy != "PUB":
            assert row["aware_candidates"] >= 2
