"""Experiment ``fig6``: policy-aware breaches of k-inside refinements.

Regenerates §VII's counter-examples: the k-sharing scheme of [11]
(Figure 6(a)) and a k-reciprocity-satisfying base-station circle scheme
(Figure 6(b)) both pass the policy-unaware audit yet leak the sender's
identity to a policy-aware attacker; randomized trials show the latter
breach is generic, not an artifact of the crafted layout.
"""

import pytest

from repro.experiments import run_fig6

from conftest import run_once


def test_fig6_refinement_breaches(benchmark, record_table):
    table = run_once(benchmark, run_fig6, 25)
    record_table("fig6", table)
    rows = {(r["scenario"], r["scheme"]): r for r in table.rows}

    crafted_a = rows[("paper 6(a)", "k-sharing")]
    assert crafted_a["property_holds"]  # k-sharing satisfied...
    assert crafted_a["breach"]          # ...yet the sender is identified
    assert crafted_a["aware_level"] == 1

    crafted_b = rows[("paper 6(b)", "k-reciprocity")]
    assert crafted_b["property_holds"]
    assert crafted_b["breach"]

    random_b = rows[("random×25", "k-reciprocity")]
    # Per-user radii make circles essentially unique → generic breaches.
    assert random_b["breach"]
