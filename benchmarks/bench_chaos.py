"""Chaos benchmark: availability, latency, and MTTR under faults.

Runs the §VII deterministic DES and the §V parallel engine twice each —
once clean, once under a seeded chaos schedule — and reports
availability, p50/p99 latency, and the degradation counters.  A third
parallel scenario SIGKILLs a real worker process mid-solve and reports
**MTTR** (mean time to recovery: pool rebuild + re-solve of the lost
jurisdictions, per recovery event).  A fourth destroys one replica of a
quorum journal mid-commit and times the majority-vote restore+repair.
The hard gate is the fail-closed invariant: no schedule may ever
produce a policy-aware breach, so degraded operation trades *utility
and availability* for faults, never anonymity.
"""

import os
import tempfile
import time

import numpy as np

from repro.attacks.audit import audit_policy
from repro.core.geometry import Rect
from repro.data import uniform_users
from repro.experiments import Table
from repro.experiments.churn import (
    CHURN_SCALES,
    MOVE_FRACTION,
    des_churn_run,
)
from repro.lbs import LBSSimulation
from repro.lbs.pipeline import CSP
from repro.lbs.poi import generate_pois
from repro.lbs.provider import LBSProvider
from repro.parallel import parallel_bulk_anonymize
from repro.robustness import (
    FaultInjector,
    FaultPlan,
    FaultRule,
    QuorumJournal,
    ReplicaKillPlan,
    RetryPolicy,
)
from repro.robustness.chaos import KillPlan

from conftest import run_once

K = 25

CHAOS_PLAN = FaultPlan(
    rules=(
        FaultRule("provider", "timeout", probability=0.15),
        FaultRule("provider", "error", probability=0.05),
        FaultRule("repair", "crash", probability=0.3),
    ),
    seed=17,
    name="serving-chaos",
)

SOLVE_PLAN = FaultPlan(
    rules=(FaultRule("solve", "crash", probability=0.4),),
    seed=18,
    name="solve-chaos",
)


def _des_row(scale, injector, retry_policy):
    region = Rect(0, 0, 65_536, 65_536)
    db = uniform_users(min(scale.db_fixed, 2_000), region, seed=29)
    sim = LBSSimulation(
        region,
        db,
        k=K,
        request_rate_per_user=0.05,
        snapshot_period=30.0,
        seed=5,
        injector=injector,
        retry_policy=retry_policy,
        max_stale_snapshots=1,
    )
    report = sim.run(120.0)
    return report


def _run_chaos(scale):
    table = Table(
        "Fault-tolerant serving — availability and latency, "
        "clean vs chaos schedule",
        [
            "scenario",
            "availability",
            "p50_ms",
            "p99_ms",
            "rejected",
            "stale",
            "retries",
            "recoveries",
            "mttr_ms",
            "breaches",
        ],
    )

    # -- DES serving pipeline -------------------------------------------------
    for label, injector, retry in (
        ("des/clean", None, None),
        (
            "des/chaos",
            FaultInjector(CHAOS_PLAN),
            RetryPolicy(max_attempts=3, base_delay=0.01),
        ),
    ):
        report = _des_row(scale, injector, retry)
        table.add(
            scenario=label,
            availability=report.availability,
            p50_ms=1e3 * report.latency_percentile(50),
            p99_ms=1e3 * report.latency_percentile(99),
            rejected=report.rejected,
            stale=report.stale_served,
            retries=report.provider_retries,
            recoveries=0,
            mttr_ms=0.0,
            # The DES serves real policy cloaks; its breach count is the
            # policy audit's, checked on the bulk rows below.
            breaches=0,
        )

    # -- parallel bulk engine -------------------------------------------------
    region = Rect(0, 0, 1024, 1024)
    db = uniform_users(1_000, region, seed=101)
    for label, injector, retry in (
        ("bulk/clean", None, None),
        (
            "bulk/chaos",
            FaultInjector(SOLVE_PLAN),
            RetryPolicy(max_attempts=2, base_delay=0.01),
        ),
    ):
        result = parallel_bulk_anonymize(
            region,
            db,
            K,
            8,
            injector=injector,
            retry_policy=retry,
            on_failure="degrade",
        )
        per_server = np.array(result.server_seconds)
        audit = audit_policy(result.master.merged, K)
        table.add(
            scenario=label,
            availability=result.availability,
            p50_ms=1e3 * float(np.percentile(per_server, 50)),
            p99_ms=1e3 * float(np.percentile(per_server, 99)),
            rejected=0,
            stale=0,
            retries=result.total_attempts - result.n_servers,
            recoveries=result.recoveries,
            mttr_ms=1e3 * result.mttr,
            breaches=len(audit.breached_users),
        )

    # -- real process-kill recovery -------------------------------------------
    kill_db = uniform_users(240, region, seed=102)
    clean = parallel_bulk_anonymize(region, kill_db, K, 4, mode="simulated")
    victim = max(clean.jurisdictions, key=lambda j: j.count).node_id
    result = parallel_bulk_anonymize(
        region,
        kill_db,
        K,
        4,
        mode="process",
        kill_plan=KillPlan.first_attempt(victim),
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.0),
    )
    per_server = np.array(result.server_seconds)
    audit = audit_policy(result.master.merged, K)
    table.add(
        scenario="bulk/kill",
        availability=result.availability,
        p50_ms=1e3 * float(np.percentile(per_server, 50)),
        p99_ms=1e3 * float(np.percentile(per_server, 99)),
        rejected=0,
        stale=0,
        retries=result.total_attempts - result.n_servers,
        recoveries=result.recoveries,
        mttr_ms=1e3 * result.mttr,
        breaches=len(audit.breached_users),
    )

    # -- quorum journal: replica destroyed mid-commit --------------------------
    with tempfile.TemporaryDirectory(prefix="bench-quorum-") as base:
        roots = [os.path.join(base, f"replica-{i}") for i in range(3)]
        provider = LBSProvider(generate_pois(region, {"rest": 20}, seed=3))
        journal_db = uniform_users(240, region, seed=103)
        csp = CSP(
            region,
            K,
            journal_db,
            provider,
            journal=QuorumJournal(
                roots, kill_plan=ReplicaKillPlan.single(0, 0, "snapshot")
            ),
        )
        expected = {uid: cloak for uid, cloak in csp.policy.items()}
        start = time.perf_counter()
        restored = CSP.restore(provider, QuorumJournal(roots))
        restore_seconds = time.perf_counter() - start
        recovery = restored.journal.last_recovery
        audit = audit_policy(restored.policy, K)
        served_identical = sum(
            restored.policy.cloak_for(uid) == cloak
            for uid, cloak in expected.items()
        )
        table.add(
            scenario="journal/replica-kill",
            availability=served_identical / len(expected),
            p50_ms=1e3 * restore_seconds,
            p99_ms=1e3 * restore_seconds,
            rejected=0,
            stale=0,
            retries=0,
            recoveries=len(recovery.repaired) if recovery else 0,
            mttr_ms=1e3 * (recovery.repair_seconds if recovery else 0.0),
            breaches=len(audit.breached_users),
        )
    return table


def test_chaos_availability_and_latency(benchmark, record_table, profile):
    table = run_once(benchmark, _run_chaos, profile)
    record_table("chaos", table)
    rows = {r["scenario"]: r for r in table.rows}
    # The invariant: chaos costs availability, never anonymity.
    assert all(r["breaches"] == 0 for r in table.rows)
    assert rows["des/clean"]["availability"] == 1.0
    assert rows["bulk/clean"]["availability"] == 1.0
    assert (
        rows["des/chaos"]["availability"]
        <= rows["des/clean"]["availability"]
    )
    assert (
        rows["bulk/chaos"]["availability"]
        <= rows["bulk/clean"]["availability"]
    )
    # The chaos schedule actually bit (rejections or degradations).
    assert (
        rows["des/chaos"]["rejected"]
        + rows["des/chaos"]["stale"]
        + rows["des/chaos"]["retries"]
        > 0
    )
    # The SIGKILL'd run recovered (pool rebuilt) and lost no users.
    assert rows["bulk/kill"]["availability"] == 1.0
    assert rows["bulk/kill"]["recoveries"] >= 1
    assert rows["bulk/kill"]["mttr_ms"] > 0.0
    # The replica destroyed mid-commit was rebuilt from the majority and
    # the restored policy serves bit-identical cloaks.
    assert rows["journal/replica-kill"]["availability"] == 1.0
    assert rows["journal/replica-kill"]["recoveries"] == 1
    assert rows["journal/replica-kill"]["mttr_ms"] > 0.0


# ---------------------------------------------------------------------------
# Policy churn: stop-the-world repair vs double-buffered swap (DESIGN §12)
# ---------------------------------------------------------------------------


def _run_churn(scale):
    params = CHURN_SCALES.get(scale.name, CHURN_SCALES["default"])
    table = Table(
        "Policy churn (DES) — blackout repair vs epoch swap at "
        f"{100 * MOVE_FRACTION:g}% movement per snapshot",
        [
            "scenario",
            "served",
            "rejected",
            "p50_ms",
            "p99_ms",
            "repair_waits",
            "served_while_repairing",
            "oracle_mismatches",
        ],
    )
    for double_buffered in (False, True):
        row = des_churn_run(double_buffered, params, seed=7)
        table.add(
            scenario=f"churn/{row['mode']}",
            served=row["served"],
            rejected=row["rejected"],
            p50_ms=round(row["p50_ms"], 2),
            p99_ms=round(row["p99_ms"], 2),
            repair_waits=row["repair_waits"],
            served_while_repairing=row["served_while_repairing"],
            oracle_mismatches=row["oracle_mismatches"],
        )
    return table


def test_churn_swap_never_exceeds_blackout(benchmark, record_table, profile):
    table = run_once(benchmark, _run_churn, profile)
    record_table("chaos_churn", table)
    rows = {r["scenario"]: r for r in table.rows}
    blackout, swap = rows["churn/blackout"], rows["churn/swap"]
    # Anonymity is absolute under churn too: every served cloak is
    # bit-identical to a from-scratch solve of its epoch.
    assert all(r["oracle_mismatches"] == 0 for r in table.rows)
    # The baseline actually blacked out, and the swap retired it: no
    # request ever waits on a repair again.
    assert blackout["repair_waits"] > 0
    assert swap["repair_waits"] == 0
    assert swap["served_while_repairing"] > 0
    # The tail gate of the PR: the swap path never exceeds the blackout
    # path's p99.
    assert swap["p99_ms"] <= blackout["p99_ms"]
