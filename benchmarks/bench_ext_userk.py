"""Extension benchmark: user-specified k (the paper's future work).

Quantifies the utility of honoring per-user privacy choices: a mixed
population (80% relaxed / 20% strict) anonymized optimally per-user,
versus the uniform-k fallbacks a scalar-k deployment is stuck with.
"""

import numpy as np
import pytest

from repro.core.binary_dp import solve
from repro.data import uniform_users
from repro.core.geometry import Rect
from repro.experiments import Table
from repro.extensions import audit_user_k, solve_user_k
from repro.trees import BinaryTree

from conftest import run_once

K_RELAXED, K_STRICT = 10, 40
N_USERS = 800


def _run_userk():
    region = Rect(0, 0, 65_536, 65_536)
    db = uniform_users(N_USERS, region, seed=23)
    rng = np.random.default_rng(23)
    k_of = {
        u: (K_STRICT if rng.random() < 0.2 else K_RELAXED)
        for u in db.user_ids()
    }
    table = Table(
        "Extension — user-specified k vs uniform fallbacks",
        ["variant", "avg_cloak_area", "honors_all_users"],
    )
    tree = BinaryTree.build(region, db, K_RELAXED)
    mixed_policy = solve_user_k(tree, k_of).policy()
    table.add(
        variant=f"per-user k ({K_RELAXED}/{K_STRICT})",
        avg_cloak_area=mixed_policy.average_cloak_area(),
        honors_all_users=audit_user_k(mixed_policy, k_of),
    )
    lax = solve(BinaryTree.build(region, db, K_RELAXED), K_RELAXED).policy()
    table.add(
        variant=f"uniform k={K_RELAXED}",
        avg_cloak_area=lax.average_cloak_area(),
        honors_all_users=audit_user_k(lax, k_of),
    )
    strict = solve(BinaryTree.build(region, db, K_STRICT), K_STRICT).policy()
    table.add(
        variant=f"uniform k={K_STRICT}",
        avg_cloak_area=strict.average_cloak_area(),
        honors_all_users=audit_user_k(strict, k_of),
    )
    return table


def test_ext_user_specified_k(benchmark, record_table):
    table = run_once(benchmark, _run_userk)
    record_table("ext_userk", table)
    rows = {r["variant"]: r for r in table.rows}
    mixed = rows[f"per-user k ({K_RELAXED}/{K_STRICT})"]
    lax = rows[f"uniform k={K_RELAXED}"]
    strict = rows[f"uniform k={K_STRICT}"]
    # Only the extension and the strict fallback honor every user...
    assert mixed["honors_all_users"]
    assert strict["honors_all_users"]
    assert not lax["honors_all_users"]
    # ...and the extension is strictly cheaper than the strict fallback.
    assert mixed["avg_cloak_area"] < strict["avg_cloak_area"]
    assert mixed["avg_cloak_area"] >= lax["avg_cloak_area"] - 1e-9
