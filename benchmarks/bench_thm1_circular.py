"""Experiment ``thm1``: the circular-cloak problem is NP-complete.

Empirical companion to Theorem 1: the exact subset-DP's running time
grows exponentially with the number of users while the polynomial
greedy heuristic stays flat (and pays a bounded optimality gap).
"""

import pytest

from repro.experiments import run_thm1

from conftest import run_once


def test_thm1_exponential_exact_vs_greedy(benchmark, record_table):
    table = run_once(benchmark, run_thm1, 13, 3)
    record_table("thm1", table)
    rows = sorted(table.rows, key=lambda r: r["n_users"])

    # The greedy heuristic never beats the exact optimum.
    assert all(r["cost_ratio"] >= 1.0 - 1e-9 for r in rows)

    # Exponential blow-up: time from the smallest to the largest n grows
    # by well over the linear factor.
    t_first = max(rows[0]["exact_seconds"], 1e-6)
    t_last = rows[-1]["exact_seconds"]
    n_ratio = rows[-1]["n_users"] / rows[0]["n_users"]
    assert t_last / t_first > 4 * n_ratio

    # The heuristic stays cheap throughout.
    assert all(r["greedy_seconds"] < 0.5 for r in rows)
