"""Experiment ``fig5b``: incremental maintenance vs bulk recomputation.

Paper shape (§VI-C): incremental beats bulk while few users move, but
once roughly 5% of users move per snapshot most leaves are dirty and
incremental degenerates into bulk.  Correctness (identical cost) must
hold at every point.
"""

import pytest

from repro.experiments import run_fig5b

from conftest import run_once


def test_fig5b_incremental_maintenance(benchmark, profile, record_table):
    table = run_once(benchmark, run_fig5b, profile)
    record_table("fig5b", table)
    rows = sorted(table.rows, key=lambda r: r["percent_moving"])

    # Correctness at every move rate.
    assert all(r["costs_equal"] for r in rows)

    # At the smallest move rate, incremental repairs only part of the
    # tree and is faster than bulk.
    smallest = rows[0]
    assert smallest["recomputed_nodes"] < smallest["total_nodes"]
    assert smallest["incremental_seconds"] < smallest["bulk_seconds"]

    # Dirty work grows with the move rate.
    recomputed = [r["recomputed_nodes"] for r in rows]
    assert recomputed == sorted(recomputed)

    # At the largest move rate incremental no longer wins big: it is at
    # worst ~bulk (the paper's "degenerates into bulk anonymization").
    largest = rows[-1]
    assert largest["incremental_seconds"] <= largest["bulk_seconds"] * 2.0
