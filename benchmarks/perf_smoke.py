"""Perf-regression smoke check for CI.

Times the hot kernels (tree build, flat compile, flat solve, flat
extraction, object solve) and one small Figure-4(a) bulk point, then
compares each number against the committed
``bench_results/baseline_smoke.json``.  A kernel more than ``TOLERANCE``
times slower than its committed baseline fails the check — loose enough
(3×) to absorb shared-runner noise, tight enough to catch an accidental
O(n·|D|) regression in the flat engine.

Usage::

    python benchmarks/perf_smoke.py                  # compare, exit 1 on regression
    python benchmarks/perf_smoke.py --write-baseline # refresh the baseline
    python benchmarks/perf_smoke.py --out current.json

The current numbers are always written to ``--out`` (default
``bench_results/perf_smoke_current.json``) so CI can upload them as an
artifact even when the check fails.
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.core.binary_dp import solve
from repro.core.flat_dp import extract_cloaks, solve_arrays
from repro.core.geometry import Rect
from repro.data import uniform_users
from repro.parallel import parallel_bulk_anonymize
from repro.trees import BinaryTree, FlatTree

BASELINE = Path(__file__).resolve().parent.parent / "bench_results" / "baseline_smoke.json"
TOLERANCE = 3.0
REGION = Rect(0, 0, 65_536, 65_536)
N = 20_000
K = 50
REPEATS = 3


def _best(fn, *args, **kwargs):
    """Best-of-REPEATS wall time — the minimum is the least noisy
    estimator on shared runners."""
    best = float("inf")
    result = None
    for __ in range(REPEATS):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_smoke() -> dict:
    db = uniform_users(N, REGION, seed=37)
    timings = {}
    timings["tree_build"], tree = _best(BinaryTree.build, REGION, db, K)
    timings["flat_compile"], flat = _best(
        FlatTree.compile, tree, with_payload=True
    )
    timings["flat_solve"], vecs = _best(solve_arrays, flat, K)
    timings["flat_extract"], cloaks = _best(extract_cloaks, flat, vecs, K)
    timings["object_solve"], __ = _best(solve, tree, K, engine="object")
    assert len(cloaks) == N
    timings["fig4a_point"], result = _best(
        parallel_bulk_anonymize, REGION, db, K, 1
    )
    assert result.master.merged.cost() > 0
    return timings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--write-baseline", action="store_true")
    parser.add_argument(
        "--out",
        type=Path,
        default=BASELINE.parent / "perf_smoke_current.json",
    )
    args = parser.parse_args(argv)

    timings = run_smoke()
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(timings, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")

    if args.write_baseline:
        BASELINE.write_text(
            json.dumps(timings, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {BASELINE}")
        return 0

    baseline = json.loads(BASELINE.read_text())
    failures = []
    for name, seconds in sorted(timings.items()):
        ref = baseline.get(name)
        if ref is None:
            print(f"  {name:>14}: {seconds:8.4f}s  (no baseline — skipped)")
            continue
        ratio = seconds / ref if ref > 0 else float("inf")
        flag = "OK " if ratio <= TOLERANCE else "FAIL"
        print(
            f"  {name:>14}: {seconds:8.4f}s  baseline {ref:8.4f}s  "
            f"×{ratio:5.2f}  {flag}"
        )
        if ratio > TOLERANCE:
            failures.append(name)
    if failures:
        print(f"perf regression (>{TOLERANCE}× baseline): {failures}")
        return 1
    print("perf smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
