"""Experiment ``gateway``: sync serve loop vs. the asyncio gateway.

Both paths pay the same simulated provider RTT (10 ms per wire
round-trip) over the same workload and the same seeds.  The synchronous
``CSP.request`` loop blocks one RTT per provider query; the gateway
overlaps in-flight queries, coalesces same-cloak requests, and batches
distinct cloaks into shared provider rounds — so its throughput
advantage comes purely from I/O scheduling, never from a different
anonymity decision.

The sharded fleet rows shard the same serving stack across N worker
processes behind a cloak-keyed consistent-hash dispatcher, every worker
mapping one shared-memory FlatTree.  They run a *round-bound* operating
point (many distinct coalescing keys through a small per-worker
connection pool) — the regime where a single event loop's pool is the
bottleneck and extra workers buy aggregate provider concurrency.  Fleet
walls use the repo's share-nothing idealized accounting (each worker's
share timed sequentially, wall = slowest worker — the same model
``ParallelResult`` uses), so the rows are honest on hosts with fewer
cores than workers; the process row reports real elapsed time for the
end-to-end plumbing.

Hard gates (the PR's acceptance bar):

* async throughput ≥ 3× sync at the same 10 ms RTT,
* coalesced provider traffic < 1 query per served request,
* fleet throughput ≥ 1.7× the 1-worker fleet at 2 workers and ≥ 3× at
  4 workers (same 10 ms RTT, same config),
* zero anonymity violations — every async/fleet cloak identical to the
  sync oracle's for the same user.
"""

import time

from repro.core.geometry import Rect
from repro.data import uniform_users
from repro.experiments import Table
from repro.experiments.churn import (
    CHURN_SCALES,
    MOVE_FRACTION,
    live_churn_run,
)
from repro.lbs import CSP, LBSProvider, generate_pois
from repro.serving import FleetConfig, GatewayConfig, run_fleet

from conftest import run_once

K = 20
RTT = 0.010  # 10 ms simulated provider round-trip
REGION = Rect(0, 0, 16_384, 16_384)
CATEGORIES = ("rest", "groc", "fuel")
#: the fleet's round-bound mix: ~n/k cloaks × 36 categories ≈ hundreds
#: of distinct (cloak, payload) keys, far more than one pool turns over.
FLEET_CATEGORIES = tuple(f"c{i}" for i in range(36))


class SlowProvider:
    """Wraps the in-process provider with a blocking per-call RTT, the
    wire cost the synchronous pipeline pays on every provider query."""

    def __init__(self, inner, rtt):
        self.inner = inner
        self.rtt = rtt

    def serve(self, request):
        time.sleep(self.rtt)
        return self.inner.serve(request)

    def serve_many(self, requests):
        time.sleep(self.rtt)
        return self.inner.serve_many(requests)

    def __getattr__(self, name):
        return getattr(self.inner, name)


def _build(n_users, seed):
    db = uniform_users(n_users, REGION, seed=seed)
    pois = generate_pois(
        REGION, {c: 150 for c in CATEGORIES}, seed=seed + 1
    )
    return db, pois


def _workload(db, n_requests):
    users = db.user_ids()
    return [
        (users[i % len(users)], [("poi", CATEGORIES[i % len(CATEGORIES)])])
        for i in range(n_requests)
    ]


def _run_gateway(scale):
    n_users = min(scale.db_fixed, 400)
    n_requests = {"quick": 200, "default": 400, "full": 800}.get(
        scale.name, 400
    )
    db, pois = _build(n_users, seed=151)
    workload = _workload(db, n_requests)

    # Synchronous oracle: one blocking RTT per provider query.
    sync_csp = CSP(REGION, K, db, SlowProvider(LBSProvider(pois), RTT))
    t0 = time.perf_counter()
    oracle = [sync_csp.request(uid, payload) for uid, payload in workload]
    sync_seconds = time.perf_counter() - t0
    sync_queries = sync_csp.base_provider.inner.served

    # Async gateway over an identically-constructed CSP.
    async_csp = CSP(REGION, K, db, LBSProvider(pois))
    config = GatewayConfig(
        rtt=RTT, max_batch=32, max_wait=0.002, pool_size=8
    )
    t0 = time.perf_counter()
    results, stats = async_csp.serve_async(workload, config)
    async_seconds = time.perf_counter() - t0

    mismatches = sum(
        1
        for served, want in zip(results, oracle)
        if served.anonymized.cloak != want.anonymized.cloak
    )

    table = Table(
        "Async serving gateway — sync loop vs asyncio gateway "
        f"at {RTT * 1e3:.0f} ms provider RTT",
        [
            "path",
            "requests",
            "seconds",
            "req_per_s",
            "provider_queries",
            "provider_rounds",
            "queries_per_request",
            "cloak_mismatches",
        ],
    )
    table.add(
        path="sync CSP.request loop",
        requests=n_requests,
        seconds=round(sync_seconds, 4),
        req_per_s=round(n_requests / sync_seconds, 1),
        provider_queries=sync_queries,
        provider_rounds=sync_queries,
        queries_per_request=round(sync_queries / n_requests, 4),
        cloak_mismatches=0,
    )
    table.add(
        path="asyncio gateway",
        requests=n_requests,
        seconds=round(async_seconds, 4),
        req_per_s=round(n_requests / async_seconds, 1),
        provider_queries=stats.provider_queries,
        provider_rounds=stats.provider_rounds,
        queries_per_request=round(stats.queries_per_request, 4),
        cloak_mismatches=mismatches,
    )

    # -- sharded fleet: round-bound mix, idealized per-worker walls ------
    fleet_workload = [
        (
            db.user_ids()[i % n_users],
            [("poi", FLEET_CATEGORIES[i % len(FLEET_CATEGORIES)])],
        )
        for i in range(n_requests)
    ]
    fleet_pois = generate_pois(
        REGION, {c: 20 for c in FLEET_CATEGORIES}, seed=153
    )
    fleet_config = GatewayConfig(
        rtt=RTT, max_batch=8, max_wait=0.002, pool_size=2
    )
    fleet_oracle = [
        CSP(REGION, K, db, LBSProvider(fleet_pois)).request(uid, payload)
        for uid, payload in fleet_workload
    ]
    worker_counts = (1, 2) if scale.name == "quick" else (1, 2, 4)
    fleet_rows = []
    for n_workers in worker_counts:
        results, fstats = run_fleet(
            REGION,
            K,
            db,
            LBSProvider(fleet_pois),
            fleet_workload,
            FleetConfig(
                n_workers=n_workers, mode="simulated", gateway=fleet_config
            ),
        )
        fleet_mism = sum(
            1
            for served, want in zip(results, fleet_oracle)
            if served.anonymized.cloak != want.anonymized.cloak
        )
        wall = fstats.wall_seconds
        totals = fstats.totals
        table.add(
            path=f"fleet ({n_workers} worker(s), idealized)",
            requests=n_requests,
            seconds=round(wall, 4),
            req_per_s=round(n_requests / wall, 1),
            provider_queries=totals.provider_queries,
            provider_rounds=totals.provider_rounds,
            queries_per_request=round(
                totals.provider_queries / n_requests, 4
            ),
            cloak_mismatches=fleet_mism,
        )
        fleet_rows.append(
            {"workers": n_workers, "wall": wall, "mismatches": fleet_mism}
        )

    # End-to-end plumbing row: real processes, real elapsed time
    # (informational — a 1-core host cannot show true scaling here).
    results, pstats = run_fleet(
        REGION,
        K,
        db,
        LBSProvider(fleet_pois),
        fleet_workload,
        FleetConfig(n_workers=2, mode="process", gateway=fleet_config),
    )
    process_mism = sum(
        1
        for served, want in zip(results, fleet_oracle)
        if served.anonymized.cloak != want.anonymized.cloak
    )
    process_wall = pstats.dispatch_wall_seconds
    table.add(
        path="fleet (2 workers, process)",
        requests=n_requests,
        seconds=round(process_wall, 4),
        req_per_s=round(n_requests / process_wall, 1),
        provider_queries=pstats.totals.provider_queries,
        provider_rounds=pstats.totals.provider_rounds,
        queries_per_request=round(
            pstats.totals.provider_queries / n_requests, 4
        ),
        cloak_mismatches=process_mism,
    )
    fleet_rows.append(
        {"workers": 2, "wall": process_wall, "mismatches": process_mism}
    )

    return (
        table,
        sync_seconds,
        async_seconds,
        stats,
        mismatches,
        fleet_rows,
    )


def test_gateway_throughput(benchmark, record_table, profile):
    table, sync_s, async_s, stats, mismatches, fleet_rows = run_once(
        benchmark, _run_gateway, profile
    )
    record_table("gateway", table)

    n_requests = table.rows[0]["requests"]
    assert stats.served == n_requests
    assert stats.errors == stats.shed == stats.throttled == 0

    # The anonymity invariant is absolute: concurrency may never change
    # a cloak — not in the single gateway, not in any fleet worker.
    assert mismatches == 0
    assert all(row["mismatches"] == 0 for row in fleet_rows)

    # Coalescing amortizes provider traffic below one query/request.
    assert stats.queries_per_request < 1.0
    assert stats.provider_rounds < stats.provider_queries

    # ≥ 3× the sync throughput at equal RTT.
    speedup = sync_s / async_s
    assert speedup >= 3.0, f"async speedup {speedup:.2f}x < 3x"

    # Fleet scaling (idealized accounting, vs the 1-worker fleet):
    # ≥ 1.7× at 2 workers, ≥ 3× at 4.
    walls = {
        row["workers"]: row["wall"] for row in fleet_rows[:-1]
    }  # last row is the process-mode plumbing row
    fleet_speedup_2 = walls[1] / walls[2]
    assert fleet_speedup_2 >= 1.7, f"2-worker fleet {fleet_speedup_2:.2f}x"
    if 4 in walls:
        fleet_speedup_4 = walls[1] / walls[4]
        assert (
            fleet_speedup_4 >= 3.0
        ), f"4-worker fleet {fleet_speedup_4:.2f}x"


# ---------------------------------------------------------------------------
# Live policy churn: blackout twin vs epoch-pinned swap (DESIGN §12)
# ---------------------------------------------------------------------------


def _run_gateway_churn(scale):
    params = CHURN_SCALES.get(scale.name, CHURN_SCALES["default"])
    table = Table(
        "Live churn — serving latency while a repairer thread ingests "
        f"{100 * MOVE_FRACTION:g}% movement and swaps epochs",
        [
            "path",
            "requests",
            "p50_ms",
            "p99_ms",
            "max_ms",
            "epochs_promoted",
            "bit_identical",
        ],
    )
    for double_buffered in (False, True):
        row = live_churn_run(double_buffered, params, seed=7)
        table.add(
            path=(
                "epoch swap"
                if double_buffered
                else "blackout twin (world lock)"
            ),
            requests=row["requests"],
            p50_ms=round(row["p50_ms"], 3),
            p99_ms=round(row["p99_ms"], 3),
            max_ms=round(row["max_ms"], 3),
            epochs_promoted=row["epochs_promoted"],
            bit_identical=row["bit_identical"],
        )
    return table


def test_gateway_churn_tail(benchmark, record_table, profile):
    table = run_once(benchmark, _run_gateway_churn, profile)
    record_table("gateway_churn", table)
    rows = {r["path"]: r for r in table.rows}
    blackout = rows["blackout twin (world lock)"]
    swap = rows["epoch swap"]
    # Both paths end on cloaks bit-identical to the from-scratch oracle
    # of their final snapshot — the swap buys latency, never anonymity.
    assert all(r["bit_identical"] for r in table.rows)
    assert swap["epochs_promoted"] >= 1
    # The wall-clock gate: serving pinned to the active epoch never
    # exceeds the blackout twin's p99.
    assert swap["p99_ms"] <= blackout["p99_ms"]
