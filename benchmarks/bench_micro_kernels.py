"""Microbenchmarks of the solver's hot kernels.

Not a paper figure — a performance-regression suite for the pieces the
macro numbers (Figure 4) are built from: min-plus convolution, the
two-stage node step, lazy tree construction, DP solve, policy
extraction, and the per-request cloak lookup.
"""

import numpy as np
import pytest

from repro.core.binary_dp import _min_plus, solve
from repro.core.flat_dp import _min_plus_batch, extract_cloaks, solve_arrays
from repro.core.geometry import Rect
from repro.core.requests import ServiceRequest
from repro.data import uniform_users
from repro.trees import BinaryTree, FlatTree

REGION = Rect(0, 0, 65_536, 65_536)
N = 20_000
K = 50


@pytest.fixture(scope="module")
def workload():
    db = uniform_users(N, REGION, seed=37)
    tree = BinaryTree.build(REGION, db, K)
    solution = solve(tree, K)
    policy = solution.policy()
    return db, tree, solution, policy


@pytest.fixture(scope="module")
def flat_workload(workload):
    __, tree, ___, ____ = workload
    flat = FlatTree.compile(tree, with_payload=True)
    vecs = solve_arrays(flat, K)
    return flat, vecs


def test_kernel_min_plus(benchmark):
    rng = np.random.default_rng(0)
    a = rng.uniform(0, 1e9, 400)
    b = rng.uniform(0, 1e9, 400)
    out = benchmark(_min_plus, a, b)
    assert len(out) == 799
    assert out[0] == pytest.approx(a[0] + b[0])


def test_kernel_min_plus_batch(benchmark):
    rng = np.random.default_rng(0)
    a = rng.uniform(0, 1e9, (64, 400))
    b = rng.uniform(0, 1e9, (64, 400))
    out = benchmark(_min_plus_batch, a, b)
    assert out.shape == (64, 799)
    assert out[0, 0] == pytest.approx(a[0, 0] + b[0, 0])


def test_kernel_tree_build(benchmark, workload):
    db, __, ___, ____ = workload
    tree = benchmark(BinaryTree.build, REGION, db, K)
    assert tree.root.count == N


def test_kernel_flat_compile(benchmark, workload):
    __, tree, ___, ____ = workload
    flat = benchmark(FlatTree.compile, tree, with_payload=True)
    assert flat.count[0] == N


def test_kernel_solve(benchmark, workload):
    __, tree, ___, ____ = workload
    solution = benchmark(solve, tree, K)
    assert solution.optimal_cost > 0


def test_kernel_solve_object(benchmark, workload):
    __, tree, ___, ____ = workload
    solution = benchmark(solve, tree, K, engine="object")
    assert solution.optimal_cost > 0


def test_kernel_flat_solve(benchmark, flat_workload):
    flat, __ = flat_workload
    vecs = benchmark(solve_arrays, flat, K)
    assert vecs[0][0] > 0


def test_kernel_flat_extract(benchmark, flat_workload):
    flat, vecs = flat_workload
    cloaks = benchmark(extract_cloaks, flat, vecs, K)
    assert len(cloaks) == N


def test_kernel_extraction(benchmark, workload):
    __, ___, solution, ____ = workload
    policy = benchmark(solution.policy)
    assert policy.min_group_size() >= K


def test_kernel_cloak_lookup(benchmark, workload):
    db, __, ___, policy = workload
    users = db.user_ids()
    counter = [0]

    def lookup():
        uid = users[counter[0] % len(users)]
        counter[0] += 1
        return policy.cloak_for(uid)

    cloak = benchmark(lookup)
    assert cloak.area > 0


def test_kernel_anonymize_request(benchmark, workload):
    db, __, ___, policy = workload
    uid = db.user_ids()[0]
    request = ServiceRequest(uid, db.location_of(uid), (("poi", "rest"),))
    ar = benchmark(policy.anonymize, request)
    assert ar.cloak.contains(request.location)
