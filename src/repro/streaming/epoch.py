"""Double-buffered epoch serving: repair on the shadow, swap atomically.

The batch pipeline stops the world on every snapshot: `CSP.advance_snapshot`
repairs the live tree in place, and requests arriving mid-repair wait (the
DES blackout rung).  This module retires that blackout.  An
:class:`EpochManager` keeps **two** policy buffers:

* the **active epoch** — an immutable `(serial, policy, db)` triple that
  serving reads; optionally published as a read-only
  :class:`~repro.trees.flat.SharedFlatTree` segment for fleet workers;
* the **shadow** — the single :class:`IncrementalAnonymizer` carrying the
  tree and DP state forward.  Moves stream into a
  :class:`~repro.streaming.ingest.DirtyAccumulator`; each
  :meth:`EpochManager.advance` drains the batch and repairs the shadow via
  ``resolve_dirty`` *while the active epoch keeps serving*.

The swap is atomic and crash-consistent: the repaired policy is journal-
committed (``PolicyJournal``/``QuorumJournal`` swap-intent → swap-commit)
**before** promotion, so a crash mid-swap restores either the old epoch or
the new one — never a torn hybrid.  A quorum-failed commit aborts the
promotion outright: the prior epoch stays active and staleness grows
(fail closed; durability unprovable means the swap did not happen).

In-flight requests are **pinned**: :meth:`EpochManager.pin` hands out the
active epoch with its degradation rung decided at admission, and a retired
epoch's shared segment is unlinked only once its pin count drains to zero.

Bounded staleness drives the degradation ladder.  With the shadow
``age`` swaps behind the world::

    age == 0                          -> fresh      (or recovered)
    age <= max_stale                  -> stale      (exact old-epoch cloaks)
    age <= max_stale + coarsen_grace  -> coarsened  (geometric ancestor cloaks)
    beyond                            -> rejected   (fail closed)

Coarsening never consults the (possibly mid-repair) tree: every cloak of a
tree-derived policy is a node rectangle of the deterministic halving
hierarchy, so its ``levels``-up ancestor is reconstructible from pure
geometry.  Mapping *every* cloak of an epoch uniformly ``levels`` up keeps
k-anonymity: each fine anonymity group (≥ k senders) lands wholesale inside
one ancestor rectangle, so coarse groups are unions of fine groups.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from ..core.anonymizer import IncrementalAnonymizer, PolicyAwareAnonymizer
from ..core.errors import (
    RecoveryError,
    ReproError,
    ServiceUnavailableError,
    TreeError,
)
from ..core.geometry import Point, Rect
from ..core.policy import CloakingPolicy
from ..lbs.locationdb import LocationDatabase
from ..robustness.degrade import DegradationEvent
from ..robustness.faults import FaultInjector, InjectedFault
from ..robustness.recovery import (
    PolicyJournal,
    QuorumJournal,
    RecoveredSnapshot,
    rehydrate_flat_solution,
)
from ..trees.flat import FlatTree, SharedFlatTree
from .ingest import DirtyAccumulator, Moves

if TYPE_CHECKING:  # runtime import would cycle: trajectory imports epoch
    from ..trajectory.constraint import ContinuityConstraint

Journal = Union[PolicyJournal, QuorumJournal]

_EPS = 1e-9


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= _EPS * max(1.0, abs(a), abs(b))


def _same_rect(a: Rect, b: Rect) -> bool:
    return (
        _close(a.x1, b.x1)
        and _close(a.y1, b.y1)
        and _close(a.x2, b.x2)
        and _close(a.y2, b.y2)
    )


def _rect_is_semi(rect: Rect) -> bool:
    """Square vs 1:2 semi-quadrant, the only two shapes in the hierarchy."""
    long_side = max(rect.width, rect.height)
    short_side = min(rect.width, rect.height)
    if _close(long_side, short_side):
        return False
    if _close(long_side, 2.0 * short_side):
        return True
    raise TreeError(
        f"rect {rect} is neither a square nor a 1:2 semi-quadrant; "
        "not a node of the halving hierarchy"
    )


def halving_chain(region: Rect, orientation: str, cloak: Rect) -> List[Rect]:
    """The unique region→cloak descent of the deterministic hierarchy.

    Mirrors ``BinaryTree`` splitting exactly: a semi-quadrant is cut
    across its long axis (yielding two squares); a square is cut per the
    tree-level ``orientation`` (yielding two semis).  Purely geometric —
    no tree is consulted, so it works while the shadow is mid-repair.
    """
    chain = [region]
    current = region
    target = cloak.center
    for __ in range(64):
        if _same_rect(current, cloak):
            return chain
        if current.area < cloak.area * (1.0 - _EPS):
            break
        if _rect_is_semi(current):
            halves = (
                current.halves_horizontal()
                if current.height > current.width
                else current.halves_vertical()
            )
        elif orientation == "vertical":
            halves = current.halves_vertical()
        else:
            halves = current.halves_horizontal()
        # A strict descendant's center is interior to exactly one half
        # (a center on the cut line would force a degenerate rect).
        current = halves[1] if halves[1].contains(target) else halves[0]
        chain.append(current)
    raise TreeError(
        f"cloak {cloak} is not a node rectangle under region {region}"
    )


def ancestor_cloak(
    region: Rect, orientation: str, cloak: Rect, levels: int
) -> Rect:
    """The hierarchy ancestor ``levels`` above ``cloak`` (clamped at root)."""
    chain = halving_chain(region, orientation, cloak)
    return chain[max(0, len(chain) - 1 - max(0, levels))]


class Epoch:
    """One immutable published policy buffer.

    The policy object is extracted fresh at promotion, so later in-place
    shadow repairs (``FlatTree.refresh`` patches count arrays) can never
    reach it; ``shared`` (when published) is a byte copy in shared
    memory that workers map read-only.
    """

    __slots__ = ("serial", "policy", "db", "origin", "shared", "pins",
                 "retired")

    def __init__(
        self,
        serial: int,
        policy: CloakingPolicy,
        db: LocationDatabase,
        origin: str = "swap",
        shared: Optional[SharedFlatTree] = None,
    ) -> None:
        self.serial = serial
        self.policy = policy
        self.db = db
        #: "fit" | "swap" | "restore" — restore-born epochs serve the
        #: "recovered" rung until the first successful swap.
        self.origin = origin
        self.shared = shared
        self.pins = 0
        self.retired = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Epoch(serial={self.serial}, pins={self.pins}, "
            f"retired={self.retired}, shared={self.shared is not None})"
        )


class EpochPin:
    """A request's admission ticket: epoch + rung, fixed at admission.

    Context manager; while held, the epoch's shared segment cannot be
    unlinked even if a swap retires the epoch mid-flight — the request
    completes with the exact cloaks it was admitted under.
    """

    __slots__ = ("_manager", "epoch", "rung", "levels", "_released")

    def __init__(
        self, manager: "EpochManager", epoch: Epoch, rung: str, levels: int
    ) -> None:
        self._manager = manager
        self.epoch = epoch
        self.rung = rung
        self.levels = levels
        self._released = False

    def __enter__(self) -> "EpochPin":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._manager._release(self.epoch)


@dataclass(frozen=True)
class SwapReport:
    """What one :meth:`EpochManager.advance` tick did."""

    #: the world serial this tick targeted.
    serial: int
    #: True when the shadow was promoted to active.
    promoted: bool
    #: True when the journal durably holds the promoted state (False on
    #: a single-journal media error — promoted but durability-degraded).
    committed: bool
    #: active-epoch staleness after the tick (0 after a clean swap).
    staleness: int
    moved_users: int = 0
    dirty_nodes: int = 0
    recomputed_nodes: int = 0
    total_nodes: int = 0
    repair_seconds: float = 0.0
    #: why the swap did not promote ("" when it did).
    reason: str = ""


class EpochManager:
    """Continuous-churn serving: ingest → shadow repair → atomic swap."""

    def __init__(
        self,
        region: Rect,
        k: int,
        db: Optional[LocationDatabase] = None,
        *,
        max_depth: int = 40,
        prune: bool = True,
        engine: str = "flat",
        journal: Optional[Journal] = None,
        max_stale_snapshots: int = 1,
        coarsen_grace: int = 1,
        publish_shared: bool = False,
        injector: Optional[FaultInjector] = None,
        swap_chaos: Optional[Callable[[str], None]] = None,
        trajectory: Optional["ContinuityConstraint"] = None,
        _recovered: Optional[RecoveredSnapshot] = None,
    ) -> None:
        self.region = region
        self.k = k
        self.journal = journal
        #: optional trajectory-continuity solver.  It lives at *manager*
        #: level, not epoch level: the ledger must survive every
        #: :meth:`advance` swap — the linking attacker's knowledge does.
        self.trajectory = trajectory
        self.max_stale_snapshots = max_stale_snapshots
        self.coarsen_grace = coarsen_grace
        self.publish_shared = publish_shared
        self.injector = injector
        #: chaos hook forwarded to ``PolicyJournal.commit`` — fires at
        #: the "intent" / "snapshot" phases of the swap commit so tests
        #: can SIGKILL the repairer between swap-intent and swap-commit.
        self.swap_chaos = swap_chaos
        self.accumulator = DirtyAccumulator()
        self.events: List[DegradationEvent] = []
        self.swaps: List[SwapReport] = []
        self._lock = threading.Lock()  # guards active/pins/world_serial
        self._swap_lock = threading.Lock()  # serializes advance()
        self._lingering: List[Epoch] = []  # guarded-by: self._lock
        self._coarse: Dict[Tuple[int, int], Dict[Rect, Rect]] = {}  # guarded-by: self._lock
        self._shadow = IncrementalAnonymizer(
            region, k, max_depth=max_depth, prune=prune, engine=engine
        )
        self._active: Optional[Epoch] = None  # guarded-by: self._lock
        if _recovered is not None:
            self._shadow.restore(
                _recovered.policy.db, _recovered.policy, solution=None
            )
            self._shadow.solution = rehydrate_flat_solution(
                self._shadow.tree, _recovered, k, prune=prune
            )
            self._world_serial = _recovered.serial + _recovered.policy_age  # guarded-by: self._lock
            if (
                self.trajectory is not None
                and _recovered.trajectory is not None
            ):
                self.trajectory.ledger.adopt_state(_recovered.trajectory)
            self._install(
                _recovered.serial, _recovered.policy, origin="restore"
            )
            self.events.append(
                DegradationEvent(
                    level="recovered",
                    reason="restart",
                    detail=(
                        f"serial {_recovered.serial}, "
                        f"age {_recovered.policy_age}, "
                        f"dp={'warm' if self._shadow.solution else 'cold'}"
                    ),
                )
            )
        else:
            if db is None:
                raise ReproError("EpochManager needs a db (or _recovered)")
            self._shadow.fit(db)
            self._world_serial = 0  # guarded-by: self._lock
            policy = self._shadow.policy
            if self._commit(policy, 0, self._shadow.solution) is None:
                raise RecoveryError(
                    "initial epoch could not reach a commit quorum; "
                    "refusing to serve state that was never durable",
                    reason="quorum",
                )
            self._install(0, policy, origin="fit")

    # -- epoch bookkeeping -----------------------------------------------------

    @property
    def active(self) -> Epoch:
        with self._lock:
            assert self._active is not None
            return self._active

    @property
    def world_serial(self) -> int:
        with self._lock:
            return self._world_serial

    @property
    def staleness(self) -> int:
        """How many swaps the active epoch is behind the world."""
        with self._lock:
            assert self._active is not None
            return self._world_serial - self._active.serial

    @property
    def orientation(self) -> str:
        return getattr(self._shadow.tree, "orientation", "vertical")

    def _ladder(self, age: int, epoch: Epoch) -> Tuple[str, int]:
        """(rung, coarsen-levels) for an epoch ``age`` swaps behind."""
        if age <= 0:
            return ("recovered" if epoch.origin == "restore" else "fresh", 0)
        if age <= self.max_stale_snapshots:
            return ("stale", 0)
        levels = age - self.max_stale_snapshots
        if levels <= self.coarsen_grace:
            return ("coarsened", levels)
        return ("rejected", 0)

    def pin(self) -> EpochPin:
        """Admit one request: pin the active epoch, fix its rung.

        Raises :class:`ServiceUnavailableError` (fail closed) when the
        ladder is exhausted — never serves a cloak it cannot tie to a
        k-anonymous policy for some journalled epoch.
        """
        with self._lock:
            epoch = self._active
            assert epoch is not None
            age = self._world_serial - epoch.serial
            rung, levels = self._ladder(age, epoch)
            if rung == "rejected":
                raise ServiceUnavailableError(
                    f"active epoch is {age} swaps stale (bound "
                    f"{self.max_stale_snapshots} + grace "
                    f"{self.coarsen_grace}); rejecting fail-closed",
                    reason="stale",
                )
            epoch.pins += 1
        return EpochPin(self, epoch, rung, levels)

    def _release(self, epoch: Epoch) -> None:
        with self._lock:
            epoch.pins -= 1
            self._reap_locked(epoch)

    def _reap_locked(self, epoch: Epoch) -> None:
        """Unlink a retired epoch's segment once fully drained."""
        if not epoch.retired or epoch.pins > 0:
            return
        if epoch in self._lingering:
            self._lingering.remove(epoch)
        self._coarse = {
            key: table
            for key, table in self._coarse.items()
            if key[0] != epoch.serial
        }
        if epoch.shared is not None:
            try:
                epoch.shared.unlink()
            finally:
                epoch.shared.close()
            epoch.shared = None

    def _install(
        self, serial: int, policy: CloakingPolicy, origin: str
    ) -> Epoch:
        shared: Optional[SharedFlatTree] = None
        if self.publish_shared:
            flat = FlatTree.compile(self._shadow.tree, with_payload=True)
            shared = SharedFlatTree.publish(flat)
        epoch = Epoch(serial, policy, self._shadow.current_db, origin, shared)
        with self._lock:
            old, self._active = self._active, epoch
            if old is not None:
                old.retired = True
                if old.pins > 0:
                    self._lingering.append(old)
                else:
                    self._reap_locked(old)
        return epoch

    # -- serving ---------------------------------------------------------------

    def serve_cloak(
        self, user_id: str, pin: Optional[EpochPin] = None
    ) -> Tuple[Rect, str]:
        """The epoch-pinned cloak for one user, plus the serving rung.

        With ``pin`` (the normal path) both the epoch and the rung were
        fixed at admission — a swap landing mid-flight changes nothing
        for this request.  Without one, a transient pin is taken.
        """
        if pin is None:
            with self.pin() as transient:
                return self.serve_cloak(user_id, transient)
        epoch, rung = pin.epoch, pin.rung
        cloak = epoch.policy.cloak_for(str(user_id))
        if rung == "coarsened":
            if not isinstance(cloak, Rect):
                raise ServiceUnavailableError(
                    "coarsening needs rectangular cloaks", reason="coarsen"
                )
            cloak = self._coarse_cloak(epoch, cloak, pin.levels)
        if self.trajectory is None:
            return cloak, rung
        return self._continuity_cloak(epoch, str(user_id), cloak, rung)

    def _continuity_cloak(
        self, epoch: Epoch, user_id: str, cloak: Rect, rung: str
    ) -> Tuple[Rect, str]:
        """Run the trajectory-continuity solver over the would-be cloak.

        The solver only ever *widens* (or rejects fail-closed), so the
        staleness ladder's k-safety is preserved; a widening demotes a
        fresh/stale serve to the "coarsened" rung for accounting.
        """
        assert self.trajectory is not None
        try:
            decision = self.trajectory.enforce(
                epoch.policy,
                user_id,
                region=self.region,
                orientation=self.orientation,
                cloak=cloak,
                serial=epoch.serial,
            )
        except ServiceUnavailableError as exc:
            self.events.append(
                DegradationEvent(
                    level="rejected", reason="trajectory", detail=str(exc)
                )
            )
            raise
        if decision.widened and decision.cloak != cloak:
            self.events.append(
                DegradationEvent(
                    level="coarsened",
                    reason="trajectory",
                    detail=(
                        f"user {user_id!r} widened {decision.levels} "
                        f"level(s), surviving {decision.surviving} "
                        f"≥ k={self.k}"
                    ),
                )
            )
            if rung in ("fresh", "recovered", "stale"):
                rung = "coarsened"
        return decision.cloak, rung

    def _coarse_cloak(self, epoch: Epoch, cloak: Rect, levels: int) -> Rect:
        # The memo table races with _reap_locked's rebind on the swap
        # thread, so the lookup/insert rides the serving lock; the
        # ancestor walk itself is a short deterministic tree descent.
        key = (epoch.serial, levels)
        with self._lock:
            table = self._coarse.get(key)
            if table is None:
                table = {}
                self._coarse[key] = table
            ancestor = table.get(cloak)
        if ancestor is None:
            try:
                ancestor = ancestor_cloak(
                    self.region, self.orientation, cloak, levels
                )
            except TreeError as exc:
                raise ServiceUnavailableError(
                    f"cannot coarsen cloak {cloak}: {exc}", reason="coarsen"
                ) from exc
            with self._lock:
                table[cloak] = ancestor
        return ancestor

    def oracle_policy(self, epoch: Optional[Epoch] = None) -> CloakingPolicy:
        """A from-scratch bulk solve of an epoch's exact db — the policy
        the epoch's served cloaks must be bit-identical to (test oracle).
        """
        target = epoch or self.active
        oracle = PolicyAwareAnonymizer(
            self.region,
            self.k,
            max_depth=self._shadow.max_depth,
            prune=self._shadow.prune,
            engine=self._shadow.engine,
        )
        oracle.fit(target.db)
        return oracle.policy

    # -- ingest + swap ---------------------------------------------------------

    def ingest(self, moves: Moves) -> int:
        """Stream moves in; they take effect at the next :meth:`advance`."""
        return self.accumulator.extend(moves)

    def advance(self, moves: Optional[Moves] = None) -> SwapReport:
        """One churn tick: drain the batch, repair the shadow, swap.

        The active epoch serves throughout; only the final pointer flip
        takes the serving lock.  Every failure mode leaves the prior
        epoch intact and staleness grown:

        * injected/raised repair fault → batch restored to the
          accumulator (no movement lost), no promote;
        * quorum-failed journal commit → repair kept on the shadow but
          **no promote** (durability unprovable ⇒ the swap did not
          happen); the next tick re-commits and promotes;
        * single-journal ``OSError`` → promote *with* a degradation
          event (durability degraded ≠ privacy degraded).
        """
        with self._swap_lock:
            if moves is not None:
                self.accumulator.extend(moves)
            with self._lock:
                self._world_serial += 1
                serial = self._world_serial
            batch = self.accumulator.drain()
            started = time.perf_counter()
            if self.injector is not None:
                try:
                    self.injector.fire("repair", serial)
                except InjectedFault as exc:
                    return self._swap_failed(serial, batch, "repair", exc)
            try:
                report = self._shadow.update(batch)
            except TreeError as exc:
                return self._swap_failed(serial, batch, "repair-error", exc)
            repair_seconds = time.perf_counter() - started
            policy = self._shadow.policy
            committed = self._commit(policy, serial, self._shadow.solution)
            if committed is None:
                # Quorum lost between swap-intent and swap-commit: the
                # swap is void.  The shadow keeps the repair (it will
                # re-commit next tick); serving stays on the old epoch.
                swap = SwapReport(
                    serial=serial,
                    promoted=False,
                    committed=False,
                    staleness=self.staleness,
                    moved_users=report.moved_users,
                    dirty_nodes=report.dirty_nodes,
                    recomputed_nodes=report.recomputed_nodes,
                    total_nodes=report.total_nodes,
                    repair_seconds=repair_seconds,
                    reason="journal-quorum",
                )
                self.swaps.append(swap)
                return swap
            self._install(serial, policy, origin="swap")
            swap = SwapReport(
                serial=serial,
                promoted=True,
                committed=committed,
                staleness=0,
                moved_users=report.moved_users,
                dirty_nodes=report.dirty_nodes,
                recomputed_nodes=report.recomputed_nodes,
                total_nodes=report.total_nodes,
                repair_seconds=repair_seconds,
            )
            self.swaps.append(swap)
            return swap

    def _swap_failed(
        self, serial: int, batch: Mapping[str, Point], reason: str,
        exc: Exception,
    ) -> SwapReport:
        self.accumulator.restore(batch)
        staleness = self.staleness
        rung, __ = self._ladder(staleness, self.active)
        self.events.append(
            DegradationEvent(level=rung, reason=reason, detail=str(exc))
        )
        # Make the grown staleness durable: re-commit the *active*
        # policy at its own serial with the new age, so a crash-restart
        # cannot restore believing the old policy is fresh.  DP sidecar
        # is withheld — the shadow's may already be ahead of the active
        # policy after a voided swap, and a cold restore is the safe
        # default in a degraded window.
        self._commit(
            self.active.policy,
            self.active.serial,
            None,
            policy_age=staleness,
            rung=rung,
        )
        swap = SwapReport(
            serial=serial,
            promoted=False,
            committed=False,
            staleness=staleness,
            repair_seconds=0.0,
            reason=reason,
        )
        self.swaps.append(swap)
        return swap

    def _fingerprint(self) -> Dict[str, object]:
        """Adoptability key — matches ``CSP._fingerprint`` field-for-field
        so epoch journals and pipeline journals are interchangeable."""
        return {
            "engine": self._shadow.engine,
            "k": self.k,
            "max_depth": self._shadow.max_depth,
            "prune": self._shadow.prune,
            "region": list(self.region.as_tuple()),
        }

    def _commit(
        self,
        policy: CloakingPolicy,
        serial: int,
        solution: object,
        policy_age: int = 0,
        rung: str = "fresh",
    ) -> Optional[bool]:
        """Journal one epoch.  True = durable, False = degraded-but-
        promotable (single-journal media error), None = void (quorum
        lost; the caller must not promote)."""
        if self.journal is None:
            return True
        state: Dict[str, object] = {"policy_age": policy_age, "rung": rung}
        if self.trajectory is not None:
            # Ledger records land between commits; records made after
            # the last swap-commit die with a crash (bounded exposure —
            # the restored intersection is a superset, never sub-k).
            state["trajectory"] = self.trajectory.ledger.to_state()
        try:
            if isinstance(self.journal, QuorumJournal):
                self.journal.commit(
                    policy,
                    serial,
                    self._fingerprint(),
                    solution=solution,
                    state=state,
                )
            else:
                self.journal.commit(
                    policy,
                    serial,
                    self._fingerprint(),
                    solution=solution,
                    state=state,
                    _chaos=self.swap_chaos,
                )
        except RecoveryError as exc:
            self.events.append(
                DegradationEvent(
                    level="journal", reason="swap-abort", detail=str(exc)
                )
            )
            return None
        except OSError as exc:
            self.events.append(
                DegradationEvent(
                    level="journal", reason="commit-failed", detail=str(exc)
                )
            )
            return False
        return True

    # -- recovery --------------------------------------------------------------

    @classmethod
    def restore(
        cls,
        journal: Journal,
        *,
        current_serial: Optional[int] = None,
        max_stale_snapshots: int = 1,
        coarsen_grace: int = 1,
        publish_shared: bool = False,
        injector: Optional[FaultInjector] = None,
        swap_chaos: Optional[Callable[[str], None]] = None,
        trajectory: Optional["ContinuityConstraint"] = None,
    ) -> "EpochManager":
        """Rebuild the serving layer from its journal after a crash.

        Staleness survives the restart: the journalled ``policy_age``
        (and ``current_serial``, when the world's clock is known) seeds
        the world serial, so a manager that died on the stale rung comes
        back on the stale rung — the recovery bound allows the full
        ladder (stale + coarsen grace) before failing closed.
        """
        snapshot = journal.recover(
            current_serial=current_serial,
            max_stale_snapshots=max_stale_snapshots + coarsen_grace,
        )
        fp = snapshot.fingerprint
        region_values = fp.get("region")
        if not isinstance(region_values, (list, tuple)):
            raise RecoveryError(
                "journal fingerprint lacks a region", reason="fingerprint"
            )
        manager = cls(
            Rect(*[float(v) for v in region_values]),
            int(fp["k"]),  # type: ignore[arg-type]
            None,
            max_depth=int(fp.get("max_depth", 40)),  # type: ignore[arg-type]
            prune=bool(fp.get("prune", True)),
            engine=str(fp.get("engine", "flat")),
            journal=journal,
            max_stale_snapshots=max_stale_snapshots,
            coarsen_grace=coarsen_grace,
            publish_shared=publish_shared,
            injector=injector,
            swap_chaos=swap_chaos,
            trajectory=trajectory,
            _recovered=snapshot,
        )
        if current_serial is not None:
            # analysis: ok[CC001] manager is thread-private until returned
            manager._world_serial = max(manager._world_serial, current_serial)
        return manager

    # -- lifecycle -------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        ingest = self.accumulator.stats()
        with self._lock:
            active = self._active
            assert active is not None
            return {
                "world_serial": self._world_serial,
                "active_serial": active.serial,
                "staleness": self._world_serial - active.serial,
                "active_pins": active.pins,
                "lingering_epochs": len(self._lingering),
                "pending_moves": ingest["pending"],
                "ingested": ingest["ingested"],
                "coalesced": ingest["coalesced"],
                "swaps": len(self.swaps),
                "promoted": sum(1 for s in self.swaps if s.promoted),
            }

    def close(self) -> None:
        """Shutdown: unlink every segment regardless of pins."""
        with self._lock:
            epochs = list(self._lingering)
            if self._active is not None:
                epochs.append(self._active)
            self._lingering.clear()
            for epoch in epochs:
                if epoch.shared is not None:
                    try:
                        epoch.shared.unlink()
                    finally:
                        epoch.shared.close()
                    epoch.shared = None

    def __enter__(self) -> "EpochManager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
