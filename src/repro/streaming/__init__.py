"""Continuous-churn serving: double-buffered epochs over streaming moves.

The streaming layer retires the stop-the-world snapshot repair: moves
stream into a :class:`~repro.streaming.ingest.DirtyAccumulator`, repair
runs on a shadow anonymizer while the active epoch keeps serving, and a
journal-committed atomic swap promotes the shadow
(:class:`~repro.streaming.epoch.EpochManager`).  In-flight requests pin
their epoch; bounded staleness degrades stale → coarsened → fail-closed
reject, never serving a cloak untied to a journalled k-anonymous policy.
"""

from .epoch import (
    Epoch,
    EpochManager,
    EpochPin,
    SwapReport,
    ancestor_cloak,
    halving_chain,
)
from .ingest import DirtyAccumulator

__all__ = [
    "DirtyAccumulator",
    "Epoch",
    "EpochManager",
    "EpochPin",
    "SwapReport",
    "ancestor_cloak",
    "halving_chain",
]
