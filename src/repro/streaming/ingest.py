"""Delta-batched move ingest between epoch swaps.

The accumulator is the write side of the double-buffered serving layer:
location updates stream in continuously (from the MPC feed, the DES, or
a fleet dispatcher) and are coalesced per user — only the *latest*
position matters for the next repair, so N moves by one user between
two swaps cost exactly one dirty leaf.  :meth:`DirtyAccumulator.drain`
hands the batch to the shadow repair atomically; if that repair fails
(injected fault, tree error) :meth:`DirtyAccumulator.restore` puts the
batch back without clobbering anything newer that arrived meanwhile, so
no movement is ever silently dropped while staleness grows.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Mapping, Tuple, Union

from ..core.geometry import Point

MoveBatch = Dict[str, Point]
Moves = Union[Mapping[str, Point], Iterable[Tuple[str, Point]]]


class DirtyAccumulator:
    """Thread-safe last-write-wins accumulation of user moves.

    Thread safety matters here and (deliberately) nowhere else in the
    epoch layer's hot path: ingest happens on the serving thread(s)
    while :meth:`drain` happens on the repair thread, and the lock is
    held only for dict operations — never across a repair.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._moves: MoveBatch = {}  # guarded-by: self._lock
        #: total moves ever offered (including coalesced overwrites).
        #: The counters ride the same lock as ``_moves``; external
        #: readers take a consistent snapshot via :meth:`stats`.
        self.ingested = 0
        #: moves that overwrote a pending move for the same user — the
        #: work delta-batching saved the repair.
        self.coalesced = 0
        #: how many times a batch was drained for a repair.
        self.batches = 0

    def add(self, user_id: str, point: Point) -> None:
        """Record one move; a later move by the same user supersedes it."""
        with self._lock:
            if user_id in self._moves:
                self.coalesced += 1
            self._moves[str(user_id)] = point
            self.ingested += 1

    def extend(self, moves: Moves) -> int:
        """Record a batch of moves; returns how many were offered."""
        items = moves.items() if isinstance(moves, Mapping) else moves
        count = 0
        with self._lock:
            for user_id, point in items:
                if user_id in self._moves:
                    self.coalesced += 1
                self._moves[str(user_id)] = point
                count += 1
            self.ingested += count
        return count

    def drain(self) -> MoveBatch:
        """Atomically take the pending batch, leaving the accumulator empty."""
        with self._lock:
            batch, self._moves = self._moves, {}
            self.batches += 1
        return batch

    def restore(self, batch: Mapping[str, Point]) -> None:
        """Put a drained batch back after a failed repair.

        Moves ingested *after* the drain are newer than anything in the
        failed batch, so on collision the already-pending move wins.
        """
        with self._lock:
            merged = dict(batch)
            merged.update(self._moves)
            self._moves = merged

    @property
    def pending(self) -> int:
        """Distinct users with an unrepaired move."""
        with self._lock:
            return len(self._moves)

    def stats(self) -> Dict[str, int]:
        """A consistent snapshot of the ingest counters."""
        with self._lock:
            return {
                "ingested": self.ingested,
                "coalesced": self.coalesced,
                "batches": self.batches,
                "pending": len(self._moves),
            }

    def __len__(self) -> int:
        return self.pending
