"""Persistence for location snapshots and cloaking policies.

A CSP computes a policy per location-database snapshot and serves
requests from it for the snapshot's lifetime; operationally that means
policies are shipped between the bulk-anonymization tier and the
request-serving tier.  This module provides a stable JSON format for
policies (rectangular and circular cloaks) and a CSV format for
location databases (the relation of §II-A), with full round-trip
fidelity — masking validation re-runs on load, so a corrupted file
cannot smuggle in a non-masking policy.
"""

from __future__ import annotations

import csv
import hashlib
import io
import json
import os
import tempfile
from typing import Dict, TextIO, Union

from .errors import ReproError
from .geometry import Circle, Point, Rect
from .locationdb import LocationDatabase
from .policy import CloakingPolicy

__all__ = [
    "policy_to_dict",
    "policy_from_dict",
    "save_policy",
    "load_policy",
    "write_locations_csv",
    "read_locations_csv",
    "canonical_dumps",
    "checksum_of",
    "file_checksum",
    "atomic_write_json",
    "atomic_write_bytes",
]

_FORMAT = "repro-policy"
_VERSION = 1


def _region_to_dict(region: Union[Rect, Circle]) -> Dict[str, object]:
    if isinstance(region, Rect):
        return {
            "type": "rect",
            "x1": region.x1,
            "y1": region.y1,
            "x2": region.x2,
            "y2": region.y2,
        }
    if isinstance(region, Circle):
        return {
            "type": "circle",
            "cx": region.center.x,
            "cy": region.center.y,
            "r": region.radius,
        }
    raise ReproError(f"unsupported cloak type: {type(region).__name__}")


def _region_from_dict(data: Dict[str, object]) -> Union[Rect, Circle]:
    kind = data.get("type")
    if kind == "rect":
        return Rect(
            float(data["x1"]), float(data["y1"]),
            float(data["x2"]), float(data["y2"]),
        )
    if kind == "circle":
        return Circle(
            Point(float(data["cx"]), float(data["cy"])), float(data["r"])
        )
    raise ReproError(f"unknown cloak type in policy file: {kind!r}")


def policy_to_dict(policy: CloakingPolicy) -> Dict[str, object]:
    """The JSON-ready representation of a policy and its snapshot."""
    users = []
    for user_id, region in policy.items():
        location = policy.db.location_of(user_id)
        users.append(
            {
                "id": user_id,
                "x": location.x,
                "y": location.y,
                "cloak": _region_to_dict(region),
            }
        )
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "name": policy.name,
        "users": users,
    }


def policy_from_dict(data: Dict[str, object]) -> CloakingPolicy:
    """Rebuild a policy (masking-validated) from its representation."""
    if data.get("format") != _FORMAT:
        raise ReproError(
            f"not a {_FORMAT} document (format={data.get('format')!r})"
        )
    if int(data.get("version", -1)) != _VERSION:
        raise ReproError(
            f"unsupported policy file version {data.get('version')!r}"
        )
    rows = [(u["id"], float(u["x"]), float(u["y"])) for u in data["users"]]
    db = LocationDatabase(rows)
    cloaks = {
        u["id"]: _region_from_dict(u["cloak"]) for u in data["users"]
    }
    return CloakingPolicy(cloaks, db, name=str(data.get("name", "loaded")))


def save_policy(policy: CloakingPolicy, path: str) -> None:
    """Write a policy (with its snapshot) to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(policy_to_dict(policy), handle, indent=1)


def load_policy(path: str) -> CloakingPolicy:
    """Read a policy back; masking is re-validated on load."""
    with open(path, "r", encoding="utf-8") as handle:
        return policy_from_dict(json.load(handle))


# -- durable, checksummed writes (the recovery substrate) ----------------------


def canonical_dumps(data) -> str:
    """Deterministic JSON encoding: sorted keys, fixed separators.

    Checksums are computed over this form, so two processes serializing
    the same logical document always agree on the digest.
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def checksum_of(data) -> str:
    """Content checksum of a JSON-ready document (hex blake2b-128)."""
    return hashlib.blake2b(
        canonical_dumps(data).encode("utf-8"), digest_size=16
    ).hexdigest()


def file_checksum(path: str) -> str:
    """Checksum of a file's raw bytes (hex blake2b-128)."""
    digest = hashlib.blake2b(digest_size=16)
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def atomic_write_bytes(path: str, payload: bytes) -> None:
    """Write ``payload`` to ``path`` crash-consistently.

    The bytes land in a temporary file in the same directory, are
    fsync'd, and only then renamed over ``path`` — a reader (or a
    restarted process) sees either the complete old file or the complete
    new one, never a torn intermediate.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    # Make the rename itself durable (directory entry).
    dir_fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    except OSError:
        pass  # not all filesystems support directory fsync
    finally:
        os.close(dir_fd)


def atomic_write_json(path: str, data) -> str:
    """Atomically persist a JSON document; returns its content checksum."""
    digest = checksum_of(data)
    atomic_write_bytes(path, canonical_dumps(data).encode("utf-8"))
    return digest


def write_locations_csv(db: LocationDatabase, target: Union[str, TextIO]) -> None:
    """Write the location relation as ``userid,locx,locy`` CSV."""
    own = isinstance(target, str)
    handle = open(target, "w", newline="", encoding="utf-8") if own else target
    try:
        writer = csv.writer(handle)
        writer.writerow(["userid", "locx", "locy"])
        for row in db.rows():
            writer.writerow(row)
    finally:
        if own:
            handle.close()


def read_locations_csv(source: Union[str, TextIO]) -> LocationDatabase:
    """Read a ``userid,locx,locy`` CSV into a location database."""
    own = isinstance(source, str)
    handle = open(source, "r", newline="", encoding="utf-8") if own else source
    try:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or [h.strip().lower() for h in header] != [
            "userid",
            "locx",
            "locy",
        ]:
            raise ReproError(
                "location CSV must start with header 'userid,locx,locy'"
            )
        rows = []
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 3:
                raise ReproError(f"malformed CSV row at line {line_no}: {row!r}")
            try:
                rows.append((row[0], float(row[1]), float(row[2])))
            except ValueError as exc:
                raise ReproError(
                    f"non-numeric coordinate at line {line_no}: {row!r}"
                ) from exc
        return LocationDatabase(rows)
    finally:
        if own:
            handle.close()
