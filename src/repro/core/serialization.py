"""Persistence for location snapshots and cloaking policies.

A CSP computes a policy per location-database snapshot and serves
requests from it for the snapshot's lifetime; operationally that means
policies are shipped between the bulk-anonymization tier and the
request-serving tier.  This module provides a stable JSON format for
policies (rectangular and circular cloaks) and a CSV format for
location databases (the relation of §II-A), with full round-trip
fidelity — masking validation re-runs on load, so a corrupted file
cannot smuggle in a non-masking policy.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, TextIO, Union

from .errors import ReproError
from .geometry import Circle, Point, Rect
from .locationdb import LocationDatabase
from .policy import CloakingPolicy

__all__ = [
    "policy_to_dict",
    "policy_from_dict",
    "save_policy",
    "load_policy",
    "write_locations_csv",
    "read_locations_csv",
]

_FORMAT = "repro-policy"
_VERSION = 1


def _region_to_dict(region: Union[Rect, Circle]) -> Dict[str, object]:
    if isinstance(region, Rect):
        return {
            "type": "rect",
            "x1": region.x1,
            "y1": region.y1,
            "x2": region.x2,
            "y2": region.y2,
        }
    if isinstance(region, Circle):
        return {
            "type": "circle",
            "cx": region.center.x,
            "cy": region.center.y,
            "r": region.radius,
        }
    raise ReproError(f"unsupported cloak type: {type(region).__name__}")


def _region_from_dict(data: Dict[str, object]) -> Union[Rect, Circle]:
    kind = data.get("type")
    if kind == "rect":
        return Rect(
            float(data["x1"]), float(data["y1"]),
            float(data["x2"]), float(data["y2"]),
        )
    if kind == "circle":
        return Circle(
            Point(float(data["cx"]), float(data["cy"])), float(data["r"])
        )
    raise ReproError(f"unknown cloak type in policy file: {kind!r}")


def policy_to_dict(policy: CloakingPolicy) -> Dict[str, object]:
    """The JSON-ready representation of a policy and its snapshot."""
    users = []
    for user_id, region in policy.items():
        location = policy.db.location_of(user_id)
        users.append(
            {
                "id": user_id,
                "x": location.x,
                "y": location.y,
                "cloak": _region_to_dict(region),
            }
        )
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "name": policy.name,
        "users": users,
    }


def policy_from_dict(data: Dict[str, object]) -> CloakingPolicy:
    """Rebuild a policy (masking-validated) from its representation."""
    if data.get("format") != _FORMAT:
        raise ReproError(
            f"not a {_FORMAT} document (format={data.get('format')!r})"
        )
    if int(data.get("version", -1)) != _VERSION:
        raise ReproError(
            f"unsupported policy file version {data.get('version')!r}"
        )
    rows = [(u["id"], float(u["x"]), float(u["y"])) for u in data["users"]]
    db = LocationDatabase(rows)
    cloaks = {
        u["id"]: _region_from_dict(u["cloak"]) for u in data["users"]
    }
    return CloakingPolicy(cloaks, db, name=str(data.get("name", "loaded")))


def save_policy(policy: CloakingPolicy, path: str) -> None:
    """Write a policy (with its snapshot) to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(policy_to_dict(policy), handle, indent=1)


def load_policy(path: str) -> CloakingPolicy:
    """Read a policy back; masking is re-validated on load."""
    with open(path, "r", encoding="utf-8") as handle:
        return policy_from_dict(json.load(handle))


def write_locations_csv(db: LocationDatabase, target: Union[str, TextIO]) -> None:
    """Write the location relation as ``userid,locx,locy`` CSV."""
    own = isinstance(target, str)
    handle = open(target, "w", newline="", encoding="utf-8") if own else target
    try:
        writer = csv.writer(handle)
        writer.writerow(["userid", "locx", "locy"])
        for row in db.rows():
            writer.writerow(row)
    finally:
        if own:
            handle.close()


def read_locations_csv(source: Union[str, TextIO]) -> LocationDatabase:
    """Read a ``userid,locx,locy`` CSV into a location database."""
    own = isinstance(source, str)
    handle = open(source, "r", newline="", encoding="utf-8") if own else source
    try:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or [h.strip().lower() for h in header] != [
            "userid",
            "locx",
            "locy",
        ]:
            raise ReproError(
                "location CSV must start with header 'userid,locx,locy'"
            )
        rows = []
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 3:
                raise ReproError(f"malformed CSV row at line {line_no}: {row!r}")
            try:
                rows.append((row[0], float(row[1]), float(row[2])))
            except ValueError as exc:
                raise ReproError(
                    f"non-numeric coordinate at line {line_no}: {row!r}"
                ) from exc
        return LocationDatabase(rows)
    finally:
        if own:
            handle.close()
