"""Core of the paper's contribution: policies, configurations, and the
optimal policy-aware anonymization algorithms (§III–§V)."""

from .anonymizer import IncrementalAnonymizer, PolicyAwareAnonymizer, UpdateReport
from .binary_dp import (
    NodeSolution,
    TreeSolution,
    resolve_dirty,
    solve,
    solve_best_orientation,
)
from .bulk_dp import NaiveMatrix, solve_naive
from .configuration import (
    Configuration,
    configuration_of_policy,
    enumerate_ksummation_configurations,
    policy_from_configuration,
)
from .lemmas import (
    LemmaViolation,
    check_lemma1,
    check_lemma2,
    check_lemma3,
    check_lemma5,
    check_proposition1,
    check_proposition2,
    check_theorem2,
)
from .errors import (
    AnonymityBreachError,
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    GeometryError,
    JurisdictionSolveError,
    NoFeasiblePolicyError,
    PolicyError,
    ReproError,
    ServiceUnavailableError,
    TreeError,
    UnknownUserError,
    WorkloadError,
)
from .geometry import Circle, Point, Rect, bounding_rect
from .policy import CloakingPolicy
from .serialization import (
    load_policy,
    policy_from_dict,
    policy_to_dict,
    read_locations_csv,
    save_policy,
    write_locations_csv,
)
from .requests import (
    AnonymizedRequest,
    Payload,
    ServiceRequest,
    masks,
    request_id_factory,
)

__all__ = [
    "AnonymizedRequest",
    "AnonymityBreachError",
    "Circle",
    "CircuitOpenError",
    "CloakingPolicy",
    "Configuration",
    "ConfigurationError",
    "DeadlineExceededError",
    "GeometryError",
    "IncrementalAnonymizer",
    "JurisdictionSolveError",
    "LemmaViolation",
    "NaiveMatrix",
    "NodeSolution",
    "NoFeasiblePolicyError",
    "Payload",
    "Point",
    "PolicyAwareAnonymizer",
    "PolicyError",
    "Rect",
    "ReproError",
    "ServiceRequest",
    "ServiceUnavailableError",
    "TreeError",
    "TreeSolution",
    "UnknownUserError",
    "UpdateReport",
    "WorkloadError",
    "bounding_rect",
    "check_lemma1",
    "check_lemma2",
    "check_lemma3",
    "check_lemma5",
    "check_proposition1",
    "check_proposition2",
    "check_theorem2",
    "load_policy",
    "policy_from_dict",
    "policy_to_dict",
    "read_locations_csv",
    "save_policy",
    "write_locations_csv",
    "configuration_of_policy",
    "enumerate_ksummation_configurations",
    "masks",
    "policy_from_configuration",
    "request_id_factory",
    "resolve_dirty",
    "solve",
    "solve_best_orientation",
    "solve_naive",
]
