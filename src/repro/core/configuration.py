"""Configurations and the k-summation property (Definitions 7–9).

The key insight behind the paper's PTIME result: both the cost of a
quad/binary-tree policy and whether it is policy-aware sender
k-anonymous depend only on *how many* locations each tree node cloaks,
not on *which* ones (Lemma 1).  A *configuration* represents a whole
equivalence class of policies by tracking, for each node ``m``, the
number ``C(m)`` of locations inside ``m`` that are **not** cloaked by
``m`` or any of its descendants ("passed up" to the ancestors).

This module provides the configuration object, its validity check
(Definition 7), its cost (Definition 8, shown equal to the represented
policies' cost by Lemma 2), the k-summation test (Definition 9, shown
equivalent to policy-aware k-anonymity by Lemma 3), both directions of
the configuration ↔ policy correspondence, and a brute-force enumerator
used by the test suite to certify the DP's optimality on small inputs.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping

from .errors import ConfigurationError
from .policy import CloakingPolicy

__all__ = [
    "Configuration",
    "configuration_of_policy",
    "policy_from_configuration",
    "enumerate_ksummation_configurations",
]


class Configuration:
    """A function from tree nodes to "passed up" counts (Definition 7)."""

    def __init__(self, tree, values: Mapping[int, int]):
        self.tree = tree
        self._values: Dict[int, int] = dict(values)

    def __getitem__(self, node_id: int) -> int:
        try:
            return self._values[node_id]
        except KeyError:
            raise ConfigurationError(f"no value for node {node_id}") from None

    def value_of(self, node) -> int:
        return self[node.node_id]

    def cloaked_at(self, node) -> int:
        """How many locations node ``m`` itself cloaks.

        For a leaf that is ``d(m) - C(m)``; for an internal node it is
        ``Δ - C(m)`` with ``Δ`` the sum over children (Definition 8's
        ``f`` without the area factor).
        """
        if node.is_leaf:
            return node.count - self[node.node_id]
        delta = sum(self[child.node_id] for child in node.children)
        return delta - self[node.node_id]

    def validate(self) -> None:
        """Check Definition 7; raise :class:`ConfigurationError` if violated."""
        for node in self.tree.iter_postorder():
            value = self[node.node_id]
            if value < 0:
                raise ConfigurationError(f"negative C({node.node_id}) = {value}")
            if node.is_leaf:
                if value > node.count:
                    raise ConfigurationError(
                        f"leaf {node.node_id}: C = {value} exceeds d = {node.count}"
                    )
            else:
                delta = sum(self[child.node_id] for child in node.children)
                if value > delta:
                    raise ConfigurationError(
                        f"node {node.node_id}: C = {value} exceeds Δ = {delta}"
                    )

    @property
    def is_complete(self) -> bool:
        """Complete configurations leave nothing uncloaked: C(root) = 0."""
        return self[self.tree.root.node_id] == 0

    def cost(self) -> float:
        """``Cost_c(C, D)`` of Definition 8.

        Each node contributes (number of locations it cloaks) × (its
        area); by Lemma 2 this equals ``Cost(P, D)`` for every policy
        ``P`` in the represented equivalence class.
        """
        total = 0.0
        for node in self.tree.iter_postorder():
            total += self.cloaked_at(node) * node.rect.area
        return total

    def satisfies_ksummation(self, k: int) -> bool:
        """Definition 9: every node cloaks either nothing or ≥ k locations.

        By Lemma 3, this holds iff the represented policies are
        policy-aware sender k-anonymous on the snapshot.
        """
        for node in self.tree.iter_postorder():
            value = self[node.node_id]
            if node.is_leaf:
                available = node.count
            else:
                available = sum(self[child.node_id] for child in node.children)
            if available < k:
                # Clauses (i)/(iii): too few to cloak — pass all up.
                if value != available:
                    return False
            else:
                # Clauses (ii)/(iv): cloak nothing, or at least k.
                if value != available and value > available - k:
                    return False
        return True


def configuration_of_policy(tree, policy: CloakingPolicy) -> Configuration:
    """The configuration representing a tree policy's equivalence class.

    ``policy`` must cloak every user with the rectangle of some node of
    ``tree`` — the natural output of quad/binary-tree algorithms.
    """
    rect_to_node = {}
    for node in tree.iter_postorder():
        # Distinct nodes always have distinct rectangles in both trees.
        rect_to_node[node.rect] = node
    cloaked_here: Dict[int, int] = {}
    for user_id, region in policy.items():
        node = rect_to_node.get(region)
        if node is None:
            raise ConfigurationError(
                f"cloak {region} of user {user_id!r} is not a tree node"
            )
        location = policy.db.location_of(user_id)
        if not node.rect.contains(location):
            raise ConfigurationError(
                f"user {user_id!r} cloaked by a node not containing her"
            )
        cloaked_here[node.node_id] = cloaked_here.get(node.node_id, 0) + 1

    values: Dict[int, int] = {}
    for node in tree.iter_postorder():
        if node.is_leaf:
            available = node.count
        else:
            available = sum(values[child.node_id] for child in node.children)
        values[node.node_id] = available - cloaked_here.get(node.node_id, 0)
        if values[node.node_id] < 0:
            raise ConfigurationError(
                f"node {node.node_id} cloaks more users than pass through it"
            )
    return Configuration(tree, values)


def policy_from_configuration(
    tree, config: Configuration, name: str = "from-config", reverse: bool = False
) -> CloakingPolicy:
    """Materialize one concrete policy from an equivalence class.

    The choice of *which* ``C``-mandated locations each node cloaks is
    arbitrary (Lemma 1); we pick deterministically — lowest row index
    first — so reruns produce identical policies.  ``reverse=True``
    flips the tie-breaking (highest rows first), yielding a *different*
    member of the same equivalence class: the lemma checkers use the
    pair to demonstrate cost/anonymity invariance within a class.
    """
    cloaks: Dict[str, object] = {}

    def assign(node, passed_up_target: int) -> List[int]:
        """Return the rows node ``m`` passes up, cloaking the rest here."""
        if node.is_leaf:
            pool = sorted(
                node.point_index
                if isinstance(node.point_index, set)
                else list(node.point_index),
                reverse=reverse,
            )
        else:
            pool = []
            for child in node.children:
                pool.extend(assign(child, config[child.node_id]))
        n_cloak = len(pool) - passed_up_target
        if n_cloak < 0:
            raise ConfigurationError(
                f"node {node.node_id} asked to pass up {passed_up_target} "
                f"of only {len(pool)} locations"
            )
        for row in pool[:n_cloak]:
            cloaks[tree.user_ids[row]] = node.rect
        return pool[n_cloak:]

    leftover = assign(tree.root, config[tree.root.node_id])
    if config.is_complete and leftover:
        raise ConfigurationError("complete configuration left users uncloaked")
    if not config.is_complete:
        raise ConfigurationError(
            "cannot materialize a policy from an incomplete configuration: "
            f"{len(leftover)} users would stay uncloaked"
        )
    return CloakingPolicy(cloaks, tree.db, name=name)


def enumerate_ksummation_configurations(
    tree, k: int, max_nodes: int = 64
) -> Iterator[Configuration]:
    """Yield *every* complete k-summation configuration of ``tree``.

    Exponential — guarded by ``max_nodes`` — and intended solely for
    exhaustively certifying the DP on small instances in tests.
    """
    nodes = list(tree.iter_postorder())
    if len(nodes) > max_nodes:
        raise ConfigurationError(
            f"refusing to enumerate configurations of a {len(nodes)}-node tree"
        )

    def options(available: int) -> List[int]:
        if available < k:
            return [available]
        return [available] + list(range(0, available - k + 1))

    def recurse(node) -> Iterator[Dict[int, int]]:
        if node.is_leaf:
            for value in options(node.count):
                yield {node.node_id: value}
            return
        child_maps = [list(recurse(child)) for child in node.children]

        def combine(idx: int, acc: Dict[int, int], delta: int):
            if idx == len(child_maps):
                for value in options(delta):
                    out = dict(acc)
                    out[node.node_id] = value
                    yield out
                return
            for cm in child_maps[idx]:
                merged = dict(acc)
                merged.update(cm)
                child = node.children[idx]
                yield from combine(idx + 1, merged, delta + cm[child.node_id])

        yield from combine(0, {}, 0)

    for values in recurse(tree.root):
        if values[tree.root.node_id] == 0:
            yield Configuration(tree, values)
