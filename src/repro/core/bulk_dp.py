"""Literal first-cut ``Bulk_dp`` (Algorithm 1 of the paper).

A faithful, unoptimized transcription of the O(|T||D|^5) dynamic
program over a quad tree: per node ``m`` and per pass-up count
``u ∈ F(m) = [0..d(m)-k] ∪ {d(m)}``, the matrix entry ``M[m][u]`` holds
the minimum subtree cost together with the children's pass-up counts
that achieve it (the bookkeeping tuple of Algorithm 1).

This module exists as an *independent reference implementation*: the
test suite cross-checks the optimized solver of
:mod:`repro.core.binary_dp` against it on small random instances, and
the ablation benchmark measures the optimization ladder's speedups.  Do
not use it on large inputs.
"""

from __future__ import annotations

import itertools
from typing import Dict, Tuple

from .configuration import Configuration, policy_from_configuration
from .errors import NoFeasiblePolicyError, ReproError
from .policy import CloakingPolicy

__all__ = ["NaiveMatrix", "solve_naive"]

_INF = float("inf")

#: An M entry: (cost x, children pass-up counts u_1..u_n).
Entry = Tuple[float, Tuple[int, ...]]


class NaiveMatrix:
    """The configuration matrix M of Algorithm 1, with extraction."""

    def __init__(self, tree, k: int):
        self.tree = tree
        self.k = k
        #: node_id → {u: (cost, children_us)}
        self.rows: Dict[int, Dict[int, Entry]] = {}

    def entry(self, node_id: int, u: int) -> Entry:
        return self.rows[node_id].get(u, (_INF, ()))

    @property
    def optimal_cost(self) -> float:
        root = self.tree.root
        if root.count == 0:
            return 0.0
        cost, __ = self.entry(root.node_id, 0)
        if cost == _INF:
            raise NoFeasiblePolicyError(
                f"no policy-aware {self.k}-anonymous policy exists "
                f"(|D| = {root.count})"
            )
        return cost

    def configuration(self) -> Configuration:
        """Top-down retrieval of a minimum-cost complete configuration,
        exactly as described under Algorithm 1."""
        __ = self.optimal_cost
        values: Dict[int, int] = {}

        def descend(node, u: int) -> None:
            values[node.node_id] = u
            if node.is_leaf:
                return
            __, child_us = self.entry(node.node_id, u)
            for child, child_u in zip(node.children, child_us):
                descend(child, child_u)

        descend(self.tree.root, 0)
        return Configuration(self.tree, values)

    def policy(self, name: str = "bulk-dp-naive") -> CloakingPolicy:
        return policy_from_configuration(self.tree, self.configuration(), name)


def solve_naive(tree, k: int) -> NaiveMatrix:
    """Run Algorithm 1 verbatim (bottom-up over the tree).

    Works on quad trees and binary trees alike (the loop over children
    configurations is a product over however many children a node has).
    Complexity is O(|T|·|D|^(children+1)) — small instances only.
    """
    if k < 1:
        raise ReproError(f"k must be ≥ 1, got {k}")
    matrix = NaiveMatrix(tree, k)
    for node in tree.iter_postorder():
        row: Dict[int, Entry] = {}
        if node.is_leaf:
            d = node.count
            # Lines 5-10: pass everything up at cost 0; if d ≥ k, the
            # leaf may instead cloak d-u ≥ k locations at its own area.
            row[d] = (0.0, ())
            if d >= k:
                for u in range(0, d - k + 1):
                    row[u] = (node.rect.area * (d - u), ())
        else:
            # Lines 12-20: pick children pass-up counts minimizing cost.
            child_rows = [matrix.rows[c.node_id] for c in node.children]
            area = node.rect.area
            for combo in itertools.product(*[r.items() for r in child_rows]):
                child_us = tuple(u for u, __ in combo)
                base = sum(entry[0] for __, entry in combo)
                delta = sum(child_us)
                # Definition 9 (iii)/(iv): u = Δ always allowed; u ≤ Δ-k
                # allowed when Δ ≥ k.
                candidates = [delta]
                if delta >= k:
                    candidates.extend(range(0, delta - k + 1))
                for u in candidates:
                    cost = base + area * (delta - u)
                    if cost < row.get(u, (_INF, ()))[0]:
                        row[u] = (cost, child_us)
        matrix.rows[node.node_id] = row
    return matrix
