"""Service requests and anonymized requests (Definitions 1–3).

A *service request* carries the sender's identity, exact location and the
request payload (a vector of name/value pairs such as
``(("poi", "rest"), ("cat", "ital"))``).  The CSP never forwards it;
instead it sends an *anonymized request* whose location has been widened
to a cloak.  ``masks`` is the bridge predicate between the two worlds.

>>> from repro.core.geometry import Rect
>>> sr = ServiceRequest.make("Carol", 1, 4, [("poi", "rest")])
>>> ar = AnonymizedRequest(169, Rect(0, 0, 2, 4), (("poi", "rest"),))
>>> masks(ar, sr)                       # Example 4 of the paper
True
>>> masks(AnonymizedRequest(1, Rect(3, 0, 4, 1), ar.payload), sr)
False
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Tuple, Union

from .geometry import Circle, Point, Rect

__all__ = [
    "Payload",
    "ServiceRequest",
    "AnonymizedRequest",
    "masks",
    "normalize_payload",
    "request_id_factory",
]

#: A request payload: an ordered vector of name/value pairs (Definition 1).
Payload = Tuple[Tuple[str, str], ...]

#: Cloak shapes supported by anonymized requests.
Region = Union[Rect, Circle]


def normalize_payload(pairs) -> Payload:
    """Coerce any iterable of (name, value) pairs into a canonical tuple."""
    return tuple((str(name), str(value)) for name, value in pairs)


@dataclass(frozen=True)
class ServiceRequest:
    """A sender's request, as constructed by the CSP (Definition 1).

    Attributes
    ----------
    user_id:
        The sender identifier ``u``.
    location:
        The sender's exact coordinates ``(x, y)``.
    payload:
        The name/value vector ``V`` describing the sought service.
    """

    user_id: str
    location: Point  # taint: location
    payload: Payload = ()

    @staticmethod
    def make(user_id: str, x: float, y: float, payload=()) -> "ServiceRequest":
        """Convenience constructor from raw coordinates."""
        return ServiceRequest(str(user_id), Point(x, y), normalize_payload(payload))

    def is_valid_for(self, location_db) -> bool:
        """Validity w.r.t. a location database (Definition 1).

        ``location_db`` is anything exposing ``location_of(user_id)``;
        the request is valid iff the database holds exactly this
        location for this user.
        """
        recorded = location_db.location_of(self.user_id)
        return recorded is not None and recorded == self.location


@dataclass(frozen=True)
class AnonymizedRequest:
    """The CSP's outgoing request (Definition 2).

    Attributes
    ----------
    request_id:
        A unique identifier ``rid`` — deliberately unrelated to the
        sender's identity.
    cloak:
        The connected, closed region ``ρ`` that hides the location.
    payload:
        The name/value vector, passed through unchanged.
    """

    request_id: int
    cloak: Region
    payload: Payload = ()

    @property
    def cost(self) -> float:
        """The paper's cost of an anonymized request: its cloak's area."""
        return self.cloak.area


def masks(anonymized: AnonymizedRequest, request: ServiceRequest) -> bool:
    """Definition 3: ``AR`` masks ``SR`` iff SR's location lies in the
    cloak and the payload vectors are equal."""
    return (
        anonymized.payload == request.payload
        and anonymized.cloak.contains(request.location)
    )


def request_id_factory(start: int = 1):
    """Return a callable producing consecutive request identifiers.

    The CSP assigns ``rid`` values from this stream; a fresh factory per
    snapshot keeps ids stable across reruns (determinism for tests).
    """
    counter = itertools.count(start)
    return lambda: next(counter)
