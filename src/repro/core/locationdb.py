"""The location database (paper §II-A).

The MPC's view of all device locations is modeled as a single relation
``D = {userid, locx, locy}``.  The database is updated periodically; a
sequence of :class:`LocationDatabase` instances models the snapshots.

The class is deliberately small and dictionary-backed: every algorithm in
the paper consumes it either as "all users with locations" or via point
lookups, and both must be O(1)/O(n).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .errors import ReproError
from .geometry import Point, Rect, bounding_rect

__all__ = ["LocationDatabase", "SnapshotSequence"]


class LocationDatabase:
    """One snapshot of the relation ``{userid, locx, locy}``.

    User ids are unique within a snapshot (a device has one location at a
    time).  Instances are immutable from the caller's perspective; moves
    between snapshots produce a *new* database via :meth:`with_moves`.
    """

    def __init__(self, rows: Iterable[Tuple[str, float, float]] = ()):
        self._locations: Dict[str, Point] = {}  # taint: location
        for user_id, x, y in rows:
            key = str(user_id)
            if key in self._locations:
                raise ReproError(f"duplicate user id in location database: {key!r}")
            self._locations[key] = Point(float(x), float(y))

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_points(cls, points: Mapping[str, Point]) -> "LocationDatabase":
        """Build from a ``{user_id: Point}`` mapping."""
        return cls((uid, p.x, p.y) for uid, p in points.items())

    @classmethod
    def from_array(cls, coords: np.ndarray, prefix: str = "u") -> "LocationDatabase":
        """Build from an ``(n, 2)`` coordinate array, ids ``u0..u{n-1}``."""
        coords = np.asarray(coords, dtype=float)
        if coords.ndim != 2 or coords.shape[1] != 2:
            raise ReproError(f"expected an (n, 2) array, got shape {coords.shape}")
        return cls(
            (f"{prefix}{i}", float(x), float(y))
            for i, (x, y) in enumerate(coords)
        )

    # -- relational access -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._locations)

    def __contains__(self, user_id: str) -> bool:
        return str(user_id) in self._locations

    def __iter__(self) -> Iterator[str]:
        return iter(self._locations)

    def user_ids(self) -> List[str]:
        """All user ids, in insertion order (deterministic)."""
        return list(self._locations)

    def location_of(self, user_id: str) -> Optional[Point]:
        """The recorded location of ``user_id``, or None if absent."""
        return self._locations.get(str(user_id))

    def rows(self) -> Iterator[Tuple[str, float, float]]:
        """Iterate relation rows ``(userid, locx, locy)``."""
        for uid, p in self._locations.items():
            yield (uid, p.x, p.y)

    def items(self) -> Iterator[Tuple[str, Point]]:
        """Iterate ``(user_id, Point)`` pairs."""
        return iter(self._locations.items())

    def points(self) -> List[Point]:
        """All locations (order matches :meth:`user_ids`)."""
        return list(self._locations.values())

    def coords_array(self) -> np.ndarray:
        """All locations as an ``(n, 2)`` float array (DP fast path)."""
        if not self._locations:
            return np.empty((0, 2), dtype=float)
        return np.array([(p.x, p.y) for p in self._locations.values()], dtype=float)

    def users_in(self, region: Rect) -> List[str]:
        """User ids whose location lies inside ``region`` (closed)."""
        return [uid for uid, p in self._locations.items() if region.contains(p)]

    def count_in(self, region: Rect) -> int:
        """Number of users inside ``region``."""
        return sum(1 for p in self._locations.values() if region.contains(p))

    def extent(self) -> Rect:
        """Minimum bounding rectangle of all locations."""
        return bounding_rect(self._locations.values())

    # -- snapshot evolution ----------------------------------------------------

    def with_moves(self, moves: Mapping[str, Point]) -> "LocationDatabase":
        """A new snapshot where the users in ``moves`` are relocated.

        Unknown user ids are rejected — a move must concern a device the
        MPC already tracks.
        """
        unknown = [uid for uid in moves if str(uid) not in self._locations]
        if unknown:
            raise ReproError(f"cannot move unknown users: {unknown[:5]!r}")
        updated = dict(self._locations)
        for uid, p in moves.items():
            updated[str(uid)] = p
        return LocationDatabase.from_points(updated)

    def subset(self, user_ids: Sequence[str]) -> "LocationDatabase":
        """The restriction of this snapshot to ``user_ids``."""
        return LocationDatabase(
            (uid, self._locations[str(uid)].x, self._locations[str(uid)].y)
            for uid in user_ids
        )

    def restricted_to(self, region: Rect) -> "LocationDatabase":
        """The restriction of this snapshot to users inside ``region``."""
        return self.subset(self.users_in(region))

    def __repr__(self) -> str:
        return f"LocationDatabase(n={len(self)})"


class SnapshotSequence:
    """An ordered sequence of location-database snapshots (§II-A).

    The CSP refreshes the location database periodically; requests are
    evaluated against the snapshot current at send time.  This wrapper
    mainly exists so the incremental-maintenance experiment has a natural
    carrier for "snapshot t → snapshot t+1" deltas.
    """

    def __init__(self, initial: LocationDatabase):
        self._snapshots: List[LocationDatabase] = [initial]

    @property
    def current(self) -> LocationDatabase:
        return self._snapshots[-1]

    def __len__(self) -> int:
        return len(self._snapshots)

    def __getitem__(self, index: int) -> LocationDatabase:
        return self._snapshots[index]

    def advance(self, moves: Mapping[str, Point]) -> LocationDatabase:
        """Append a new snapshot with the given relocations; return it."""
        nxt = self.current.with_moves(moves)
        self._snapshots.append(nxt)
        return nxt

    def moved_users(self, index: int) -> List[str]:
        """Users whose location changed between snapshots ``index-1`` and
        ``index``."""
        if index <= 0 or index >= len(self._snapshots):
            raise ReproError(f"snapshot index {index} out of range")
        prev, curr = self._snapshots[index - 1], self._snapshots[index]
        return [
            uid
            for uid in curr.user_ids()
            if prev.location_of(uid) != curr.location_of(uid)
        ]
