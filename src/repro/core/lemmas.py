"""Executable checks of the paper's formal claims.

The paper states its lemmas, propositions and theorems with proofs
deferred to the technical report [12].  This module turns every claim
into a *checkable predicate* over concrete instances, so the test suite
can exercise them across thousands of randomized inputs — an empirical
(not deductive) validation, but one that would catch any implementation
drift from the theory.

Each ``check_*`` function returns on success and raises
:class:`LemmaViolation` (with the witnessing detail) on failure.
"""

from __future__ import annotations

from typing import Optional

from .binary_dp import solve
from .configuration import (
    Configuration,
    configuration_of_policy,
    enumerate_ksummation_configurations,
    policy_from_configuration,
)
from .errors import NoFeasiblePolicyError, ReproError

__all__ = [
    "LemmaViolation",
    "check_lemma1",
    "check_lemma2",
    "check_lemma3",
    "check_lemma5",
    "check_proposition1",
    "check_proposition2",
    "check_theorem2",
]

_TOL = 1e-6


class LemmaViolation(ReproError):
    """A formal claim failed on a concrete instance (implementation bug)."""


def _aware_level(policy) -> int:
    return policy.min_group_size()


def _unaware_level(policy) -> int:
    return policy.min_inside_count()


def check_lemma1(tree, config: Configuration, k: int) -> None:
    """Lemma 1: equivalent policies have equal cost (a) and identical
    policy-aware k-anonymity verdicts (b).

    Materializes two *different* members of ``config``'s equivalence
    class (opposite tie-breaking) and compares them.
    """
    first = policy_from_configuration(tree, config, name="lemma1-a")
    second = policy_from_configuration(
        tree, config, name="lemma1-b", reverse=True
    )
    if abs(first.cost() - second.cost()) > _TOL:
        raise LemmaViolation(
            f"Lemma 1(a): equivalent policies cost {first.cost()} vs "
            f"{second.cost()}"
        )
    if (_aware_level(first) >= k) != (_aware_level(second) >= k):
        raise LemmaViolation(
            "Lemma 1(b): equivalent policies disagree on k-anonymity"
        )
    # Both must really be in config's class.
    for policy in (first, second):
        back = configuration_of_policy(tree, policy)
        for node in tree.iter_postorder():
            if back[node.node_id] != config[node.node_id]:
                raise LemmaViolation(
                    "materialized policy left its equivalence class"
                )


def check_lemma2(tree, config: Configuration) -> None:
    """Lemma 2: ``Cost_c(C, D) = Cost(P, D)`` for any represented P."""
    policy = policy_from_configuration(tree, config, name="lemma2")
    if abs(config.cost() - policy.cost()) > _TOL:
        raise LemmaViolation(
            f"Lemma 2: Cost_c = {config.cost()} but Cost(P) = {policy.cost()}"
        )


def check_lemma3(tree, config: Configuration, k: int) -> None:
    """Lemma 3: k-summation ⟺ the represented policy is policy-aware
    k-anonymous (every cloak group ≥ k)."""
    policy = policy_from_configuration(tree, config, name="lemma3")
    summation = config.satisfies_ksummation(k)
    anonymous = _aware_level(policy) >= k
    if summation != anonymous:
        raise LemmaViolation(
            f"Lemma 3: k-summation={summation} but policy-aware "
            f"k-anonymity={anonymous}"
        )


def check_lemma5(tree, k: int) -> None:
    """Lemma 5: capping pass-up counts at (k+1)·h(m) preserves the
    optimum (checked as pruned-vs-unpruned cost equality)."""
    try:
        pruned = solve(tree, k, prune=True).optimal_cost
    except NoFeasiblePolicyError:
        pruned = None
    try:
        unpruned = solve(tree, k, prune=False).optimal_cost
    except NoFeasiblePolicyError:
        unpruned = None
    if (pruned is None) != (unpruned is None):
        raise LemmaViolation("Lemma 5: pruning changed feasibility")
    if pruned is not None and abs(pruned - unpruned) > _TOL:
        raise LemmaViolation(
            f"Lemma 5: pruned optimum {pruned} ≠ unpruned {unpruned}"
        )


def check_proposition1(policy, k: int) -> None:
    """Proposition 1: policy-aware k-anonymity ⇒ policy-unaware
    k-anonymity (candidate groups are subsets of cloak populations)."""
    if _aware_level(policy) >= k and _unaware_level(policy) < k:
        raise LemmaViolation(
            "Proposition 1: policy-aware safe but policy-unaware breached"
        )


def check_proposition2(policy, k: int) -> None:
    """Proposition 2: a k-inside policy defends policy-unaware attackers."""
    if _unaware_level(policy) < k:
        raise LemmaViolation(
            f"Proposition 2: k-inside policy has only "
            f"{_unaware_level(policy)} users inside some cloak"
        )


def check_theorem2(tree, k: int, max_nodes: int = 64) -> None:
    """Theorem 2 (optimality side): the PTIME solver's cost equals the
    exhaustive minimum over all complete k-summation configurations."""
    try:
        dp_cost: Optional[float] = solve(tree, k).optimal_cost
    except NoFeasiblePolicyError:
        dp_cost = None
    best: Optional[float] = None
    for config in enumerate_ksummation_configurations(tree, k, max_nodes):
        cost = config.cost()
        if best is None or cost < best:
            best = cost
    if tree.root.count == 0:
        best = 0.0 if best is None else min(best, 0.0)
    if (dp_cost is None) != (best is None):
        raise LemmaViolation(
            f"Theorem 2: DP feasibility ({dp_cost}) disagrees with "
            f"enumeration ({best})"
        )
    if dp_cost is not None and abs(dp_cost - best) > _TOL:
        raise LemmaViolation(
            f"Theorem 2: DP optimum {dp_cost} ≠ exhaustive optimum {best}"
        )
