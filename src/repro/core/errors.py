"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError`, so callers can catch a
single base class at API boundaries while still discriminating on the
specific failure when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class GeometryError(ReproError):
    """A geometric object was constructed or used inconsistently."""


class TreeError(ReproError):
    """A spatial tree was constructed or traversed inconsistently."""


class ConfigurationError(ReproError):
    """A configuration violates Definition 7 of the paper."""


class NoFeasiblePolicyError(ReproError):
    """No policy-aware sender k-anonymous policy exists for this input.

    Raised when a complete configuration (``C(root) = 0``) satisfying
    k-summation cannot be built — e.g. when the location database holds
    fewer than ``k`` users in total.
    """


class PolicyError(ReproError):
    """A cloaking policy was used outside its contract.

    Typical causes: asking a bulk policy about a user that was not part
    of the location database it was built for, or a policy producing a
    cloak that does not mask the requester (violating Definition 4's
    masking requirement).
    """


class AnonymityBreachError(ReproError):
    """An audit detected an anonymity breach and was asked to raise."""

    def __init__(self, message: str, *, breached_users=None):
        super().__init__(message)
        #: Users whose anonymity fell below k (tuple of user ids).
        self.breached_users = tuple(breached_users or ())


class WorkloadError(ReproError):
    """A synthetic workload was requested with inconsistent parameters."""


class UnknownUserError(PolicyError):
    """A lookup named a user the current snapshot does not know.

    Subclasses :class:`PolicyError` so existing callers that catch the
    broader class (policy lookups historically raised it) keep working.
    """


class JurisdictionSolveError(ReproError):
    """One server's jurisdiction solve failed (crash, error, or timeout).

    Carries enough metadata for the master to reassign or degrade the
    jurisdiction instead of aborting the whole bulk run.
    """

    def __init__(
        self,
        message: str,
        *,
        node_id: int,
        n_users: int = 0,
        attempts: int = 1,
        kind: str = "error",
    ):
        super().__init__(message)
        #: Partition-tree node id of the failed jurisdiction.
        self.node_id = node_id
        #: Users whose cloaks the failed solve was responsible for.
        self.n_users = n_users
        #: Solve attempts made (including retry rounds) before giving up.
        self.attempts = attempts
        #: Failure kind: ``"crash"``, ``"error"`` or ``"timeout"``.
        self.kind = kind


class ServiceUnavailableError(ReproError):
    """A request was rejected by the fail-closed degradation ladder.

    Raised when serving could not complete *and* no degradation rung
    (ancestor coarsening, bounded-age stale policy) applies — the system
    refuses rather than emit a sub-k or policy-unaware cloak.
    """

    def __init__(self, message: str, *, reason: str = "unavailable"):
        super().__init__(message)
        #: Machine-readable cause: ``"provider"``, ``"stale"``, ...
        self.reason = reason


class RecoveryError(ReproError):
    """Durable anonymization state could not be recovered safely.

    Raised by the crash-consistent snapshot store when the journal or a
    committed snapshot fails validation (truncation, checksum mismatch,
    engine-fingerprint mismatch, stale db-serial).  The store fails
    closed: a CSP that cannot prove its recovered policy is the one it
    journalled refuses to serve rather than risk a non-masking or
    wrong-snapshot policy.
    """

    def __init__(self, message: str, *, reason: str = "corrupt"):
        super().__init__(message)
        #: Machine-readable cause: ``"corrupt"``, ``"torn"``, ``"empty"``,
        #: ``"fingerprint"``, ``"stale"``.
        self.reason = reason


class DeadlineExceededError(ReproError):
    """A retried call ran out of its per-call deadline budget."""


class CircuitOpenError(ReproError):
    """A circuit breaker is open; the protected call was not attempted."""
