"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError`, so callers can catch a
single base class at API boundaries while still discriminating on the
specific failure when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class GeometryError(ReproError):
    """A geometric object was constructed or used inconsistently."""


class TreeError(ReproError):
    """A spatial tree was constructed or traversed inconsistently."""


class ConfigurationError(ReproError):
    """A configuration violates Definition 7 of the paper."""


class NoFeasiblePolicyError(ReproError):
    """No policy-aware sender k-anonymous policy exists for this input.

    Raised when a complete configuration (``C(root) = 0``) satisfying
    k-summation cannot be built — e.g. when the location database holds
    fewer than ``k`` users in total.
    """


class PolicyError(ReproError):
    """A cloaking policy was used outside its contract.

    Typical causes: asking a bulk policy about a user that was not part
    of the location database it was built for, or a policy producing a
    cloak that does not mask the requester (violating Definition 4's
    masking requirement).
    """


class AnonymityBreachError(ReproError):
    """An audit detected an anonymity breach and was asked to raise."""

    def __init__(self, message: str, *, breached_users=None):
        super().__init__(message)
        #: Users whose anonymity fell below k (tuple of user ids).
        self.breached_users = tuple(breached_users or ())


class WorkloadError(ReproError):
    """A synthetic workload was requested with inconsistent parameters."""
