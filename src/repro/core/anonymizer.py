"""High-level anonymization façade.

:class:`PolicyAwareAnonymizer` is the one-stop entry point a CSP (or a
reader of the paper) uses: give it a map region, an anonymity degree
``k`` and a location snapshot; it builds the lazy binary tree, runs the
optimized DP, extracts an optimal policy and then serves individual
service requests in O(1) per request — the "sub-second initialization,
milliseconds per query" operating point the paper argues for in §VII.

:class:`IncrementalAnonymizer` additionally carries the DP matrix across
location snapshots, repairing only the dirty portion of the tree when
users move (§IV "Incremental Maintenance of M", evaluated in Fig 5(b)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..core.locationdb import LocationDatabase
from ..trees.binarytree import BinaryTree
from .binary_dp import TreeSolution, resolve_dirty, solve
from .errors import ReproError
from .geometry import Point, Rect
from .policy import CloakingPolicy
from .requests import AnonymizedRequest, ServiceRequest, request_id_factory

__all__ = ["PolicyAwareAnonymizer", "IncrementalAnonymizer", "UpdateReport"]


class PolicyAwareAnonymizer:
    """Bulk anonymization for one location snapshot.

    Parameters
    ----------
    region:
        The square map (or a 1:2 semi-quadrant jurisdiction) the
        anonymizer is responsible for.
    k:
        Sender anonymity degree — against *policy-aware* attackers.
    max_depth:
        Binary-tree depth limit; two binary levels make one quad level.
    prune:
        Apply the Lemma-5 search-space cap (keep True outside ablations).
    engine:
        DP evaluator — ``"flat"`` (default) for the level-batched
        structure-of-arrays engine, ``"object"`` for the original
        node-at-a-time oracle.  Identical costs either way.
    """

    def __init__(
        self,
        region: Rect,
        k: int,
        max_depth: int = 40,
        prune: bool = True,
        engine: str = "flat",
    ):
        if k < 1:
            raise ReproError(f"k must be ≥ 1, got {k}")
        self.region = region
        self.k = k
        self.max_depth = max_depth
        self.prune = prune
        self.engine = engine
        self.tree: Optional[BinaryTree] = None
        self.solution: Optional[TreeSolution] = None
        self._policy: Optional[CloakingPolicy] = None
        self._next_request_id = request_id_factory()

    # -- bulk phase -----------------------------------------------------------

    def fit(self, db: LocationDatabase) -> "PolicyAwareAnonymizer":
        """Run bulk anonymization for snapshot ``db``; returns self."""
        self.tree = BinaryTree.build(
            self.region, db, self.k, max_depth=self.max_depth
        )
        self.solution = solve(
            self.tree, self.k, prune=self.prune, engine=self.engine
        )
        self._policy = None  # extracted lazily
        return self

    def _require_fit(self) -> TreeSolution:
        if self.solution is None:
            raise ReproError("call fit(db) before using the anonymizer")
        return self.solution

    @property
    def optimal_cost(self) -> float:
        """``Cost(P, D)`` of the computed optimal policy."""
        return self._require_fit().optimal_cost

    @property
    def policy(self) -> CloakingPolicy:
        """The optimal policy-aware sender k-anonymous policy."""
        if self._policy is not None:
            # Either lazily extracted below, or adopted by a journal
            # restore (which may not carry DP state at all).
            return self._policy
        self._require_fit()
        self._policy = self.solution.policy()
        return self._policy

    # -- serving phase ----------------------------------------------------------

    def anonymize(self, request: ServiceRequest) -> AnonymizedRequest:
        """Serve one request: a policy lookup plus id assignment."""
        return self.policy.anonymize(request, self._next_request_id)

    def average_cloak_area(self) -> float:
        return self.policy.average_cloak_area()


@dataclass(frozen=True)
class UpdateReport:
    """What one incremental snapshot transition cost."""

    moved_users: int
    dirty_nodes: int
    recomputed_nodes: int
    total_nodes: int
    #: False when a fault-tolerant caller skipped the repair and kept
    #: serving the previous snapshot (the "stale" degradation rung).
    applied: bool = True

    @property
    def recomputed_fraction(self) -> float:
        if self.total_nodes == 0:
            return 0.0
        return self.recomputed_nodes / self.total_nodes


class IncrementalAnonymizer(PolicyAwareAnonymizer):
    """An anonymizer that follows the location database across snapshots.

    After :meth:`fit`, call :meth:`update` with each snapshot's moves;
    only the dirty part of the DP matrix is recomputed.  The result is
    always identical (in cost, and in anonymity guarantee) to a bulk
    re-computation — Figure 5(b) measures when it is also *faster*.
    """

    def restore(
        self,
        db: LocationDatabase,
        policy: CloakingPolicy,
        solution: Optional[TreeSolution] = None,
    ) -> "IncrementalAnonymizer":
        """Adopt journalled state instead of re-running bulk anonymization.

        The recovery path of a restarted CSP: rebuild the (deterministic)
        tree for snapshot ``db`` — cheap relative to the DP — and serve
        the recovered ``policy`` directly.  With ``solution`` (rehydrated
        DP state, see :func:`repro.core.flat_dp.rehydrate_solution`) the
        next :meth:`update` repairs incrementally; without it the first
        :meth:`update` falls back to one bulk solve, but serving works
        immediately either way.
        """
        self.tree = BinaryTree.build(
            self.region, db, self.k, max_depth=self.max_depth
        )
        self.solution = solution
        self._policy = policy
        return self

    def update(self, moves: Mapping[str, Point]) -> UpdateReport:
        """Advance to the next snapshot where ``moves`` users relocated."""
        if self.tree is None:
            raise ReproError("call fit(db) or restore(...) before update()")
        dirty = self.tree.apply_moves(moves)
        if self.solution is None:
            # Cold-restored (no journalled DP state): the first repair
            # is a full re-solve of the already-updated tree.
            self.solution = solve(
                self.tree, self.k, prune=self.prune, engine=self.engine
            )
            recomputed = len(self.tree)
        else:
            self.solution, recomputed = resolve_dirty(self.solution, dirty)
        self._policy = None
        return UpdateReport(
            moved_users=len(moves),
            dirty_nodes=len(dirty),
            recomputed_nodes=recomputed,
            total_nodes=len(self.tree),
        )

    @property
    def current_db(self) -> LocationDatabase:
        """The snapshot the current policy is valid for."""
        if self.tree is None:
            raise ReproError("call fit(db) or restore(...) first")
        return self.tree.db
