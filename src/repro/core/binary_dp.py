"""The optimized bottom-up dynamic program of §V.

This is the production solver: ``Bulk_dp`` (Algorithm 1) restated over
the binary tree of quadrants/semi-quadrants, with the paper's three
optimizations applied:

1. **Binary tree** — each combine step involves two children, not four
   (§V "From Quad to Binary Trees").  The solver is nevertheless written
   generically over n-ary trees so the same code runs on quad trees for
   cross-validation and ablation.
2. **Lemma 5 pruning** — a node at depth ``h`` never passes up more than
   ``(k+1)·h`` locations (except "everything"), so per-node cost vectors
   have length O(kh) instead of O(|D|).
3. **Two-stage combine** (§V "From O(|B|(kh)^3) to O(|B|(kh)^2)") — the
   children's vectors are merged with a min-plus convolution into a
   ``temp`` structure once, and every parent entry is then answered from
   ``temp``'s suffix minima in O(1).

Per-node state is a :class:`NodeSolution`: ``vec[u]`` is the minimum
subtree cost over all k-summation configurations that pass ``u``
locations up to the ancestors, and the sentinel ``u = d(m)`` ("cloak
nothing anywhere below") always costs 0.  The optimum for the snapshot
is ``vec[0]`` at the root — the cheapest *complete* configuration.

Extraction re-derives, top-down, the child split that achieved each
chosen entry (recomputing the argmin is cheaper than storing
backpointers for every ``(m, u)`` pair) and produces a
:class:`~repro.core.configuration.Configuration`, from which a concrete
:class:`~repro.core.policy.CloakingPolicy` is materialized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .configuration import Configuration, policy_from_configuration
from .errors import NoFeasiblePolicyError, ReproError
from .policy import CloakingPolicy

__all__ = ["NodeSolution", "TreeSolution", "solve", "resolve_dirty"]

_INF = float("inf")


@dataclass
class NodeSolution:
    """DP state for one tree node.

    ``vec[u]`` = minimum cost of cloaking, within this subtree and in
    k-summation discipline, all but ``u`` of the subtree's locations
    (those ``u`` are passed up).  ``u = d`` is represented implicitly:
    passing everything up cloaks nothing below and costs exactly 0.
    """

    node_id: int
    d: int
    vec: np.ndarray  # shape (cap+1,); empty when d < k

    @property
    def cap(self) -> int:
        return len(self.vec) - 1

    def cost_at(self, u: int) -> float:
        """Cost for passing up exactly ``u`` locations (inf if impossible)."""
        if u == self.d:
            return 0.0
        if 0 <= u < len(self.vec):
            return float(self.vec[u])
        return _INF

    def domain(self) -> Tuple[np.ndarray, np.ndarray]:
        """All candidate ``u`` values with their costs (extraction helper)."""
        js = np.concatenate([np.arange(len(self.vec)), [self.d]])
        costs = np.concatenate([self.vec, [0.0]])
        return js.astype(np.int64), costs


def _cap_for(node, k: int, prune: bool) -> int:
    """Largest explicit ``u`` worth tracking for ``node``.

    ``u`` beyond ``d - k`` (other than the sentinel ``d``) is ruled out
    by k-summation; Lemma 5 additionally rules out ``u > (k+1)·h(m)``.
    Returns -1 when no explicit value is possible (then only the
    sentinel ``u = d`` exists).
    """
    cap = node.count - k
    if prune:
        cap = min(cap, (k + 1) * node.depth)
    return cap


def _min_plus(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Min-plus (tropical) convolution: out[j] = min_i a[i] + b[j-i]."""
    if len(a) == 0 or len(b) == 0:
        return np.empty(0, dtype=float)
    if len(a) > len(b):
        a, b = b, a
    out = np.full(len(a) + len(b) - 1, _INF)
    for i, ai in enumerate(a):
        if ai == _INF:
            continue
        seg = out[i : i + len(b)]
        np.minimum(seg, ai + b, out=seg)
    return out


def _aggregate_children(
    solutions: Sequence[NodeSolution],
) -> List[Tuple[int, np.ndarray]]:
    """Fold children solutions into ``temp`` *pieces*.

    The conceptual ``temp[j]`` of the paper — minimum total children
    cost when ``j`` locations are passed up to the parent — is kept as a
    union of *(offset, array)* pieces: ``temp[offset+i] ≤ array[i]``.
    Each child contributes its dense vector (convolved in) and its
    sentinel (a pure offset shift of ``d``), so folding ``n`` children
    yields at most ``2^n`` pieces — 4 for the binary tree.
    """
    pieces: List[Tuple[int, np.ndarray]] = [(0, np.zeros(1))]
    for sol in solutions:
        folded: List[Tuple[int, np.ndarray]] = []
        for offset, arr in pieces:
            if len(sol.vec):
                folded.append((offset, _min_plus(arr, sol.vec)))
            folded.append((offset + sol.d, arr))
        pieces = folded
    return pieces


def _node_step(
    node, pieces: Sequence[Tuple[int, np.ndarray]], k: int, cap: int
) -> np.ndarray:
    """Compute ``vec[u]`` for ``u = 0..cap`` from the children ``temp``.

    ``vec[u] = min( temp[u],  min_{j ≥ u+k} temp[j] + (j-u)·area )`` —
    either the node cloaks nothing (u = j) or it cloaks ``j-u ≥ k``
    locations at its own area.  The second term is answered via suffix
    minima of ``g[j] = temp[j] + j·area``, the two-stage trick of §V.
    """
    if cap < 0:
        return np.empty(0, dtype=float)
    area = node.rect.area
    us = np.arange(cap + 1)
    vec = np.full(cap + 1, _INF)
    thresholds = us + k
    for offset, arr in pieces:
        if len(arr) == 0:
            continue
        # Equality contribution: temp[u] for u inside this piece.
        lo = max(offset, 0)
        hi = min(offset + len(arr), cap + 1)
        if lo < hi:
            np.minimum(
                vec[lo:hi], arr[lo - offset : hi - offset], out=vec[lo:hi]
            )
        # Cloak-here contribution via suffix minima of g.
        g = arr + (offset + np.arange(len(arr))) * area
        suffix = np.minimum.accumulate(g[::-1])[::-1]
        idx = thresholds - offset
        valid = idx < len(arr)
        if not valid.any():
            continue
        clipped = np.clip(idx, 0, len(arr) - 1)
        candidate = np.where(valid, suffix[clipped] - us * area, _INF)
        np.minimum(vec, candidate, out=vec)
    return vec


def _solve_node(node, child_solutions: Sequence[NodeSolution], k: int, prune: bool) -> NodeSolution:
    """DP step for a single node (leaf or internal)."""
    cap = _cap_for(node, k, prune)
    if node.is_leaf:
        if cap < 0:
            vec = np.empty(0, dtype=float)
        else:
            # Cloak d-u ≥ k locations here, at this leaf's area.
            us = np.arange(cap + 1)
            vec = (node.count - us) * node.rect.area
        return NodeSolution(node.node_id, node.count, vec.astype(float))
    pieces = _aggregate_children(child_solutions)
    vec = _node_step(node, pieces, k, cap)
    return NodeSolution(node.node_id, node.count, vec)


class TreeSolution:
    """The completed DP over a tree, ready for cost queries / extraction."""

    def __init__(self, tree, k: int, prune: bool, solutions: Dict[int, NodeSolution]):
        self.tree = tree
        self.k = k
        self.prune = prune
        self.solutions = solutions

    @property
    def root_solution(self) -> NodeSolution:
        return self.solutions[self.tree.root.node_id]

    @property
    def optimal_cost(self) -> float:
        """Cost of the cheapest policy-aware k-anonymous policy.

        Raises :class:`NoFeasiblePolicyError` when none exists (fewer
        than k users in the snapshot).
        """
        root = self.root_solution
        if root.d == 0:
            return 0.0
        cost = root.cost_at(0)
        if cost == _INF:
            raise NoFeasiblePolicyError(
                f"no policy-aware {self.k}-anonymous policy exists "
                f"(|D| = {root.d})"
            )
        return cost

    # -- extraction ---------------------------------------------------------------

    def configuration(self) -> Configuration:
        """Extract one minimum-cost complete configuration (top-down)."""
        __ = self.optimal_cost  # feasibility gate
        values: Dict[int, int] = {}

        def descend(node, u: int) -> None:
            values[node.node_id] = u
            if node.is_leaf:
                return
            if u == node.count:
                # Sentinel: every child passes everything up.
                for child in node.children:
                    descend(child, child.count)
                return
            split = self._choose_split(node, u)
            for child, child_u in zip(node.children, split):
                descend(child, child_u)

        descend(self.tree.root, 0)
        return Configuration(self.tree, values)

    def policy(self, name: str = "policy-aware-optimal") -> CloakingPolicy:
        """Materialize a concrete optimal policy (Lemma 1 lets us pick
        any member of the optimal equivalence class)."""
        return policy_from_configuration(self.tree, self.configuration(), name)

    def _choose_split(self, node, u: int) -> Tuple[int, ...]:
        """Re-derive the children's pass-up counts behind ``vec[u]``."""
        kids = [self.solutions[c.node_id] for c in node.children]
        if len(kids) == 2:
            return self._choose_split_binary(node, u, kids)
        return self._choose_split_nary(node, u, kids)

    def _choose_split_binary(
        self, node, u: int, kids: Sequence[NodeSolution]
    ) -> Tuple[int, int]:
        a, b = kids
        ja, ca = a.domain()
        jb, cb = b.domain()
        total_j = ja[:, None] + jb[None, :]
        total_c = ca[:, None] + cb[None, :]
        area = node.rect.area
        value = total_c + (total_j - u) * area
        invalid = (total_j != u) & (total_j < u + self.k)
        value = np.where(invalid, _INF, value)
        flat = int(np.argmin(value))
        ia, ib = divmod(flat, value.shape[1])
        if value[ia, ib] == _INF:
            raise ReproError(
                f"extraction failed at node {node.node_id} (u = {u})"
            )
        return int(ja[ia]), int(jb[ib])

    def _choose_split_nary(
        self, node, u: int, kids: Sequence[NodeSolution]
    ) -> Tuple[int, ...]:
        """Plain recursive search over children domains.

        Used only for quad trees, which this library restricts to small
        reference instances; the production path is binary.
        """
        area = node.rect.area
        best_cost = _INF
        best: Optional[Tuple[int, ...]] = None
        domains = []
        for sol in kids:
            js, cs = sol.domain()
            domains.append(list(zip(js.tolist(), cs.tolist())))

        def recurse(idx: int, chosen: List[int], j_acc: int, c_acc: float):
            nonlocal best_cost, best
            if c_acc >= best_cost:
                return
            if idx == len(domains):
                if j_acc == u:
                    total = c_acc
                elif j_acc >= u + self.k:
                    total = c_acc + (j_acc - u) * area
                else:
                    return
                if total < best_cost:
                    best_cost = total
                    best = tuple(chosen)
                return
            for j, c in domains[idx]:
                recurse(idx + 1, chosen + [j], j_acc + j, c_acc + c)

        recurse(0, [], 0, 0.0)
        if best is None:
            raise ReproError(
                f"extraction failed at node {node.node_id} (u = {u})"
            )
        return best


def solve(tree, k: int, prune: bool = True) -> TreeSolution:
    """Run the optimized DP over ``tree`` for anonymity degree ``k``.

    ``prune=True`` applies the Lemma-5 cap — proven for the binary tree,
    and the default production configuration.  Pass ``prune=False`` to
    get the unpruned reference behaviour (used by tests and the ablation
    benchmark).
    """
    if k < 1:
        raise ReproError(f"k must be ≥ 1, got {k}")
    solutions: Dict[int, NodeSolution] = {}
    for node in tree.iter_postorder():
        child_solutions = [solutions[c.node_id] for c in node.children]
        solutions[node.node_id] = _solve_node(node, child_solutions, k, prune)
    return TreeSolution(tree, k, prune, solutions)


def solve_best_orientation(
    region, db, k: int, max_depth: int = 40, prune: bool = True
) -> TreeSolution:
    """Solve both static binary-tree orientations and keep the cheaper.

    The paper statically partitions quadrants into *vertical*
    semi-quadrants "for simplicity" but notes the implementation can
    choose between vertical and horizontal trees at run time.  Both
    orientations embed every quad-tree policy, so either is a valid
    (optimal for its vocabulary) policy-aware anonymization; picking the
    cheaper of the two is a free utility win at 2× solve cost.
    """
    from ..trees.binarytree import BinaryTree

    best: Optional[TreeSolution] = None
    best_cost = float("inf")
    for orientation in ("vertical", "horizontal"):
        tree = BinaryTree.build(
            region, db, k, max_depth=max_depth, orientation=orientation
        )
        solution = solve(tree, k, prune=prune)
        try:
            cost = solution.optimal_cost
        except NoFeasiblePolicyError:
            if best is None:
                best = solution
            continue
        if cost < best_cost:
            best, best_cost = solution, cost
    return best


def resolve_dirty(
    solution: TreeSolution, dirty: Set[int]
) -> Tuple[TreeSolution, int]:
    """Incrementally repair a solution after the tree changed (§IV
    "Incremental Maintenance of M").

    ``dirty`` is the node-id set reported by
    :meth:`~repro.trees.binarytree.BinaryTree.apply_moves`; it is closed
    under "ancestor of a change", so recomputing exactly those nodes in
    post-order restores a globally optimal DP.  Returns the repaired
    solution and the number of node recomputations performed.
    """
    tree, k, prune = solution.tree, solution.k, solution.prune
    live = {nid: sol for nid, sol in solution.solutions.items() if nid in tree.nodes}
    recomputed = 0
    for node in tree.iter_postorder():
        if node.node_id in live and node.node_id not in dirty:
            continue
        child_solutions = [live[c.node_id] for c in node.children]
        live[node.node_id] = _solve_node(node, child_solutions, k, prune)
        recomputed += 1
    return TreeSolution(tree, k, prune, live), recomputed
