"""The optimized bottom-up dynamic program of §V.

This is the production solver: ``Bulk_dp`` (Algorithm 1) restated over
the binary tree of quadrants/semi-quadrants, with the paper's three
optimizations applied:

1. **Binary tree** — each combine step involves two children, not four
   (§V "From Quad to Binary Trees").  The solver is nevertheless written
   generically over n-ary trees so the same code runs on quad trees for
   cross-validation and ablation.
2. **Lemma 5 pruning** — a node at depth ``h`` never passes up more than
   ``(k+1)·h`` locations (except "everything"), so per-node cost vectors
   have length O(kh) instead of O(|D|).
3. **Two-stage combine** (§V "From O(|B|(kh)^3) to O(|B|(kh)^2)") — the
   children's vectors are merged with a min-plus convolution into a
   ``temp`` structure once, and every parent entry is then answered from
   ``temp``'s suffix minima in O(1).

Per-node state is a :class:`NodeSolution`: ``vec[u]`` is the minimum
subtree cost over all k-summation configurations that pass ``u``
locations up to the ancestors, and the sentinel ``u = d(m)`` ("cloak
nothing anywhere below") always costs 0.  The optimum for the snapshot
is ``vec[0]`` at the root — the cheapest *complete* configuration.

Extraction re-derives, top-down, the child split that achieved each
chosen entry (recomputing the argmin is cheaper than storing
backpointers for every ``(m, u)`` pair) and produces a
:class:`~repro.core.configuration.Configuration`, from which a concrete
:class:`~repro.core.policy.CloakingPolicy` is materialized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .configuration import Configuration, policy_from_configuration
from .errors import NoFeasiblePolicyError, ReproError
from .policy import CloakingPolicy

__all__ = ["NodeSolution", "TreeSolution", "solve", "resolve_dirty"]

_INF = float("inf")


@dataclass
class NodeSolution:
    """DP state for one tree node.

    ``vec[u]`` = minimum cost of cloaking, within this subtree and in
    k-summation discipline, all but ``u`` of the subtree's locations
    (those ``u`` are passed up).  ``u = d`` is represented implicitly:
    passing everything up cloaks nothing below and costs exactly 0.
    """

    node_id: int
    d: int
    vec: np.ndarray  # shape (cap+1,); empty when d < k
    _domain: Optional[Tuple[np.ndarray, np.ndarray]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def cap(self) -> int:
        return len(self.vec) - 1

    def cost_at(self, u: int) -> float:
        """Cost for passing up exactly ``u`` locations (inf if impossible)."""
        if u == self.d:
            return 0.0
        if 0 <= u < len(self.vec):
            return float(self.vec[u])
        return _INF

    def domain(self) -> Tuple[np.ndarray, np.ndarray]:
        """All candidate ``u`` values with their costs (extraction helper).

        Cached: extraction calls this once per ``_choose_split`` along
        the descent, and a node can be consulted by every ancestor split.
        """
        if self._domain is None:
            js = np.concatenate([np.arange(len(self.vec)), [self.d]])
            costs = np.concatenate([self.vec, [0.0]])
            self._domain = (js.astype(np.int64), costs)
        return self._domain


def _cap_for(node, k: int, prune: bool) -> int:
    """Largest explicit ``u`` worth tracking for ``node``.

    ``u`` beyond ``d - k`` (other than the sentinel ``d``) is ruled out
    by k-summation; Lemma 5 additionally rules out ``u > (k+1)·h(m)``.
    Returns -1 when no explicit value is possible (then only the
    sentinel ``u = d`` exists).
    """
    cap = node.count - k
    if prune:
        cap = min(cap, (k + 1) * node.depth)
    return cap


def _min_plus(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Min-plus (tropical) convolution: out[j] = min_i a[i] + b[j-i]."""
    if len(a) == 0 or len(b) == 0:
        return np.empty(0, dtype=float)
    if len(a) > len(b):
        a, b = b, a
    out = np.full(len(a) + len(b) - 1, _INF)
    for i, ai in enumerate(a):
        if ai == _INF:
            continue
        seg = out[i : i + len(b)]
        np.minimum(seg, ai + b, out=seg)
    return out


def _aggregate_children(
    solutions: Sequence[NodeSolution],
) -> List[Tuple[int, np.ndarray]]:
    """Fold children solutions into ``temp`` *pieces*.

    The conceptual ``temp[j]`` of the paper — minimum total children
    cost when ``j`` locations are passed up to the parent — is kept as a
    union of *(offset, array)* pieces: ``temp[offset+i] ≤ array[i]``.
    Each child contributes its dense vector (convolved in) and its
    sentinel (a pure offset shift of ``d``), so folding ``n`` children
    yields at most ``2^n`` pieces — 4 for the binary tree.
    """
    pieces: List[Tuple[int, np.ndarray]] = [(0, np.zeros(1))]
    for sol in solutions:
        folded: List[Tuple[int, np.ndarray]] = []
        for offset, arr in pieces:
            if len(sol.vec):
                folded.append((offset, _min_plus(arr, sol.vec)))
            folded.append((offset + sol.d, arr))
        pieces = folded
    return pieces


def _node_step(
    node, pieces: Sequence[Tuple[int, np.ndarray]], k: int, cap: int
) -> np.ndarray:
    """Compute ``vec[u]`` for ``u = 0..cap`` from the children ``temp``.

    ``vec[u] = min( temp[u],  min_{j ≥ u+k} temp[j] + (j-u)·area )`` —
    either the node cloaks nothing (u = j) or it cloaks ``j-u ≥ k``
    locations at its own area.  The second term is answered via suffix
    minima of ``g[j] = temp[j] + j·area``, the two-stage trick of §V.
    """
    if cap < 0:
        return np.empty(0, dtype=float)
    area = node.rect.area
    us = np.arange(cap + 1)
    vec = np.full(cap + 1, _INF)
    thresholds = us + k
    for offset, arr in pieces:
        if len(arr) == 0:
            continue
        # Equality contribution: temp[u] for u inside this piece.
        lo = max(offset, 0)
        hi = min(offset + len(arr), cap + 1)
        if lo < hi:
            np.minimum(
                vec[lo:hi], arr[lo - offset : hi - offset], out=vec[lo:hi]
            )
        # Cloak-here contribution via suffix minima of g.
        g = arr + (offset + np.arange(len(arr))) * area
        suffix = np.minimum.accumulate(g[::-1])[::-1]
        idx = thresholds - offset
        valid = idx < len(arr)
        if not valid.any():
            continue
        clipped = np.clip(idx, 0, len(arr) - 1)
        candidate = np.where(valid, suffix[clipped] - us * area, _INF)
        np.minimum(vec, candidate, out=vec)
    return vec


def _split_scan(
    u: int,
    ja: np.ndarray,
    ca: np.ndarray,
    jb: np.ndarray,
    cb: np.ndarray,
    area: float,
    k: int,
    node_id: Optional[int] = None,
) -> Tuple[int, int]:
    """Re-derive the ``(j_a, j_b)`` split behind a parent's ``vec[u]``.

    The admissible pairs satisfy ``j_a + j_b = u`` (nothing cloaked at
    the parent) or ``j_a + j_b ≥ u + k`` (``k``-summation cloak at the
    parent), minimizing ``c_a + c_b + (j_a + j_b − u)·area``.  Instead
    of the |dom_a|×|dom_b| outer product this scans dom_a once,
    answering each row's best partner from suffix minima of
    ``h_b = c_b + j_b·area`` — O(|dom_a| + |dom_b|) time *and* memory,
    which matters with ``prune=False`` where domains are O(|D|).
    """
    nb = len(jb)
    hb = cb + jb * area
    # Suffix minima of h_b, with the *leftmost* achieving index: a
    # position is an achiever when it equals its own suffix minimum, and
    # the first achiever ≥ i realizes min(h_b[i:]).
    suffix_val = np.minimum.accumulate(hb[::-1])[::-1]
    achiever = np.where(hb == suffix_val, np.arange(nb), nb)
    suffix_arg = np.minimum.accumulate(achiever[::-1])[::-1]
    suffix_val = np.append(suffix_val, _INF)
    suffix_arg = np.append(suffix_arg, nb)
    # Cloak-at-parent candidate per row: the first j_b ≥ u + k − j_a.
    ib0 = np.searchsorted(jb, u + k - ja, side="left")
    cand = ca + (ja - u) * area + suffix_val[ib0]
    cand_ib = suffix_arg[ib0]
    # Equality candidate per row: j_b = u − j_a exactly (dense entries
    # index themselves; the sentinel sits at the last domain slot).
    target = u - ja
    n_dense = nb - 1
    eq_ib = np.where(
        (target >= 0) & (target < n_dense),
        np.clip(target, 0, nb - 1),
        np.where(target == jb[-1], nb - 1, -1),
    )
    eq_val = np.where(eq_ib >= 0, ca + cb[np.clip(eq_ib, 0, nb - 1)], _INF)
    use_eq = eq_val < cand
    best = np.where(use_eq, eq_val, cand)
    best_ib = np.where(use_eq, eq_ib, cand_ib)
    ia = int(np.argmin(best))
    if not best[ia] < _INF:
        raise ReproError(
            f"extraction failed at node {node_id} (u = {u})"
        )
    return int(ja[ia]), int(jb[int(best_ib[ia])])


def _solve_node(node, child_solutions: Sequence[NodeSolution], k: int, prune: bool) -> NodeSolution:
    """DP step for a single node (leaf or internal)."""
    cap = _cap_for(node, k, prune)
    if node.is_leaf:
        if cap < 0:
            vec = np.empty(0, dtype=float)
        else:
            # Cloak d-u ≥ k locations here, at this leaf's area.
            us = np.arange(cap + 1)
            vec = (node.count - us) * node.rect.area
        return NodeSolution(node.node_id, node.count, vec.astype(float))
    pieces = _aggregate_children(child_solutions)
    vec = _node_step(node, pieces, k, cap)
    return NodeSolution(node.node_id, node.count, vec)


class TreeSolution:
    """The completed DP over a tree, ready for cost queries / extraction."""

    def __init__(self, tree, k: int, prune: bool, solutions: Dict[int, NodeSolution]):
        self.tree = tree
        self.k = k
        self.prune = prune
        self.solutions = solutions

    @property
    def root_solution(self) -> NodeSolution:
        return self.solutions[self.tree.root.node_id]

    @property
    def optimal_cost(self) -> float:
        """Cost of the cheapest policy-aware k-anonymous policy.

        Raises :class:`NoFeasiblePolicyError` when none exists (fewer
        than k users in the snapshot).
        """
        root = self.root_solution
        if root.d == 0:
            return 0.0
        cost = root.cost_at(0)
        if cost == _INF:
            raise NoFeasiblePolicyError(
                f"no policy-aware {self.k}-anonymous policy exists "
                f"(|D| = {root.d})"
            )
        return cost

    # -- extraction ---------------------------------------------------------------

    def configuration(self) -> Configuration:
        """Extract one minimum-cost complete configuration (top-down)."""
        __ = self.optimal_cost  # feasibility gate
        values: Dict[int, int] = {}

        def descend(node, u: int) -> None:
            values[node.node_id] = u
            if node.is_leaf:
                return
            if u == node.count:
                # Sentinel: every child passes everything up.
                for child in node.children:
                    descend(child, child.count)
                return
            split = self._choose_split(node, u)
            for child, child_u in zip(node.children, split):
                descend(child, child_u)

        descend(self.tree.root, 0)
        return Configuration(self.tree, values)

    def policy(self, name: str = "policy-aware-optimal") -> CloakingPolicy:
        """Materialize a concrete optimal policy (Lemma 1 lets us pick
        any member of the optimal equivalence class)."""
        return policy_from_configuration(self.tree, self.configuration(), name)

    def _choose_split(self, node, u: int) -> Tuple[int, ...]:
        """Re-derive the children's pass-up counts behind ``vec[u]``."""
        kids = [self.solutions[c.node_id] for c in node.children]
        if len(kids) == 2:
            return self._choose_split_binary(node, u, kids)
        return self._choose_split_nary(node, u, kids)

    def _choose_split_binary(
        self, node, u: int, kids: Sequence[NodeSolution]
    ) -> Tuple[int, int]:
        a, b = kids
        ja, ca = a.domain()
        jb, cb = b.domain()
        return _split_scan(
            u, ja, ca, jb, cb, node.rect.area, self.k, node_id=node.node_id
        )

    def _choose_split_nary(
        self, node, u: int, kids: Sequence[NodeSolution]
    ) -> Tuple[int, ...]:
        """Plain recursive search over children domains.

        Used only for quad trees, which this library restricts to small
        reference instances; the production path is binary.
        """
        area = node.rect.area
        best_cost = _INF
        best: Optional[Tuple[int, ...]] = None
        domains = []
        for sol in kids:
            js, cs = sol.domain()
            domains.append(list(zip(js.tolist(), cs.tolist())))

        def recurse(idx: int, chosen: List[int], j_acc: int, c_acc: float):
            nonlocal best_cost, best
            if c_acc >= best_cost:
                return
            if idx == len(domains):
                if j_acc == u:
                    total = c_acc
                elif j_acc >= u + self.k:
                    total = c_acc + (j_acc - u) * area
                else:
                    return
                if total < best_cost:
                    best_cost = total
                    best = tuple(chosen)
                return
            for j, c in domains[idx]:
                recurse(idx + 1, chosen + [j], j_acc + j, c_acc + c)

        recurse(0, [], 0, 0.0)
        if best is None:
            raise ReproError(
                f"extraction failed at node {node.node_id} (u = {u})"
            )
        return best


def _solve_object(tree, k: int, prune: bool) -> TreeSolution:
    """The node-at-a-time object-graph DP (cross-check oracle)."""
    solutions: Dict[int, NodeSolution] = {}
    for node in tree.iter_postorder():
        child_solutions = [solutions[c.node_id] for c in node.children]
        solutions[node.node_id] = _solve_node(node, child_solutions, k, prune)
    return TreeSolution(tree, k, prune, solutions)


def solve(tree, k: int, prune: bool = True, engine: str = "flat") -> TreeSolution:
    """Run the optimized DP over ``tree`` for anonymity degree ``k``.

    ``prune=True`` applies the Lemma-5 cap — proven for the binary tree,
    and the default production configuration.  Pass ``prune=False`` to
    get the unpruned reference behaviour (used by tests and the ablation
    benchmark).

    ``engine`` selects the evaluator: ``"flat"`` (default) compiles the
    tree to structure-of-arrays form and runs the level-batched kernels
    of :mod:`repro.core.flat_dp` — bit-identical costs, much faster;
    ``"object"`` forces the original node-at-a-time walk (the oracle the
    property tests compare against).  Non-binary trees (the quad-tree
    reference instances) always take the object path.
    """
    if k < 1:
        raise ReproError(f"k must be ≥ 1, got {k}")
    if engine not in ("flat", "object"):
        raise ReproError(f"unknown solver engine {engine!r}")
    if engine == "flat":
        from .flat_dp import is_binary_tree, solve_flat

        if is_binary_tree(tree):
            return solve_flat(tree, k, prune=prune)
    return _solve_object(tree, k, prune)


def solve_best_orientation(
    region,
    db,
    k: int,
    max_depth: int = 40,
    prune: bool = True,
    pool=None,
    engine: str = "flat",
) -> TreeSolution:
    """Solve both static binary-tree orientations and keep the cheaper.

    The paper statically partitions quadrants into *vertical*
    semi-quadrants "for simplicity" but notes the implementation can
    choose between vertical and horizontal trees at run time.  Both
    orientations embed every quad-tree policy, so either is a valid
    (optimal for its vocabulary) policy-aware anonymization; picking the
    cheaper of the two is a free utility win at 2× solve cost.

    The two builds share one row index (user ids / row map / coords) —
    the leaf partition itself differs per orientation, but the point
    data does not.  With ``pool`` (any ``concurrent.futures`` executor,
    e.g. the parallel engine's process pool) the two DP runs execute
    concurrently: each orientation is compiled to flat arrays, shipped
    to a worker, and only the cost vectors come back.
    """
    from ..trees.binarytree import BinaryTree

    trees = []
    shared_index = None
    for orientation in ("vertical", "horizontal"):
        tree = BinaryTree.build(
            region,
            db,
            k,
            max_depth=max_depth,
            orientation=orientation,
            shared_index=shared_index,
        )
        if shared_index is None:
            shared_index = (tree.user_ids, tree.user_row, tree.coords)
        trees.append(tree)

    if pool is not None and engine == "flat":
        from ..trees.flat import FlatTree
        from .flat_dp import solution_from_vecs, solve_arrays

        flats = [FlatTree.compile(t) for t in trees]
        futures = [pool.submit(solve_arrays, f, k, prune) for f in flats]
        candidates = [
            solution_from_vecs(tree, flat, fut.result(), k, prune)
            for tree, flat, fut in zip(trees, flats, futures)
        ]
    else:
        candidates = [solve(t, k, prune=prune, engine=engine) for t in trees]

    best: Optional[TreeSolution] = None
    best_cost = float("inf")
    for solution in candidates:
        try:
            cost = solution.optimal_cost
        except NoFeasiblePolicyError:
            if best is None:
                best = solution
            continue
        if cost < best_cost:
            best, best_cost = solution, cost
    return best


def resolve_dirty(
    solution: TreeSolution, dirty: Set[int]
) -> Tuple[TreeSolution, int]:
    """Incrementally repair a solution after the tree changed (§IV
    "Incremental Maintenance of M").

    ``dirty`` is the node-id set reported by
    :meth:`~repro.trees.binarytree.BinaryTree.apply_moves`; it is closed
    under "ancestor of a change", so recomputing exactly those nodes in
    post-order restores a globally optimal DP.  Returns the repaired
    solution and the number of node recomputations performed.

    Flat-engine solutions are repaired by the level-batched, memoized
    path of :mod:`repro.core.flat_dp`; it recomputes exactly the same
    node set this object walk would.
    """
    from .flat_dp import FlatTreeSolution, resolve_dirty_flat

    if isinstance(solution, FlatTreeSolution):
        return resolve_dirty_flat(solution, dirty)
    tree, k, prune = solution.tree, solution.k, solution.prune
    live = {nid: sol for nid, sol in solution.solutions.items() if nid in tree.nodes}
    recomputed = 0
    for node in tree.iter_postorder():
        if node.node_id in live and node.node_id not in dirty:
            continue
        child_solutions = [live[c.node_id] for c in node.children]
        live[node.node_id] = _solve_node(node, child_solutions, k, prune)
        recomputed += 1
    return TreeSolution(tree, k, prune, live), recomputed
