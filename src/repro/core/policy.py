"""Cloaking policies and their cost (Definition 4 and §IV).

Following the paper's footnote 1, a bulk policy is represented as a
function from *user locations* to cloaks — equivalently, a per-snapshot
mapping ``user_id → region``.  Anonymizing a service request is then a
lookup plus payload pass-through, so serving a request is O(1) after the
bulk computation.

``Cost(P, D)`` (§IV) is the total cloak area over the hypothetical
workload in which every user issues exactly one request; minimizing it
maximizes utility (smaller cloaks → cheaper LBS-side range queries and
client-side filtering).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple, Union

from .errors import PolicyError, UnknownUserError
from .geometry import Circle, Rect
from .requests import AnonymizedRequest, ServiceRequest, request_id_factory

__all__ = ["CloakingPolicy"]

Region = Union[Rect, Circle]


class CloakingPolicy:
    """A per-snapshot masking policy: each user gets one cloak.

    Instances are built by anonymization algorithms (the optimal DP, the
    k-inside baselines, Casper, ...) for one location database snapshot.
    The mapping is total over the snapshot's users — the paper compares
    policies under the workload where *every* user sends a request.
    """

    def __init__(
        self,
        cloaks: Mapping[str, Region],
        db,
        name: str = "policy",
    ):
        """``cloaks`` maps every user id of ``db`` to its cloak.

        Raises :class:`PolicyError` when a user is missing, unknown, or
        the cloak fails the masking requirement of Definition 4
        (the user's location must lie inside her cloak).
        """
        self.name = name
        self.db = db
        self._cloaks: Dict[str, Region] = {}
        for user_id, region in cloaks.items():
            location = db.location_of(user_id)
            if location is None:
                raise PolicyError(f"policy cloaks unknown user {user_id!r}")
            if not region.contains(location):
                raise PolicyError(
                    f"policy is not masking: user {user_id!r} at {location} "
                    f"outside cloak {region}"
                )
            self._cloaks[str(user_id)] = region
        missing = [uid for uid in db.user_ids() if uid not in self._cloaks]
        if missing:
            raise PolicyError(
                f"policy does not cover {len(missing)} users "
                f"(first: {missing[:3]!r})"
            )
        # Default stream of request ids when the caller does not inject
        # its own (e.g. the CSP pipeline passes a shared one).
        self._default_rid_factory = request_id_factory()

    # -- the Definition 4 interface ---------------------------------------------

    def cloak_for(self, user_id: str) -> Region:
        """The cloak assigned to ``user_id``."""
        try:
            return self._cloaks[str(user_id)]
        except KeyError:
            raise UnknownUserError(f"no cloak for user {user_id!r}") from None

    def anonymize(
        self, request: ServiceRequest, next_request_id=None
    ) -> AnonymizedRequest:
        """Apply the policy to a service request (Definition 4).

        The request must be valid w.r.t. the snapshot this policy was
        built for — the CSP constructs requests from MPC locations, so an
        out-of-date location means the wrong snapshot's policy is being
        used.
        """
        if not request.is_valid_for(self.db):
            raise PolicyError(
                f"request from {request.user_id!r} at {request.location} is "
                "not valid w.r.t. this policy's location snapshot"
            )
        if next_request_id is None:
            next_request_id = self._default_rid_factory
        return AnonymizedRequest(
            request_id=next_request_id(),
            cloak=self.cloak_for(request.user_id),
            payload=request.payload,
        )

    # -- analysis ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._cloaks)

    def items(self) -> Iterable[Tuple[str, Region]]:
        return self._cloaks.items()

    def cost(self) -> float:
        """``Cost(P, D)``: total cloak area if every user sends once."""
        return sum(region.area for region in self._cloaks.values())

    def average_cloak_area(self) -> float:
        """Mean cloak area per user — the Figure 5(a) metric."""
        if not self._cloaks:
            return 0.0
        return self.cost() / len(self._cloaks)

    def groups(self) -> Dict[Region, List[str]]:
        """Users grouped by their assigned cloak.

        For a deterministic location-only policy, the group of a cloak is
        exactly the candidate-sender set a *policy-aware* attacker can
        reconstruct (Lemma 3 made operational) — so group sizes decide
        policy-aware sender k-anonymity.
        """
        grouped: Dict[Region, List[str]] = {}
        for user_id, region in self._cloaks.items():
            grouped.setdefault(region, []).append(user_id)
        return grouped

    def min_group_size(self) -> int:
        """Smallest cloak group — the policy-aware anonymity level."""
        groups = self.groups()
        if not groups:
            return 0
        return min(len(users) for users in groups.values())

    def min_inside_count(self) -> int:
        """Smallest number of users *inside* any used cloak — the
        policy-unaware anonymity level (k-inside degree)."""
        if not self._cloaks:
            return 0
        counts = []
        for region in set(self._cloaks.values()):
            inside = sum(
                1 for __, p in self.db.items() if region.contains(p)
            )
            counts.append(inside)
        return min(counts)

    def restricted_to(self, user_ids: Iterable[str]) -> "CloakingPolicy":
        """The policy restricted to a subset of users (helper for the
        parallel master policy)."""
        subset = list(user_ids)
        return CloakingPolicy(
            {uid: self.cloak_for(uid) for uid in subset},
            self.db.subset(subset),
            name=self.name,
        )

    def __repr__(self) -> str:
        return f"CloakingPolicy({self.name!r}, users={len(self)})"
