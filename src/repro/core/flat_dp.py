"""Level-synchronous flat-array DP engine (§V, Theorem 2).

Same recurrence as :mod:`repro.core.binary_dp` — Lemma-5-capped cost
vectors, min-plus child combine, suffix-minima answer for the parent —
but evaluated over the :class:`~repro.trees.flat.FlatTree`
structure-of-arrays representation, one *level* at a time:

* all leaves of a level initialize in one broadcast expression;
* all internal nodes of a level run a single **batched min-plus**
  (children vectors padded to the level's Lemma-5 width — ``kh`` is
  small, so pad-to-max batching is cheap) and a single batched
  suffix-minima pass per ``temp`` piece.

Every floating-point candidate is produced by the *same* arithmetic
expression the object solver uses (one add for min-plus terms, one
multiply-by-area per cloak term), and minima are order-independent, so
the engine is **bit-identical** to the object solver — enforced by the
property tests and relied on by the ``engine="flat"`` default switch.

A :class:`SubtreeMemo` hash-conses solved subtrees: two subtrees with
equal ``(count, Lemma-5 cap, area, child fingerprints)`` have equal
cost vectors by configuration equivalence (Lemma 1 — the DP never looks
at *which* points are where, only how many per node of what area), so
identical subtrees — ubiquitous in uniform regions, and re-materialized
constantly by ``resolve_dirty`` — are solved once and shared.

The module also provides standalone (object-tree-free) extraction so a
parallel worker can turn a payload-carrying flat tree straight into a
``{user: cloak}`` mapping — the zero-copy sharding path of
:mod:`repro.parallel.engine`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..trees.flat import FlatTree
from .binary_dp import NodeSolution, TreeSolution, _split_scan
from .errors import NoFeasiblePolicyError, ReproError

__all__ = [
    "SubtreeMemo",
    "FlatTreeSolution",
    "solve_flat",
    "resolve_dirty_flat",
    "solve_arrays",
    "solution_from_vecs",
    "rehydrate_solution",
    "extract_cloaks",
    "is_binary_tree",
]

_INF = float("inf")


def is_binary_tree(tree) -> bool:
    """True when every node has 0 or 2 children (flat-engine eligible)."""
    return all(
        len(node.children) in (0, 2) for node in tree.root.iter_subtree()
    )


class SubtreeMemo:
    """Hash-consed subtree fingerprints → solved cost vectors.

    A fingerprint token is a small int; the key interning makes nested
    fingerprints O(1) to hash (child tokens instead of child tuples).
    Keys carry the **exact** float64 area — the finest quantization that
    preserves the bit-identity contract: sharing between areas that are
    merely close would smuggle one subtree's rounding into another's
    optimum.  One memo is valid for one ``(k, prune)`` pair.
    """

    def __init__(self, k: int, prune: bool):
        self.k = k
        self.prune = prune
        self._tokens: Dict[tuple, int] = {}
        self._vecs: Dict[int, np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._vecs)

    def token_for(self, key: tuple) -> int:
        token = self._tokens.get(key)
        if token is None:
            token = len(self._tokens)
            self._tokens[key] = token
        return token

    def lookup(self, token: int) -> Optional[np.ndarray]:
        vec = self._vecs.get(token)
        if vec is not None:
            self.hits += 1
        return vec

    def store(self, token: int, vec: np.ndarray) -> None:
        vec.setflags(write=False)  # shared across nodes/snapshots
        self.misses += 1
        self._vecs[token] = vec


def _caps_for(flat: FlatTree, k: int, prune: bool) -> np.ndarray:
    """Vectorized :func:`binary_dp._cap_for` over the whole tree."""
    caps = flat.count - k
    if prune:
        caps = np.minimum(caps, (k + 1) * flat.depth)
    return caps


def _min_plus_batch(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Row-wise min-plus convolution of INF-padded batches.

    ``C[r, j] = min_i A[r, i] + B[r, j-i]`` — the object solver's
    ``_min_plus`` with the Python loop hoisted out of the per-node path:
    one iteration per *column of the batch's shorter child* (addition
    commutes exactly, so swapping operands is bit-safe), not per
    (node, entry).  Padding is INF, and INF + x = INF never wins a min.
    """
    if A.shape[1] > B.shape[1]:
        A, B = B, A
    m, la = A.shape
    lb = B.shape[1]
    C = np.empty((m, la + lb - 1))
    C[:, :lb] = A[:, :1] + B
    C[:, lb:] = _INF
    tmp = np.empty((m, lb))
    for i in range(1, la):
        seg = C[:, i : i + lb]
        np.add(A[:, i : i + 1], B, out=tmp)
        np.minimum(seg, tmp, out=seg)
    return C


def _apply_piece(
    vec: np.ndarray,
    P: np.ndarray,
    off: Optional[np.ndarray],
    area: np.ndarray,
    us: np.ndarray,
    k: int,
) -> None:
    """Fold one batched ``temp`` piece into the parents' vectors.

    Exactly the two contributions of :func:`binary_dp._node_step`,
    batched: the equality term ``temp[u]`` and the cloak-here term
    answered from suffix minima of ``g[j] = piece[j] + (offset+j)·area``.
    Rows shorter than the batch width arrive INF-padded (and INF + x
    never wins a min), so only indices outside the array need masking.
    ``off=None`` marks the all-zero-offset (min-plus) piece, whose
    gathers degenerate to a slice and a column take.
    """
    if P.shape[1] == 0:
        return
    m, L = P.shape
    usr = us[None, :]
    areac = area[:, None]
    if off is None:
        # Equality: temp[u] is just column u.
        w = min(L, len(us))
        np.minimum(vec[:, :w], P[:, :w], out=vec[:, :w])
        # Cloak-here: one suffix-minima query column per u, same for
        # every row of the batch.
        g = P + np.arange(L)[None, :] * areac
        suffix = np.minimum.accumulate(g[:, ::-1], axis=1)[:, ::-1]
        idx2 = us + k
        inb2 = idx2 < L
        best = suffix[:, np.where(inb2, idx2, 0)]
        np.minimum(
            vec, np.where(inb2[None, :], best - usr * areac, _INF), out=vec
        )
        return
    rows = np.arange(m)[:, None]
    offc = off[:, None]
    # Equality contribution: vec[u] ≤ temp[u].
    idx = usr - offc
    inb = (idx >= 0) & (idx < L)
    gathered = P[rows, np.where(inb, idx, 0)]
    np.minimum(vec, np.where(inb, gathered, _INF), out=vec)
    # Cloak-here contribution via suffix minima of g.
    g = P + (offc + np.arange(L)[None, :]) * areac
    suffix = np.minimum.accumulate(g[:, ::-1], axis=1)[:, ::-1]
    idx2 = usr + k - offc
    inb2 = idx2 < L
    best = suffix[rows, np.where(inb2, np.maximum(idx2, 0), 0)]
    candidate = np.where(inb2, best - usr * areac, _INF)
    np.minimum(vec, candidate, out=vec)


def _pad_rows(vec_list: Sequence[np.ndarray], width: int) -> np.ndarray:
    m = len(vec_list)
    out = np.full((m, max(width, 0)), _INF)
    if m and width > 0:
        lens = np.fromiter((len(v) for v in vec_list), np.int64, m)
        mask = np.arange(width)[None, :] < lens[:, None]
        out[mask] = np.concatenate(vec_list)
    return out


def _solve_levels(
    flat: FlatTree,
    k: int,
    prune: bool,
    memo: Optional[SubtreeMemo] = None,
    vecs: Optional[List[Optional[np.ndarray]]] = None,
    tokens: Optional[List[Optional[int]]] = None,
    todo: Optional[np.ndarray] = None,
) -> Tuple[List[np.ndarray], List[int]]:
    """Run the DP bottom-up, one level per kernel batch.

    ``vecs``/``tokens``/``todo`` support incremental repair: indices
    with ``todo[i] = False`` must arrive pre-filled (clean nodes carried
    over from the previous snapshot) and are left untouched.
    """
    n = flat.n_nodes
    caps = _caps_for(flat, k, prune)
    if vecs is None:
        vecs = [None] * n
    if tokens is None:
        tokens = [None] * n
    if todo is None:
        todo = np.ones(n, dtype=bool)
    empty = np.empty(0, dtype=float)
    left_l = flat.left.tolist()
    right_l = flat.right.tolist()
    caps_l = caps.tolist()
    full = bool(todo.all())
    for h in range(flat.height, -1, -1):
        lo, hi = flat.level(h)
        if full:
            pending = range(lo, hi)
        else:
            pending = [i for i in range(lo, hi) if todo[i]]
            if not pending:
                continue
        # Fingerprint every pending node; serve memo hits immediately.
        miss_leaves: List[int] = []
        miss_internal: List[int] = []
        for i in pending:
            li = left_l[i]
            if memo is not None:
                if li < 0:
                    key = (flat.count[i], caps[i], flat.area[i])
                else:
                    key = (
                        flat.count[i],
                        caps[i],
                        flat.area[i],
                        tokens[li],
                        tokens[right_l[i]],
                    )
                token = memo.token_for(key)
                tokens[i] = token
                cached = memo.lookup(token)
                if cached is not None:
                    vecs[i] = cached
                    continue
            if caps_l[i] < 0:
                vecs[i] = empty
                if memo is not None:
                    memo.store(tokens[i], empty)
            elif li < 0:
                miss_leaves.append(i)
            else:
                miss_internal.append(i)
        if miss_leaves:
            sel = np.asarray(miss_leaves)
            width = int(caps[sel].max()) + 1
            us = np.arange(width)
            batch = (flat.count[sel, None] - us[None, :]) * flat.area[sel, None]
            for r, i in enumerate(miss_leaves):
                vecs[i] = batch[r, : caps_l[i] + 1].astype(float)
                if memo is not None:
                    memo.store(tokens[i], vecs[i])
        if miss_internal:
            # Bucket by child-width class (powers of two): pad-to-max
            # batching is only cheap among similarly sized nodes, and a
            # level mixes kh-wide near-root nodes with near-empty ones.
            buckets: Dict[Tuple[int, int], List[int]] = {}
            for i in miss_internal:
                key = (
                    len(vecs[left_l[i]]).bit_length(),
                    len(vecs[right_l[i]]).bit_length(),
                )
                buckets.setdefault(key, []).append(i)
            for bucket in buckets.values():
                _solve_internal_batch(
                    flat, bucket, caps, k, vecs, tokens, memo
                )
    return vecs, tokens


def _solve_internal_batch(
    flat: FlatTree,
    batch: List[int],
    caps: np.ndarray,
    k: int,
    vecs: List[Optional[np.ndarray]],
    tokens: List[Optional[int]],
    memo: Optional[SubtreeMemo],
) -> None:
    """Solve one batch of same-width-class internal nodes in fused kernels."""
    sel = np.asarray(batch)
    ls, rs = flat.left[sel], flat.right[sel]
    lvecs = [vecs[i] for i in ls]
    rvecs = [vecs[i] for i in rs]
    la = np.fromiter((len(v) for v in lvecs), np.int64, len(sel))
    lb = np.fromiter((len(v) for v in rvecs), np.int64, len(sel))
    da, db = flat.count[ls], flat.count[rs]
    area = flat.area[sel]
    width = int(caps[sel].max()) + 1
    us = np.arange(width)
    vec = np.full((len(sel), width), _INF)
    A = _pad_rows(lvecs, int(la.max()))
    B = _pad_rows(rvecs, int(lb.max()))
    if A.shape[1] and B.shape[1]:
        C = _min_plus_batch(A, B)
        _apply_piece(vec, C, None, area, us, k)
    _apply_piece(vec, A, db, area, us, k)
    _apply_piece(vec, B, da, area, us, k)
    _apply_piece(vec, np.zeros((len(sel), 1)), da + db, area, us, k)
    for r, i in enumerate(batch):
        vecs[i] = vec[r, : caps[i] + 1].copy()
        if memo is not None:
            memo.store(tokens[i], vecs[i])


def solve_arrays(
    flat: FlatTree, k: int, prune: bool = True, memo: Optional[SubtreeMemo] = None
) -> List[np.ndarray]:
    """Solve a compiled flat tree; returns per-node cost vectors.

    The standalone entry point used by parallel workers (and the
    orientation pool): no object tree required.
    """
    if k < 1:
        raise ReproError(f"k must be ≥ 1, got {k}")
    vecs, __ = _solve_levels(flat, k, prune, memo=memo)
    return vecs


class FlatTreeSolution(TreeSolution):
    """A :class:`TreeSolution` produced by the flat engine.

    Fully API-compatible (extraction, cost queries) — it carries the
    compiled arrays and the subtree memo so incremental repair can keep
    batching and keep sharing across snapshots.
    """

    def __init__(
        self,
        tree,
        k: int,
        prune: bool,
        solutions: Dict[int, NodeSolution],
        flat: FlatTree,
        memo: SubtreeMemo,
        tokens: Dict[int, int],
    ):
        super().__init__(tree, k, prune, solutions)
        self.flat = flat
        self.memo = memo
        self.tokens = tokens


def solution_from_vecs(
    tree, flat: FlatTree, vecs: Sequence[np.ndarray], k: int, prune: bool
) -> FlatTreeSolution:
    """Wrap pool-computed cost vectors (``solve_arrays`` output) into a
    full :class:`FlatTreeSolution` — used by the orientation pool path,
    where fingerprint tokens never crossed the process boundary."""
    solutions = {
        int(flat.ids[i]): NodeSolution(int(flat.ids[i]), int(flat.count[i]), vecs[i])
        for i in range(flat.n_nodes)
    }
    return FlatTreeSolution(
        tree, k, prune, solutions, flat, SubtreeMemo(k, prune), {}
    )


def rehydrate_solution(
    tree, flat: FlatTree, vecs: Sequence[np.ndarray], k: int, prune: bool
) -> FlatTreeSolution:
    """Rebuild a full :class:`FlatTreeSolution` from persisted vectors.

    The warm-restart path of the recovery subsystem: a restarted process
    has the cost vectors (journalled to disk) but neither the subtree
    memo nor the fingerprint tokens, which only ever lived in memory.
    Unlike :func:`solution_from_vecs` (whose empty memo is fine for a
    throwaway extraction but would let distinct clean subtrees alias
    under a shared ``None`` token during repair), this recomputes every
    node's fingerprint bottom-up exactly as ``_solve_levels`` would and
    seeds the memo with the persisted vectors — so a subsequent
    :func:`resolve_dirty_flat` batches and shares exactly as if the
    process had never died.
    """
    memo = SubtreeMemo(k, prune)
    caps = _caps_for(flat, k, prune)
    n = flat.n_nodes
    tokens: List[Optional[int]] = [None] * n
    left_l = flat.left.tolist()
    right_l = flat.right.tolist()
    for h in range(flat.height, -1, -1):
        lo, hi = flat.level(h)
        for i in range(lo, hi):
            li = left_l[i]
            if li < 0:
                key = (flat.count[i], caps[i], flat.area[i])
            else:
                key = (
                    flat.count[i],
                    caps[i],
                    flat.area[i],
                    tokens[li],
                    tokens[right_l[i]],
                )
            token = memo.token_for(key)
            tokens[i] = token
            if memo._vecs.get(token) is None:
                memo.store(token, np.asarray(vecs[i], dtype=float))
    solutions = {
        int(flat.ids[i]): NodeSolution(
            int(flat.ids[i]),
            int(flat.count[i]),
            np.asarray(vecs[i], dtype=float),
        )
        for i in range(n)
    }
    token_map = {int(flat.ids[i]): tokens[i] for i in range(n)}
    return FlatTreeSolution(tree, k, prune, solutions, flat, memo, token_map)


def solve_flat(
    tree, k: int, prune: bool = True, memo: Optional[SubtreeMemo] = None
) -> FlatTreeSolution:
    """Compile ``tree`` and run the level-batched DP over it."""
    if k < 1:
        raise ReproError(f"k must be ≥ 1, got {k}")
    flat = FlatTree.compile(tree)
    memo = memo or SubtreeMemo(k, prune)
    vecs, tokens = _solve_levels(flat, k, prune, memo=memo)
    solutions = {
        int(flat.ids[i]): NodeSolution(int(flat.ids[i]), int(flat.count[i]), vecs[i])
        for i in range(flat.n_nodes)
    }
    token_map = {int(flat.ids[i]): tokens[i] for i in range(flat.n_nodes)}
    return FlatTreeSolution(tree, k, prune, solutions, flat, memo, token_map)


def resolve_dirty_flat(
    solution: FlatTreeSolution, dirty: Set[int]
) -> Tuple[FlatTreeSolution, int]:
    """Incremental repair on the flat engine (§IV over arrays).

    Recomputes exactly the nodes the object path would — dirty ids plus
    newly materialized ones — but level-batched, and with every
    recomputation first probing the subtree memo: a node whose subtree
    fingerprint was ever solved before (same counts/areas/shape) reuses
    the stored vector outright.
    """
    tree, k, prune = solution.tree, solution.k, solution.prune
    memo = solution.memo
    flat, __ = solution.flat.refresh(tree, dirty)
    n = flat.n_nodes
    vecs: List[Optional[np.ndarray]] = [None] * n
    tokens: List[Optional[int]] = [None] * n
    todo = np.ones(n, dtype=bool)
    for i in range(n):
        nid = int(flat.ids[i])
        if nid in dirty:
            continue
        prev = solution.solutions.get(nid)
        if prev is None:
            continue
        vecs[i] = prev.vec
        tokens[i] = solution.tokens.get(nid)
        todo[i] = False
    recomputed = int(todo.sum())
    _solve_levels(flat, k, prune, memo=memo, vecs=vecs, tokens=tokens, todo=todo)
    solutions: Dict[int, NodeSolution] = {}
    token_map: Dict[int, int] = {}
    for i in range(n):
        nid = int(flat.ids[i])
        if todo[i]:
            solutions[nid] = NodeSolution(nid, int(flat.count[i]), vecs[i])
        else:
            solutions[nid] = solution.solutions[nid]
        token_map[nid] = tokens[i]
    return (
        FlatTreeSolution(tree, k, prune, solutions, flat, memo, token_map),
        recomputed,
    )


# -- standalone extraction (worker side) ---------------------------------------


def _domain(vec: np.ndarray, d: int) -> Tuple[np.ndarray, np.ndarray]:
    js = np.concatenate([np.arange(len(vec)), [d]]).astype(np.int64)
    costs = np.concatenate([vec, [0.0]])
    return js, costs


def _choose_split_arrays(
    u: int,
    va: np.ndarray,
    da: int,
    vb: np.ndarray,
    db: int,
    area: float,
    k: int,
) -> Tuple[int, int]:
    """Split re-derivation over raw vectors (workers have no
    :class:`NodeSolution` objects) — same suffix-minima scan as the
    object extraction path."""
    ja, ca = _domain(va, da)
    jb, cb = _domain(vb, db)
    return _split_scan(u, ja, ca, jb, cb, area, k)


def _pad_domains(
    vec_list: Sequence[np.ndarray], ds: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batch the extraction domains of many nodes: INF-padded cost rows
    (dense vector entries followed by the 0-cost sentinel) plus the
    matching ``j`` values (column index, except the sentinel slot which
    holds ``d``).  Returns ``(costs, js, domain_lengths)``."""
    m = len(vec_list)
    lens = np.fromiter((len(v) for v in vec_list), np.int64, m)
    na = lens + 1
    width = int(na.max())
    cols = np.arange(width)[None, :]
    costs = np.full((m, width), _INF)
    costs[cols < lens[:, None]] = np.concatenate(vec_list)
    costs[np.arange(m), lens] = 0.0
    js = np.where(cols == lens[:, None], ds[:, None], cols)
    return costs, js, na


def _batch_split_scan(
    us: np.ndarray,
    ca: np.ndarray,
    ja: np.ndarray,
    cb: np.ndarray,
    jb: np.ndarray,
    nb: np.ndarray,
    db: np.ndarray,
    areas: np.ndarray,
    k: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """:func:`binary_dp._split_scan` batched over one level of nodes.

    ``ca``/``ja`` (and ``cb``/``jb``) are the padded domain batches from
    :func:`_pad_domains`; a row's padding carries INF costs, so padded
    slots never win a minimum.  The domain ``j`` values are structured
    (``j = column`` for dense slots, the sentinel ``d`` last), so the
    partner search ``first j_b ≥ u + k − j_a`` is pure arithmetic — no
    per-row ``searchsorted``.  Returns per-row ``(best, u_a, u_b)``.
    """
    m, NB = cb.shape
    rows = np.arange(m)[:, None]
    cols_b = np.arange(NB)[None, :]
    areac = areas[:, None]
    usc = us[:, None]
    nbc = nb[:, None]
    dbc = db[:, None]
    # Suffix minima of h_b = c_b + j_b·area with leftmost achiever.
    hb = cb + jb * areac
    suffix = np.minimum.accumulate(hb[:, ::-1], axis=1)[:, ::-1]
    achiever = np.where(hb == suffix, cols_b, NB)
    suffix_arg = np.minimum.accumulate(achiever[:, ::-1], axis=1)[:, ::-1]
    # Cloak-at-parent partner: first j_b ≥ t.  Dense slots self-index
    # (j = column), anything past the dense range lands on the sentinel,
    # and t beyond d_b has no partner.
    t = usc + k - ja
    ib0 = np.where(t > dbc, nbc, np.minimum(np.maximum(t, 0), nbc - 1))
    has_partner = ib0 < nbc
    ib0c = np.minimum(ib0, NB - 1)
    sval = suffix[rows, ib0c]
    sarg = suffix_arg[rows, ib0c]
    cand = np.where(
        has_partner, ca + (ja - usc) * areac + sval, _INF
    )
    # Equality partner: j_b = u − j_a exactly.
    target = usc - ja
    eq_dense = (target >= 0) & (target < nbc - 1)
    eq_ib = np.where(
        eq_dense,
        np.minimum(np.maximum(target, 0), NB - 1),
        np.where(target == dbc, nbc - 1, -1),
    )
    eq_val = np.where(
        eq_ib >= 0,
        ca + cb[rows, np.maximum(eq_ib, 0)],
        _INF,
    )
    use_eq = eq_val < cand
    best = np.where(use_eq, eq_val, cand)
    best_ib = np.where(use_eq, eq_ib, sarg)
    ia = np.argmin(best, axis=1)
    r1 = np.arange(m)
    best_val = best[r1, ia]
    ua = ja[r1, ia]
    ib = np.minimum(np.maximum(best_ib[r1, ia], 0), NB - 1)
    ub = jb[r1, ib]
    return best_val, ua, ub


def extract_cloaks(
    flat: FlatTree, vecs: Sequence[np.ndarray], k: int
) -> Dict[str, Tuple[float, float, float, float]]:
    """Extract one optimal ``{user: cloak rect tuple}`` from flat state.

    Mirrors ``TreeSolution.configuration()`` + Lemma-1 materialization
    (lowest rows first) without ever touching an object tree — this is
    what jurisdiction workers run.  Requires a payload-carrying flat
    tree (rects + leaf rows + user ids).
    """
    if flat.rects is None or flat.user_ids is None:
        raise ReproError("extract_cloaks needs a payload-carrying FlatTree")
    n = flat.n_nodes
    if n == 0 or flat.count[0] == 0:
        return {}
    root_vec = vecs[0]
    if len(root_vec) == 0 or not np.isfinite(root_vec[0]):
        raise NoFeasiblePolicyError(
            f"no policy-aware {k}-anonymous policy exists "
            f"(|D| = {int(flat.count[0])})"
        )
    # Top-down assignment, one level at a time: nodes whose u hit the
    # sentinel forward everything; all remaining splits of the level are
    # re-derived in one batched suffix-minima scan.
    values = np.zeros(n, dtype=np.int64)
    for h in range(flat.height + 1):
        lo, hi = flat.level(h)
        internal = lo + np.nonzero(flat.left[lo:hi] >= 0)[0]
        if internal.size == 0:
            continue
        # Sentinel nodes (u = d) forward everything to both children —
        # level order is irrelevant, parents and children never share a
        # level, so the whole level resolves in two fancy assignments.
        sentinel = values[internal] == flat.count[internal]
        for side in (flat.left, flat.right):
            kids = side[internal[sentinel]]
            values[kids] = flat.count[kids]
        split = internal[~sentinel]
        if split.size == 0:
            continue
        sel = split
        ls, rs = flat.left[sel], flat.right[sel]
        ca, ja, __ = _pad_domains([vecs[i] for i in ls], flat.count[ls])
        cb, jb, nb = _pad_domains([vecs[i] for i in rs], flat.count[rs])
        best, ua, ub = _batch_split_scan(
            values[sel], ca, ja, cb, jb, nb, flat.count[rs], flat.area[sel], k
        )
        bad = ~(best < _INF)
        if bad.any():
            i = sel[int(np.argmax(bad))]
            raise ReproError(
                f"extraction failed at node {int(flat.ids[i])} "
                f"(u = {int(values[i])})"
            )
        values[ls] = ua
        values[rs] = ub
    # Materialize: bottom-up pools, cloak the lowest rows at each node.
    # Rows record which node cloaks them; the user dict is built once at
    # the end (a per-row Python loop over 10^5 users is the extraction
    # bottleneck otherwise).
    assign = np.full(len(flat.user_ids), -1, dtype=np.int64)
    used: List[int] = []
    leftovers: Dict[int, np.ndarray] = {}
    left_l = flat.left.tolist()
    right_l = flat.right.tolist()
    values_l = values.tolist()
    for i in range(n - 1, -1, -1):  # level-major order: children first
        li = left_l[i]
        if li < 0:
            pool = flat.rows_of(i)
        else:
            pool = np.concatenate(
                [leftovers.pop(li), leftovers.pop(right_l[i])]
            )
        n_cloak = len(pool) - values_l[i]
        if n_cloak < 0:
            raise ReproError(
                f"flat extraction asked node {int(flat.ids[i])} to pass up "
                f"{values_l[i]} of only {len(pool)} locations"
            )
        if n_cloak:
            assign[pool[:n_cloak]] = i
            used.append(i)
        leftovers[i] = pool[n_cloak:]
    if len(leftovers.get(0, ())) != 0:
        raise ReproError("flat extraction left users uncloaked")
    # Every row is assigned (the root-leftover check above), so the
    # final dict is one zip over (user, cloaking node) pairs.
    rect_of = {i: tuple(flat.rects[i]) for i in used}
    return {
        uid: rect_of[a] for uid, a in zip(flat.user_ids, assign.tolist())
    }
