"""Planar geometry primitives used throughout the library.

The paper models a geographic area as a 2-dimensional plane; user
locations are points, and cloaks are connected closed regions — axis
aligned rectangles for quad/binary-tree policies (Definition 2) and
circles for the NP-complete variant of Theorem 1.

All shapes are immutable value objects.  Containment is *closed*
(boundary points are inside), matching the paper's "connected, closed
region" wording, and ensuring that a location sitting on a quadrant
boundary is covered by the quadrant it is assigned to.

>>> cloak = Rect(0, 0, 2, 4)
>>> cloak.area
8
>>> cloak.contains(Point(1, 4))   # closed: boundary counts
True
>>> [str(half) for half in cloak.halves_vertical()]
['[0,0 .. 1,4]', '[1,0 .. 2,4]']
>>> bounding_rect([Point(1, 5), Point(4, 2)])
Rect(x1=1, y1=2, x2=4, y2=5)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

from .errors import GeometryError

__all__ = ["Point", "Rect", "Circle", "bounding_rect"]


@dataclass(frozen=True, order=True)
class Point:
    """A location in the plane.

    The paper stores integer coordinates in the location database for
    simplicity; we accept floats as well since the synthetic generator
    places users with Gaussian jitter.
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)


@dataclass(frozen=True)
class Rect:
    """A closed axis-aligned rectangle.

    ``(x1, y1)`` is the southwest corner and ``(x2, y2)`` the northeast
    corner, mirroring the anonymized-request encoding of Definition 2.
    """

    x1: float
    y1: float
    x2: float
    y2: float

    def __post_init__(self) -> None:
        if self.x2 < self.x1 or self.y2 < self.y1:
            raise GeometryError(
                f"degenerate rectangle: ({self.x1},{self.y1})-({self.x2},{self.y2})"
            )

    @property
    def width(self) -> float:
        return self.x2 - self.x1

    @property
    def height(self) -> float:
        return self.y2 - self.y1

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0)

    def contains(self, point: Point) -> bool:
        """Closed containment: boundary points count as inside."""
        return self.x1 <= point.x <= self.x2 and self.y1 <= point.y <= self.y2

    def contains_rect(self, other: "Rect") -> bool:
        """True if ``other`` lies entirely within this rectangle."""
        return (
            self.x1 <= other.x1
            and self.y1 <= other.y1
            and other.x2 <= self.x2
            and other.y2 <= self.y2
        )

    def intersects(self, other: "Rect") -> bool:
        """True if the two closed rectangles share at least one point."""
        return not (
            other.x1 > self.x2
            or other.x2 < self.x1
            or other.y1 > self.y2
            or other.y2 < self.y1
        )

    def intersection(self, other: "Rect") -> "Rect":
        """The overlapping rectangle; raises if the rectangles are disjoint."""
        if not self.intersects(other):
            raise GeometryError(f"rectangles {self} and {other} are disjoint")
        return Rect(
            max(self.x1, other.x1),
            max(self.y1, other.y1),
            min(self.x2, other.x2),
            min(self.y2, other.y2),
        )

    def quadrants(self) -> Tuple["Rect", "Rect", "Rect", "Rect"]:
        """The four equal quadrants (NW, NE, SW, SE) of this rectangle."""
        cx, cy = (self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0
        nw = Rect(self.x1, cy, cx, self.y2)
        ne = Rect(cx, cy, self.x2, self.y2)
        sw = Rect(self.x1, self.y1, cx, cy)
        se = Rect(cx, self.y1, self.x2, cy)
        return (nw, ne, sw, se)

    def halves_vertical(self) -> Tuple["Rect", "Rect"]:
        """Split into West and East semi-quadrants (vertical cut, §V)."""
        cx = (self.x1 + self.x2) / 2.0
        west = Rect(self.x1, self.y1, cx, self.y2)
        east = Rect(cx, self.y1, self.x2, self.y2)
        return (west, east)

    def halves_horizontal(self) -> Tuple["Rect", "Rect"]:
        """Split into South and North semi-quadrants (horizontal cut)."""
        cy = (self.y1 + self.y2) / 2.0
        south = Rect(self.x1, self.y1, self.x2, cy)
        north = Rect(self.x1, cy, self.x2, self.y2)
        return (south, north)

    def sample_grid(self, n_per_side: int) -> Iterator[Point]:
        """Yield an ``n × n`` grid of interior points (test utility)."""
        if n_per_side < 1:
            raise GeometryError("grid must have at least one point per side")
        for i in range(n_per_side):
            for j in range(n_per_side):
                fx = (i + 0.5) / n_per_side
                fy = (j + 0.5) / n_per_side
                yield Point(self.x1 + fx * self.width, self.y1 + fy * self.height)

    def as_tuple(self) -> Tuple[float, float, float, float]:
        """Return ``(x1, y1, x2, y2)``."""
        return (self.x1, self.y1, self.x2, self.y2)

    def __str__(self) -> str:  # compact for logs / experiment tables
        return f"[{self.x1:g},{self.y1:g} .. {self.x2:g},{self.y2:g}]"


@dataclass(frozen=True)
class Circle:
    """A closed disk, used by the circular-cloak problem of Theorem 1."""

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise GeometryError(f"negative radius: {self.radius}")

    @property
    def area(self) -> float:
        return math.pi * self.radius * self.radius

    def contains(self, point: Point) -> bool:
        """Closed containment: points on the circle count as inside."""
        # Small epsilon keeps "circle through point p" numerically stable:
        # the minimal disk covering a set of users has its boundary pass
        # exactly through the farthest one.
        return self.center.distance_to(point) <= self.radius + 1e-9

    def intersects(self, other: "Circle") -> bool:
        return (
            self.center.distance_to(other.center)
            <= self.radius + other.radius + 1e-9
        )


def bounding_rect(points: Iterable[Point]) -> Rect:
    """The minimum bounding rectangle of a non-empty point collection."""
    pts: Sequence[Point] = list(points)
    if not pts:
        raise GeometryError("bounding_rect of an empty point set")
    xs = [p.x for p in pts]
    ys = [p.y for p in pts]
    return Rect(min(xs), min(ys), max(xs), max(ys))
