"""Shared node machinery for the spatial trees.

Both the quad tree (paper §IV) and the binary tree of quadrants and
semi-quadrants (§V) are trees of axis-aligned rectangles over a map.
Each node tracks ``d(m)`` — the number of location-database points that
fall inside its rectangle — which is the only per-node statistic the
configuration framework (Definition 7) needs.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np

from ..core.errors import TreeError
from ..core.geometry import Point, Rect

__all__ = ["SpatialNode"]


class SpatialNode:
    """One node of a spatial partitioning tree.

    Attributes
    ----------
    rect:
        The rectangle this node covers; its area is the cloak cost unit.
    depth:
        Distance from the root (root has depth 0).  The paper calls this
        ``h(m)`` — "height" measured from the root — in Lemma 5.
    children:
        Sub-rectangle nodes partitioning ``rect``; empty for leaves.
    count:
        ``d(m)`` — how many database locations lie in ``rect``.
    point_index:
        For leaves, the indices (into the tree's coordinate array) of the
        points inside; ``None`` for internal nodes, whose membership is
        the union of their children's.
    """

    __slots__ = (
        "node_id",
        "rect",
        "depth",
        "parent",
        "children",
        "count",
        "point_index",
        "is_semi",
    )

    def __init__(
        self,
        node_id: int,
        rect: Rect,
        depth: int,
        parent: Optional["SpatialNode"] = None,
        is_semi: bool = False,
    ):
        self.node_id = node_id
        self.rect = rect
        self.depth = depth
        self.parent = parent
        self.children: List["SpatialNode"] = []
        self.count = 0
        self.point_index: Optional[np.ndarray] = None
        #: True for semi-quadrant (rectangular) nodes of the binary tree.
        self.is_semi = is_semi

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def area(self) -> float:
        return self.rect.area

    def contains(self, point: Point) -> bool:
        return self.rect.contains(point)

    def child_for(self, point: Point) -> "SpatialNode":
        """The child whose rectangle contains ``point``.

        Rectangle containment is closed, so a point on a shared edge lies
        in two children; the first match wins, which keeps descent
        deterministic.
        """
        for child in self.children:
            if child.rect.contains(point):
                return child
        raise TreeError(f"point {point} escapes node {self.node_id} ({self.rect})")

    def iter_subtree(self) -> Iterator["SpatialNode"]:
        """Pre-order traversal of the subtree rooted here."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_postorder(self) -> Iterator["SpatialNode"]:
        """Post-order traversal (children before parents) — the order the
        bottom-up dynamic program consumes nodes in."""
        # Iterative post-order: emit each node after all of its children.
        stack = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded or node.is_leaf:
                yield node
            else:
                stack.append((node, True))
                for child in reversed(node.children):
                    stack.append((child, False))

    def path_to_root(self) -> Iterator["SpatialNode"]:
        """This node, its parent, ... up to the root."""
        node: Optional[SpatialNode] = self
        while node is not None:
            yield node
            node = node.parent

    def leaf_for(self, point: Point) -> "SpatialNode":
        """Descend from this node to the leaf containing ``point``."""
        node = self
        while not node.is_leaf:
            node = node.child_for(point)
        return node

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "node"
        return (
            f"<{kind} id={self.node_id} depth={self.depth} d={self.count} "
            f"rect={self.rect}>"
        )


def partition_indices(
    coords: np.ndarray, indices: np.ndarray, rects: Sequence[Rect]
) -> List[np.ndarray]:
    """Split ``indices`` among ``rects`` (a partition of the parent rect).

    Boundary points belong to the *first* rectangle that contains them,
    mirroring :meth:`SpatialNode.child_for`, so that counts stay
    consistent with point descent.
    """
    remaining = indices
    out: List[np.ndarray] = []
    for i, rect in enumerate(rects):
        if i == len(rects) - 1:
            out.append(remaining)
            break
        xs = coords[remaining, 0]
        ys = coords[remaining, 1]
        inside = (
            (xs >= rect.x1) & (xs <= rect.x2) & (ys >= rect.y1) & (ys <= rect.y2)
        )
        out.append(remaining[inside])
        remaining = remaining[~inside]
    return out
