"""Structure-of-arrays compilation of the binary tree (§V engine).

The object tree of :mod:`repro.trees.binarytree` is the *mutable* data
structure — lazy splits, point moves, collapses.  The DP, by contrast,
only ever reads four per-node facts: count, area, depth and the two
child links.  :class:`FlatTree` compiles those facts into contiguous
numpy arrays, **level-major** (all nodes of depth ``h`` are contiguous),
so the solver of :mod:`repro.core.flat_dp` can process a whole level
with a handful of fused numpy kernels instead of one Python call per
node.

Three use sites:

* bulk solve — compile once, solve level-synchronously;
* incremental repair — :meth:`FlatTree.refresh` re-uses the compiled
  arrays across snapshots: when :meth:`BinaryTree.apply_moves` changed
  only counts (no splits/collapses) the arrays are patched in place,
  otherwise the tree is recompiled (O(|B|), no point data touched);
* parallel sharding — :meth:`FlatTree.compile` of a jurisdiction
  *subtree* (``root=``, with depths rebased and the leaf→point index
  attached) is a small bundle of arrays that pickles in microseconds,
  so workers receive the already-built spatial structure instead of
  rebuilding a tree from raw point rows.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.errors import TreeError

__all__ = ["FlatTree", "SharedFlatTree", "SharedTreeHandle"]


@dataclass
class FlatTree:
    """A binary spatial tree as parallel arrays, level-major order.

    ``ids[i]`` is the object tree's node id for flat index ``i``; nodes
    are sorted by ``(depth, node_id)`` so ``level_offsets[h] ..
    level_offsets[h+1]`` spans exactly the nodes of depth ``h`` (the
    root is always flat index 0).  ``left``/``right`` hold child flat
    indices, −1 at leaves.

    The payload block (``rects``/``leaf_ptr``/``leaf_rows``/
    ``user_ids``) is attached only when the flat tree must stand alone
    — i.e. when it is shipped to a worker process that has no object
    tree to fall back on for policy extraction.
    """

    ids: np.ndarray            # (n,) int64
    left: np.ndarray           # (n,) int64, -1 for leaves
    right: np.ndarray          # (n,) int64, -1 for leaves
    count: np.ndarray          # (n,) int64 — d(m)
    area: np.ndarray           # (n,) float64 — cloak cost unit
    depth: np.ndarray          # (n,) int64 — h(m), rebased when sliced
    level_offsets: np.ndarray  # (height+2,) int64 prefix offsets
    index_of: Dict[int, int] = field(default_factory=dict)
    # -- standalone payload (worker transport) ----------------------------
    rects: Optional[np.ndarray] = None      # (n, 4) float64 x1,y1,x2,y2
    leaf_ptr: Optional[np.ndarray] = None   # (n+1,) int64 CSR offsets
    leaf_rows: Optional[np.ndarray] = None  # (#points,) int64 local rows
    user_ids: Optional[List[str]] = None    # local row -> user id

    @property
    def n_nodes(self) -> int:
        return len(self.ids)

    @property
    def height(self) -> int:
        return len(self.level_offsets) - 2

    def level(self, h: int) -> Tuple[int, int]:
        """The ``[lo, hi)`` flat-index span of depth ``h``."""
        return int(self.level_offsets[h]), int(self.level_offsets[h + 1])

    def rows_of(self, idx: int) -> np.ndarray:
        """Local point rows of leaf ``idx`` (payload trees only)."""
        return self.leaf_rows[self.leaf_ptr[idx] : self.leaf_ptr[idx + 1]]

    # -- compilation -----------------------------------------------------------

    @classmethod
    def compile(
        cls,
        tree,
        root=None,
        with_payload: bool = False,
    ) -> "FlatTree":
        """Compile ``tree`` (or the subtree under ``root``) to arrays.

        With ``root`` given, depths are rebased so the subtree root sits
        at depth 0 — exactly what a jurisdiction server solving the
        subtree as *its* map would see (the Lemma-5 cap is relative to
        the solved root).  ``with_payload`` additionally attaches the
        geometry and the leaf→point CSR index needed for standalone
        policy extraction; point rows are renumbered to a local, sorted
        0..n−1 range whose order matches ``BinaryTree.users_of``.
        """
        start = tree.root if root is None else root
        base_depth = start.depth
        nodes = sorted(
            start.iter_subtree(), key=lambda m: (m.depth - base_depth, m.node_id)
        )
        n = len(nodes)
        index_of = {m.node_id: i for i, m in enumerate(nodes)}
        ids = np.fromiter((m.node_id for m in nodes), dtype=np.int64, count=n)
        count = np.fromiter((m.count for m in nodes), dtype=np.int64, count=n)
        area = np.fromiter((m.rect.area for m in nodes), dtype=np.float64, count=n)
        depth = np.fromiter(
            (m.depth - base_depth for m in nodes), dtype=np.int64, count=n
        )
        left = np.full(n, -1, dtype=np.int64)
        right = np.full(n, -1, dtype=np.int64)
        for i, m in enumerate(nodes):
            if m.children:
                if len(m.children) != 2:
                    raise TreeError(
                        f"flat compilation requires a binary tree; node "
                        f"{m.node_id} has {len(m.children)} children"
                    )
                left[i] = index_of[m.children[0].node_id]
                right[i] = index_of[m.children[1].node_id]
        height = int(depth[-1]) if n else 0
        level_offsets = np.searchsorted(
            depth, np.arange(height + 2), side="left"
        ).astype(np.int64)
        flat = cls(
            ids=ids,
            left=left,
            right=right,
            count=count,
            area=area,
            depth=depth,
            level_offsets=level_offsets,
            index_of=index_of,
        )
        if with_payload:
            flat.rects = np.array(
                [m.rect.as_tuple() for m in nodes], dtype=np.float64
            ).reshape(n, 4)
            ptr = np.zeros(n + 1, dtype=np.int64)
            chunks: List[np.ndarray] = []
            for i, m in enumerate(nodes):
                if m.is_leaf and m.point_index:
                    rows = np.fromiter(
                        m.point_index, dtype=np.int64, count=len(m.point_index)
                    )
                    rows.sort()
                    chunks.append(rows)
                    ptr[i + 1] = ptr[i] + len(rows)
                else:
                    ptr[i + 1] = ptr[i]
            all_rows = (
                np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
            )
            # Renumber global tree rows to a local dense range ordered by
            # global row — the same deterministic order users_of() uses.
            order = np.sort(all_rows)
            local = np.searchsorted(order, all_rows)
            flat.leaf_ptr = ptr
            flat.leaf_rows = local
            flat.user_ids = [tree.user_ids[r] for r in order]
        return flat

    # -- incremental maintenance ----------------------------------------------

    def refresh(self, tree, dirty) -> Tuple["FlatTree", bool]:
        """Bring the arrays up to date after ``tree.apply_moves``.

        Returns ``(flat, structure_changed)``.  When the move batch
        neither split nor collapsed any node (every dirty id is a node
        we already know and the node census is unchanged) only the
        ``count`` column needs patching — done in place, O(|dirty|).
        Any structural change falls back to a full recompile, which is
        still O(|B|) and touches no point data.
        """
        same_structure = len(tree.nodes) == self.n_nodes and all(
            nid in self.index_of for nid in dirty
        )
        if same_structure:
            for nid in dirty:
                self.count[self.index_of[nid]] = tree.nodes[nid].count
            return self, False
        return FlatTree.compile(tree), True


# -- zero-copy publication over shared memory --------------------------------

#: segment offsets are rounded up to this, so every published array
#: starts cache-line aligned regardless of the previous block's length.
_SHM_ALIGN = 64

#: numeric FlatTree columns in publication order; payload columns are
#: appended only when present.
_SHM_CORE_FIELDS = (
    "ids", "left", "right", "count", "area", "depth", "level_offsets",
)
_SHM_PAYLOAD_FIELDS = ("rects", "leaf_ptr", "leaf_rows")
#: pseudo-field carrying ``user_ids`` as UTF-8 JSON bytes (uint8 block).
_SHM_USER_FIELD = "__user_ids_json__"


def _tracker_pid() -> Optional[int]:
    """Pid of this process's resource-tracker daemon (None if unknown)."""
    try:
        return resource_tracker._resource_tracker._pid
    except Exception:
        return None


@dataclass(frozen=True)
class SharedTreeHandle:
    """Picklable descriptor of a published :class:`FlatTree`.

    This is what crosses process boundaries instead of the arrays
    themselves: the segment name plus a block table of
    ``(field, dtype, shape, byte offset)``.  It pickles in a few hundred
    bytes however large the tree is — the whole point of the shared
    transport.
    """

    segment: str
    size: int
    blocks: Tuple[Tuple[str, str, Tuple[int, ...], int], ...]
    #: pid of the publisher's resource-tracker process.  Attachers in
    #: the same tracker domain (fork children, same process) must *not*
    #: unregister — they would strip the owner's entry; attachers with
    #: their own tracker (spawn) must, or their tracker unlinks the
    #: owner's live segment when they exit (the pre-3.12 share bug).
    tracker_pid: Optional[int] = None

    @property
    def n_nodes(self) -> int:
        for name, __, shape, ___ in self.blocks:
            if name == "ids":
                return int(shape[0])
        return 0

    @property
    def has_payload(self) -> bool:
        return any(name == "rects" for name, __, ___, ____ in self.blocks)


class SharedFlatTree:
    """A compiled :class:`FlatTree` published once into POSIX shared
    memory and mapped zero-copy by any number of reader processes.

    Lifecycle contract (enforced, and linted by the RS001 rule):

    * the **publisher** owns the segment — only it may :meth:`unlink`,
      and it must do so (``finally`` or ``with``) or the segment
      outlives the process in ``/dev/shm``;
    * **attachers** only :meth:`close`; attaching after the owner
      unlinked fails closed with :class:`TreeError` — a reader can never
      silently solve over a stale private copy;
    * all views are read-only, and :meth:`close` invalidates them — on
      CPython the mapping is gone immediately, so callers must drop
      every array borrowed from :attr:`tree` *before* closing (the
      worker pattern: attach, solve, extract plain tuples, close).

    The attach path also unregisters the segment from
    :mod:`multiprocessing.resource_tracker`: Python 3.9–3.11 register
    attachments exactly like creations, so without this a reader
    process's tracker would unlink the owner's live segment at reader
    exit.
    """

    def __init__(
        self,
        handle: SharedTreeHandle,
        shm: shared_memory.SharedMemory,
        owner: bool,
    ) -> None:
        self.handle = handle
        self._shm: Optional[shared_memory.SharedMemory] = shm
        self.owner = owner
        self._unlinked = False
        self._tree: Optional[FlatTree] = None

    # -- publication ---------------------------------------------------------

    @classmethod
    def publish(cls, flat: FlatTree, verify: bool = True) -> "SharedFlatTree":
        """Copy ``flat``'s arrays into one fresh segment (the only copy
        ever made) and return the owning wrapper.

        With ``verify=True`` the segment is re-attached through its own
        handle and every block compared bit-for-bit against the source —
        the buffer round-trip equality check that makes the transport
        trustworthy enough to retire pickling.
        """
        arrays: List[Tuple[str, np.ndarray]] = []
        for name in _SHM_CORE_FIELDS:
            arrays.append((name, np.ascontiguousarray(getattr(flat, name))))
        if flat.rects is not None:
            for name in _SHM_PAYLOAD_FIELDS:
                column = getattr(flat, name)
                if column is None:
                    raise TreeError(
                        f"payload FlatTree missing column {name!r}; "
                        "compile(with_payload=True) before publishing"
                    )
                arrays.append((name, np.ascontiguousarray(column)))
            encoded = json.dumps(flat.user_ids or []).encode("utf-8")
            arrays.append((_SHM_USER_FIELD, np.frombuffer(encoded, np.uint8)))
        blocks: List[Tuple[str, str, Tuple[int, ...], int]] = []
        offset = 0
        for name, arr in arrays:
            offset = -(-offset // _SHM_ALIGN) * _SHM_ALIGN
            blocks.append((name, arr.dtype.str, tuple(arr.shape), offset))
            offset += arr.nbytes
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        try:
            for (name, arr), (__, ___, ____, off) in zip(arrays, blocks):
                dst = np.ndarray(
                    arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=off
                )
                dst[...] = arr
            handle = SharedTreeHandle(
                segment=shm.name,
                size=shm.size,
                blocks=tuple(blocks),
                tracker_pid=_tracker_pid(),
            )
            published = cls(handle, shm, owner=True)
            if verify:
                echo = cls.attach(handle)
                try:
                    if not echo._equal_blocks(arrays):
                        raise TreeError(
                            f"shared segment {shm.name} failed the "
                            "publish round-trip equality check"
                        )
                finally:
                    echo.close()
            return published
        except BaseException:
            shm.close()
            shm.unlink()
            raise

    def _equal_blocks(self, arrays: List[Tuple[str, np.ndarray]]) -> bool:
        views = self._block_views()
        return all(
            np.array_equal(views[name], arr) for name, arr in arrays
        )

    # -- attachment ----------------------------------------------------------

    @classmethod
    def attach(cls, handle: SharedTreeHandle) -> "SharedFlatTree":
        """Map an already-published segment read-only (fails closed)."""
        try:
            shm = shared_memory.SharedMemory(name=handle.segment)
        except FileNotFoundError as exc:
            raise TreeError(
                f"shared flat tree segment {handle.segment!r} is gone "
                "(owner unlinked, or it never existed); refusing to "
                "serve without the published arrays"
            ) from exc
        if handle.tracker_pid is None or _tracker_pid() != handle.tracker_pid:
            # Pre-3.12 registers attachments like creations.  In a
            # foreign tracker domain that registration must be undone or
            # this reader's tracker unlinks the owner's segment at exit;
            # in the owner's own domain it is a harmless duplicate that
            # must be *kept* (unregistering would strip the owner's).
            try:
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass  # best effort; worst case is a benign tracker warning
        return cls(handle, shm, owner=False)

    def _block_views(self) -> Dict[str, np.ndarray]:
        if self._shm is None:
            raise TreeError(
                f"shared flat tree segment {self.handle.segment!r} is "
                "closed; its views are invalid"
            )
        views: Dict[str, np.ndarray] = {}
        for name, dtype, shape, off in self.handle.blocks:
            view = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=self._shm.buf, offset=off
            )
            view.flags.writeable = False
            views[name] = view
        return views

    @property
    def tree(self) -> FlatTree:
        """The zero-copy :class:`FlatTree` over the mapped blocks.

        ``index_of`` is left empty (attached trees are immutable —
        :meth:`FlatTree.refresh` belongs to the mutable original), and
        every array is read-only.  Valid until :meth:`close`.
        """
        if self._tree is None:
            views = self._block_views()
            user_ids: Optional[List[str]] = None
            if _SHM_USER_FIELD in views:
                user_ids = json.loads(bytes(views[_SHM_USER_FIELD]).decode("utf-8"))
            self._tree = FlatTree(
                ids=views["ids"],
                left=views["left"],
                right=views["right"],
                count=views["count"],
                area=views["area"],
                depth=views["depth"],
                level_offsets=views["level_offsets"],
                rects=views.get("rects"),
                leaf_ptr=views.get("leaf_ptr"),
                leaf_rows=views.get("leaf_rows"),
                user_ids=user_ids,
            )
        return self._tree

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Drop all views and unmap the segment (idempotent).

        After this, arrays previously borrowed from :attr:`tree` are
        dangling — the caller must not touch them.
        """
        if self._shm is None:
            return
        self._tree = None
        self._shm.close()
        self._shm = None

    def unlink(self) -> None:
        """Destroy the segment (owner only, idempotent).

        Attachers calling this is a bug — they would tear the mapping
        out from under the publisher and every sibling reader.
        """
        if not self.owner:
            raise TreeError(
                f"segment {self.handle.segment!r} can only be unlinked "
                "by its publisher; attachers just close()"
            )
        if self._unlinked:
            return
        shm = self._shm
        if shm is None:
            # closed before unlinking: reopen purely to destroy the name
            # (the reopen registers with the tracker, unlink unregisters).
            try:
                shm = shared_memory.SharedMemory(name=self.handle.segment)
            except FileNotFoundError:
                self._unlinked = True
                return
            shm.unlink()
            shm.close()
            self._unlinked = True
            return
        shm.unlink()
        self._unlinked = True

    def __enter__(self) -> "SharedFlatTree":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        if self.owner:
            self.unlink()
        self.close()
        return False
