"""Structure-of-arrays compilation of the binary tree (§V engine).

The object tree of :mod:`repro.trees.binarytree` is the *mutable* data
structure — lazy splits, point moves, collapses.  The DP, by contrast,
only ever reads four per-node facts: count, area, depth and the two
child links.  :class:`FlatTree` compiles those facts into contiguous
numpy arrays, **level-major** (all nodes of depth ``h`` are contiguous),
so the solver of :mod:`repro.core.flat_dp` can process a whole level
with a handful of fused numpy kernels instead of one Python call per
node.

Three use sites:

* bulk solve — compile once, solve level-synchronously;
* incremental repair — :meth:`FlatTree.refresh` re-uses the compiled
  arrays across snapshots: when :meth:`BinaryTree.apply_moves` changed
  only counts (no splits/collapses) the arrays are patched in place,
  otherwise the tree is recompiled (O(|B|), no point data touched);
* parallel sharding — :meth:`FlatTree.compile` of a jurisdiction
  *subtree* (``root=``, with depths rebased and the leaf→point index
  attached) is a small bundle of arrays that pickles in microseconds,
  so workers receive the already-built spatial structure instead of
  rebuilding a tree from raw point rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.errors import TreeError

__all__ = ["FlatTree"]


@dataclass
class FlatTree:
    """A binary spatial tree as parallel arrays, level-major order.

    ``ids[i]`` is the object tree's node id for flat index ``i``; nodes
    are sorted by ``(depth, node_id)`` so ``level_offsets[h] ..
    level_offsets[h+1]`` spans exactly the nodes of depth ``h`` (the
    root is always flat index 0).  ``left``/``right`` hold child flat
    indices, −1 at leaves.

    The payload block (``rects``/``leaf_ptr``/``leaf_rows``/
    ``user_ids``) is attached only when the flat tree must stand alone
    — i.e. when it is shipped to a worker process that has no object
    tree to fall back on for policy extraction.
    """

    ids: np.ndarray            # (n,) int64
    left: np.ndarray           # (n,) int64, -1 for leaves
    right: np.ndarray          # (n,) int64, -1 for leaves
    count: np.ndarray          # (n,) int64 — d(m)
    area: np.ndarray           # (n,) float64 — cloak cost unit
    depth: np.ndarray          # (n,) int64 — h(m), rebased when sliced
    level_offsets: np.ndarray  # (height+2,) int64 prefix offsets
    index_of: Dict[int, int] = field(default_factory=dict)
    # -- standalone payload (worker transport) ----------------------------
    rects: Optional[np.ndarray] = None      # (n, 4) float64 x1,y1,x2,y2
    leaf_ptr: Optional[np.ndarray] = None   # (n+1,) int64 CSR offsets
    leaf_rows: Optional[np.ndarray] = None  # (#points,) int64 local rows
    user_ids: Optional[List[str]] = None    # local row -> user id

    @property
    def n_nodes(self) -> int:
        return len(self.ids)

    @property
    def height(self) -> int:
        return len(self.level_offsets) - 2

    def level(self, h: int) -> Tuple[int, int]:
        """The ``[lo, hi)`` flat-index span of depth ``h``."""
        return int(self.level_offsets[h]), int(self.level_offsets[h + 1])

    def rows_of(self, idx: int) -> np.ndarray:
        """Local point rows of leaf ``idx`` (payload trees only)."""
        return self.leaf_rows[self.leaf_ptr[idx] : self.leaf_ptr[idx + 1]]

    # -- compilation -----------------------------------------------------------

    @classmethod
    def compile(
        cls,
        tree,
        root=None,
        with_payload: bool = False,
    ) -> "FlatTree":
        """Compile ``tree`` (or the subtree under ``root``) to arrays.

        With ``root`` given, depths are rebased so the subtree root sits
        at depth 0 — exactly what a jurisdiction server solving the
        subtree as *its* map would see (the Lemma-5 cap is relative to
        the solved root).  ``with_payload`` additionally attaches the
        geometry and the leaf→point CSR index needed for standalone
        policy extraction; point rows are renumbered to a local, sorted
        0..n−1 range whose order matches ``BinaryTree.users_of``.
        """
        start = tree.root if root is None else root
        base_depth = start.depth
        nodes = sorted(
            start.iter_subtree(), key=lambda m: (m.depth - base_depth, m.node_id)
        )
        n = len(nodes)
        index_of = {m.node_id: i for i, m in enumerate(nodes)}
        ids = np.fromiter((m.node_id for m in nodes), dtype=np.int64, count=n)
        count = np.fromiter((m.count for m in nodes), dtype=np.int64, count=n)
        area = np.fromiter((m.rect.area for m in nodes), dtype=np.float64, count=n)
        depth = np.fromiter(
            (m.depth - base_depth for m in nodes), dtype=np.int64, count=n
        )
        left = np.full(n, -1, dtype=np.int64)
        right = np.full(n, -1, dtype=np.int64)
        for i, m in enumerate(nodes):
            if m.children:
                if len(m.children) != 2:
                    raise TreeError(
                        f"flat compilation requires a binary tree; node "
                        f"{m.node_id} has {len(m.children)} children"
                    )
                left[i] = index_of[m.children[0].node_id]
                right[i] = index_of[m.children[1].node_id]
        height = int(depth[-1]) if n else 0
        level_offsets = np.searchsorted(
            depth, np.arange(height + 2), side="left"
        ).astype(np.int64)
        flat = cls(
            ids=ids,
            left=left,
            right=right,
            count=count,
            area=area,
            depth=depth,
            level_offsets=level_offsets,
            index_of=index_of,
        )
        if with_payload:
            flat.rects = np.array(
                [m.rect.as_tuple() for m in nodes], dtype=np.float64
            ).reshape(n, 4)
            ptr = np.zeros(n + 1, dtype=np.int64)
            chunks: List[np.ndarray] = []
            for i, m in enumerate(nodes):
                if m.is_leaf and m.point_index:
                    rows = np.fromiter(
                        m.point_index, dtype=np.int64, count=len(m.point_index)
                    )
                    rows.sort()
                    chunks.append(rows)
                    ptr[i + 1] = ptr[i] + len(rows)
                else:
                    ptr[i + 1] = ptr[i]
            all_rows = (
                np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
            )
            # Renumber global tree rows to a local dense range ordered by
            # global row — the same deterministic order users_of() uses.
            order = np.sort(all_rows)
            local = np.searchsorted(order, all_rows)
            flat.leaf_ptr = ptr
            flat.leaf_rows = local
            flat.user_ids = [tree.user_ids[r] for r in order]
        return flat

    # -- incremental maintenance ----------------------------------------------

    def refresh(self, tree, dirty) -> Tuple["FlatTree", bool]:
        """Bring the arrays up to date after ``tree.apply_moves``.

        Returns ``(flat, structure_changed)``.  When the move batch
        neither split nor collapsed any node (every dirty id is a node
        we already know and the node census is unchanged) only the
        ``count`` column needs patching — done in place, O(|dirty|).
        Any structural change falls back to a full recompile, which is
        still O(|B|) and touches no point data.
        """
        same_structure = len(tree.nodes) == self.n_nodes and all(
            nid in self.index_of for nid in dirty
        )
        if same_structure:
            for nid in dirty:
                self.count[self.index_of[nid]] = tree.nodes[nid].count
            return self, False
        return FlatTree.compile(tree), True
