"""Quad trees over a square map (paper §IV).

The quad tree is the cloak vocabulary of the first-cut ``Bulk_dp``
algorithm (Algorithm 1) and of the policy-unaware quad baseline (PUQ,
after Gruteser & Grunwald [16]).  The root covers the whole map; every
internal node has exactly four children — its equal quadrants.

Two build modes are provided:

* :meth:`QuadTree.build_full` — materialize every node down to a fixed
  depth (the "static quad-tree based partitioning" of Example 1; only
  sensible for small maps and tests).
* :meth:`QuadTree.build_adaptive` — split a quadrant only while it holds
  at least ``split_threshold`` locations, the lazy materialization of
  §V ("we split a (semi-)quadrant only if it contains sufficient users
  to maintain anonymity").  Pruning below ``d(m) < k`` is exact for the
  DP: k-summation forces such nodes to pass everything up.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

import numpy as np

from ..core.errors import TreeError
from ..core.geometry import Point, Rect
from ..core.locationdb import LocationDatabase
from .node import SpatialNode, partition_indices

__all__ = ["QuadTree"]


class QuadTree:
    """A quad tree annotated with per-node location counts ``d(m)``."""

    def __init__(self, root_rect: Rect, db: LocationDatabase):
        if root_rect.width != root_rect.height:
            # The paper assumes a square map for the quad tree; quadrants
            # of a square are squares, which Figure 1 relies on.
            raise TreeError(f"quad tree root must be square, got {root_rect}")
        self.region = root_rect
        self.db = db
        self.user_ids = db.user_ids()
        self.coords = db.coords_array()
        self._next_id = 0
        self.root = self._new_node(root_rect, depth=0, parent=None)
        all_idx = np.arange(len(self.user_ids))
        self.root.count = len(all_idx)
        self.root.point_index = all_idx
        self.nodes: List[SpatialNode] = [self.root]

    # -- construction ----------------------------------------------------------

    def _new_node(
        self, rect: Rect, depth: int, parent: Optional[SpatialNode]
    ) -> SpatialNode:
        node = SpatialNode(self._next_id, rect, depth, parent)
        self._next_id += 1
        return node

    @classmethod
    def build_full(
        cls, region: Rect, db: LocationDatabase, depth: int
    ) -> "QuadTree":
        """Materialize the complete quad tree of the given depth."""
        tree = cls(region, db)
        frontier = [tree.root]
        for _ in range(depth):
            next_frontier = []
            for node in frontier:
                tree._split(node)
                next_frontier.extend(node.children)
            frontier = next_frontier
        return tree

    @classmethod
    def build_adaptive(
        cls,
        region: Rect,
        db: LocationDatabase,
        split_threshold: int,
        max_depth: int = 24,
    ) -> "QuadTree":
        """Split quadrants while they hold ≥ ``split_threshold`` locations.

        For policy-aware anonymization pass ``split_threshold=k``: any
        node with fewer than k users can never cloak, so its subtree is
        irrelevant to the optimum.
        """
        if split_threshold < 1:
            raise TreeError("split_threshold must be ≥ 1")
        tree = cls(region, db)
        frontier = [tree.root]
        while frontier:
            node = frontier.pop()
            if node.depth >= max_depth or node.count < split_threshold:
                continue
            tree._split(node)
            frontier.extend(node.children)
        return tree

    def _split(self, node: SpatialNode) -> None:
        """Create the four quadrant children of ``node`` and distribute
        its points among them."""
        if not node.is_leaf:
            raise TreeError(f"node {node.node_id} is already split")
        rects = list(node.rect.quadrants())
        parts = partition_indices(self.coords, node.point_index, rects)
        for rect, idx in zip(rects, parts):
            child = self._new_node(rect, node.depth + 1, node)
            child.count = len(idx)
            child.point_index = idx
            node.children.append(child)
            self.nodes.append(child)
        node.point_index = None

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def height(self) -> int:
        """Maximum node depth (root = 0)."""
        return max(node.depth for node in self.nodes)

    def leaves(self) -> List[SpatialNode]:
        return [node for node in self.nodes if node.is_leaf]

    def leaf_for(self, point: Point) -> SpatialNode:
        if not self.region.contains(point):
            raise TreeError(f"point {point} lies outside the map {self.region}")
        return self.root.leaf_for(point)

    def node_by_id(self, node_id: int) -> SpatialNode:
        node = self.nodes[node_id]
        if node.node_id != node_id:  # nodes list is id-ordered by build
            raise TreeError(f"node id mismatch for {node_id}")
        return node

    def iter_postorder(self) -> Iterator[SpatialNode]:
        return self.root.iter_postorder()

    def users_of(self, node: SpatialNode) -> List[str]:
        """User ids inside ``node``'s quadrant."""
        return [self.user_ids[i] for i in self.point_indices_of(node)]

    def point_indices_of(self, node: SpatialNode) -> np.ndarray:
        """Indices (into the coordinate array) of points inside ``node``."""
        if node.is_leaf:
            return node.point_index
        parts = [self.point_indices_of(child) for child in node.children]
        return np.concatenate(parts) if parts else np.empty(0, dtype=int)

    def smallest_node_with(
        self, point: Point, min_count: int
    ) -> Optional[SpatialNode]:
        """The deepest node containing ``point`` with ``d ≥ min_count``.

        This is exactly the cloak the policy-unaware quad baseline [16]
        picks: the smallest quadrant around the requester that still
        holds at least k users.  Returns None when even the root is too
        sparse.
        """
        if self.root.count < min_count or not self.region.contains(point):
            return None
        best = None
        node = self.root
        while True:
            if node.count >= min_count:
                best = node
            if node.is_leaf:
                return best
            node = node.child_for(point)
            if node.count < min_count:
                return best

    def stats(self) -> Dict[str, float]:
        """Shape statistics for the Figure 3 experiment."""
        leaves = self.leaves()
        leaf_counts = [leaf.count for leaf in leaves]
        return {
            "nodes": len(self.nodes),
            "leaves": len(leaves),
            "height": self.height,
            "max_leaf_count": max(leaf_counts) if leaf_counts else 0,
            "mean_leaf_count": float(np.mean(leaf_counts)) if leaf_counts else 0.0,
        }
