"""Spatial partitioning trees: quad tree (§IV), binary tree of
quadrants/semi-quadrants (§V), and the greedy jurisdiction partitioner
for parallel anonymization."""

from .binarytree import BinaryTree
from .flat import FlatTree
from .node import SpatialNode
from .partition import Jurisdiction, greedy_partition, load_imbalance
from .quadtree import QuadTree

__all__ = [
    "BinaryTree",
    "FlatTree",
    "Jurisdiction",
    "QuadTree",
    "SpatialNode",
    "greedy_partition",
    "load_imbalance",
]
