"""Greedy jurisdiction partitioning for parallel anonymization (§V).

The map is split into *jurisdictions*, one per anonymization server.
Each server sees only the users inside its jurisdiction and computes an
optimal policy for them independently — the spatial structure of the
problem makes this embarrassingly parallel.

The paper's greedy scheme (verbatim): start with the root as the only
jurisdiction; at every step pick the eligible listed node with the most
locations — eligible meaning *all of its children have either 0 or at
least k locations*, so no jurisdiction strands a small group that could
not be anonymized locally — and replace it with its children.  Repeat
until the list reaches the desired number of servers (or no eligible
node remains).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Sequence

from ..core.errors import TreeError
from .binarytree import BinaryTree
from .node import SpatialNode

__all__ = ["Jurisdiction", "greedy_partition"]


@dataclass(frozen=True)
class Jurisdiction:
    """A server's territory: a tree node's rectangle plus its shape kind.

    ``is_semi`` records whether the region is a semi-quadrant (a 1:2
    rectangle), which a per-jurisdiction binary tree needs to know to
    resume the vertical/horizontal split alternation correctly.
    """

    rect: "object"
    is_semi: bool
    count: int
    node_id: int


def _eligible(node: SpatialNode, k: int) -> bool:
    """The paper's split-eligibility test for the greedy partitioner."""
    if node.is_leaf:
        return False
    return all(child.count == 0 or child.count >= k for child in node.children)


def greedy_partition(
    tree: BinaryTree, n_servers: int, k: int = None
) -> List[Jurisdiction]:
    """Partition ``tree``'s map into at most ``n_servers`` jurisdictions.

    Returns fewer jurisdictions than requested when the tree runs out of
    eligible splits — e.g. an almost-empty map cannot be usefully divided
    among 4096 servers.
    """
    if n_servers < 1:
        raise TreeError("need at least one server")
    if k is None:
        k = tree.split_threshold

    # Max-heap on location count; node ids break ties deterministically.
    counter = 0
    heap = []  # entries: (-count, tiebreak, node)
    result: List[SpatialNode] = []

    def push(node: SpatialNode) -> None:
        nonlocal counter
        if _eligible(node, k):
            heapq.heappush(heap, (-node.count, counter, node))
            counter += 1
        else:
            result.append(node)

    push(tree.root)
    while heap and len(result) + len(heap) < n_servers:
        __, __, node = heapq.heappop(heap)
        for child in node.children:
            push(child)
    # Whatever is still heaped stays a jurisdiction as-is.
    while heap:
        __, __, node = heapq.heappop(heap)
        result.append(node)

    result.sort(key=lambda n: n.node_id)
    return [
        Jurisdiction(
            rect=node.rect,
            is_semi=node.is_semi,
            count=node.count,
            node_id=node.node_id,
        )
        for node in result
    ]


def load_imbalance(jurisdictions: Sequence[Jurisdiction]) -> float:
    """Max/mean location-count ratio — 1.0 means perfectly balanced.

    Empty partitions are excluded from the mean so that sparse maps do
    not make balance look artificially bad.
    """
    counts = [j.count for j in jurisdictions if j.count > 0]
    if not counts:
        return 1.0
    mean = sum(counts) / len(counts)
    return max(counts) / mean if mean else 1.0
