"""The binary tree of quadrants and semi-quadrants (paper §V).

Casper [23] improved cloak utility by allowing *semi-quadrants* —
half-quadrants obtained by splitting a quadrant in two — as cloaks.  The
paper turns the same idea into a runtime optimization: the quad tree is
re-expressed as a **binary** tree in which each square quadrant is the
parent of its two vertical semi-quadrants, and each semi-quadrant is the
parent of the two square quadrants it contains.  The DP over this tree
combines only *two* children per node instead of four, dropping the
per-node cost from O(|D|^4) to O(|D|^2) before the Lemma-5 pruning.

The tree is **lazily materialized**: a node is split only while it holds
at least ``split_threshold`` (= k) locations — a node with fewer can
never cloak anything, so its subtree is irrelevant to the optimum — and
its depth is below ``max_depth`` (the minimum-cloak-granularity knob).

The tree also supports **in-place point movement** between location
snapshots (:meth:`apply_moves`), maintaining the lazy-materialization
invariant by re-splitting and collapsing nodes, and reporting the set of
*dirty* nodes whose DP entries must be recomputed — the substrate of the
incremental-maintenance experiment (Figure 5(b)).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Set, Tuple

import numpy as np

from ..core.errors import TreeError
from ..core.geometry import Point, Rect
from ..core.locationdb import LocationDatabase
from .node import SpatialNode

__all__ = ["BinaryTree"]


def _classify_root(region: Rect) -> bool:
    """Decide whether a root rectangle is a quadrant or a semi-quadrant.

    Jurisdictions handed out by the greedy partitioner may be
    semi-quadrants (1:2 rectangles, tall or wide depending on the tree
    orientation); a per-jurisdiction tree must resume the split
    alternation from the right phase.  Square → quadrant; 1:2 aspect in
    either direction → semi-quadrant.
    """
    long_side = max(region.width, region.height)
    short_side = min(region.width, region.height)
    if abs(region.width - region.height) <= 1e-9 * max(long_side, 1.0):
        return False
    if abs(long_side - 2.0 * short_side) <= 1e-9 * max(long_side, 1.0):
        return True
    raise TreeError(
        f"binary tree root must be square or a 1:2 semi-quadrant, got {region}"
    )


class BinaryTree:
    """Lazy binary tree of quadrants / semi-quadrants.

    With the default ``orientation='vertical'`` (the paper's static
    choice), square nodes split vertically into West/East semi-quadrants
    and the tall semi-quadrants split horizontally into two squares;
    ``orientation='horizontal'`` mirrors this (North/South wide semis).
    The paper notes its implementation "can choose dynamically between
    binary trees with vertical and horizontal semi-quadrants at
    run-time" — :func:`repro.core.binary_dp.solve_best_orientation`
    provides that choice by solving both static trees.

    ``depth`` counts binary levels (two binary levels = one quad level),
    matching the ``h(m)`` of Lemma 5.
    """

    def __init__(
        self,
        region: Rect,
        db: LocationDatabase,
        split_threshold: int,
        max_depth: int = 40,
        orientation: str = "vertical",
        shared_index: Optional[
            Tuple[List[str], Dict[str, int], np.ndarray]
        ] = None,
    ):
        root_is_semi = _classify_root(region)
        if split_threshold < 1:
            raise TreeError("split_threshold must be ≥ 1")
        if orientation not in ("vertical", "horizontal"):
            raise TreeError(
                f"orientation must be 'vertical' or 'horizontal', "
                f"got {orientation!r}"
            )
        self.region = region
        self.db = db
        self.split_threshold = split_threshold
        self.max_depth = max_depth
        self.orientation = orientation
        if shared_index is not None:
            # Row index precomputed by a sibling tree over the *same*
            # snapshot (solve_best_orientation builds two).  The id list
            # and row map are immutable here; coords are copied because
            # apply_moves mutates them per tree.
            user_ids, user_row, coords = shared_index
            self.user_ids = user_ids
            self.user_row = user_row
            self.coords = coords.copy()
        else:
            self.user_ids = db.user_ids()
            self.user_row = {uid: i for i, uid in enumerate(self.user_ids)}
            self.coords = db.coords_array()
        self._next_id = 0
        self.nodes: Dict[int, SpatialNode] = {}
        self.root = self._new_node(region, depth=0, parent=None, is_semi=root_is_semi)
        self.root.count = len(self.user_ids)
        self.root.point_index = set(range(len(self.user_ids)))
        #: row index → leaf node currently holding that point.
        self._leaf_of: List[SpatialNode] = [self.root] * len(self.user_ids)
        self._materialize(self.root)

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(
        cls,
        region: Rect,
        db: LocationDatabase,
        k: int,
        max_depth: int = 40,
        orientation: str = "vertical",
        shared_index: Optional[
            Tuple[List[str], Dict[str, int], np.ndarray]
        ] = None,
    ) -> "BinaryTree":
        """Build the tree for anonymity degree ``k`` (threshold = k)."""
        return cls(
            region,
            db,
            split_threshold=k,
            max_depth=max_depth,
            orientation=orientation,
            shared_index=shared_index,
        )

    def _new_node(
        self,
        rect: Rect,
        depth: int,
        parent: Optional[SpatialNode],
        is_semi: bool,
    ) -> SpatialNode:
        node = SpatialNode(self._next_id, rect, depth, parent, is_semi=is_semi)
        self._next_id += 1
        self.nodes[node.node_id] = node
        return node

    def _should_split(self, node: SpatialNode) -> bool:
        return (
            node.count >= self.split_threshold and node.depth < self.max_depth
        )

    def _child_rects(self, node: SpatialNode) -> Tuple[Rect, Rect]:
        """Squares split per the tree's orientation; semi-quadrants are
        always split across their long axis (yielding two squares)."""
        if node.is_semi:
            if node.rect.height > node.rect.width:
                return node.rect.halves_horizontal()
            return node.rect.halves_vertical()
        if self.orientation == "vertical":
            return node.rect.halves_vertical()
        return node.rect.halves_horizontal()

    def _split(
        self, node: SpatialNode, rows: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Turn leaf ``node`` into an internal node with two children.

        Children receive counts only; their ``point_index`` sets and the
        ``_leaf_of`` entries are finalized by :meth:`_materialize` once a
        leaf *settles* — a split cascade then costs one vectorized mask
        per node instead of per-row Python set/dict churn.  Returns the
        two child row arrays.
        """
        if not node.is_leaf:
            raise TreeError(f"node {node.node_id} is already split")
        rect_a, rect_b = self._child_rects(node)
        child_semi = not node.is_semi
        child_a = self._new_node(rect_a, node.depth + 1, node, child_semi)
        child_b = self._new_node(rect_b, node.depth + 1, node, child_semi)
        if rows is None:
            rows = np.fromiter(
                node.point_index, dtype=np.int64, count=len(node.point_index)
            )
        node.point_index = None
        # Points exactly on the split line go to the first child (West /
        # South), matching SpatialNode.child_for's first-match descent.
        # The cut axis is read off the child rectangles themselves, so
        # both tree orientations share this code.
        if rect_a.x2 < node.rect.x2:  # vertical cut: West | East
            mask = self.coords[rows, 0] <= rect_a.x2
        else:  # horizontal cut: South | North
            mask = self.coords[rows, 1] <= rect_a.y2
        rows_a, rows_b = rows[mask], rows[~mask]
        child_a.count = len(rows_a)
        child_b.count = len(rows_b)
        node.children = [child_a, child_b]
        return rows_a, rows_b

    def _materialize(self, start: SpatialNode) -> List[SpatialNode]:
        """Split ``start`` and descendants while the lazy rule demands it.

        Returns every node created (used for dirty tracking).  Row
        bookkeeping is deferred: rows travel down the cascade as numpy
        arrays and each settled leaf converts to its point set (and
        claims its ``_leaf_of`` entries) exactly once.
        """
        created: List[SpatialNode] = []
        if not start.is_leaf or not self._should_split(start):
            return created
        frontier: List[Tuple[SpatialNode, Optional[np.ndarray]]] = [(start, None)]
        while frontier:
            node, rows = frontier.pop()
            if not self._should_split(node):
                node.point_index = set(rows.tolist())
                for row in node.point_index:
                    self._leaf_of[row] = node
                continue
            rows_a, rows_b = self._split(node, rows)
            created.extend(node.children)
            frontier.append((node.children[0], rows_a))
            frontier.append((node.children[1], rows_b))
        return created

    def _collapse(self, node: SpatialNode) -> List[int]:
        """Make ``node`` a leaf again, absorbing its subtree's points.

        Returns the ids of the removed descendant nodes.
        """
        if node.is_leaf:
            return []
        removed: List[int] = []
        rows: Set[int] = set()
        for desc in node.iter_subtree():
            if desc is node:
                continue
            removed.append(desc.node_id)
            if desc.is_leaf:
                rows.update(desc.point_index)
            del self.nodes[desc.node_id]
        node.children = []
        node.point_index = rows
        for row in rows:
            self._leaf_of[row] = node
        return removed

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def height(self) -> int:
        return max(node.depth for node in self.nodes.values())

    def leaves(self) -> List[SpatialNode]:
        return [node for node in self.nodes.values() if node.is_leaf]

    def iter_postorder(self) -> Iterator[SpatialNode]:
        return self.root.iter_postorder()

    def leaf_for(self, point: Point) -> SpatialNode:
        if not self.region.contains(point):
            raise TreeError(f"point {point} lies outside the map {self.region}")
        return self.root.leaf_for(point)

    def leaf_of_user(self, user_id: str) -> SpatialNode:
        """The leaf currently holding ``user_id``'s location."""
        row = self.user_row.get(user_id)
        if row is None:
            raise TreeError(f"unknown user {user_id!r}")
        return self._leaf_of[row]

    def rows_of(self, node: SpatialNode) -> List[int]:
        """Sorted point rows inside ``node`` (deterministic order)."""
        if node.is_leaf:
            return sorted(node.point_index)
        rows: List[int] = []
        for leaf in node.iter_subtree():
            if leaf.is_leaf:
                rows.extend(leaf.point_index)
        return sorted(rows)

    def users_of(self, node: SpatialNode) -> List[str]:
        """User ids inside ``node``, in row order."""
        return [self.user_ids[row] for row in self.rows_of(node)]

    def smallest_node_with(
        self, point: Point, min_count: int
    ) -> Optional[SpatialNode]:
        """Deepest node containing ``point`` with ``d ≥ min_count`` — the
        cloak choice of the policy-unaware binary baseline (PUB)."""
        if self.root.count < min_count or not self.region.contains(point):
            return None
        best = None
        node = self.root
        while True:
            if node.count >= min_count:
                best = node
            if node.is_leaf:
                return best
            node = node.child_for(point)
            if node.count < min_count:
                return best

    def stats(self) -> Dict[str, float]:
        """Shape statistics for the Figure 3 experiment."""
        leaves = self.leaves()
        leaf_counts = [leaf.count for leaf in leaves]
        return {
            "nodes": len(self.nodes),
            "leaves": len(leaves),
            "height": self.height,
            "max_leaf_count": max(leaf_counts) if leaf_counts else 0,
            "mean_leaf_count": float(np.mean(leaf_counts)) if leaf_counts else 0.0,
        }

    def depth_histogram(self) -> Dict[int, int]:
        """Leaf count per depth — the grey-scale data of Figure 3(a)."""
        hist: Dict[int, int] = {}
        for leaf in self.leaves():
            hist[leaf.depth] = hist.get(leaf.depth, 0) + 1
        return dict(sorted(hist.items()))

    # -- snapshot evolution ------------------------------------------------------

    def apply_moves(self, moves: Mapping[str, Point]) -> Set[int]:
        """Relocate users in place, preserving the lazy invariant.

        Returns the ids of *dirty* nodes: every surviving node whose
        count or structure changed (ancestors of any change included),
        i.e. exactly the nodes whose DP entries must be recomputed.
        Removed nodes are not reported — they no longer exist.
        """
        dirty: Set[int] = set()
        for user_id, new_point in moves.items():
            row = self.user_row.get(str(user_id))
            if row is None:
                raise TreeError(f"cannot move unknown user {user_id!r}")
            if not self.region.contains(new_point):
                raise TreeError(
                    f"user {user_id!r} moved outside the map: {new_point}"
                )
            old_leaf = self._leaf_of[row]
            old_leaf.point_index.discard(row)
            for node in old_leaf.path_to_root():
                node.count -= 1
                dirty.add(node.node_id)
            self.coords[row] = (new_point.x, new_point.y)
            new_leaf = self.root.leaf_for(new_point)
            new_leaf.point_index.add(row)
            self._leaf_of[row] = new_leaf
            for node in new_leaf.path_to_root():
                node.count += 1
                dirty.add(node.node_id)
        # Keep the snapshot view consistent with the moved coordinates,
        # so policies extracted after the move validate as masking.
        self.db = self.db.with_moves(
            {str(uid): p for uid, p in moves.items()}
        )
        self._restructure(dirty)
        return {node_id for node_id in dirty if node_id in self.nodes}

    def _restructure(self, dirty: Set[int]) -> None:
        """Re-establish: leaf ⟺ (count < threshold or depth = max)."""
        # Collapse first (an underfull internal node may contain leaves
        # that would otherwise be considered for splitting).
        for node_id in sorted(dirty):
            node = self.nodes.get(node_id)
            if node is None or node.is_leaf:
                continue
            if node.count < self.split_threshold:
                removed = self._collapse(node)
                dirty.difference_update(removed)
        for node_id in sorted(dirty):
            node = self.nodes.get(node_id)
            if node is None or not node.is_leaf:
                continue
            created = self._materialize(node)
            dirty.update(child.node_id for child in created)

    def check_invariants(self) -> None:
        """Validate structural invariants (test hook).

        Raises :class:`TreeError` on the first violation found.
        """
        total = 0
        for node in self.root.iter_subtree():
            if self.nodes.get(node.node_id) is not node:
                raise TreeError(f"node registry out of sync at {node.node_id}")
            if node.is_leaf:
                total += len(node.point_index)
                if node.count != len(node.point_index):
                    raise TreeError(f"count mismatch at leaf {node.node_id}")
                if self._should_split(node):
                    raise TreeError(
                        f"leaf {node.node_id} violates lazy split invariant"
                    )
                for row in node.point_index:
                    if self._leaf_of[row] is not node:
                        raise TreeError(f"leaf assignment stale for row {row}")
                    x, y = self.coords[row]
                    if not node.rect.contains(Point(x, y)):
                        raise TreeError(
                            f"row {row} outside its leaf {node.node_id}"
                        )
            else:
                if node.count != sum(c.count for c in node.children):
                    raise TreeError(f"count mismatch at node {node.node_id}")
                if node.count < self.split_threshold:
                    raise TreeError(
                        f"internal node {node.node_id} should have collapsed"
                    )
        if total != len(self.user_ids):
            raise TreeError(f"point leakage: {total} != {len(self.user_ids)}")
