"""Possible Reverse Engineerings (Definition 5) and Definition-6 checks.

This module implements the paper's attacker formalism *literally*: a
PRE of a set ``A`` of anonymized requests w.r.t. a location database
``D`` and a policy family ``𝒫`` is a function assigning to every AR a
valid service request that some single policy in ``𝒫`` could have
produced.  Sender k-anonymity (Definition 6) holds when k PREs exist
that disagree on the sender of *every* AR pairwise.

Enumerating PREs is exponential and used only on small instances —
examples, tests, and the breach demonstrations.  The operational
attackers in :mod:`repro.attacks.attacker` compute the same candidate
sets directly and scale to full workloads.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..core.errors import ReproError
from ..core.geometry import Rect
from ..core.policy import CloakingPolicy
from ..core.requests import AnonymizedRequest, ServiceRequest, masks

__all__ = [
    "KInsideFamily",
    "PolicyFamily",
    "SingletonFamily",
    "MaskingFamily",
    "enumerate_pres",
    "sender_anonymity_level",
    "provides_sender_k_anonymity",
]

#: A PRE: one service request per anonymized request.
PRE = Dict[AnonymizedRequest, ServiceRequest]

_MAX_BRUTE_FORCE = 2_000_000


class PolicyFamily:
    """The attacker's design-time knowledge: a set 𝒫 of candidate policies.

    Subclasses answer one question: could *some* policy in the family
    have produced this whole assignment of service requests to
    anonymized requests?
    """

    def consistent(self, assignment: PRE) -> bool:
        raise NotImplementedError


class SingletonFamily(PolicyFamily):
    """𝒫 = {P}: the policy-aware attacker knows the exact policy in use."""

    def __init__(self, policy: CloakingPolicy):
        self.policy = policy

    def consistent(self, assignment: PRE) -> bool:
        for ar, sr in assignment.items():
            if not sr.is_valid_for(self.policy.db):
                return False
            # P(D, SR) = AR ⟺ the policy's cloak for the sender is AR's
            # cloak (payload passes through unchanged).
            if self.policy.cloak_for(sr.user_id) != ar.cloak:
                return False
            if sr.payload != ar.payload:
                return False
        return True


class MaskingFamily(PolicyFamily):
    """𝒫 = 𝒫_C: every masking policy over a cloak vocabulary ``C``.

    This is the policy-unaware attacker's knowledge.  An assignment is
    producible by *some* deterministic masking policy iff

    * every AR masks its assigned SR (validity + containment),
    * every cloak used belongs to the vocabulary, and
    * no single service request is assigned to two distinct ARs
      (a deterministic procedure maps each SR to one AR).
    """

    def __init__(self, db, vocabulary: Optional[Set] = None):
        self.db = db
        #: ``None`` means "any connected closed region" (unrestricted C).
        self.vocabulary = vocabulary

    def consistent(self, assignment: PRE) -> bool:
        seen: Dict[Tuple[str, Tuple], AnonymizedRequest] = {}
        for ar, sr in assignment.items():
            if not sr.is_valid_for(self.db):
                return False
            if not masks(ar, sr):
                return False
            if self.vocabulary is not None and ar.cloak not in self.vocabulary:
                return False
            key = (sr.user_id, sr.payload)
            previous = seen.get(key)
            if previous is not None and previous is not ar:
                if previous != ar:
                    return False
            seen[key] = ar
        return True


class KInsideFamily(PolicyFamily):
    """𝒫 = all *k-inside* masking policies over a vocabulary.

    The paper notes that "by varying these sets one can enumerate
    different classes of attackers"; this is the natural intermediate
    point between the two extremes it studies: the attacker knows the
    CSP deploys *some* k-inside policy (the entire prior-work family)
    but not which one.  Consistency adds one constraint on top of
    :class:`MaskingFamily`: every observed cloak must contain at least
    k users — a cloak with fewer could not have come from any k-inside
    policy, so observing one shrinks the candidate set to ∅ (and in
    practice tells the attacker the CSP is not running what it claims).
    """

    def __init__(self, db, k: int, vocabulary: Optional[Set] = None):
        self.db = db
        self.k = k
        self.vocabulary = vocabulary
        self._masking = MaskingFamily(db, vocabulary)

    def consistent(self, assignment: PRE) -> bool:
        if not self._masking.consistent(assignment):
            return False
        for ar in assignment:
            inside = sum(
                1 for __, p in self.db.items() if ar.cloak.contains(p)
            )
            if inside < self.k:
                return False
        return True


def _candidate_requests(
    ar: AnonymizedRequest, db
) -> List[ServiceRequest]:
    """All valid service requests ``AR`` could possibly mask: one per
    user located inside the cloak, with AR's payload."""
    out = []
    for user_id, point in db.items():
        if ar.cloak.contains(point):
            out.append(ServiceRequest(user_id, point, ar.payload))
    return out


def enumerate_pres(
    anonymized: Sequence[AnonymizedRequest],
    db,
    family: PolicyFamily,
) -> Iterator[PRE]:
    """Yield every PRE of ``anonymized`` w.r.t. ``db`` and ``family``.

    Brute force over the product of per-AR candidate sets; refuses
    workloads whose product exceeds an internal guard.
    """
    candidate_lists = [_candidate_requests(ar, db) for ar in anonymized]
    size = 1
    for lst in candidate_lists:
        size *= max(len(lst), 1)
        if size > _MAX_BRUTE_FORCE:
            raise ReproError(
                "PRE enumeration too large; use the operational attackers"
            )
    for combo in itertools.product(*candidate_lists):
        assignment = dict(zip(anonymized, combo))
        if family.consistent(assignment):
            yield assignment


def sender_anonymity_level(
    anonymized: Sequence[AnonymizedRequest],
    db,
    family: PolicyFamily,
) -> int:
    """The largest k for which Definition 6 holds on this request set.

    Definition 6 asks for PREs π_1..π_k whose sender ids differ pairwise
    at every AR.  The largest such k is the maximum clique size in the
    "pairwise everywhere-distinct" compatibility graph over PREs; we
    find it by exhaustive branch search (small inputs only, like
    everything in this module).
    """
    pres = list(enumerate_pres(anonymized, db, family))
    if not pres:
        return 0
    best = 1

    def extend(chosen: List[PRE], start: int) -> None:
        nonlocal best
        best = max(best, len(chosen))
        for i in range(start, len(pres)):
            candidate = pres[i]
            ok = all(
                all(
                    candidate[ar].user_id != prior[ar].user_id
                    for ar in anonymized
                )
                for prior in chosen
            )
            if ok:
                chosen.append(candidate)
                extend(chosen, i + 1)
                chosen.pop()

    extend([], 0)
    return best


def provides_sender_k_anonymity(
    anonymized: Sequence[AnonymizedRequest],
    db,
    family: PolicyFamily,
    k: int,
) -> bool:
    """Definition 6, verbatim, for small request sets."""
    return sender_anonymity_level(anonymized, db, family) >= k
