"""Operational attackers (§III "The Attacker Model").

The paper's two attacker classes, implemented so they scale to full
workloads (unlike the literal PRE enumeration of
:mod:`repro.attacks.pre`, with which the test suite cross-checks them):

* :class:`PolicyUnawareAttacker` — knows only the cloak vocabulary; the
  candidate-sender set of an anonymized request is every user located
  inside its cloak (any of them admits *some* masking policy producing
  the AR).
* :class:`PolicyAwareAttacker` — knows the exact policy ``P``; the
  candidate set shrinks to the users whose assigned cloak is the AR's
  cloak.  Example 1 / Figure 6 of the paper are exactly the situations
  where this set is smaller than k while the unaware set is not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.policy import CloakingPolicy
from ..core.requests import AnonymizedRequest

__all__ = ["AttackResult", "PolicyUnawareAttacker", "PolicyAwareAttacker"]


@dataclass(frozen=True)
class AttackResult:
    """What an attacker learned about one anonymized request."""

    request: AnonymizedRequest
    candidates: Tuple[str, ...]

    @property
    def anonymity(self) -> int:
        """The number of possible senders the attacker is left with."""
        return len(self.candidates)

    @property
    def identified(self) -> Optional[str]:
        """The sender, when the attack pinned it to a single user."""
        return self.candidates[0] if len(self.candidates) == 1 else None

    def breaches(self, k: int) -> bool:
        return self.anonymity < k


class PolicyUnawareAttacker:
    """An attacker with run-time access to ``D`` but no policy knowledge.

    Observes one AR at a time (the weaker extreme the paper defines);
    its candidate set is the cloak's population.
    """

    def __init__(self, db):
        self.db = db

    def attack(self, ar: AnonymizedRequest) -> AttackResult:
        candidates = tuple(
            uid for uid, point in self.db.items() if ar.cloak.contains(point)
        )
        return AttackResult(ar, candidates)

    def attack_all(
        self, ars: Sequence[AnonymizedRequest]
    ) -> List[AttackResult]:
        return [self.attack(ar) for ar in ars]

    def min_anonymity(self, ars: Sequence[AnonymizedRequest]) -> int:
        """The policy-unaware anonymity level of a request set."""
        results = self.attack_all(ars)
        return min((r.anonymity for r in results), default=0)


class PolicyAwareAttacker:
    """An attacker who knows the deployed policy ("the design is not
    secret" [Saltzer '74]) and can observe every anonymized request.

    For a deterministic, location-only policy, a PRE must assign to an
    AR a sender the policy actually maps to the AR's cloak — so the
    candidate set is the cloak's *assigned group*, not its population.
    """

    def __init__(self, policy: CloakingPolicy):
        self.policy = policy
        self._group_of: Dict[object, Tuple[str, ...]] = {
            region: tuple(users)
            for region, users in policy.groups().items()
        }

    def attack(self, ar: AnonymizedRequest) -> AttackResult:
        candidates = self._group_of.get(ar.cloak, ())
        return AttackResult(ar, candidates)

    def attack_all(
        self, ars: Sequence[AnonymizedRequest]
    ) -> List[AttackResult]:
        return [self.attack(ar) for ar in ars]

    def min_anonymity(self, ars: Sequence[AnonymizedRequest]) -> int:
        """The policy-aware anonymity level of a request set."""
        results = self.attack_all(ars)
        return min((r.anonymity for r in results), default=0)

    def identified_senders(
        self, ars: Sequence[AnonymizedRequest]
    ) -> List[str]:
        """Users whose identity the attack fully compromises."""
        out = []
        for result in self.attack_all(ars):
            if result.identified is not None:
                out.append(result.identified)
        return out
