"""Anonymity auditing of cloaking policies.

Given a policy for a snapshot, the auditor measures the anonymity it
actually delivers under both attacker classes of §III, over the paper's
canonical workload ("every user sends one request").  This is how the
library demonstrates Propositions 1–3: k-inside policies pass the
policy-unaware audit but can fail the policy-aware one; the DP's output
passes both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core.errors import AnonymityBreachError
from ..core.policy import CloakingPolicy

__all__ = ["AuditReport", "audit_policy", "assert_policy_aware_k_anonymous"]


@dataclass(frozen=True)
class AuditReport:
    """Outcome of auditing one policy on its snapshot."""

    policy_name: str
    k: int
    #: min candidate-set size under a policy-unaware attacker
    #: (= min #users inside any used cloak).
    policy_unaware_level: int
    #: min candidate-set size under a policy-aware attacker
    #: (= min cloak-group size).
    policy_aware_level: int
    #: users a policy-aware attacker narrows below k.
    breached_users: Tuple[str, ...]
    #: users a policy-aware attacker identifies *exactly*.
    identified_users: Tuple[str, ...]

    @property
    def safe_policy_unaware(self) -> bool:
        return self.policy_unaware_level >= self.k

    @property
    def safe_policy_aware(self) -> bool:
        return self.policy_aware_level >= self.k

    def summary(self) -> str:
        return (
            f"{self.policy_name}: k={self.k} "
            f"unaware level={self.policy_unaware_level} "
            f"({'OK' if self.safe_policy_unaware else 'BREACH'}), "
            f"aware level={self.policy_aware_level} "
            f"({'OK' if self.safe_policy_aware else 'BREACH'}, "
            f"{len(self.breached_users)} users exposed, "
            f"{len(self.identified_users)} identified)"
        )


def audit_policy(policy: CloakingPolicy, k: int) -> AuditReport:
    """Audit ``policy`` under both attacker classes.

    The policy-aware level is the smallest cloak group (Lemma 3); the
    policy-unaware level is the smallest cloak population.  Both are
    computed over all users, matching the paper's cost workload.
    """
    groups = policy.groups()
    aware_level = min((len(users) for users in groups.values()), default=0)
    breached: List[str] = []
    identified: List[str] = []
    for users in groups.values():
        if len(users) < k:
            breached.extend(users)
            if len(users) == 1:
                identified.extend(users)

    unaware_level = 0
    if groups:
        populations = []
        for region in groups:
            populations.append(
                sum(1 for __, p in policy.db.items() if region.contains(p))
            )
        unaware_level = min(populations)

    return AuditReport(
        policy_name=policy.name,
        k=k,
        policy_unaware_level=unaware_level,
        policy_aware_level=aware_level,
        breached_users=tuple(sorted(breached)),
        identified_users=tuple(sorted(identified)),
    )


def assert_policy_aware_k_anonymous(policy: CloakingPolicy, k: int) -> AuditReport:
    """Audit and raise :class:`AnonymityBreachError` on a policy-aware
    breach (deployment gate for CSP-side pipelines)."""
    report = audit_policy(policy, k)
    if not report.safe_policy_aware:
        raise AnonymityBreachError(
            f"policy {policy.name!r} provides only "
            f"{report.policy_aware_level}-anonymity against policy-aware "
            f"attackers (k={k})",
            breached_users=report.breached_users,
        )
    return report
