"""Frequency-counting attacks and their cache counter-measure (§VII
"Beyond k-anonymity: l-diversity and t-closeness").

The paper sketches the LBS-side analogue of the attacks l-diversity and
t-closeness defend against in data anonymization: *count duplicate
requests per (cloak, payload) within a snapshot*.  If a cloak holding
``n`` users emits ``n`` identical requests in one snapshot (one request
per user per snapshot), every one of those users must have sent it —
all senders of that interest are exposed at once, even though each
individual request was k-anonymous.

This module implements that attack against a request log, and the check
that the CSP-side answer cache (:mod:`repro.lbs.cache`) precludes it:
with the cache in place the LBS never observes duplicates, so the
counts it could log (or be subpoenaed for) are all 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core.policy import CloakingPolicy
from ..core.requests import AnonymizedRequest, Payload

__all__ = ["FrequencyFinding", "frequency_attack", "max_duplicate_count"]

#: What the attacker groups observed requests by.
GroupKey = Tuple[object, Payload]


@dataclass(frozen=True)
class FrequencyFinding:
    """One cloak whose request frequency leaks information."""

    cloak: object
    payload: Payload
    observed_count: int
    group_size: int
    #: the users whose interest is exposed (the whole cloak group when
    #: the count saturates it).
    exposed_users: Tuple[str, ...]

    @property
    def saturated(self) -> bool:
        """Every member of the group provably sent this request."""
        return self.observed_count >= self.group_size


def frequency_attack(
    observed: Sequence[AnonymizedRequest],
    policy: CloakingPolicy,
) -> List[FrequencyFinding]:
    """Count duplicate requests per (cloak, payload) within a snapshot.

    ``observed`` is what the LBS logged for one snapshot; ``policy`` is
    the (policy-aware attacker's) knowledge of the cloaking in use,
    which yields each cloak's group size.  A finding is returned for
    every group whose duplicate count saturates it — i.e. where the
    attacker learns that *every* group member sent that exact request.

    Assumes one request per user per snapshot (the paper calls this
    reasonable given the short snapshot duration).
    """
    counts: Dict[GroupKey, int] = {}
    for request in observed:
        key = (request.cloak, request.payload)
        counts[key] = counts.get(key, 0) + 1

    groups = policy.groups()
    findings: List[FrequencyFinding] = []
    for (cloak, payload), count in sorted(
        counts.items(), key=lambda item: -item[1]
    ):
        members = groups.get(cloak, [])
        if not members:
            continue
        if count >= len(members):
            findings.append(
                FrequencyFinding(
                    cloak=cloak,
                    payload=payload,
                    observed_count=count,
                    group_size=len(members),
                    exposed_users=tuple(sorted(members)),
                )
            )
    return findings


def max_duplicate_count(observed: Sequence[AnonymizedRequest]) -> int:
    """The largest per-(cloak, payload) duplicate count in a log.

    With the CSP answer cache enabled this is at most 1 — the §VII
    counter-measure made checkable.
    """
    counts: Dict[GroupKey, int] = {}
    for request in observed:
        key = (request.cloak, request.payload)
        counts[key] = counts.get(key, 0) + 1
    return max(counts.values(), default=0)
