"""Attacker formalism (§III): PREs, the policy-aware / policy-unaware
attacker classes, and policy auditing."""

from .attacker import AttackResult, PolicyAwareAttacker, PolicyUnawareAttacker
from .audit import AuditReport, assert_policy_aware_k_anonymous, audit_policy
from .frequency import FrequencyFinding, frequency_attack, max_duplicate_count
from .trajectory import (
    TrajectoryAttackResult,
    anonymity_erosion,
    trajectory_attack,
)
from .pre import (
    KInsideFamily,
    MaskingFamily,
    PolicyFamily,
    SingletonFamily,
    enumerate_pres,
    provides_sender_k_anonymity,
    sender_anonymity_level,
)

__all__ = [
    "AttackResult",
    "AuditReport",
    "FrequencyFinding",
    "KInsideFamily",
    "MaskingFamily",
    "PolicyAwareAttacker",
    "PolicyFamily",
    "PolicyUnawareAttacker",
    "SingletonFamily",
    "TrajectoryAttackResult",
    "anonymity_erosion",
    "assert_policy_aware_k_anonymous",
    "audit_policy",
    "enumerate_pres",
    "frequency_attack",
    "max_duplicate_count",
    "provides_sender_k_anonymity",
    "sender_anonymity_level",
    "trajectory_attack",
]
