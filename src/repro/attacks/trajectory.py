"""Trajectory-aware attacks across snapshots (the paper's declared
future work, demonstrated).

The paper's guarantee is **per snapshot**: each anonymized request has
≥ k possible senders at the time it was sent.  §I's "Scope" explicitly
leaves *trajectory-aware* attackers — who know that several requests
(sent at different times, from different locations) originate from the
same (a-priori unknown) user — to future work [6], [27], [11].

This module shows why that matters: a trajectory-aware attacker
intersects the candidate-sender sets of linked requests across
snapshots.  Since cloak groups are re-drawn per snapshot, the
intersection can shrink far below k even though every individual
request was policy-aware k-anonymous.  The tooling here quantifies
that erosion so future mitigation work can be evaluated against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

from ..core.policy import CloakingPolicy
from ..core.requests import AnonymizedRequest
from .attacker import PolicyAwareAttacker

__all__ = ["TrajectoryAttackResult", "trajectory_attack", "anonymity_erosion"]


@dataclass(frozen=True)
class TrajectoryAttackResult:
    """Outcome of linking one user's requests across snapshots."""

    #: candidate sets per linked request, in observation order.
    per_request: Tuple[Tuple[str, ...], ...]
    #: candidates consistent with *all* linked requests.
    surviving: Tuple[str, ...]

    @property
    def anonymity(self) -> int:
        return len(self.surviving)

    @property
    def identified(self) -> bool:
        return len(self.surviving) == 1


def trajectory_attack(
    linked: Sequence[Tuple[AnonymizedRequest, CloakingPolicy]],
) -> TrajectoryAttackResult:
    """Attack a *linked* request sequence.

    ``linked`` pairs each observed anonymized request with the policy in
    force at its snapshot (the policy-aware attacker knows every
    deployed policy).  The attacker's candidate set for the whole
    trajectory is the intersection of the per-snapshot candidate sets.
    """
    per_request: List[Tuple[str, ...]] = []
    surviving: Set[str] = set()
    first = True
    for request, policy in linked:
        candidates = PolicyAwareAttacker(policy).attack(request).candidates
        per_request.append(candidates)
        if first:
            surviving = set(candidates)
            first = False
        else:
            surviving &= set(candidates)
    return TrajectoryAttackResult(
        per_request=tuple(per_request),
        surviving=tuple(sorted(surviving)),
    )


def anonymity_erosion(
    user_id: str,
    policies: Sequence[CloakingPolicy],
) -> List[int]:
    """Track how a user's trajectory anonymity erodes snapshot by
    snapshot if she requests in every one of ``policies``.

    Returns the surviving-candidate count after each snapshot; the first
    entry is ≥ k (the per-snapshot guarantee), later entries may shrink.
    """
    linked = []
    erosion: List[int] = []
    for policy in policies:
        request = AnonymizedRequest(
            request_id=len(linked) + 1,
            cloak=policy.cloak_for(user_id),
            payload=(),
        )
        linked.append((request, policy))
        erosion.append(trajectory_attack(linked).anonymity)
    return erosion
