"""Trajectory-aware attacks across snapshots (the paper's declared
future work, demonstrated).

The paper's guarantee is **per snapshot**: each anonymized request has
≥ k possible senders at the time it was sent.  §I's "Scope" explicitly
leaves *trajectory-aware* attackers — who know that several requests
(sent at different times, from different locations) originate from the
same (a-priori unknown) user — to future work [6], [27], [11].

This module shows why that matters: a trajectory-aware attacker
intersects the candidate-sender sets of linked requests across
snapshots.  Since cloak groups are re-drawn per snapshot, the
intersection can shrink far below k even though every individual
request was policy-aware k-anonymous.  The tooling here quantifies
that erosion so future mitigation work can be evaluated against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from ..core.policy import CloakingPolicy
from ..core.requests import AnonymizedRequest
from .attacker import PolicyAwareAttacker

__all__ = ["TrajectoryAttackResult", "trajectory_attack", "anonymity_erosion"]


@dataclass(frozen=True)
class TrajectoryAttackResult:
    """Outcome of linking one user's requests across snapshots."""

    #: candidate sets per linked request, in observation order.
    per_request: Tuple[Tuple[str, ...], ...]
    #: candidates consistent with *all* linked requests.
    surviving: Tuple[str, ...]

    @property
    def anonymity(self) -> int:
        return len(self.surviving)

    @property
    def identified(self) -> bool:
        return len(self.surviving) == 1


def trajectory_attack(
    linked: Sequence[Tuple[AnonymizedRequest, CloakingPolicy]],
) -> TrajectoryAttackResult:
    """Attack a *linked* request sequence.

    ``linked`` pairs each observed anonymized request with the policy in
    force at its snapshot (the policy-aware attacker knows every
    deployed policy).  The attacker's candidate set for the whole
    trajectory is the intersection of the per-snapshot candidate sets.

    Raises :class:`ValueError` on an empty sequence: with nothing
    observed there is no trajectory to attack, and the old empty result
    read as ``identified`` (0 surviving candidates) — the opposite of
    what "no information" means.
    """
    if not linked:
        raise ValueError(
            "trajectory_attack needs at least one linked request; an "
            "empty observation set has no candidate intersection"
        )
    per_request: List[Tuple[str, ...]] = []
    surviving: Set[str] = set()
    first = True
    for request, policy in linked:
        candidates = PolicyAwareAttacker(policy).attack(request).candidates
        per_request.append(candidates)
        if first:
            surviving = set(candidates)
            first = False
        else:
            surviving &= set(candidates)
    return TrajectoryAttackResult(
        per_request=tuple(per_request),
        surviving=tuple(sorted(surviving)),
    )


def anonymity_erosion(
    user_id: str,
    policies: Sequence[CloakingPolicy],
    k: Optional[int] = None,
) -> List[int]:
    """Track how a user's trajectory anonymity erodes snapshot by
    snapshot if she requests in every one of ``policies``.

    Returns the surviving-candidate count after each snapshot; the first
    entry is ≥ k (the per-snapshot guarantee), later entries may shrink.
    With ``k`` given, each entry is clamped at the per-snapshot k floor
    (``min(raw, k)``): the curve then reads as "how much of the
    guarantee survives", starting exactly at k and decaying — raw counts
    above k are slack the guarantee never promised, and leaving them in
    makes curves from differently-sized groups incomparable.

    Raises :class:`ValueError` on an empty policy sequence (there is no
    trajectory to erode).
    """
    if not policies:
        raise ValueError(
            "anonymity_erosion needs at least one policy snapshot"
        )
    linked = []
    erosion: List[int] = []
    for policy in policies:
        request = AnonymizedRequest(
            request_id=len(linked) + 1,
            cloak=policy.cloak_for(user_id),
            payload=(),
        )
        linked.append((request, policy))
        surviving = trajectory_attack(linked).anonymity
        erosion.append(surviving if k is None else min(surviving, k))
    return erosion
