"""The closing audit: replay the trajectory attack on the served stream.

The defense is only credible if the *attacker's own tooling* certifies
it.  :class:`ServedTrajectories` records every (cloak, policy) pair a
serving layer actually emitted — for widened cloaks the policy recorded
is the effective one after the group-wide coarsening override, i.e. the
policy a policy-aware attacker can reverse-engineer from observing the
widened serve — and :meth:`ServedTrajectories.audit` replays
:func:`~repro.attacks.trajectory.trajectory_attack` over each user's
linked sequence.  The gate: surviving intersection ≥ k for every user.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..attacks.trajectory import trajectory_attack
from ..core.policy import CloakingPolicy
from ..core.requests import AnonymizedRequest
from ..robustness.degrade import coarsen_overrides, policy_with_overrides

__all__ = ["ServedTrajectories", "TrajectoryAuditReport"]


@dataclass(frozen=True)
class TrajectoryAuditReport:
    """Outcome of replaying the linking attack on a served stream."""

    k: int
    #: users with at least one served request.
    audited: int
    #: users whose surviving intersection stayed ≥ k.
    holding: int
    #: users eroded below k, with their surviving counts.
    failing: Tuple[Tuple[str, int], ...]
    #: smallest surviving intersection over all audited users.
    min_surviving: int
    #: ``curve[j]`` = the smallest surviving intersection over all users
    #: after their (j+1)-th request — the erosion curve benches plot.
    min_curve: Tuple[int, ...]
    #: per-user final surviving counts (sorted by user id).
    per_user: Dict[str, int]

    @property
    def all_hold(self) -> bool:
        """The audit gate: every audited user kept ≥ k candidates."""
        return self.audited > 0 and not self.failing


class ServedTrajectories:
    """Accumulates the served stream in the attacker's own terms."""

    def __init__(self) -> None:
        self._linked: Dict[
            str, List[Tuple[AnonymizedRequest, CloakingPolicy]]
        ] = {}
        # Effective-policy cache: one override policy per (snapshot
        # policy, widened rect) pair — the recorded policies keep the
        # base objects alive, so identity keys are stable.
        self._effective: Dict[Tuple[int, object], CloakingPolicy] = {}
        self._next_id = 0

    def observe(
        self,
        user_id: str,
        cloak,
        policy: CloakingPolicy,
        *,
        widened: Optional[bool] = None,
    ) -> None:
        """Record one served request as the attacker observes it."""
        uid = str(user_id)
        if widened is None:
            widened = policy.cloak_for(uid) != cloak
        effective = policy
        if widened:
            key = (id(policy), cloak)
            cached = self._effective.get(key)
            if cached is None:
                cached = policy_with_overrides(
                    policy,
                    coarsen_overrides(policy, cloak),
                    name="trajectory-widened",
                )
                self._effective[key] = cached
            effective = cached
        self._next_id += 1
        request = AnonymizedRequest(
            request_id=self._next_id, cloak=cloak, payload=()
        )
        self._linked.setdefault(uid, []).append((request, effective))

    def __len__(self) -> int:
        return len(self._linked)

    @property
    def requests(self) -> int:
        return sum(len(linked) for linked in self._linked.values())

    def trajectory_of(
        self, user_id: str
    ) -> Tuple[Tuple[AnonymizedRequest, CloakingPolicy], ...]:
        return tuple(self._linked.get(str(user_id), ()))

    def audit(self, k: int) -> TrajectoryAuditReport:
        """Replay the linking attack against every recorded user."""
        per_user: Dict[str, int] = {}
        failing: List[Tuple[str, int]] = []
        min_curve: List[int] = []
        for uid in sorted(self._linked):
            linked = self._linked[uid]
            result = trajectory_attack(linked)
            per_user[uid] = result.anonymity
            if result.anonymity < k:
                failing.append((uid, result.anonymity))
            # Running intersection sizes, for the erosion curve.
            running = set(result.per_request[0])
            for step, candidates in enumerate(result.per_request):
                if step > 0:
                    running &= set(candidates)
                if step >= len(min_curve):
                    min_curve.append(len(running))
                else:
                    min_curve[step] = min(min_curve[step], len(running))
        min_surviving = min(per_user.values()) if per_user else 0
        return TrajectoryAuditReport(
            k=k,
            audited=len(per_user),
            holding=sum(1 for n in per_user.values() if n >= k),
            failing=tuple(failing),
            min_surviving=min_surviving,
            min_curve=tuple(min_curve),
            per_user=per_user,
        )
