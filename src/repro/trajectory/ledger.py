"""The per-user served-cloak ledger backing the continuity constraint.

Two structures per user, deliberately separate:

* the **running intersection** (``_traj_surviving``) — the set of
  candidate senders consistent with *every* cloak served to this user so
  far.  This is the constraint's only input: it is exactly what a
  trajectory-linking attacker can compute, it only shrinks, and it is
  bounded by the size of the user's first candidate set — so keeping the
  full-history intersection costs O(first group) per user, not O(history).
* a bounded **window** of recent :class:`LedgerEntry` records
  (``_traj_entries``) — observability: which cloaks were served, at what
  serial, how large their candidate sets were, and whether the solver
  had to widen.  The window never feeds the constraint; trimming it can
  therefore never weaken the defense.

State round-trips through :meth:`to_state`/:meth:`from_state` as plain
JSON types, which is what lets the ledger ride the checksummed
``PolicyJournal`` state block (crash restarts resume continuity) and the
pickled fleet spec (worker hand-off on respawn and epoch swaps).

TJ001 (:mod:`repro.analysis.rules.trajectory`) enforces that the
``_traj_*`` structures are mutated only inside this package: serving
layers consume decisions, they never edit history.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import (
    Deque,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ..core.errors import ReproError
from ..core.geometry import Rect

__all__ = ["LedgerEntry", "TrajectoryLedger"]

_STATE_VERSION = 1


@dataclass(frozen=True)
class LedgerEntry:
    """One served cloak in a user's history window."""

    #: the snapshot/epoch serial the request was served under.
    serial: int
    #: the cloak that went over the wire.
    cloak: Rect
    #: size of the candidate-sender set of that cloak at serving time.
    candidates: int
    #: True when the continuity solver had to widen past the policy's
    #: fine cloak to keep the intersection ≥ k.
    widened: bool


class TrajectoryLedger:
    """Bounded per-user history of served cloaks + running intersections."""

    def __init__(self, window: int = 16):
        if window < 1:
            raise ReproError(f"ledger window must be ≥ 1, got {window}")
        self.window = window
        self._traj_entries: Dict[str, Deque[LedgerEntry]] = {}  # guarded-by: self._lock
        self._traj_surviving: Dict[str, FrozenSet[str]] = {}  # guarded-by: self._lock
        #: total records ever accepted (monotone; survives trimming).
        self.recorded = 0
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------------

    def record(
        self,
        user_id: str,
        cloak: Rect,
        candidates: Iterable[str],
        *,
        serial: int = 0,
        widened: bool = False,
    ) -> FrozenSet[str]:
        """Fold one served cloak into ``user_id``'s history.

        Returns the updated surviving intersection (what the linking
        attacker knows after observing this request).
        """
        uid = str(user_id)
        candidate_set = frozenset(str(c) for c in candidates)
        entry = LedgerEntry(
            serial=int(serial),
            cloak=cloak,
            candidates=len(candidate_set),
            widened=bool(widened),
        )
        with self._lock:
            prior = self._traj_surviving.get(uid)
            surviving = (
                candidate_set if prior is None else prior & candidate_set
            )
            self._traj_surviving[uid] = surviving
            window = self._traj_entries.get(uid)
            if window is None:
                window = deque(maxlen=self.window)
                self._traj_entries[uid] = window
            window.append(entry)
            self.recorded += 1
        return surviving

    # -- queries -------------------------------------------------------------

    def surviving(self, user_id: str) -> Optional[FrozenSet[str]]:
        """The full-history intersection, or ``None`` before any request."""
        with self._lock:
            return self._traj_surviving.get(str(user_id))

    def entries(self, user_id: str) -> Tuple[LedgerEntry, ...]:
        with self._lock:
            return tuple(self._traj_entries.get(str(user_id), ()))

    def users(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._traj_surviving))

    def __len__(self) -> int:
        with self._lock:
            return len(self._traj_surviving)

    def widened_count(self) -> int:
        """Windowed observability: how many recent serves were widened."""
        with self._lock:
            return sum(
                1
                for window in self._traj_entries.values()
                for entry in window
                if entry.widened
            )

    # -- serialization -------------------------------------------------------

    def to_state(self) -> Dict[str, object]:
        """A plain-JSON snapshot of the ledger (journal state block)."""
        with self._lock:
            users: Dict[str, object] = {}
            for uid in sorted(self._traj_surviving):
                users[uid] = {
                    "surviving": sorted(self._traj_surviving[uid]),
                    "entries": [
                        [
                            entry.serial,
                            [
                                entry.cloak.x1,
                                entry.cloak.y1,
                                entry.cloak.x2,
                                entry.cloak.y2,
                            ],
                            entry.candidates,
                            1 if entry.widened else 0,
                        ]
                        for entry in self._traj_entries.get(uid, ())
                    ],
                }
            return {
                "version": _STATE_VERSION,
                "window": self.window,
                "recorded": self.recorded,
                "users": users,
            }

    def subset_state(self, user_ids: Iterable[str]) -> Dict[str, object]:
        """:meth:`to_state` restricted to ``user_ids`` — the fleet shard
        shipped to the one worker that owns those users' routing."""
        wanted = {str(uid) for uid in user_ids}
        state = self.to_state()
        users = state["users"]
        assert isinstance(users, dict)
        state["users"] = {
            uid: payload for uid, payload in users.items() if uid in wanted
        }
        return state

    def adopt_state(self, state: Mapping[str, object]) -> None:
        """Replace this ledger's contents with a serialized snapshot."""
        version = int(state.get("version", -1))  # type: ignore[arg-type]
        if version != _STATE_VERSION:
            raise ReproError(
                f"unknown trajectory ledger state version {version!r}"
            )
        users = state.get("users")
        if not isinstance(users, Mapping):
            raise ReproError("trajectory ledger state lacks a users map")
        window = int(state.get("window", self.window))  # type: ignore[arg-type]
        entries: Dict[str, Deque[LedgerEntry]] = {}
        surviving: Dict[str, FrozenSet[str]] = {}
        for uid, payload in users.items():
            if not isinstance(payload, Mapping):
                raise ReproError(
                    f"trajectory ledger user {uid!r} payload is not a map"
                )
            surviving[str(uid)] = frozenset(
                str(c) for c in payload.get("surviving", ())
            )
            window_entries: List[LedgerEntry] = []
            for row in payload.get("entries", ()):
                serial, rect, count, widened = row
                window_entries.append(
                    LedgerEntry(
                        serial=int(serial),
                        cloak=Rect(*[float(v) for v in rect]),
                        candidates=int(count),
                        widened=bool(widened),
                    )
                )
            entries[str(uid)] = deque(window_entries, maxlen=window)
        with self._lock:
            self.window = window
            self._traj_entries = entries
            self._traj_surviving = surviving
            self.recorded = int(state.get("recorded", 0))  # type: ignore[arg-type]

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "TrajectoryLedger":
        ledger = cls(window=int(state.get("window", 16)))  # type: ignore[arg-type]
        ledger.adopt_state(state)
        return ledger

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TrajectoryLedger(users={len(self)}, window={self.window}, "
            f"recorded={self.recorded})"
        )
