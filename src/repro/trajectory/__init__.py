"""Trajectory-aware anonymity defense (the follow-up paper, served).

The per-snapshot guarantee leaves a gap the repo's own attacker module
demonstrates (:mod:`repro.attacks.trajectory`): linking a user's
requests across snapshots and intersecting the candidate-sender sets
erodes anonymity below k.  This package closes the loop with the
defense of "Trajectory and Policy Aware Sender Anonymity"
(arXiv:1202.6677): cloak choice is *continuity-constrained* — a request
is only served under a cloak whose candidate-sender set, intersected
with the user's surviving candidates from every prior served request,
still holds ≥ k senders.

* :class:`TrajectoryLedger` — per-user served-cloak history: a bounded
  observability window plus the running full-history intersection the
  constraint actually needs (bounded memory, monotone non-increasing).
  Serializes into the :class:`~repro.robustness.recovery.PolicyJournal`
  state block so restarts resume continuity state.
* :class:`ContinuityConstraint` — the admissibility solver: fine cloak
  when it keeps the intersection ≥ k, else the smallest geometric
  ancestor (the same deterministic halving hierarchy the streaming
  coarsener walks) that does, else fail-closed
  ``ServiceUnavailableError(reason="trajectory")``.
* :class:`ServedTrajectories` — the audit side: records every served
  (cloak, policy) pair and replays
  :func:`~repro.attacks.trajectory.trajectory_attack` against the
  served stream, the closing gate of the defense.
"""

from .audit import ServedTrajectories, TrajectoryAuditReport
from .constraint import ContinuityConstraint, ContinuityDecision
from .ledger import LedgerEntry, TrajectoryLedger

__all__ = [
    "ContinuityConstraint",
    "ContinuityDecision",
    "LedgerEntry",
    "ServedTrajectories",
    "TrajectoryAuditReport",
    "TrajectoryLedger",
]
