"""The continuity-constrained cloak solver.

For each request the solver restricts the DP engine's admissible cloaks
to those whose candidate-sender set, intersected with the user's
surviving candidates from every prior served request, still holds ≥ k
senders (the defense of arXiv:1202.6677).  The candidate set of a cloak
is what the policy-aware attacker reconstructs:

* the policy's **fine cloak** → its exact anonymity group
  (:meth:`CloakingPolicy.groups`, Lemma 3 made operational);
* a **widened ancestor** rectangle ``A`` → every user whose fine cloak
  is contained in ``A`` — exactly the group of ``A`` in the effective
  policy after a group-wide coarsening override
  (:func:`~repro.robustness.degrade.coarsen_overrides`), so widening is
  k-safe per snapshot *and* auditable.

Widening walks the same deterministic halving hierarchy the streaming
coarsener uses (:func:`~repro.streaming.epoch.halving_chain`) — pure
geometry, no tree access, so one solver serves the batch CSP, the
double-buffered epoch manager, and fleet workers alike.  Candidate sets
grow monotonically up the chain, so the first admissible ancestor is the
smallest one (minimal utility cost).  When even the root region cannot
keep the intersection ≥ k (prior candidates left the system), the
request is rejected fail-closed with ``reason="trajectory"`` — the last
rung of the degradation ladder, never a sub-k serve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from ..core.errors import ServiceUnavailableError, TreeError
from ..core.geometry import Rect
from ..core.policy import CloakingPolicy
from ..streaming.epoch import halving_chain
from .ledger import TrajectoryLedger

__all__ = ["ContinuityConstraint", "ContinuityDecision"]


@dataclass(frozen=True)
class ContinuityDecision:
    """One admissibility verdict: the cloak to serve and its evidence."""

    #: the cloak the request must be served under.
    cloak: Rect
    #: the candidate-sender set of that cloak (sorted, deterministic).
    candidates: Tuple[str, ...]
    #: True when the solver widened past the requested cloak.
    widened: bool
    #: hierarchy levels climbed above the requested cloak (0 = none).
    levels: int
    #: surviving intersection size after this request is served.
    surviving: int

    @property
    def k_evidence(self) -> int:
        """Per-snapshot anonymity of the served cloak itself."""
        return len(self.candidates)


class ContinuityConstraint:
    """Admissibility solver over a :class:`TrajectoryLedger`.

    One instance per serving process; the ledger can be handed in (fleet
    workers seed theirs from the dispatcher's shard) or created fresh.
    """

    def __init__(
        self,
        k: int,
        *,
        ledger: Optional[TrajectoryLedger] = None,
        window: int = 16,
    ):
        self.k = k
        self.ledger = ledger if ledger is not None else TrajectoryLedger(
            window=window
        )
        # One-slot candidate caches: policies are per-snapshot objects,
        # so caching against the current policy identity amortizes the
        # O(n) group scans across the requests of one snapshot.
        self._cached_policy: Optional[CloakingPolicy] = None
        self._exact: Dict[Rect, FrozenSet[str]] = {}
        self._within: Dict[Rect, FrozenSet[str]] = {}

    # -- candidate sets ------------------------------------------------------

    def _sync_cache(self, policy: CloakingPolicy) -> None:
        if self._cached_policy is not policy:
            self._cached_policy = policy
            self._exact = {}
            self._within = {}

    def _exact_group(
        self, policy: CloakingPolicy, cloak: Rect
    ) -> FrozenSet[str]:
        """The attacker's candidate set for an unmodified policy cloak."""
        cached = self._exact.get(cloak)
        if cached is None:
            cached = frozenset(
                uid for uid, region in policy.items() if region == cloak
            )
            self._exact[cloak] = cached
        return cached

    def _contained_group(
        self, policy: CloakingPolicy, rect: Rect
    ) -> FrozenSet[str]:
        """The attacker's candidate set for a widened ancestor ``rect``:
        the group of ``rect`` under the group-wide coarsening override."""
        cached = self._within.get(rect)
        if cached is None:
            cached = frozenset(
                uid
                for uid, region in policy.items()
                if isinstance(region, Rect) and rect.contains_rect(region)
            )
            self._within[rect] = cached
        return cached

    # -- solving -------------------------------------------------------------

    def admissible(
        self,
        policy: CloakingPolicy,
        user_id: str,
        *,
        region: Rect,
        orientation: str = "vertical",
        cloak: Optional[Rect] = None,
    ) -> ContinuityDecision:
        """The smallest admissible cloak for one request (no recording).

        ``cloak`` is the cloak serving would otherwise emit — the fine
        policy cloak by default, or an already-coarsened ancestor when a
        lower rung intervened first; the constraint only ever widens
        further, so earlier rungs' k-safety is preserved.
        """
        uid = str(user_id)
        self._sync_cache(policy)
        fine = policy.cloak_for(uid)
        start = cloak if cloak is not None else fine
        if not isinstance(start, Rect) or not isinstance(fine, Rect):
            raise ServiceUnavailableError(
                "trajectory continuity needs rectangular hierarchy cloaks",
                reason="trajectory",
            )
        if start == fine:
            base = self._exact_group(policy, start)
        else:
            # Already coarsened group-wide: the attacker's set is every
            # user whose fine cloak the override rectangle contains.
            base = self._contained_group(policy, start)
        prior = self.ledger.surviving(uid)
        if prior is None or len(prior & base) >= self.k:
            after = base if prior is None else prior & base
            return ContinuityDecision(
                cloak=start,
                candidates=tuple(sorted(base)),
                widened=start != fine,
                levels=0,
                surviving=len(after),
            )
        try:
            chain = halving_chain(region, orientation, start)
        except TreeError as exc:
            raise ServiceUnavailableError(
                f"cannot widen cloak {start} for user {uid!r}: {exc}",
                reason="trajectory",
            ) from exc
        # chain[-1] == start; walk strict ancestors deepest-first so the
        # first admissible one is the smallest (cheapest) widening.
        for idx in range(len(chain) - 2, -1, -1):
            ancestor = chain[idx]
            candidates = self._contained_group(policy, ancestor)
            surviving = prior & candidates
            if len(surviving) >= self.k:
                return ContinuityDecision(
                    cloak=ancestor,
                    candidates=tuple(sorted(candidates)),
                    widened=True,
                    levels=len(chain) - 1 - idx,
                    surviving=len(surviving),
                )
        alive = len(prior & self._contained_group(policy, region))
        raise ServiceUnavailableError(
            f"no cloak preserves trajectory {self.k}-anonymity for user "
            f"{uid!r}: only {alive} prior candidates remain in the system; "
            "rejecting fail-closed",
            reason="trajectory",
        )

    def enforce(
        self,
        policy: CloakingPolicy,
        user_id: str,
        *,
        region: Rect,
        orientation: str = "vertical",
        cloak: Optional[Rect] = None,
        serial: int = 0,
    ) -> ContinuityDecision:
        """Solve *and* commit: the decision is folded into the ledger, so
        subsequent requests are constrained by it.  Callers must serve
        exactly ``decision.cloak`` (TJ001 keeps them honest about the
        ledger; tests keep them honest about the cloak)."""
        decision = self.admissible(
            policy,
            user_id,
            region=region,
            orientation=orientation,
            cloak=cloak,
        )
        self.ledger.record(
            str(user_id),
            decision.cloak,
            decision.candidates,
            serial=serial,
            widened=decision.widened,
        )
        return decision
