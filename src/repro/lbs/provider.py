"""The (untrusted) LBS provider.

Receives only *anonymized* requests; never sees identities or exact
locations.  For a nearest-POI request it returns the NN candidate set of
the cloak; for a range request, all matching POIs in the window.  It
also keeps per-category billing counters — §VII argues our scheme keeps
the LBS's advertising business model viable precisely because the LBS
still knows *what* it returned (unlike cryptographic PIR).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.errors import ReproError
from ..core.geometry import Rect
from ..core.requests import AnonymizedRequest
from .poi import POI, POIDatabase

__all__ = ["QueryAnswer", "LBSProvider"]


@dataclass(frozen=True)
class QueryAnswer:
    """What the LBS returns for one anonymized request."""

    request_id: int
    candidates: Tuple[POI, ...]

    @property
    def size(self) -> int:
        return len(self.candidates)


def _payload_get(payload, name: str) -> Optional[str]:
    for key, value in payload:
        if key == name:
            return value
    return None


class LBSProvider:
    """Serves anonymized requests over a POI database."""

    def __init__(self, pois: POIDatabase):
        self.pois = pois
        #: requests served per category — the billing counters of §VII.
        self.billing: Dict[str, int] = {}
        self.served = 0
        #: provider *rounds*: batched exchanges (one network round-trip
        #: each, however many requests ride in it) — see ``serve_many``.
        self.rounds = 0

    def serve(self, request: AnonymizedRequest) -> QueryAnswer:
        """Answer one anonymized request.

        Payload convention (Example 2): ``poi`` names the request kind's
        target category; an optional ``range`` (meters) switches from
        nearest-POI to a range query around the cloak.
        """
        if not isinstance(request.cloak, Rect):
            raise ReproError(
                "this provider serves rectangular cloaks "
                f"(got {type(request.cloak).__name__})"
            )
        category = _payload_get(request.payload, "poi")
        if category is None:
            raise ReproError("request payload lacks a 'poi' category")
        window = _payload_get(request.payload, "range")
        if window is not None:
            margin = float(window)
            rect = Rect(
                max(request.cloak.x1 - margin, self.pois.region.x1),
                max(request.cloak.y1 - margin, self.pois.region.y1),
                min(request.cloak.x2 + margin, self.pois.region.x2),
                min(request.cloak.y2 + margin, self.pois.region.y2),
            )
            candidates = self.pois.range_query(rect, category)
        else:
            candidates = self.pois.nn_candidates(request.cloak, category)
        self.billing[category] = self.billing.get(category, 0) + 1
        self.served += 1
        return QueryAnswer(request.request_id, tuple(candidates))

    def serve_many(
        self, requests: Tuple[AnonymizedRequest, ...]
    ) -> Tuple[QueryAnswer, ...]:
        """One provider *round*: a batch of anonymized requests answered
        in a single exchange.

        The async gateway coalesces concurrent requests that share a
        cloak and batches the distinct cloaks of a window into one round,
        so the LBS pays one round-trip for many users — the serving-side
        analogue of k-sharing's request amortization.  Billing and
        ``served`` count per request exactly as :meth:`serve` does; the
        round itself is tallied in ``rounds``.
        """
        answers = tuple(self.serve(request) for request in requests)
        self.rounds += 1
        return answers
