"""The privacy-conscious LBS substrate (§II): location database, POIs,
the untrusted provider, the CSP pipeline, caching, and user mobility."""

from .cache import AnswerCache, AsyncAnswerCache, CacheStats
from .locationdb import LocationDatabase, SnapshotSequence
from .mobility import movement_stream, random_moves
from .pipeline import (
    CSP,
    MobilePositioningCenter,
    PreparedRequest,
    ServedRequest,
)
from .poi import POI, POIDatabase, generate_pois
from .simulation import LBSSimulation, ServiceTimes, SimulationReport
from .provider import LBSProvider, QueryAnswer

__all__ = [
    "AnswerCache",
    "AsyncAnswerCache",
    "CSP",
    "CacheStats",
    "PreparedRequest",
    "LBSProvider",
    "LocationDatabase",
    "MobilePositioningCenter",
    "POI",
    "POIDatabase",
    "LBSSimulation",
    "QueryAnswer",
    "ServedRequest",
    "ServiceTimes",
    "SimulationReport",
    "SnapshotSequence",
    "generate_pois",
    "movement_stream",
    "random_moves",
]
