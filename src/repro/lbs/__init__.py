"""The privacy-conscious LBS substrate (§II): location database, POIs,
the untrusted provider, the CSP pipeline, caching, and user mobility."""

from .cache import AnswerCache, AsyncAnswerCache, CacheStats
from .locationdb import LocationDatabase, SnapshotSequence
from .mobility import (
    TrajectorySchedule,
    movement_stream,
    random_moves,
    trajectory_schedule,
    walk_snapshots,
)
from .pipeline import (
    CSP,
    MobilePositioningCenter,
    PreparedRequest,
    ServedRequest,
)
from .poi import POI, POIDatabase, generate_pois
from .simulation import (
    GatewaySimulation,
    GatewaySimulationReport,
    LBSSimulation,
    ServiceTimes,
    SimulationReport,
    poisson_schedule,
)
from .provider import LBSProvider, QueryAnswer

__all__ = [
    "AnswerCache",
    "AsyncAnswerCache",
    "CSP",
    "CacheStats",
    "GatewaySimulation",
    "GatewaySimulationReport",
    "PreparedRequest",
    "LBSProvider",
    "LocationDatabase",
    "MobilePositioningCenter",
    "POI",
    "POIDatabase",
    "LBSSimulation",
    "QueryAnswer",
    "ServedRequest",
    "ServiceTimes",
    "SimulationReport",
    "SnapshotSequence",
    "TrajectorySchedule",
    "generate_pois",
    "movement_stream",
    "poisson_schedule",
    "random_moves",
    "trajectory_schedule",
    "walk_snapshots",
]
