"""Compatibility re-export.

The location database lives in :mod:`repro.core.locationdb` (every
layer of the library consumes it), but conceptually it belongs to the
LBS model of §II-A, so it stays importable from here.
"""

from ..core.locationdb import LocationDatabase, SnapshotSequence

__all__ = ["LocationDatabase", "SnapshotSequence"]
