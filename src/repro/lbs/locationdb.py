"""Compatibility re-export.

The location database lives in :mod:`repro.core.locationdb` (every
layer of the library consumes it), but conceptually it belongs to the
LBS model of §II-A, so it stays importable from here.

Privacy note: everything this module exports is a raw-location source
for the :mod:`repro.analysis` taint rules — the backing ``_locations``
relation is tagged ``# taint: location`` at its definition, so values
read through either import path are tracked identically.
"""

from ..core.locationdb import LocationDatabase, SnapshotSequence

__all__ = ["LocationDatabase", "SnapshotSequence"]
