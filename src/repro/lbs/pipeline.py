"""The end-to-end privacy-conscious LBS pipeline (§II-B).

Actors, wired exactly as the paper's model prescribes:

* **MPC** — the Mobile Positioning Center: the authoritative source of
  device locations (here, the current location database snapshot).
* **CSP** — the trusted carrier.  It builds the service request from the
  user's query and the MPC location, anonymizes it with the current
  policy-aware optimal policy, consults the answer cache, and forwards
  only the anonymized request to the LBS.
* **LBS** — untrusted; sees cloaks and payloads, returns candidate sets.
* **Client filter** — the final hop back at the CSP/handset: pick the
  candidate nearest to the true location.

``period`` snapshots: :meth:`CSP.advance_snapshot` moves users and
incrementally repairs the policy.

Fault tolerance (all opt-in; the happy path is byte-identical):

* provider calls retry with exponential backoff under a per-call
  deadline and an optional circuit breaker
  (:mod:`repro.robustness.retry`);
* a :class:`~repro.robustness.faults.FaultInjector` can make provider
  calls fail, MPC lookups go stale, and snapshot repairs crash;
* failures degrade **fail-closed** down the ladder of
  :mod:`repro.robustness.degrade`: coarsen to an ancestor cloak
  (group-wide, provably ≥ k) → serve the stale policy within a bounded
  snapshot age → reject with
  :class:`~repro.core.errors.ServiceUnavailableError`.  The CSP never
  emits a sub-k or policy-unaware cloak.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # runtime import would cycle through repro.streaming
    from ..trajectory.constraint import ContinuityConstraint

from ..core.anonymizer import IncrementalAnonymizer, UpdateReport
from ..core.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    PolicyError,
    ServiceUnavailableError,
    UnknownUserError,
)
from ..core.geometry import Point, Rect
from ..core.policy import CloakingPolicy
from ..core.requests import AnonymizedRequest, ServiceRequest, normalize_payload
from ..robustness.degrade import (
    DegradationEvent,
    coarsen_overrides,
    coarsening_ancestor,
    policy_with_overrides,
)
from ..robustness.faults import (
    FaultInjectingProvider,
    FaultInjector,
    InjectedFault,
)
from ..robustness.recovery import (
    PolicyJournal,
    QuorumJournal,
    RecoveredSnapshot,
    rehydrate_flat_solution,
)
from ..robustness.retry import (
    CircuitBreaker,
    Clock,
    RetryPolicy,
    SystemClock,
    retry_call,
)
from .cache import AnswerCache
from .locationdb import LocationDatabase
from .poi import POI
from .provider import LBSProvider, QueryAnswer

__all__ = [
    "PreparedRequest",
    "ServedRequest",
    "MobilePositioningCenter",
    "CSP",
]

#: Exceptions that mark a provider call transient (worth retrying).
TRANSIENT_PROVIDER_ERRORS = (
    InjectedFault,
    TimeoutError,
    ConnectionError,
    OSError,
)


@dataclass(frozen=True)
class PreparedRequest:
    """The synchronous front half of serving one request.

    Everything up to (and including) the cloak decision: the privacy
    contract is fully settled here, before any provider I/O happens —
    which is what lets the async gateway overlap the I/O of many
    requests without touching anonymization semantics.
    """

    request: ServiceRequest
    anonymized: AnonymizedRequest
    degradation: str
    policy_age: int


@dataclass(frozen=True)
class ServedRequest:
    """Everything one request produced, end to end."""

    request: ServiceRequest
    anonymized: AnonymizedRequest
    answer: QueryAnswer
    result: Optional[POI]
    cache_hit: bool
    #: which degradation rung served the request ("fresh", "coarsened",
    #: "stale") — rejected requests raise instead of returning.
    degradation: str = "fresh"
    #: provider call attempts (0 when the answer came from the cache).
    provider_attempts: int = 1
    #: how many snapshots behind the serving policy was (0 = current).
    policy_age: int = 0

    @property
    def candidate_count(self) -> int:
        """Client-side filtering work — the utility cost of the cloak."""
        return self.answer.size

    @property
    def degraded(self) -> bool:
        return self.degradation != "fresh"


class MobilePositioningCenter:
    """The MPC: location lookups against the current snapshot.

    With a fault injector, ``"mpc"``-site ``"stale"`` rules make
    :meth:`locate` answer from the *previous* snapshot — the classic
    replica-lag failure the CSP's coarsening rung exists for.
    """

    def __init__(
        self,
        db: LocationDatabase,
        injector: Optional[FaultInjector] = None,
    ):
        self.db = db
        self.injector = injector
        self._previous: Optional[LocationDatabase] = None
        self._snapshot_serial = 0

    def locate(self, user_id: str) -> Point:
        point = self.db.location_of(user_id)
        if point is None:
            raise UnknownUserError(f"MPC has no location for user {user_id!r}")
        if (
            self.injector is not None
            and self._previous is not None
            and self.injector.should(
                "mpc", "stale", user_id, self._snapshot_serial
            )
        ):
            stale = self._previous.location_of(user_id)
            if stale is not None:
                return stale
        return point

    def refresh(self, db: LocationDatabase) -> None:
        self._previous = self.db
        self._snapshot_serial += 1
        self.db = db


class CSP:
    """The trusted carrier orchestrating the whole flow.

    Robustness knobs (keyword-only, all optional):

    retry_policy / circuit_breaker / provider_deadline:
        retry with backoff for LBS provider calls, budget per request,
        breaker across requests.  While the breaker is open, cached
        answers still serve — the cache is a legitimate degraded mode.
    injector:
        a seeded :class:`FaultInjector` (chaos testing).
    clock:
        time source for backoff/breaker; inject a
        :class:`~repro.robustness.retry.ManualClock` to keep tests and
        benches wall-clock free.
    max_stale_snapshots:
        the bounded age of the "stale" rung: how many consecutive failed
        snapshot repairs may pass before requests are rejected outright.
    engine:
        DP evaluator for bulk solves and snapshot repairs — ``"flat"``
        (default) or ``"object"`` (see :func:`repro.core.binary_dp.solve`).
    journal:
        a :class:`~repro.robustness.recovery.PolicyJournal`: every
        successful (policy, db-serial) pair is committed
        crash-consistently, and :meth:`CSP.restore` resurrects a serving
        CSP from it after a restart without re-running bulk
        anonymization.
    policy:
        a precomputed :class:`~repro.core.policy.CloakingPolicy` for
        ``db`` to adopt instead of running the bulk solve — how fleet
        workers (:mod:`repro.serving.fleet`) share one dispatcher-side
        solve.  The DP being deterministic, the adopted policy is
        bit-identical to what ``fit`` would have produced for the same
        snapshot.
    """

    def __init__(
        self,
        region: Rect,
        k: int,
        db: LocationDatabase,
        provider: LBSProvider,
        use_cache: bool = True,
        max_depth: int = 40,
        *,
        retry_policy: Optional[RetryPolicy] = None,
        circuit_breaker: Optional[CircuitBreaker] = None,
        provider_deadline: Optional[float] = None,
        injector: Optional[FaultInjector] = None,
        clock: Optional[Clock] = None,
        max_stale_snapshots: int = 1,
        engine: str = "flat",
        journal: Optional[Union[PolicyJournal, QuorumJournal]] = None,
        policy: Optional[CloakingPolicy] = None,
        trajectory: Optional["ContinuityConstraint"] = None,
        _recovered: Optional[RecoveredSnapshot] = None,
    ):
        self.region = region
        self.k = k
        self.injector = injector
        self.clock = clock or SystemClock()
        self.retry_policy = retry_policy
        self.breaker = circuit_breaker
        self.provider_deadline = provider_deadline
        self.max_stale_snapshots = max_stale_snapshots
        self.journal = journal
        #: trajectory-continuity defense (opt-in): a
        #: :class:`~repro.trajectory.constraint.ContinuityConstraint`
        #: whose ledger every served cloak is folded into; its state
        #: rides the journal state block so restarts resume continuity.
        self.trajectory = trajectory
        #: the unwrapped provider — the async gateway builds its pooled
        #: client on this and applies its own (async) injector site, so
        #: faults are not injected twice on the async path.
        self.base_provider = provider
        if injector is not None:
            provider = FaultInjectingProvider(provider, injector)
        self.mpc = MobilePositioningCenter(db, injector=injector)
        self.provider = provider
        self.cache = AnswerCache(provider) if use_cache else None
        self.anonymizer = IncrementalAnonymizer(
            region, k, max_depth=max_depth, engine=engine
        )
        #: consecutive snapshot advances that failed (0 = fresh policy).
        self.policy_age = 0
        #: True between a journal restore and the first successful
        #: repair — requests are labelled with the "recovered" rung.
        self.restored = False
        #: antichain of coarsened tree nodes: node_id → ancestor rect.
        self._coarsened: Dict[int, Rect] = {}
        #: degradation rung transitions, for observability/benches.
        self.events: List[DegradationEvent] = []
        if _recovered is not None:
            # Journal restart: adopt the committed policy (serving works
            # immediately), then try to warm the DP so the next repair
            # goes through resolve_dirty instead of a bulk re-solve.
            self.anonymizer.restore(
                _recovered.policy.db, _recovered.policy, solution=None
            )
            self.anonymizer.solution = rehydrate_flat_solution(
                self.anonymizer.tree, _recovered, k, prune=True
            )
            # The committed state block is authoritative for staleness:
            # _snapshot_index tracks the *world* serial, which at commit
            # time was policy serial + accumulated age.
            self.policy_age = _recovered.policy_age
            self._snapshot_index = _recovered.serial + _recovered.policy_age
            self.restored = True
            if (
                self.trajectory is not None
                and _recovered.trajectory is not None
            ):
                # Resume continuity state: post-restart cloak choices
                # must keep honoring the pre-crash served history.
                self.trajectory.ledger.adopt_state(_recovered.trajectory)
            self.events.append(
                DegradationEvent(
                    level="recovered",
                    reason="restart",
                    detail=(
                        f"serial {_recovered.serial}, "
                        f"age {_recovered.policy_age}, "
                        f"dp={'warm' if self.anonymizer.solution else 'cold'}"
                    ),
                )
            )
        elif policy is not None:
            # Adopt a precomputed policy for this exact snapshot without
            # re-running the bulk DP — the fleet path: the dispatcher
            # solves once (or restores) and every worker CSP adopts the
            # same deterministic policy, so cloaks are bit-identical to
            # a locally-fitted CSP's by construction.
            self.anonymizer.restore(db, policy, solution=None)
            self._snapshot_index = 0
            self._journal_commit()
        else:
            self.anonymizer.fit(db)
            self._snapshot_index = 0
            self._journal_commit()

    # -- durability ----------------------------------------------------------

    def _fingerprint(self) -> Dict[str, object]:
        """What must match for journalled state to be adoptable here."""
        return {
            "engine": self.anonymizer.engine,
            "k": self.k,
            "max_depth": self.anonymizer.max_depth,
            "prune": self.anonymizer.prune,
            "region": list(self.region.as_tuple()),
        }

    def _serving_rung(self) -> str:
        """The rung a request admitted right now would be labelled with."""
        if self.policy_age > self.max_stale_snapshots:
            return "rejected"
        if self.policy_age > 0:
            return "stale"
        if self.restored:
            return "recovered"
        return "fresh"

    def _journal_commit(self) -> None:
        """Commit the current (policy, db-serial) pair, fail-visible.

        The committed serial is the one the policy actually matches
        (``_snapshot_index - policy_age``): after a failed repair the
        world has advanced but the policy has not, and journalling the
        world's serial would let a restore adopt a policy under a serial
        it was never solved for.  The accumulated ``policy_age`` and the
        serving rung ride along in the checksummed state block so a
        restore cannot silently reset staleness to fresh.

        A journal write failure must not take serving down (durability
        degraded ≠ privacy degraded), but it is recorded as an event so
        operators see the exposure window.
        """
        if self.journal is None:
            return
        state: Dict[str, object] = {
            "policy_age": self.policy_age,
            "rung": self._serving_rung(),
        }
        if self.trajectory is not None:
            state["trajectory"] = self.trajectory.ledger.to_state()
        try:
            self.journal.commit(
                self.anonymizer.policy,
                self._snapshot_index - self.policy_age,
                self._fingerprint(),
                solution=self.anonymizer.solution,
                state=state,
            )
        except OSError as exc:
            self.events.append(
                DegradationEvent(
                    level="journal",
                    reason="commit-failed",
                    detail=str(exc),
                )
            )

    @classmethod
    def restore(
        cls,
        provider: LBSProvider,
        journal: Union[PolicyJournal, QuorumJournal],
        *,
        use_cache: bool = True,
        current_serial: Optional[int] = None,
        retry_policy: Optional[RetryPolicy] = None,
        circuit_breaker: Optional[CircuitBreaker] = None,
        provider_deadline: Optional[float] = None,
        injector: Optional[FaultInjector] = None,
        clock: Optional[Clock] = None,
        max_stale_snapshots: int = 1,
        trajectory: Optional["ContinuityConstraint"] = None,
    ) -> "CSP":
        """Resurrect a CSP from its journal after a crash or restart.

        The recovered policy serves immediately on the "recovered" rung
        (bit-identical cloaks to the pre-crash CSP); the next
        :meth:`advance_snapshot` repairs forward incrementally when the
        DP sidecar validated, or re-solves once when it did not.
        ``current_serial`` (the world's present snapshot serial, e.g.
        from the MPC) enforces the stale bound at restore time —
        journalled state too far behind is rejected fail-closed.
        """
        snapshot = journal.recover(
            current_serial=current_serial,
            max_stale_snapshots=max_stale_snapshots,
        )
        fp = snapshot.fingerprint
        region = Rect(*fp["region"])
        csp = cls(
            region,
            int(fp["k"]),
            snapshot.policy.db,
            provider,
            use_cache,
            int(fp.get("max_depth", 40)),
            retry_policy=retry_policy,
            circuit_breaker=circuit_breaker,
            provider_deadline=provider_deadline,
            injector=injector,
            clock=clock,
            max_stale_snapshots=max_stale_snapshots,
            engine=str(fp.get("engine", "flat")),
            journal=journal,
            trajectory=trajectory,
            _recovered=snapshot,
        )
        if current_serial is not None:
            # The world may have moved on while we were down; staleness
            # is whichever is worse — the journalled age or the distance
            # to the world's serial now.
            csp.policy_age = max(
                snapshot.policy_age, current_serial - snapshot.serial, 0
            )
            csp._snapshot_index = snapshot.serial + csp.policy_age
        report = getattr(journal, "last_recovery", None)
        if report is not None and report.repaired:
            # Quorum restore rebuilt one or more replicas from the
            # majority — surface the repair (and its duration, the MTTR
            # numerator) on the degradation timeline.
            csp.events.append(
                DegradationEvent(
                    level="journal",
                    reason="replica-repaired",
                    detail=(
                        f"replicas {list(report.repaired)} rewritten from "
                        f"quorum of {len(report.voters)} in "
                        f"{report.repair_seconds:.4f}s"
                    ),
                )
            )
        return csp

    # -- serving ------------------------------------------------------------

    def prepare(self, user_id: str, payload) -> PreparedRequest:
        """The synchronous front half: staleness gate, MPC lookup, and
        the fail-closed cloak decision.  No provider I/O happens here.
        """
        if self.policy_age > self.max_stale_snapshots:
            raise ServiceUnavailableError(
                f"policy is {self.policy_age} snapshots stale "
                f"(bound {self.max_stale_snapshots}); rejecting fail-closed",
                reason="stale",
            )
        location = self.mpc.locate(user_id)
        service_request = ServiceRequest(
            str(user_id), location, normalize_payload(payload)
        )
        if self.policy_age > 0:
            degradation = "stale"
        elif self.restored:
            degradation = "recovered"
        else:
            degradation = "fresh"
        anonymized = self._anonymize_fail_closed(service_request)
        if anonymized.cloak != self.anonymizer.policy.cloak_for(str(user_id)):
            degradation = "coarsened"
        if self.trajectory is not None:
            anonymized, widened = self._apply_trajectory(
                str(user_id), anonymized
            )
            if widened:
                degradation = "coarsened"
        return PreparedRequest(
            request=service_request,
            anonymized=anonymized,
            degradation=degradation,
            policy_age=self.policy_age,
        )

    def _apply_trajectory(
        self, user_id: str, anonymized: AnonymizedRequest
    ) -> Tuple[AnonymizedRequest, bool]:
        """Continuity rung: hold the served-history intersection ≥ k.

        The constraint only ever *widens* the cloak the earlier rungs
        decided (fine or coarsened ancestor), so their k-safety carries
        over; when no widening up to the root works, it raises
        :class:`ServiceUnavailableError` with ``reason="trajectory"`` —
        the ladder's fail-closed tail.  The admitted decision is folded
        into the ledger before any provider I/O, so concurrent gateway
        requests are constrained by it deterministically.
        """
        assert self.trajectory is not None
        try:
            decision = self.trajectory.enforce(
                self.anonymizer.policy,
                user_id,
                region=self.region,
                orientation=getattr(
                    self.anonymizer.tree, "orientation", "vertical"
                ),
                cloak=anonymized.cloak,
                serial=self._snapshot_index,
            )
        except ServiceUnavailableError:
            self.events.append(
                DegradationEvent(
                    level="rejected",
                    reason="trajectory",
                    detail=f"user {user_id!r}: no admissible cloak",
                )
            )
            raise
        if decision.cloak == anonymized.cloak:
            return anonymized, False
        self.events.append(
            DegradationEvent(
                level="coarsened",
                reason="trajectory",
                detail=(
                    f"user {user_id!r} widened {decision.levels} level(s), "
                    f"surviving {decision.surviving} ≥ k={self.k}"
                ),
            )
        )
        return (
            AnonymizedRequest(
                request_id=anonymized.request_id,
                cloak=decision.cloak,
                payload=anonymized.payload,
            ),
            True,
        )

    def complete(
        self,
        prepared: PreparedRequest,
        answer: QueryAnswer,
        *,
        cache_hit: bool,
        attempts: int,
    ) -> ServedRequest:
        """The back half: client-side filtering over a fetched answer."""
        result = self._client_filter(prepared.request.location, answer)
        return ServedRequest(
            request=prepared.request,
            anonymized=prepared.anonymized,
            answer=answer,
            result=result,
            cache_hit=cache_hit,
            degradation=prepared.degradation,
            provider_attempts=attempts,
            policy_age=prepared.policy_age,
        )

    def request(self, user_id: str, payload) -> ServedRequest:
        """Serve one user query end to end (fail-closed under faults)."""
        prepared = self.prepare(user_id, payload)
        answer, cache_hit, attempts = self._fetch(prepared.anonymized)
        return self.complete(
            prepared, answer, cache_hit=cache_hit, attempts=attempts
        )

    def serve_async(
        self,
        workload: Sequence[Tuple[str, object]],
        config=None,
    ):
        """Serve a workload through the asyncio gateway (sync façade).

        ``workload`` is a sequence of ``(user_id, payload)`` pairs;
        ``config`` an optional
        :class:`~repro.serving.gateway.GatewayConfig`.  Returns
        ``(results, stats)`` where each result is a
        :class:`ServedRequest` or the typed exception that rejected it.
        Cloaks are guaranteed identical to the sync path's: the gateway
        calls this CSP's own :meth:`prepare`.
        """
        from ..serving.gateway import run_gateway

        return run_gateway(self, workload, config)

    def _anonymize_fail_closed(
        self, service_request: ServiceRequest
    ) -> AnonymizedRequest:
        """Rungs 1–2: the fine cloak, else a group-wide ancestor cloak."""
        user_id = service_request.user_id
        rect = self._coarse_cloak_for(user_id)
        if rect is None:
            try:
                return self.anonymizer.anonymize(service_request)
            except UnknownUserError:
                raise
            except PolicyError:
                # The reported location does not match the policy's
                # snapshot (stale MPC, mid-repair read...).  Coarsen.
                rect = self._register_coarsening(
                    user_id, service_request.location
                )
        return AnonymizedRequest(
            request_id=self.anonymizer._next_request_id(),
            cloak=rect,
            payload=service_request.payload,
        )

    def _register_coarsening(self, user_id: str, location: Point) -> Rect:
        """Pick and remember a safe ancestor cloak for ``user_id``."""
        try:
            node = coarsening_ancestor(
                self.anonymizer.tree,
                self.anonymizer.policy,
                user_id,
                location=location,
            )
        except PolicyError as exc:
            raise ServiceUnavailableError(
                f"cannot coarsen request of user {user_id!r}: {exc}",
                reason="coarsen",
            ) from exc
        fine_cloak = self.anonymizer.policy.cloak_for(user_id)
        if node.rect == fine_cloak:
            # The reported location still falls inside the fine cloak:
            # the policy answer is unchanged, nothing to override.
            return node.rect
        # Keep the coarsened set an antichain of maximal nodes: nested
        # coarsenings would split an ancestor group below k.
        for node_id, rect in list(self._coarsened.items()):
            if node.rect.contains_rect(rect) and node.node_id != node_id:
                del self._coarsened[node_id]
        if not any(
            rect.contains_rect(node.rect)
            for rect in self._coarsened.values()
        ):
            self._coarsened[node.node_id] = node.rect
        self.events.append(
            DegradationEvent(
                level="coarsened",
                reason="policy mismatch",
                detail=f"user {user_id!r} → node {node.node_id}",
            )
        )
        return self._coarse_cloak_for(user_id) or node.rect

    def _coarse_cloak_for(self, user_id: str) -> Optional[Rect]:
        """The registered ancestor cloak covering this user's fine
        cloak, if any (None on the happy path)."""
        if not self._coarsened:
            return None
        try:
            cloak = self.anonymizer.policy.cloak_for(str(user_id))
        # No-cloak fall-through, not a swallow: with no override to
        # apply, the fine path runs next and raises the canonical
        # UnknownUserError for this user (tests/test_pipeline.py pins
        # this).  # analysis: ok[FC002]
        except UnknownUserError:
            return None
        best: Optional[Rect] = None
        for rect in self._coarsened.values():
            if isinstance(cloak, Rect) and rect.contains_rect(cloak):
                if best is None or best.contains_rect(rect):
                    best = rect  # deepest (smallest) covering ancestor
        return best

    @property
    def effective_policy(self) -> CloakingPolicy:
        """The policy an attacker can reverse-engineer *right now*:
        the fine policy overridden by every registered coarsening.

        This is what chaos tests audit — it must stay policy-aware
        k-anonymous through every degradation."""
        policy = self.anonymizer.policy
        if not self._coarsened:
            return policy
        overrides: Dict[str, Rect] = {}
        # Apply bigger rects first so deeper coarsenings win, matching
        # the serving-side "deepest covering ancestor" rule.
        for rect in sorted(
            self._coarsened.values(), key=lambda r: -r.area
        ):
            overrides.update(coarsen_overrides(policy, rect))
        return policy_with_overrides(policy, overrides, name="effective")

    def _fetch(self, anonymized: AnonymizedRequest):
        """Provider/cache fetch with retry, deadline, and breaker."""
        if self.cache is not None:
            hits_before = self.cache.stats.hits
            fetch = lambda: self.cache.fetch(anonymized)  # noqa: E731
        else:
            fetch = lambda: self.provider.serve(anonymized)  # noqa: E731
        attempts = [0]

        def observe(attempt: int, exc: Optional[BaseException]) -> None:
            attempts[0] = attempt + 1

        try:
            if self.retry_policy is None and self.breaker is None:
                answer = fetch()
                attempts[0] = 1
            else:
                answer = retry_call(
                    fetch,
                    policy=self.retry_policy or RetryPolicy(max_attempts=1),
                    clock=self.clock,
                    deadline=self.provider_deadline,
                    retryable=TRANSIENT_PROVIDER_ERRORS,
                    breaker=self.breaker,
                    on_attempt=observe,
                )
        except (
            CircuitOpenError,
            DeadlineExceededError,
        ) + TRANSIENT_PROVIDER_ERRORS as exc:
            self.events.append(
                DegradationEvent(
                    level="rejected",
                    reason="provider",
                    detail=str(exc),
                )
            )
            raise ServiceUnavailableError(
                f"LBS provider unavailable after {max(attempts[0], 1)} "
                f"attempt(s): {exc}",
                reason="provider",
            ) from exc
        if self.cache is not None:
            cache_hit = self.cache.stats.hits > hits_before
            if cache_hit:
                attempts[0] = 0
        else:
            cache_hit = False
        return answer, cache_hit, attempts[0]

    @staticmethod
    def _client_filter(location: Point, answer: QueryAnswer) -> Optional[POI]:
        """The last hop: exact nearest neighbour among the candidates."""
        if not answer.candidates:
            return None
        return min(
            answer.candidates,
            key=lambda poi: (location.distance_to(poi.location), poi.poi_id),
        )

    # -- snapshot lifecycle --------------------------------------------------

    def advance_snapshot(self, moves: Mapping[str, Point]) -> UpdateReport:
        """Next location snapshot: apply moves, repair the policy
        incrementally, refresh the MPC view.

        An injected ``"repair"`` fault leaves the previous
        policy/snapshot pair fully intact (the stale rung): the report
        comes back with ``applied=False`` and ``policy_age`` grows.
        Once the age exceeds ``max_stale_snapshots``, serving rejects."""
        self._snapshot_index += 1
        if self.injector is not None:
            try:
                self.injector.fire("repair", self._snapshot_index)
            except InjectedFault as exc:
                self.policy_age += 1
                level = (
                    "stale"
                    if self.policy_age <= self.max_stale_snapshots
                    else "rejected"
                )
                self.events.append(
                    DegradationEvent(
                        level=level,
                        reason="repair",
                        detail=str(exc),
                    )
                )
                # Re-commit the unchanged policy with its grown age: a
                # crash-restart mid-degradation must restore knowing it
                # is stale, not believing the old policy is fresh.
                self._journal_commit()
                return UpdateReport(
                    moved_users=0,
                    dirty_nodes=0,
                    recomputed_nodes=0,
                    total_nodes=len(self.anonymizer.tree),
                    applied=False,
                )
        report = self.anonymizer.update(moves)
        self.mpc.refresh(self.anonymizer.current_db)
        self.policy_age = 0
        self.restored = False  # first successful repair ends recovery
        self._coarsened.clear()  # a fresh policy supersedes coarsening
        self._journal_commit()
        return report

    @property
    def policy(self):
        return self.anonymizer.policy
