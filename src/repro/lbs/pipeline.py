"""The end-to-end privacy-conscious LBS pipeline (§II-B).

Actors, wired exactly as the paper's model prescribes:

* **MPC** — the Mobile Positioning Center: the authoritative source of
  device locations (here, the current location database snapshot).
* **CSP** — the trusted carrier.  It builds the service request from the
  user's query and the MPC location, anonymizes it with the current
  policy-aware optimal policy, consults the answer cache, and forwards
  only the anonymized request to the LBS.
* **LBS** — untrusted; sees cloaks and payloads, returns candidate sets.
* **Client filter** — the final hop back at the CSP/handset: pick the
  candidate nearest to the true location.

``period`` snapshots: :meth:`CSP.advance_snapshot` moves users and
incrementally repairs the policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..core.anonymizer import IncrementalAnonymizer, UpdateReport
from ..core.errors import ReproError
from ..core.geometry import Point, Rect
from ..core.requests import AnonymizedRequest, ServiceRequest, normalize_payload
from .cache import AnswerCache
from .locationdb import LocationDatabase
from .poi import POI
from .provider import LBSProvider, QueryAnswer

__all__ = ["ServedRequest", "MobilePositioningCenter", "CSP"]


@dataclass(frozen=True)
class ServedRequest:
    """Everything one request produced, end to end."""

    request: ServiceRequest
    anonymized: AnonymizedRequest
    answer: QueryAnswer
    result: Optional[POI]
    cache_hit: bool

    @property
    def candidate_count(self) -> int:
        """Client-side filtering work — the utility cost of the cloak."""
        return self.answer.size


class MobilePositioningCenter:
    """The MPC: location lookups against the current snapshot."""

    def __init__(self, db: LocationDatabase):
        self.db = db

    def locate(self, user_id: str) -> Point:
        point = self.db.location_of(user_id)
        if point is None:
            raise ReproError(f"MPC has no location for user {user_id!r}")
        return point

    def refresh(self, db: LocationDatabase) -> None:
        self.db = db


class CSP:
    """The trusted carrier orchestrating the whole flow."""

    def __init__(
        self,
        region: Rect,
        k: int,
        db: LocationDatabase,
        provider: LBSProvider,
        use_cache: bool = True,
        max_depth: int = 40,
    ):
        self.region = region
        self.k = k
        self.mpc = MobilePositioningCenter(db)
        self.provider = provider
        self.cache = AnswerCache(provider) if use_cache else None
        self.anonymizer = IncrementalAnonymizer(region, k, max_depth=max_depth)
        self.anonymizer.fit(db)

    # -- serving ------------------------------------------------------------

    def request(self, user_id: str, payload) -> ServedRequest:
        """Serve one user query end to end."""
        location = self.mpc.locate(user_id)
        service_request = ServiceRequest(
            str(user_id), location, normalize_payload(payload)
        )
        anonymized = self.anonymizer.anonymize(service_request)
        if self.cache is not None:
            hits_before = self.cache.stats.hits
            answer = self.cache.fetch(anonymized)
            cache_hit = self.cache.stats.hits > hits_before
        else:
            answer = self.provider.serve(anonymized)
            cache_hit = False
        result = self._client_filter(location, answer)
        return ServedRequest(
            request=service_request,
            anonymized=anonymized,
            answer=answer,
            result=result,
            cache_hit=cache_hit,
        )

    @staticmethod
    def _client_filter(location: Point, answer: QueryAnswer) -> Optional[POI]:
        """The last hop: exact nearest neighbour among the candidates."""
        if not answer.candidates:
            return None
        return min(
            answer.candidates,
            key=lambda poi: (location.distance_to(poi.location), poi.poi_id),
        )

    # -- snapshot lifecycle --------------------------------------------------

    def advance_snapshot(self, moves: Mapping[str, Point]) -> UpdateReport:
        """Next location snapshot: apply moves, repair the policy
        incrementally, refresh the MPC view."""
        report = self.anonymizer.update(moves)
        self.mpc.refresh(self.anonymizer.current_db)
        return report

    @property
    def policy(self):
        return self.anonymizer.policy
