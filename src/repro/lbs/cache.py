"""CSP-side answer cache (§VII "Beyond k-anonymity").

The paper observes that frequency-counting attacks in the spirit of
l-diversity / t-closeness — e.g. seeing as many identical requests from
a cloak as the cloak holds users — are precluded if the anonymizer
caches LBS answers keyed by the anonymized request: the LBS then never
sees (and so can never log, leak, or be subpoenaed for) duplicate
requests within the cache's lifetime.  For stationary POIs the cache
can live long, flushed at infrequent intervals; billing is preserved by
keeping aggregate counts and submitting them at flush time.

Fault tolerance: a provider exception mid-``fetch`` leaves the cache
untouched and the hit/miss statistics consistent — failed calls are
tallied separately in ``stats.errors`` and never counted as misses, so
``hits + misses`` always equals the number of successfully answered
fetches.  An optional :class:`~repro.robustness.retry.RetryPolicy`
(plus circuit breaker and deadline) retries the provider call itself.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Awaitable, Callable, Dict, Optional, Tuple

from ..core.requests import AnonymizedRequest
from ..robustness.retry import CircuitBreaker, Clock, RetryPolicy, retry_call
from .provider import QueryAnswer

__all__ = ["CacheStats", "AnswerCache", "AsyncAnswerCache"]

#: Cache key: the information the LBS would have seen.
CacheKey = Tuple[object, tuple]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    #: provider call attempts that raised (each retry counts once).
    errors: int = 0
    #: extra provider attempts beyond the first, across all fetches.
    retries: int = 0
    #: fetches that joined another fetch's in-flight fill instead of
    #: calling the provider themselves (async single-flight only).
    coalesced: int = 0

    @property
    def total(self) -> int:
        """Successfully answered fetches."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0


class AnswerCache:
    """Answer cache keyed by ``(cloak, payload)``.

    ``fetch`` consults the cache before the LBS.  Per-category counts of
    *suppressed* duplicates accumulate so the CSP can settle billing
    with the LBS at flush time without revealing per-request timing.

    ``retry_policy`` (with optional ``breaker``, ``clock`` and
    ``deadline``) makes the provider call itself fault tolerant; leave
    unset when an outer layer (the CSP) owns the retry loop.
    """

    def __init__(
        self,
        provider,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        clock: Optional[Clock] = None,
        deadline: Optional[float] = None,
        retryable: Tuple[type, ...] = (Exception,),
    ):
        self.provider = provider
        self.retry_policy = retry_policy
        self.breaker = breaker
        self.clock = clock
        self.deadline = deadline
        self.retryable = retryable
        self._answers: Dict[CacheKey, QueryAnswer] = {}
        self.stats = CacheStats()
        #: duplicates withheld from the LBS, per category (for billing).
        self.deferred_billing: Dict[str, int] = {}

    @staticmethod
    def _key(request: AnonymizedRequest) -> CacheKey:
        return (request.cloak, request.payload)

    def _call_provider(self, request: AnonymizedRequest) -> QueryAnswer:
        if self.retry_policy is None and self.breaker is None:
            try:
                return self.provider.serve(request)
            except Exception:
                self.stats.errors += 1
                raise

        def observe(attempt: int, exc) -> None:
            if exc is not None:
                self.stats.errors += 1
                if attempt + 1 < self.retry_policy.max_attempts:
                    self.stats.retries += 1

        return retry_call(
            lambda: self.provider.serve(request),
            policy=self.retry_policy or RetryPolicy(max_attempts=1),
            clock=self.clock,
            deadline=self.deadline,
            retryable=self.retryable,
            breaker=self.breaker,
            on_attempt=observe,
        )

    def fetch(self, request: AnonymizedRequest) -> QueryAnswer:
        key = self._key(request)
        cached = self._answers.get(key)
        if cached is not None:
            self.stats.hits += 1
            category = dict(request.payload).get("poi", "?")
            self.deferred_billing[category] = (
                self.deferred_billing.get(category, 0) + 1
            )
            # Re-stamp with this request's id; the payload is identical.
            return QueryAnswer(request.request_id, cached.candidates)
        # The provider call happens *before* the miss is recorded: a
        # failure leaves stats and cache exactly as they were, so a
        # retried fetch is indistinguishable from a first attempt.
        answer = self._call_provider(request)
        self.stats.misses += 1
        self._answers[key] = answer
        return answer

    def flush(self) -> Dict[str, int]:
        """Empty the cache (e.g. daily, per §VII) and hand back the
        deferred billing totals for settlement with the LBS."""
        settled = dict(self.deferred_billing)
        self._answers.clear()
        self.deferred_billing.clear()
        return settled

    def __len__(self) -> int:
        return len(self._answers)


class AsyncAnswerCache:
    """Single-flight async answer cache for the serving gateway.

    Same key and billing semantics as :class:`AnswerCache`, with one
    extra guarantee the concurrent world needs: a **single-flight fill**
    per key.  When many in-flight requests miss on the same
    ``(cloak, payload)`` simultaneously, exactly one of them runs the
    loader (one provider call, one cache write, one ``misses`` tick);
    the rest await the same fill and are tallied as ``coalesced`` —
    never as extra misses, and never as hits (the answer was not in the
    cache when they asked).  A failed fill propagates the *same*
    exception instance to every waiter and leaves the cache and stats
    untouched, so a retried fetch is indistinguishable from a first
    attempt, exactly like the sync cache's failure contract.

    Cancellation safety: the fill runs in its own task, so a cancelled
    *waiter* never cancels the shared fill for the others.  If the fill
    itself is cancelled (gateway shutdown), waiters see the
    cancellation and the in-flight slot is cleared.
    """

    def __init__(self):
        self._answers: Dict[CacheKey, QueryAnswer] = {}
        self._inflight: Dict[CacheKey, "asyncio.Future[QueryAnswer]"] = {}
        self._fills: Dict[CacheKey, "asyncio.Task"] = {}
        self.stats = CacheStats()
        #: duplicates withheld from the LBS, per category (for billing).
        self.deferred_billing: Dict[str, int] = {}

    @staticmethod
    def _key(request: AnonymizedRequest) -> CacheKey:
        return (request.cloak, request.payload)

    def _record_duplicate(self, request: AnonymizedRequest) -> None:
        category = dict(request.payload).get("poi", "?")
        self.deferred_billing[category] = (
            self.deferred_billing.get(category, 0) + 1
        )

    async def fetch(
        self,
        request: AnonymizedRequest,
        loader: Callable[[AnonymizedRequest], Awaitable[QueryAnswer]],
    ) -> Tuple[QueryAnswer, bool, bool]:
        """Resolve ``request`` → ``(answer, cache_hit, coalesced)``.

        ``loader`` is awaited at most once per key per fill, no matter
        how many fetches race on the key.
        """
        key = self._key(request)
        cached = self._answers.get(key)
        if cached is not None:
            self.stats.hits += 1
            self._record_duplicate(request)
            # Re-stamp with this request's id; the payload is identical.
            return QueryAnswer(request.request_id, cached.candidates), True, False
        future = self._inflight.get(key)
        if future is not None:
            self.stats.coalesced += 1
            self._record_duplicate(request)
            answer = await asyncio.shield(future)
            return QueryAnswer(request.request_id, answer.candidates), False, True
        loop = asyncio.get_event_loop()
        future = loop.create_future()
        # Pre-consume the exception so a fill whose every waiter was
        # cancelled does not warn "exception was never retrieved" under
        # asyncio debug mode; waiters still receive it via await.
        future.add_done_callback(
            lambda f: None if f.cancelled() else f.exception()
        )
        self._inflight[key] = future
        fill = loop.create_task(self._fill(key, request, loader, future))
        self._fills[key] = fill
        try:
            answer = await asyncio.shield(future)
        except asyncio.CancelledError:
            # The *waiter* was cancelled, not the fill — let the fill
            # finish for the coalesced others; shield already detached.
            raise
        return answer, False, False

    async def _fill(self, key, request, loader, future) -> None:
        try:
            answer = await loader(request)
        except asyncio.CancelledError:
            if not future.done():
                future.cancel()
            raise
        except BaseException as exc:  # noqa: BLE001 — fan the failure out
            if not future.done():
                future.set_exception(exc)
            # The waiters consume the exception; nothing re-raises here.
        else:
            self.stats.misses += 1
            self._answers[key] = answer
            if not future.done():
                future.set_result(answer)
        finally:
            self._inflight.pop(key, None)
            self._fills.pop(key, None)

    async def close(self) -> None:
        """Cancel in-flight fills (gateway shutdown).

        Only the cancellation we just requested is swallowed here; any
        other exception a fill task surfaces is a bug (``_fill`` fans
        loader failures into the waiters' future and never re-raises),
        so it propagates instead of being silently dropped.
        """
        for task in list(self._fills.values()):
            task.cancel()
        for task in list(self._fills.values()):
            try:
                await task
            except asyncio.CancelledError:  # noqa: PERF203
                pass
        # A fill cancelled before its first step never runs ``_fill``'s
        # handler, so its waiters' future would stay pending forever;
        # cancel any survivors so every waiter observes the shutdown.
        for future in list(self._inflight.values()):
            if not future.done():
                future.cancel()
        self._fills.clear()
        self._inflight.clear()

    def flush(self) -> Dict[str, int]:
        """Empty the cache and hand back deferred billing totals."""
        settled = dict(self.deferred_billing)
        self._answers.clear()
        self.deferred_billing.clear()
        return settled

    def __len__(self) -> int:
        return len(self._answers)
