"""CSP-side answer cache (§VII "Beyond k-anonymity").

The paper observes that frequency-counting attacks in the spirit of
l-diversity / t-closeness — e.g. seeing as many identical requests from
a cloak as the cloak holds users — are precluded if the anonymizer
caches LBS answers keyed by the anonymized request: the LBS then never
sees (and so can never log, leak, or be subpoenaed for) duplicate
requests within the cache's lifetime.  For stationary POIs the cache
can live long, flushed at infrequent intervals; billing is preserved by
keeping aggregate counts and submitting them at flush time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..core.requests import AnonymizedRequest
from .provider import QueryAnswer

__all__ = ["CacheStats", "AnswerCache"]

#: Cache key: the information the LBS would have seen.
CacheKey = Tuple[object, tuple]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0


class AnswerCache:
    """Answer cache keyed by ``(cloak, payload)``.

    ``fetch`` consults the cache before the LBS.  Per-category counts of
    *suppressed* duplicates accumulate so the CSP can settle billing
    with the LBS at flush time without revealing per-request timing.
    """

    def __init__(self, provider):
        self.provider = provider
        self._answers: Dict[CacheKey, QueryAnswer] = {}
        self.stats = CacheStats()
        #: duplicates withheld from the LBS, per category (for billing).
        self.deferred_billing: Dict[str, int] = {}

    @staticmethod
    def _key(request: AnonymizedRequest) -> CacheKey:
        return (request.cloak, request.payload)

    def fetch(self, request: AnonymizedRequest) -> QueryAnswer:
        key = self._key(request)
        cached = self._answers.get(key)
        if cached is not None:
            self.stats.hits += 1
            category = dict(request.payload).get("poi", "?")
            self.deferred_billing[category] = (
                self.deferred_billing.get(category, 0) + 1
            )
            # Re-stamp with this request's id; the payload is identical.
            return QueryAnswer(request.request_id, cached.candidates)
        self.stats.misses += 1
        answer = self.provider.serve(request)
        self._answers[key] = answer
        return answer

    def flush(self) -> Dict[str, int]:
        """Empty the cache (e.g. daily, per §VII) and hand back the
        deferred billing totals for settlement with the LBS."""
        settled = dict(self.deferred_billing)
        self._answers.clear()
        self.deferred_billing.clear()
        return settled

    def __len__(self) -> int:
        return len(self._answers)
