"""Discrete-event simulation of an anonymizing LBS deployment (§VII).

The paper argues an operating point — per snapshot, a sub-second bulk
anonymization, after which "individual queries can be served in
milliseconds" (0.3–0.5 ms cloak lookup + ~2 ms Casper-style candidate
query) — and contrasts it with cryptographic PIR's 6–45 s per query.
Those are *system* claims: they depend on request arrival rates,
snapshot cadence, and how serving interleaves with re-anonymization.

This module provides a deterministic discrete-event simulator to study
exactly that.  Time is simulated (service durations are model
parameters, by default the paper's measured figures), so runs are
reproducible and fast regardless of host speed:

* users issue nearest-POI requests as independent Poisson processes;
* every ``snapshot_period`` seconds the location database refreshes
  (bounded movement) and the policy is repaired; requests arriving
  during the repair wait for it (the policy must match the snapshot);
* each request then costs a cloak lookup plus — on a cache miss — an
  LBS candidate query.

:class:`SimulationReport` aggregates throughput, latency percentiles,
queueing delay, and cache behaviour.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from ..core.errors import ServiceUnavailableError, WorkloadError
from ..core.geometry import Rect
from ..core.locationdb import LocationDatabase
from ..robustness.faults import FaultInjector, InjectedFault
from ..robustness.retry import RetryPolicy
from .mobility import random_moves

if TYPE_CHECKING:  # runtime import happens lazily in the constructor
    from ..trajectory.audit import ServedTrajectories
    from ..trajectory.constraint import ContinuityConstraint

__all__ = [
    "GatewaySimulation",
    "GatewaySimulationReport",
    "LBSSimulation",
    "ServiceTimes",
    "SimulationReport",
    "poisson_schedule",
]


@dataclass(frozen=True)
class ServiceTimes:
    """Model parameters for simulated durations (seconds).

    Defaults follow the paper's §VII measurements: 0.3–0.5 ms cloak
    lookup (we take the midpoint), ~2 ms per candidate query at the LBS
    [23], and a per-snapshot bulk/incremental repair budget in the
    sub-second range the paper reports for one server.
    """

    cloak_lookup: float = 0.0004
    lbs_query: float = 0.002
    cache_lookup: float = 0.00005
    #: policy repair duration per snapshot refresh.
    reanonymization: float = 0.5

    def validate(self) -> None:
        for name in ("cloak_lookup", "lbs_query", "cache_lookup", "reanonymization"):
            if getattr(self, name) < 0:
                raise WorkloadError(f"{name} must be ≥ 0")


@dataclass
class SimulationReport:
    """Aggregated outcome of one simulation run."""

    duration: float
    served: int
    lbs_queries: int
    cache_hits: int
    snapshots: int
    latencies: List[float] = field(repr=False, default_factory=list)
    queue_delays: List[float] = field(repr=False, default_factory=list)
    #: requests rejected fail-closed (stale bound exceeded, provider
    #: retries exhausted) — never served a weaker cloak instead.
    rejected: int = 0
    #: requests served under a bounded-age stale policy.
    stale_served: int = 0
    #: extra provider attempts forced by injected faults.
    provider_retries: int = 0
    #: snapshot repairs that failed (policy kept, staleness grew).
    failed_snapshots: int = 0
    #: per-rung SLO accounting: latencies of served requests keyed by
    #: degradation level ("fresh" | "coarsened" | "stale" | "recovered")
    #: — :data:`repro.robustness.degrade.DEGRADATION_LEVELS` minus
    #: "rejected", which never produces a latency.
    latencies_by_rung: Dict[str, List[float]] = field(
        repr=False, default_factory=dict
    )
    #: process restarts replayed into the timeline (CSP killed, state
    #: restored from the policy journal).
    restarts: int = 0
    #: total simulated blackout spent in journal restores — the measured
    #: restore latency, replayed once per restart.
    restart_seconds: float = 0.0
    #: arrivals that had to queue behind an in-flight repair or restart
    #: blackout (queue delay > 0).  The zero-blackout property of the
    #: double-buffered swap is exactly ``repair_waits == 0`` in a
    #: restart-free run.
    repair_waits: int = 0
    #: arrivals served from the previous epoch while a shadow repair was
    #: in flight — the requests the blackout mode would have stalled.
    served_while_repairing: int = 0
    #: served cloaks that differed from the per-epoch oracle (a bulk
    #: re-solve of the epoch's exact snapshot); only counted when the
    #: simulation was built with ``oracle_check=True``.  Must be 0: the
    #: anonymity invariant across swaps.
    oracle_mismatches: int = 0
    #: serves the trajectory-continuity solver had to widen past the
    #: policy's fine cloak (the utility cost of the linking defense).
    trajectory_widened: int = 0
    #: arrivals rejected fail-closed because no cloak — up to the whole
    #: region — kept the surviving intersection ≥ k.
    trajectory_rejected: int = 0
    #: total area (m²) of every served cloak; with :attr:`served` this
    #: yields the mean cloak area — the second axis of the defense cost.
    served_area_sum: float = 0.0

    @property
    def mean_served_area(self) -> float:
        """Mean area of the cloaks that actually went over the wire."""
        return self.served_area_sum / self.served if self.served else 0.0

    @property
    def throughput(self) -> float:
        """Requests served per simulated second."""
        return self.served / self.duration if self.duration else 0.0

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.served if self.served else 0.0

    @property
    def availability(self) -> float:
        """Fraction of arrivals that were served (vs rejected)."""
        arrivals = self.served + self.rejected
        return self.served / arrivals if arrivals else 1.0

    def latency_percentile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        return float(np.percentile(self.latencies, q))

    @property
    def mean_latency(self) -> float:
        return float(np.mean(self.latencies)) if self.latencies else 0.0

    @property
    def mean_queue_delay(self) -> float:
        return float(np.mean(self.queue_delays)) if self.queue_delays else 0.0

    # -- per-rung SLOs -------------------------------------------------------

    @property
    def served_by_rung(self) -> Dict[str, int]:
        """How many requests each degradation rung served."""
        return {
            rung: len(lats) for rung, lats in self.latencies_by_rung.items()
        }

    def rung_latency_percentile(self, rung: str, q: float) -> float:
        lats = self.latencies_by_rung.get(rung)
        if not lats:
            return 0.0
        return float(np.percentile(lats, q))

    def rung_mean_latency(self, rung: str) -> float:
        lats = self.latencies_by_rung.get(rung)
        return float(np.mean(lats)) if lats else 0.0

    def slo_summary(self) -> str:
        """One line per active rung: count, mean and p99 latency."""
        lines = []
        for rung in ("fresh", "coarsened", "stale", "recovered"):
            lats = self.latencies_by_rung.get(rung)
            if not lats:
                continue
            lines.append(
                f"{rung}: {len(lats)} served, mean "
                f"{1e3 * self.rung_mean_latency(rung):.2f} ms, p99 "
                f"{1e3 * self.rung_latency_percentile(rung, 99):.2f} ms"
            )
        if self.rejected:
            lines.append(f"rejected: {self.rejected}")
        if self.served_while_repairing or self.repair_waits:
            lines.append(
                f"served-while-repairing: {self.served_while_repairing}, "
                f"repair waits: {self.repair_waits}, "
                f"oracle mismatches: {self.oracle_mismatches}"
            )
        if self.restarts:
            lines.append(
                f"restarts: {self.restarts}, journal-restore blackout "
                f"{1e3 * self.restart_seconds:.1f} ms total "
                f"({1e3 * self.restart_seconds / self.restarts:.1f} ms each)"
            )
        if self.trajectory_widened or self.trajectory_rejected:
            lines.append(
                f"trajectory: {self.trajectory_widened} widened, "
                f"{self.trajectory_rejected} rejected, mean served cloak "
                f"{self.mean_served_area:,.0f} m²"
            )
        return "\n".join(lines)

    def summary(self) -> str:
        text = (
            f"{self.served} requests in {self.duration:g}s simulated "
            f"({self.throughput:,.0f} req/s), mean latency "
            f"{1e3 * self.mean_latency:.2f} ms "
            f"(p99 {1e3 * self.latency_percentile(99):.2f} ms), "
            f"cache hit rate {self.cache_hit_rate:.0%}, "
            f"{self.snapshots} snapshot refreshes"
        )
        if self.rejected or self.failed_snapshots:
            text += (
                f"; availability {self.availability:.1%} "
                f"({self.rejected} rejected, {self.stale_served} stale, "
                f"{self.provider_retries} provider retries, "
                f"{self.failed_snapshots} failed repairs)"
            )
        return text


# Event kinds, ordered so ties at equal timestamps resolve snapshots
# first, then restarts (a restart scheduled exactly at the tick restores
# the just-repaired policy), then epoch swaps (a double-buffered repair
# completing exactly at an arrival's timestamp serves it the new epoch),
# then requests (arrivals at the tick see the new snapshot).
_SNAPSHOT, _RESTART, _SWAP, _ARRIVAL = 0, 1, 2, 3


class LBSSimulation:
    """Deterministic DES over a cloaking deployment.

    The simulation models the *timing* of the pipeline; the policy's
    privacy properties are the library's usual objects (the simulator
    asks the policy for each requester's cloak, so cloak/cache semantics
    are real, not stubbed).
    """

    def __init__(
        self,
        region: Rect,
        db: LocationDatabase,
        k: int,
        request_rate_per_user: float = 0.01,
        snapshot_period: float = 30.0,
        move_fraction: float = 0.02,
        max_move: float = 200.0,
        use_cache: bool = True,
        categories: Tuple[str, ...] = ("rest", "groc", "cinema"),
        times: Optional[ServiceTimes] = None,
        n_servers: int = 1,
        seed: int = 0,
        injector: Optional[FaultInjector] = None,
        retry_policy: Optional[RetryPolicy] = None,
        max_stale_snapshots: int = 1,
        restart_at: Tuple[float, ...] = (),
        restart_blackout: float = 0.0,
        double_buffered: bool = False,
        oracle_check: bool = False,
        trajectory_defense: bool = False,
        audit_stream: bool = False,
        trajectory_window: int = 16,
    ):
        if request_rate_per_user <= 0:
            raise WorkloadError("request_rate_per_user must be > 0")
        if snapshot_period <= 0:
            raise WorkloadError("snapshot_period must be > 0")
        if n_servers < 1:
            raise WorkloadError("n_servers must be ≥ 1")
        if max_stale_snapshots < 0:
            raise WorkloadError("max_stale_snapshots must be ≥ 0")
        if restart_blackout < 0:
            raise WorkloadError("restart_blackout must be ≥ 0")
        if any(t <= 0 for t in restart_at):
            raise WorkloadError("restart_at times must be > 0")
        self.region = region
        self.k = k
        self.request_rate = request_rate_per_user
        self.snapshot_period = snapshot_period
        self.move_fraction = move_fraction
        self.max_move = max_move
        self.use_cache = use_cache
        self.categories = categories
        self.times = times or ServiceTimes()
        self.times.validate()
        #: share-nothing anonymization servers (§V): repairing the
        #: policy after a snapshot parallelizes across jurisdictions, so
        #: the serving blackout shrinks by ~n (the Figure 4(a) model).
        self.n_servers = n_servers
        #: chaos schedule: "repair" faults stall the policy (bounded-age
        #: stale serving, then fail-closed rejection); "provider" faults
        #: cost retries with backoff, then rejection; "coarsen" faults
        #: serve the arrival one rung down (ancestor cloak).
        self.injector = injector
        self.retry_policy = retry_policy
        self.max_stale_snapshots = max_stale_snapshots
        #: process restarts: at each listed simulated time the CSP dies
        #: and restores from its policy journal, replaying the *measured*
        #: restore latency (``restart_blackout``, e.g. from timing
        #: :meth:`repro.lbs.pipeline.CSP.restore`) as a serving blackout.
        #: The committed policy survives — requests queue through the
        #: blackout and then ride the "recovered" rung until the next
        #: successful snapshot repair, exactly like a real restore.  The
        #: answer cache is process memory, so it does not survive.
        self.restart_at = tuple(sorted(float(t) for t in restart_at))
        self.restart_blackout = float(restart_blackout)
        #: double-buffered epoch swap (the streaming layer's timing
        #: model): a snapshot repair runs on the shadow while arrivals
        #: keep being served from the previous epoch, and the repaired
        #: policy is installed atomically ``reanonymization/n_servers``
        #: later — no arrival ever queues behind a repair.  False keeps
        #: the historical blackout model (arrivals wait for the repair).
        self.double_buffered = bool(double_buffered)
        #: when True, every epoch install also runs a from-scratch bulk
        #: solve of that exact snapshot and served cloaks are compared
        #: bit-for-bit (the anonymity invariant across swaps); costs one
        #: bulk solve per snapshot, so it is opt-in for tests/benches.
        self.oracle_check = bool(oracle_check)
        self.rng = np.random.default_rng(seed)

        from ..core.anonymizer import IncrementalAnonymizer

        self.anonymizer = IncrementalAnonymizer(region, k).fit(db)
        self._policy = self.anonymizer.policy
        #: continuity-constrained cloaking (defense against the linking
        #: attacker of :mod:`repro.attacks.trajectory`) — serves widened
        #: ancestors when a user's surviving intersection would drop
        #: below k, and rejects fail-closed when nothing suffices.
        self.trajectory: Optional["ContinuityConstraint"] = None
        #: attacker's-eye record of every served (cloak, policy) pair;
        #: :meth:`ServedTrajectories.audit` replays the linking attack
        #: against the stream after the run (the closing audit gate).
        self.stream: Optional["ServedTrajectories"] = None
        if trajectory_defense:
            from ..trajectory.constraint import ContinuityConstraint

            self.trajectory = ContinuityConstraint(
                k, window=trajectory_window
            )
        if audit_stream:
            from ..trajectory.audit import ServedTrajectories

            self.stream = ServedTrajectories()

    # -- the run ---------------------------------------------------------------

    def run(self, duration: float) -> SimulationReport:
        """Simulate ``duration`` seconds of operation."""
        if duration <= 0:
            raise WorkloadError("duration must be > 0")
        users = self.anonymizer.current_db.user_ids()
        events: List[Tuple[float, int, int, str]] = []
        serial = 0

        def push(t: float, kind: int, payload: str = "") -> None:
            nonlocal serial
            heapq.heappush(events, (t, kind, serial, payload))
            serial += 1

        # Seed one Poisson arrival stream per expected request count:
        # thin a global process of rate n·λ and draw the user uniformly.
        global_rate = len(users) * self.request_rate
        t = float(self.rng.exponential(1.0 / global_rate))
        while t < duration:
            push(t, _ARRIVAL)
            t += float(self.rng.exponential(1.0 / global_rate))
        tick = self.snapshot_period
        while tick < duration:
            push(tick, _SNAPSHOT)
            tick += self.snapshot_period
        for restart_time in self.restart_at:
            if restart_time < duration:
                push(restart_time, _RESTART)

        cache: Dict[Tuple[object, str, bool], bool] = {}
        policy_ready_at = 0.0  # requests wait for an in-flight repair
        report = SimulationReport(
            duration=duration,
            served=0,
            lbs_queries=0,
            cache_hits=0,
            snapshots=0,
        )

        stale_age = 0  # consecutive failed repairs (fail-closed bound)
        # True for the snapshot window right after a repair that ended a
        # stale streak: requests there ride the "recovered" rung (served
        # from a freshly repaired policy, not a continuously fresh one).
        recovered_window = False
        arrival_serial = 0
        # Double-buffered state: the repaired-but-not-yet-installed
        # (policy, oracle) pair, how many snapshots it is ahead of the
        # serving policy, and a generation counter so a superseded swap
        # never installs.
        pending = None
        pending_age = 0
        swap_gen = 0
        oracle = self._oracle_for_current()
        while events:
            now, kind, __, payload = heapq.heappop(events)
            if kind == _SNAPSHOT:
                report.snapshots += 1
                if self.injector is not None:
                    try:
                        self.injector.fire("repair", report.snapshots)
                    # DES models the stale rung; the accounting below IS
                    # the degradation ladder.  # analysis: ok[FC002]
                    except InjectedFault:
                        # Stale rung: keep serving the previous
                        # policy/snapshot pair, consistently — no
                        # blackout, but the staleness bound ticks.
                        stale_age += 1
                        report.failed_snapshots += 1
                        continue
                moves = random_moves(
                    self.anonymizer.current_db,
                    self.move_fraction,
                    self.region,
                    max_distance=self.max_move,
                    seed=self.rng,
                )
                self.anonymizer.update(moves)
                if self.double_buffered:
                    # Shadow repair: the previous epoch keeps serving
                    # (no blackout); the repaired policy installs
                    # atomically when the virtual repair completes.  A
                    # tick landing while an older repair is still in
                    # flight supersedes it — the newer epoch absorbs it.
                    swap_gen += 1
                    pending = (
                        self.anonymizer.policy,
                        self._oracle_for_current(),
                    )
                    pending_age += 1
                    push(
                        now + self.times.reanonymization / self.n_servers,
                        _SWAP,
                        str(swap_gen),
                    )
                    continue
                self._policy = self.anonymizer.policy
                oracle = self._oracle_for_current()
                cache.clear()  # cloaks changed; cached keys are stale
                policy_ready_at = (
                    now + self.times.reanonymization / self.n_servers
                )
                recovered_window = stale_age > 0
                stale_age = 0
                continue

            if kind == _SWAP:
                if payload != str(swap_gen) or pending is None:
                    continue  # superseded by a newer in-flight repair
                # Atomic epoch swap: pointer flip + cache invalidation.
                # Requests already being "served" at this timestamp kept
                # their admission-time cloaks (ties order _SWAP first
                # only for *new* arrivals at the same instant).
                self._policy, oracle = pending
                pending = None
                cache.clear()
                recovered_window = stale_age > 0
                stale_age = 0
                pending_age = 0
                continue

            if kind == _RESTART:
                # Process restart: the CSP dies and restores from its
                # journal.  The committed policy survives (staleness is
                # whatever it already was), but serving blacks out for
                # the measured restore latency, the in-memory answer
                # cache is lost, and requests after the blackout ride
                # the "recovered" rung until the next snapshot repair.
                report.restarts += 1
                report.restart_seconds += self.restart_blackout
                cache.clear()
                policy_ready_at = max(
                    policy_ready_at, now + self.restart_blackout
                )
                recovered_window = True
                continue

            # Request arrival.
            arrival_serial += 1
            # The serving policy's true age: failed repairs plus any
            # snapshots absorbed by an in-flight shadow repair.
            serving_age = stale_age + pending_age
            if serving_age > self.max_stale_snapshots:
                # Reject rung: the policy aged out of its stale budget;
                # serving it further would trade privacy for uptime.
                report.rejected += 1
                continue
            start = max(now, policy_ready_at)
            queue_delay = start - now
            if queue_delay > 0:
                report.repair_waits += 1
            user = users[int(self.rng.integers(len(users)))]
            category = self.categories[
                int(self.rng.integers(len(self.categories)))
            ]
            cloak = self._policy.cloak_for(user)
            if oracle is not None and cloak != oracle.get(user):
                report.oracle_mismatches += 1
            service = self.times.cloak_lookup
            coarsened = False
            if self.injector is not None:
                try:
                    self.injector.fire("coarsen", arrival_serial)
                # DES models the coarsened rung.  # analysis: ok[FC002]
                except InjectedFault:
                    # Coarsened rung: the requester's reported position
                    # is too uncertain for its fine cloak, so serving
                    # walks up to a safe ancestor — one extra cloak
                    # lookup and a coarser, cache-distinct region.
                    coarsened = True
                    service += self.times.cloak_lookup
            widened = False
            if self.trajectory is not None and isinstance(cloak, Rect):
                try:
                    decision = self.trajectory.enforce(
                        self._policy,
                        user,
                        region=self.region,
                        orientation=getattr(
                            self.anonymizer.tree, "orientation", "vertical"
                        ),
                        cloak=cloak,
                        serial=report.snapshots,
                    )
                # The trajectory ladder IS the degradation model here:
                # widen, else reject.  # analysis: ok[FC002]
                except ServiceUnavailableError:
                    report.rejected += 1
                    report.trajectory_rejected += 1
                    continue
                if decision.widened:
                    # The ancestor walk costs one extra cloak lookup,
                    # mirroring the coarsen rung's timing model.
                    widened = True
                    report.trajectory_widened += 1
                    service += self.times.cloak_lookup
                    cloak = decision.cloak
            key = (cloak, category, coarsened)
            needs_provider = True
            if self.use_cache:
                service += self.times.cache_lookup
                if cache.get(key):
                    report.cache_hits += 1
                    needs_provider = False
            if needs_provider:
                service_extra, ok = self._provider_call(
                    arrival_serial, report
                )
                if not ok:
                    report.rejected += 1
                    continue
                service += self.times.lbs_query + service_extra
                report.lbs_queries += 1
                if self.use_cache:
                    cache[key] = True
            finish = start + service
            report.served += 1
            if isinstance(cloak, Rect):
                report.served_area_sum += cloak.area
            if self.stream is not None and isinstance(cloak, Rect):
                self.stream.observe(
                    user, cloak, self._policy, widened=widened
                )
            if serving_age > 0:
                report.stale_served += 1
                rung = "stale"
                if pending_age > 0:
                    report.served_while_repairing += 1
            elif coarsened or widened:
                rung = "coarsened"
            elif recovered_window:
                rung = "recovered"
            else:
                rung = "fresh"
            report.latencies.append(finish - now)
            report.latencies_by_rung.setdefault(rung, []).append(finish - now)
            report.queue_delays.append(queue_delay)
        return report

    def _oracle_for_current(self) -> Optional[Dict[str, object]]:
        """Bulk-solved cloaks for the shadow's current snapshot, or
        ``None`` when oracle checking is off.  This is the anonymity
        referee: the incrementally repaired epoch must serve cloaks
        bit-identical to a from-scratch solve of its exact snapshot."""
        if not self.oracle_check:
            return None
        from ..core.anonymizer import PolicyAwareAnonymizer

        referee = PolicyAwareAnonymizer(self.region, self.k)
        referee.fit(self.anonymizer.current_db)
        return {uid: cloak for uid, cloak in referee.policy.items()}

    def _provider_call(self, serial: int, report: SimulationReport):
        """Model one LBS provider interaction under the chaos schedule.

        Returns ``(extra_seconds, ok)``: wasted attempt time plus retry
        backoff, and whether any attempt eventually succeeded."""
        if self.injector is None:
            return 0.0, True
        extra = 0.0
        attempt = 0
        while True:
            try:
                extra += self.injector.fire("provider", serial, attempt)
                return extra, True
            # DES models retry/reject; the caller rejects when attempts
            # run out.  # analysis: ok[FC002]
            except InjectedFault:
                # The failed attempt cost a full (timed-out) query.
                extra += self.times.lbs_query
                attempt += 1
                if (
                    self.retry_policy is None
                    or attempt >= self.retry_policy.max_attempts
                ):
                    return extra, False
                extra += self.retry_policy.delay_for(attempt - 1)
                report.provider_retries += 1


# -- gateway-aware DES ---------------------------------------------------------


def poisson_schedule(
    users: List[str],
    rate_per_user: float,
    duration: float,
    categories: Tuple[str, ...] = ("rest", "groc", "cinema"),
    seed: int = 0,
) -> List[Tuple[float, str, str]]:
    """A deterministic Poisson arrival schedule: (time, user, category).

    One schedule, two consumers: :class:`GatewaySimulation` replays it
    under virtual time and
    :func:`repro.serving.gateway.serve_scheduled` replays it against the
    real event loop — feeding both the *same* arrivals is what makes
    the DES's capacity predictions falsifiable against ``bench_gateway``
    measurements instead of merely plausible.
    """
    if rate_per_user <= 0:
        raise WorkloadError("rate_per_user must be > 0")
    if duration <= 0:
        raise WorkloadError("duration must be > 0")
    if not users:
        raise WorkloadError("schedule needs at least one user")
    rng = np.random.default_rng(seed)
    global_rate = len(users) * rate_per_user
    schedule: List[Tuple[float, str, str]] = []
    t = float(rng.exponential(1.0 / global_rate))
    while t < duration:
        user = users[int(rng.integers(len(users)))]
        category = categories[int(rng.integers(len(categories)))]
        schedule.append((t, user, category))
        t += float(rng.exponential(1.0 / global_rate))
    return schedule


@dataclass
class GatewaySimulationReport:
    """Predicted serving outcome of one simulated gateway run.

    Field names deliberately mirror
    :class:`repro.serving.gateway.GatewayStats` so a cross-validation
    can diff prediction against measurement counter by counter.
    """

    duration: float
    submitted: int = 0
    served: int = 0
    #: shed before queueing (fail-closed), total and by cause.
    shed: int = 0
    shed_high_water: int = 0
    shed_adaptive: int = 0
    shed_breaker: int = 0
    throttled: int = 0
    #: admitted but failed past admission (provider round errors).
    errors: int = 0
    cache_hits: int = 0
    coalesced: int = 0
    provider_queries: int = 0
    provider_rounds: int = 0
    #: predicted high-water mark of queued-but-unfinished requests —
    #: mirrors ``GatewayStats.queue_depth_high_water`` so capacity plans
    #: can size per-worker queues before a fleet exists.
    queue_depth_high_water: int = 0
    latencies: List[float] = field(repr=False, default_factory=list)

    @property
    def availability(self) -> float:
        done = self.served + self.shed + self.throttled + self.errors
        return self.served / done if done else 1.0

    @property
    def shed_rate(self) -> float:
        """Fraction of submissions refused at admission (all causes)."""
        if not self.submitted:
            return 0.0
        return (self.shed + self.throttled) / self.submitted

    @property
    def shed_by_cause(self) -> Dict[str, int]:
        return {
            "high_water": self.shed_high_water,
            "adaptive": self.shed_adaptive,
            "breaker": self.shed_breaker,
            "throttle": self.throttled,
        }

    def latency_percentile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        return float(np.percentile(self.latencies, q))

    @property
    def mean_latency(self) -> float:
        return float(np.mean(self.latencies)) if self.latencies else 0.0

    def slo_summary(self) -> str:
        """Human-readable SLO block with attributable shed causes."""
        lines = [
            f"submitted {self.submitted}, served {self.served} "
            f"(availability {self.availability:.1%}), mean latency "
            f"{1e3 * self.mean_latency:.2f} ms, p99 "
            f"{1e3 * self.latency_percentile(99):.2f} ms",
            f"provider: {self.provider_rounds} rounds carrying "
            f"{self.provider_queries} queries, {self.cache_hits} cache "
            f"hits, {self.coalesced} coalesced",
            f"queue depth high-water {self.queue_depth_high_water}",
        ]
        causes = ", ".join(
            f"{cause}={count}"
            for cause, count in self.shed_by_cause.items()
            if count
        )
        if causes:
            lines.append(
                f"shed {self.shed + self.throttled}/{self.submitted} "
                f"({self.shed_rate:.1%}) by cause: {causes}"
            )
        if self.errors:
            lines.append(f"errors past admission: {self.errors}")
        return "\n".join(lines)


# Gateway-DES event kinds: round completions free pool slots and pending
# counts before a same-instant flush or arrival observes them.
_G_ROUND, _G_FLUSH, _G_ARRIVAL = 0, 1, 2


class GatewaySimulation:
    """Virtual-time twin of :class:`repro.serving.gateway.AsyncGateway`.

    Replays an arrival schedule through a model of the gateway's
    admission and amortization machinery so capacity sweeps over
    admission knobs run in milliseconds of wall time.  The *decision
    logic* is not re-modelled where it matters: the
    :class:`~repro.serving.admission.AdmissionController` stepped here
    is the very class the live gateway runs, and the circuit breaker is
    the real :class:`~repro.robustness.retry.CircuitBreaker` re-clocked
    onto virtual time — only the event loop and the wire are simulated.

    Mirrored semantics, in gateway order: static queue high-water shed →
    breaker-open shed (controller mode) → adaptive AIMD limit shed →
    per-user token bucket throttle → answer cache (single-flight: later
    arrivals for an in-flight key coalesce onto its round) → coalescing
    batch window (``max_batch`` distinct keys or ``max_wait`` seconds)
    → pooled provider rounds (``pool_size`` concurrent, one RTT each).

    Deliberately not modelled: the ``max_inflight`` semaphore (size the
    operating point so ``queue_high_water ≤ max_inflight`` and it never
    binds — the validator enforces this) and retry scheduling (rounds
    fail atomically via ``fail_rounds``, charging the breaker exactly
    one failure, like the gateway's round-level retry wrapper).
    """

    def __init__(
        self,
        policy,
        config,
        *,
        times: Optional[ServiceTimes] = None,
        admission=None,
        breaker=None,
        fail_rounds: Tuple[int, ...] = (),
        use_cache: bool = True,
    ):
        from ..robustness.retry import ManualClock

        config.validate()
        if config.queue_high_water > config.max_inflight:
            raise WorkloadError(
                "the gateway DES does not model the inflight semaphore: "
                f"queue_high_water ({config.queue_high_water}) must be "
                f"≤ max_inflight ({config.max_inflight}) so it never binds"
            )
        if admission is not None and (
            admission.static_high_water != config.queue_high_water
        ):
            raise WorkloadError(
                "admission controller static high-water "
                f"({admission.static_high_water}) must equal the config's "
                f"queue_high_water ({config.queue_high_water})"
            )
        self.policy = policy
        self.config = config
        self.times = times or ServiceTimes()
        self.times.validate()
        self.admission = admission
        self.clock = ManualClock()
        self.breaker = breaker
        if breaker is not None:
            # Re-clock the real breaker onto virtual time: its open →
            # half-open transitions then happen at simulated instants.
            breaker.clock = self.clock
        #: 0-based provider round indexes that fail (chaos injection).
        self.fail_rounds = frozenset(int(r) for r in fail_rounds)
        self.use_cache = use_cache

    def run(
        self, schedule: List[Tuple[float, str, str]]
    ) -> GatewaySimulationReport:
        """Replay one arrival schedule; returns the predicted outcome."""
        if not schedule:
            raise WorkloadError("schedule must contain at least one arrival")
        config = self.config
        times = self.times
        events: List[Tuple[float, int, int, object]] = []
        serial = 0

        def push(t: float, kind: int, payload: object = None) -> None:
            nonlocal serial
            heapq.heappush(events, (t, kind, serial, payload))
            serial += 1

        for arrival, user, category in schedule:
            push(float(arrival), _G_ARRIVAL, (str(user), str(category)))

        duration = max(arrival for arrival, __, ___ in schedule)
        report = GatewaySimulationReport(duration=duration)
        pending = 0
        cache: Dict[object, bool] = {}
        #: key → arrival times waiting on an already-flushed round.
        inflight: Dict[object, List[float]] = {}
        #: the open batch window: key → arrival times.
        window: Dict[object, List[float]] = {}
        window_generation = 0
        busy_rounds = 0
        round_index = 0
        #: flushed batches waiting for a pool slot.
        ready: List[Tuple[Dict[object, List[float]], float]] = []
        buckets: Dict[str, Tuple[float, float]] = {}

        def start_round(
            batch: Dict[object, List[float]], now: float
        ) -> None:
            nonlocal busy_rounds, round_index
            busy_rounds += 1
            failed = round_index in self.fail_rounds
            round_index += 1
            rtt_cost = config.rtt + len(batch) * times.lbs_query
            push(now + rtt_cost, _G_ROUND, (batch, now, failed))

        def flush(now: float) -> None:
            nonlocal window, window_generation
            if not window:
                return
            batch, window = window, {}
            window_generation += 1
            for key in batch:
                inflight[key] = batch[key]
            if busy_rounds < config.pool_size:
                start_round(batch, now)
            else:
                ready.append((batch, now))

        while events:
            now, kind, __, payload = heapq.heappop(events)
            self.clock.now = max(self.clock.now, now)

            if kind == _G_ROUND:
                batch, started, failed = payload
                busy_rounds -= 1
                report.provider_rounds += 1
                report.provider_queries += len(batch)
                if self.breaker is not None:
                    if failed:
                        self.breaker.record_failure()
                    else:
                        self.breaker.record_success()
                if self.admission is not None:
                    self.admission.observe_round(
                        now - started,
                        failed=failed,
                        breaker_open=self.breaker is not None
                        and self.breaker.state != "closed",
                    )
                for key, arrivals in batch.items():
                    inflight.pop(key, None)
                    if failed:
                        report.errors += len(arrivals)
                        pending -= len(arrivals)
                        continue
                    if self.use_cache:
                        cache[key] = True
                    for arrival in arrivals:
                        report.served += 1
                        report.latencies.append(now - arrival)
                        pending -= 1
                if ready:
                    batch, __ = ready.pop(0)
                    start_round(batch, now)
                continue

            if kind == _G_FLUSH:
                if payload == window_generation:
                    flush(now)
                continue

            # Arrival.
            user, category = payload
            report.submitted += 1
            if pending >= config.queue_high_water:
                report.shed += 1
                report.shed_high_water += 1
                continue
            if self.admission is not None:
                if (
                    self.breaker is not None
                    and self.breaker.state == "open"
                ):
                    report.shed += 1
                    report.shed_breaker += 1
                    continue
                if not self.admission.admit(pending):
                    report.shed += 1
                    report.shed_adaptive += 1
                    continue
            if config.rate_per_user != float("inf"):
                tokens, stamp = buckets.get(
                    user, (config.burst_per_user, now)
                )
                tokens = min(
                    config.burst_per_user,
                    tokens + (now - stamp) * config.rate_per_user,
                )
                if tokens < 1.0:
                    buckets[user] = (tokens, now)
                    report.throttled += 1
                    continue
                buckets[user] = (tokens - 1.0, now)
            pending += 1
            if pending > report.queue_depth_high_water:
                report.queue_depth_high_water = pending
            key = (self.policy.cloak_for(user), category)
            base = times.cloak_lookup
            if self.use_cache:
                base += times.cache_lookup
                if cache.get(key):
                    report.cache_hits += 1
                    report.served += 1
                    report.latencies.append(base)
                    pending -= 1
                    continue
            if key in inflight:
                inflight[key].append(now)
                report.coalesced += 1
                continue
            if key in window:
                window[key].append(now)
                report.coalesced += 1
                continue
            window[key] = [now]
            if len(window) >= config.max_batch:
                flush(now)
            elif len(window) == 1:
                push(now + config.max_wait, _G_FLUSH, window_generation)

        # No post-loop drain is needed: every open window holds a live
        # _G_FLUSH event and every started round a _G_ROUND event, so an
        # empty heap means window, ready queue, and pool are all drained.
        return report
