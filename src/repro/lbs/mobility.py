"""User movement between location snapshots (§VI-C).

The incremental-maintenance experiment moves a chosen percentage of
users "to a point at a randomly selected distance (bounded by 200
meters, the maximum possible movement within 10 seconds) in a randomly
selected direction".  This module reproduces that model and provides a
snapshot-stream convenience for longer simulations.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator

import numpy as np

from ..core.errors import WorkloadError
from ..core.geometry import Point, Rect
from .locationdb import LocationDatabase

__all__ = ["random_moves", "movement_stream"]


def _rng(seed) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_moves(
    db: LocationDatabase,
    fraction: float,
    region: Rect,
    max_distance: float = 200.0,
    seed=0,
) -> Dict[str, Point]:
    """Pick ``fraction`` of users and move each ≤ ``max_distance`` meters
    in a uniformly random direction (clipped to the map).

    Returns the ``{user_id: new_point}`` mapping consumed by
    :meth:`BinaryTree.apply_moves` / :meth:`LocationDatabase.with_moves`.
    """
    if not 0.0 <= fraction <= 1.0:
        raise WorkloadError(f"fraction must be in [0, 1], got {fraction}")
    if max_distance < 0:
        raise WorkloadError(f"max_distance must be ≥ 0, got {max_distance}")
    rng = _rng(seed)
    ids = db.user_ids()
    n_moving = int(round(fraction * len(ids)))
    chosen = rng.choice(len(ids), size=n_moving, replace=False)
    moves: Dict[str, Point] = {}
    for i in sorted(chosen):
        user_id = ids[i]
        origin = db.location_of(user_id)
        distance = rng.uniform(0.0, max_distance)
        angle = rng.uniform(0.0, 2.0 * math.pi)
        x = min(max(origin.x + distance * math.cos(angle), region.x1), region.x2)
        y = min(max(origin.y + distance * math.sin(angle), region.y1), region.y2)
        moves[user_id] = Point(x, y)
    return moves


def movement_stream(
    db: LocationDatabase,
    fraction: float,
    region: Rect,
    n_snapshots: int,
    max_distance: float = 200.0,
    seed=0,
) -> Iterator[Dict[str, Point]]:
    """Yield ``n_snapshots`` successive move sets, each applied to the
    previous snapshot's state (a bounded random walk per moving user)."""
    rng = _rng(seed)
    current = db
    for __ in range(n_snapshots):
        moves = random_moves(current, fraction, region, max_distance, rng)
        current = current.with_moves(moves)
        yield moves
