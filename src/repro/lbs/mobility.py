"""User movement between location snapshots (§VI-C).

The incremental-maintenance experiment moves a chosen percentage of
users "to a point at a randomly selected distance (bounded by 200
meters, the maximum possible movement within 10 seconds) in a randomly
selected direction".  This module reproduces that model and provides a
snapshot-stream convenience for longer simulations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from ..core.errors import WorkloadError
from ..core.geometry import Point, Rect
from .locationdb import LocationDatabase

__all__ = [
    "random_moves",
    "movement_stream",
    "walk_snapshots",
    "trajectory_schedule",
    "TrajectorySchedule",
]


def _rng(seed) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_moves(
    db: LocationDatabase,
    fraction: float,
    region: Rect,
    max_distance: float = 200.0,
    seed=0,
) -> Dict[str, Point]:
    """Pick ``fraction`` of users and move each ≤ ``max_distance`` meters
    in a uniformly random direction (clipped to the map).

    Returns the ``{user_id: new_point}`` mapping consumed by
    :meth:`BinaryTree.apply_moves` / :meth:`LocationDatabase.with_moves`.
    """
    if not 0.0 <= fraction <= 1.0:
        raise WorkloadError(f"fraction must be in [0, 1], got {fraction}")
    if max_distance < 0:
        raise WorkloadError(f"max_distance must be ≥ 0, got {max_distance}")
    rng = _rng(seed)
    ids = db.user_ids()
    n_moving = int(round(fraction * len(ids)))
    chosen = rng.choice(len(ids), size=n_moving, replace=False)
    moves: Dict[str, Point] = {}
    for i in sorted(chosen):
        user_id = ids[i]
        origin = db.location_of(user_id)
        distance = rng.uniform(0.0, max_distance)
        angle = rng.uniform(0.0, 2.0 * math.pi)
        x = min(max(origin.x + distance * math.cos(angle), region.x1), region.x2)
        y = min(max(origin.y + distance * math.sin(angle), region.y1), region.y2)
        moves[user_id] = Point(x, y)
    return moves


def movement_stream(
    db: LocationDatabase,
    fraction: float,
    region: Rect,
    n_snapshots: int,
    max_distance: float = 200.0,
    seed=0,
) -> Iterator[Dict[str, Point]]:
    """Yield ``n_snapshots`` successive move sets, each applied to the
    previous snapshot's state (a bounded random walk per moving user)."""
    rng = _rng(seed)
    current = db
    for __ in range(n_snapshots):
        moves = random_moves(current, fraction, region, max_distance, rng)
        current = current.with_moves(moves)
        yield moves


def walk_snapshots(
    db: LocationDatabase, moves: Sequence[Dict[str, Point]]
) -> List[LocationDatabase]:
    """Apply a move-set sequence as a walk: snapshot *i+1* is snapshot
    *i* plus ``moves[i]``.  Returns all ``len(moves) + 1`` snapshots,
    starting with ``db`` itself — the one trace-replay helper shared by
    the trajectory bench, the DES scenario, and the mobility tests."""
    snapshots = [db]
    for move_set in moves:
        snapshots.append(snapshots[-1].with_moves(move_set))
    return snapshots


@dataclass(frozen=True)
class TrajectorySchedule:
    """One seeded mobility trace paired with one Poisson arrival stream.

    The pairing is the point: the trajectory bench and the DES both need
    "users move every ``snapshot_period`` seconds *and* issue requests
    in between", and generating the two halves from one seed keeps the
    defended and undefended runs (and any test replaying them) on the
    byte-identical workload.
    """

    region: Rect
    duration: float
    snapshot_period: float
    #: (time, user, category), time-ordered over ``[0, duration)``.
    arrivals: Tuple[Tuple[float, str, str], ...]
    #: per-boundary move sets: ``moves[i]`` is applied at time
    #: ``(i + 1) * snapshot_period`` (a bounded random walk per user).
    moves: Tuple[Dict[str, Point], ...]

    @property
    def n_snapshots(self) -> int:
        """Distinct location snapshots the schedule runs through."""
        return len(self.moves) + 1

    def snapshots(self, db: LocationDatabase) -> List[LocationDatabase]:
        """The trace replayed from ``db`` (see :func:`walk_snapshots`)."""
        return walk_snapshots(db, self.moves)

    def arrival_batches(self) -> List[List[Tuple[float, str, str]]]:
        """Arrivals grouped by snapshot window: batch *i* holds the
        arrivals served under snapshot *i* (before ``moves[i]`` lands)."""
        batches: List[List[Tuple[float, str, str]]] = [
            [] for __ in range(self.n_snapshots)
        ]
        for arrival in self.arrivals:
            index = min(
                int(arrival[0] / self.snapshot_period), self.n_snapshots - 1
            )
            batches[index].append(arrival)
        return batches


def trajectory_schedule(
    db: LocationDatabase,
    fraction: float,
    region: Rect,
    *,
    rate_per_user: float,
    duration: float,
    snapshot_period: float,
    max_distance: float = 200.0,
    categories: Tuple[str, ...] = ("rest", "groc", "cinema"),
    seed: int = 0,
) -> TrajectorySchedule:
    """Build a :class:`TrajectorySchedule` from one seed.

    The mobility trace is drawn first, then the arrival stream, both
    from the same generator — so a given ``seed`` fixes the entire
    workload, and two consumers (bench vs DES, defended vs undefended)
    replay identical traces.
    """
    if snapshot_period <= 0:
        raise WorkloadError("snapshot_period must be > 0")
    if duration <= 0:
        raise WorkloadError("duration must be > 0")
    # Local import: simulation imports this module at load time.
    from .simulation import poisson_schedule

    rng = _rng(seed)
    n_boundaries = max(0, math.ceil(duration / snapshot_period) - 1)
    moves = tuple(
        movement_stream(
            db, fraction, region, n_boundaries, max_distance, rng
        )
    )
    arrivals = tuple(
        poisson_schedule(
            db.user_ids(),
            rate_per_user,
            duration,
            categories=categories,
            seed=rng,
        )
    )
    return TrajectorySchedule(
        region=region,
        duration=float(duration),
        snapshot_period=float(snapshot_period),
        arrivals=arrivals,
        moves=moves,
    )
