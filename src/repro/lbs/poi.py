"""Points of interest and a grid-indexed POI store.

The LBS provider answers "nearest restaurant"-style queries.  With
cloaked requests it cannot pinpoint the requester, so (as in Casper's
privacy-aware query processing, discussed in §VII) it returns a
*candidate set* guaranteed to contain the true nearest neighbour of
every possible location inside the cloak; the client filters locally.

A uniform grid index keeps range and nearest queries sub-linear without
pulling in a GIS dependency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..core.errors import ReproError, WorkloadError
from ..core.geometry import Point, Rect

__all__ = ["POI", "POIDatabase", "generate_pois"]


@dataclass(frozen=True)
class POI:
    """A point of interest: id, location, and a category tag
    (matching the ``(poi, <category>)`` payload pairs of Example 2)."""

    poi_id: str
    location: Point
    category: str


class POIDatabase:
    """Grid-indexed store of POIs with range / NN-candidate queries."""

    def __init__(self, region: Rect, pois: Iterable[POI], grid_cells: int = 64):
        if grid_cells < 1:
            raise ReproError("grid must have at least one cell per side")
        self.region = region
        self.grid_cells = grid_cells
        self._cell_w = region.width / grid_cells
        self._cell_h = region.height / grid_cells
        self._grid: Dict[Tuple[int, int], List[POI]] = {}
        self._by_category: Dict[str, List[POI]] = {}
        self._all: List[POI] = []
        for poi in pois:
            if not region.contains(poi.location):
                raise ReproError(f"POI {poi.poi_id!r} outside the map")
            self._grid.setdefault(self._cell_of(poi.location), []).append(poi)
            self._by_category.setdefault(poi.category, []).append(poi)
            self._all.append(poi)

    def _cell_of(self, point: Point) -> Tuple[int, int]:
        cx = min(int((point.x - self.region.x1) / self._cell_w), self.grid_cells - 1)
        cy = min(int((point.y - self.region.y1) / self._cell_h), self.grid_cells - 1)
        return (cx, cy)

    def __len__(self) -> int:
        return len(self._all)

    def categories(self) -> List[str]:
        return sorted(self._by_category)

    def in_category(self, category: str) -> List[POI]:
        return list(self._by_category.get(category, []))

    # -- queries -----------------------------------------------------------------

    def range_query(self, rect: Rect, category: Optional[str] = None) -> List[POI]:
        """All POIs inside ``rect`` (optionally category-filtered)."""
        cx1, cy1 = self._cell_of(Point(max(rect.x1, self.region.x1),
                                       max(rect.y1, self.region.y1)))
        cx2, cy2 = self._cell_of(Point(min(rect.x2, self.region.x2),
                                       min(rect.y2, self.region.y2)))
        out: List[POI] = []
        for cx in range(cx1, cx2 + 1):
            for cy in range(cy1, cy2 + 1):
                for poi in self._grid.get((cx, cy), ()):
                    if rect.contains(poi.location):
                        if category is None or poi.category == category:
                            out.append(poi)
        return out

    def nearest(self, point: Point, category: Optional[str] = None) -> Optional[POI]:
        """The POI nearest to ``point`` (expanding ring search)."""
        best: Optional[POI] = None
        best_dist = math.inf
        cx0, cy0 = self._cell_of(point)
        max_ring = self.grid_cells
        for ring in range(max_ring + 1):
            # Once a candidate is found, one extra ring guarantees no
            # closer POI hides in a farther cell.
            if best is not None and ring * min(self._cell_w, self._cell_h) > best_dist + max(self._cell_w, self._cell_h):
                break
            for cx in range(cx0 - ring, cx0 + ring + 1):
                for cy in range(cy0 - ring, cy0 + ring + 1):
                    if max(abs(cx - cx0), abs(cy - cy0)) != ring:
                        continue
                    if not (0 <= cx < self.grid_cells and 0 <= cy < self.grid_cells):
                        continue
                    for poi in self._grid.get((cx, cy), ()):
                        if category is not None and poi.category != category:
                            continue
                        dist = point.distance_to(poi.location)
                        if dist < best_dist:
                            best, best_dist = poi, dist
        return best

    def nn_candidates(
        self, cloak: Rect, category: Optional[str] = None
    ) -> List[POI]:
        """A candidate set containing the nearest POI of *every* point in
        the cloak.

        Soundness: let ``p₀`` be the POI nearest to the cloak's center,
        at distance ``d₀``.  Any point ``q`` in the cloak has
        ``dist(q, NN(q)) ≤ dist(q, p₀) ≤ d₀ + diag/2``, so every
        possible nearest neighbour lies within ``d₀ + diag`` of the
        center; we return all POIs inside that disk (via a bounding
        rectangle range query plus a distance filter).
        """
        center = cloak.center
        anchor = self.nearest(center, category)
        if anchor is None:
            return []
        diag = math.hypot(cloak.width, cloak.height)
        radius = center.distance_to(anchor.location) + diag
        box = Rect(
            max(center.x - radius, self.region.x1),
            max(center.y - radius, self.region.y1),
            min(center.x + radius, self.region.x2),
            min(center.y + radius, self.region.y2),
        )
        return [
            poi
            for poi in self.range_query(box, category)
            if center.distance_to(poi.location) <= radius + 1e-9
        ]


def generate_pois(
    region: Rect,
    counts_by_category: Dict[str, int],
    seed=0,
) -> POIDatabase:
    """Scatter POIs uniformly per category (synthetic LBS content)."""
    if not counts_by_category:
        raise WorkloadError("need at least one POI category")
    rng = np.random.default_rng(seed) if not isinstance(seed, np.random.Generator) else seed
    pois: List[POI] = []
    for category, count in sorted(counts_by_category.items()):
        if count < 0:
            raise WorkloadError(f"negative POI count for {category!r}")
        xs = rng.uniform(region.x1, region.x2, size=count)
        ys = rng.uniform(region.y1, region.y2, size=count)
        for i, (x, y) in enumerate(zip(xs, ys)):
            pois.append(POI(f"{category}-{i}", Point(float(x), float(y)), category))
    return POIDatabase(region, pois)
