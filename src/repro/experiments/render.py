"""ASCII rendering of spatial structures (the visual half of Figures
2 and 3).

The paper's Figure 2 shows the Bay-Area population-density map next to
the intersection scatter; Figure 3 plots the binary tree's quadrants
with brightness encoding node depth.  These helpers render the same
pictures as character grids — dense enough to eyeball the skew and the
depth adaptation in a terminal or a test log.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.errors import ReproError
from ..core.geometry import Rect
from ..core.locationdb import LocationDatabase

__all__ = ["density_map", "depth_map"]

#: Brightness ramp, dark to bright (Figure 3's grey scale).
_RAMP = " .:-=+*#%@"


def _cell_of(region: Rect, x: float, y: float, width: int, height: int):
    cx = min(int((x - region.x1) / region.width * width), width - 1)
    cy = min(int((y - region.y1) / region.height * height), height - 1)
    return cx, cy


def _to_text(grid: np.ndarray, scale_max: float) -> str:
    """Map a (height, width) value grid to ramp characters; row 0 of the
    output is the map's *north* edge."""
    height, width = grid.shape
    lines: List[str] = []
    for row in range(height - 1, -1, -1):
        chars = []
        for col in range(width):
            value = grid[row, col]
            if scale_max <= 0:
                chars.append(_RAMP[0])
                continue
            level = int(round(value / scale_max * (len(_RAMP) - 1)))
            chars.append(_RAMP[max(0, min(level, len(_RAMP) - 1))])
        lines.append("".join(chars))
    return "\n".join(lines)


def density_map(
    db: LocationDatabase,
    region: Rect,
    width: int = 64,
    height: int = 32,
) -> str:
    """Character heatmap of user density (the Figure 2 visual)."""
    if width < 1 or height < 1:
        raise ReproError("render grid must be at least 1×1")
    grid = np.zeros((height, width))
    for __, point in db.items():
        if not region.contains(point):
            continue
        cx, cy = _cell_of(region, point.x, point.y, width, height)
        grid[cy, cx] += 1
    return _to_text(grid, float(grid.max()))


def depth_map(
    tree,
    width: int = 64,
    height: int = 32,
) -> str:
    """Character map of leaf depth — brighter = deeper = denser area
    (the Figure 3(a) visual).  Works for quad and binary trees."""
    if width < 1 or height < 1:
        raise ReproError("render grid must be at least 1×1")
    region = tree.region
    grid = np.zeros((height, width))
    for leaf in tree.leaves():
        rect = leaf.rect
        x1, y1 = _cell_of(region, rect.x1, rect.y1, width, height)
        x2, y2 = _cell_of(
            region,
            min(rect.x2, region.x2 - 1e-9 * region.width),
            min(rect.y2, region.y2 - 1e-9 * region.height),
            width,
            height,
        )
        grid[y1 : y2 + 1, x1 : x2 + 1] = np.maximum(
            grid[y1 : y2 + 1, x1 : x2 + 1], leaf.depth
        )
    return _to_text(grid, float(grid.max()))
